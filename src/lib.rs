//! # column-quant
//!
//! A from-scratch Rust reproduction of **“Column-wise Quantization of
//! Weights and Partial Sums for Accurate and Efficient Compute-In-Memory
//! Accelerators”** (Kim, Jeon, Kim & Ko, DATE 2025).
//!
//! This facade crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`tensor`] | `cq-tensor` | dense f32 tensors, GEMM, (grouped) convolution, pooling, RNG |
//! | [`quant`] | `cq-quant` | LSQ quantizers with per-group scales, granularities, bit-splitting |
//! | [`cim`] | `cq-cim` | array tiling, crossbars, ADC/DAC, variation, overhead model, crossbar engine |
//! | [`nn`] | `cq-nn` | layers with manual autograd, SGD, ResNet-20/18 |
//! | [`scheme`] | `cq-scheme` | the quantization-scheme zoo: paper LSQ, BWMA binary weights, ADC-less hybrid digitization |
//! | [`data`] | `cq-data` | synthetic CIFAR-10/100/ImageNet stand-ins, loaders |
//! | [`core`] | `cq-core` | **the paper's contribution**: `CimConv2d`, schemes, PTQ, variation |
//! | [`serve`] | `cq-serve` | queued, multi-model serving front-end: bounded queue, batch scheduler, model registry |
//! | [`train`] | `cq-train` | one-stage/two-stage QAT and PTQ training schedules |
//!
//! The most commonly used items are re-exported at the top level.
//!
//! ## Quickstart
//!
//! ```
//! use column_quant::{
//!     build_cim_resnet, CimConfig, Layer, Mode, QuantScheme, ResNetSpec,
//! };
//! use column_quant::tensor::CqRng;
//!
//! // A ResNet whose body convs run through the column-wise CIM pipeline.
//! let mut net = build_cim_resnet(
//!     ResNetSpec::resnet8(10, 4),
//!     &CimConfig::tiny(),
//!     &QuantScheme::ours(),
//!     0,
//! );
//! let x = CqRng::new(1).normal_tensor(&[1, 3, 16, 16], 1.0);
//! let logits = net.forward(&x, Mode::Eval);
//! assert_eq!(logits.shape(), &[1, 10]);
//! ```

#![warn(missing_docs)]

pub use cq_cim as cim;
pub use cq_core as core;
pub use cq_data as data;
pub use cq_nn as nn;
pub use cq_quant as quant;
pub use cq_scheme as scheme;
pub use cq_serve as serve;
pub use cq_tensor as tensor;
pub use cq_train as train;

pub use cq_cim::{CimConfig, CrossbarLayer, TilingPlan};
pub use cq_core::{
    build_cim_resnet, freeze_model, ptq_calibrate, set_psum_quant_enabled, set_quant_enabled,
    set_variation, unfreeze_model, CimConv2d, PreparedCimModel, QuantScheme, TrainMethod,
    VariationMode,
};
pub use cq_data::SyntheticSpec;
pub use cq_nn::{Layer, Mode, ResNet, ResNetSpec};
pub use cq_quant::Granularity;
pub use cq_serve::{
    Admission, CimServer, CompletionSet, EvictTicket, ModelRegistry, Request, SchedulerPolicy,
    ServeConfig, ServeSession, Slo, StreamSpec, TenantId, TenantSpec, Ticket,
};
pub use cq_tensor::Tensor;
pub use cq_train::{train_with_scheme, TrainConfig, TrainResult};
