//! Cross-crate integration tests: the paper's qualitative claims must
//! hold end-to-end on seeded synthetic tasks, and the two execution paths
//! (fast emulation vs crossbar engine) must agree through a whole model.

use column_quant::data::{generate, SyntheticSpec};
use column_quant::nn::Sgd;
use column_quant::train::{evaluate, train_epochs, TrainResult};
use column_quant::{
    build_cim_resnet, set_psum_quant_enabled, set_quant_enabled, set_variation, train_with_scheme,
    CimConfig, Granularity, Layer, Mode, QuantScheme, ResNetSpec, TrainConfig, VariationMode,
};

fn small_cim() -> CimConfig {
    let mut cim = CimConfig::cifar10(); // 3b/1b-cell, binary psums
    cim.array_rows = 32;
    cim.array_cols = 32;
    cim
}

fn small_task(seed: u64) -> (column_quant::data::Dataset, column_quant::data::Dataset) {
    generate(&SyntheticSpec {
        num_classes: 4,
        image_size: 12,
        train_per_class: 40,
        test_per_class: 16,
        ..SyntheticSpec::tiny(seed)
    })
}

fn spec() -> ResNetSpec {
    ResNetSpec::resnet8(4, 6)
}

/// One-stage QAT with the paper's scheme learns a real task through
/// **binary** partial sums (the paper's hardest ADC regime; it converges
/// slowly, which is why the paper trains 200 epochs — we allow 16 here).
#[test]
fn ours_learns_through_binary_psums() {
    let (train_ds, test_ds) = small_task(1);
    let scheme = QuantScheme::ours();
    let mut net = build_cim_resnet(spec(), &small_cim(), &scheme, 2);
    let cfg = TrainConfig::quick(16, 3);
    let r = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &cfg);
    assert!(
        r.best_test_acc > 0.38,
        "column/column QAT should clearly beat 0.25 chance, got {}",
        r.best_test_acc
    );
}

/// QAT beats PTQ at matched granularity — the reason Table I tracks
/// "train from scratch".
#[test]
fn qat_beats_ptq_at_same_granularity() {
    let (train_ds, test_ds) = small_task(5);
    let cfg = TrainConfig::quick(6, 6);

    let qat_scheme = QuantScheme::custom(Granularity::Layer, Granularity::Layer);
    let mut qat_net = build_cim_resnet(spec(), &small_cim(), &qat_scheme, 7);
    let qat = train_with_scheme(&mut qat_net, &qat_scheme, &train_ds, &test_ds, &cfg);

    let ptq_scheme = QuantScheme::kim5(); // layer/layer PTQ
    let mut ptq_net = build_cim_resnet(spec(), &small_cim(), &ptq_scheme, 7);
    let ptq = train_with_scheme(&mut ptq_net, &ptq_scheme, &train_ds, &test_ds, &cfg);

    assert!(
        qat.final_test_acc() >= ptq.final_test_acc(),
        "QAT {} should not lose to PTQ {} (binary psums are brutal post-hoc)",
        qat.final_test_acc(),
        ptq.final_test_acc()
    );
}

/// The full multi-layer model is bit-exact between the training-time
/// emulation and explicit crossbar execution, layer by layer.
#[test]
fn whole_model_layers_match_crossbar_engine() {
    let (train_ds, _) = small_task(9);
    let scheme = QuantScheme::ours();
    let mut net = build_cim_resnet(spec(), &small_cim(), &scheme, 10);
    // Initialize all lazy scales with one forward pass.
    let batch = column_quant::data::eval_batches(&train_ds, 8).remove(0);
    let _ = net.forward(&batch.images, Mode::Eval);

    let mut checked = 0;
    column_quant::core::for_each_cim_conv(&mut net, |conv| {
        let in_ch = conv.plan().in_ch;
        let x = column_quant::tensor::CqRng::new(11 + checked as u64)
            .normal_tensor(&[1, in_ch, 6, 6], 1.0)
            .map(|v| v.max(0.0));
        let fast = conv.forward(&x, Mode::Eval);
        let engine = column_quant::CrossbarLayer::new(conv.to_quantized_conv());
        let slow = engine.forward(&conv.quantize_activations(&x));
        assert_eq!(fast, slow, "layer {checked} diverged");
        checked += 1;
    });
    assert_eq!(checked, 8, "all CIM layers checked");
}

/// Two-stage QAT's stage-2 shock: enabling psum quantization mid-run must
/// not destroy the model (scales re-initialize from live statistics).
/// Uses the 3-bit-ADC config — the mechanism under test is the stage
/// transition, not the brutal binary regime.
#[test]
fn two_stage_survives_stage_transition() {
    let (train_ds, test_ds) = small_task(13);
    let mut cim = small_cim();
    cim.psum_bits = 3;
    let scheme = QuantScheme::custom(Granularity::Column, Granularity::Column)
        .with_method(column_quant::TrainMethod::TwoStageQat);
    let mut net = build_cim_resnet(spec(), &cim, &scheme, 14);
    let cfg = TrainConfig::quick(10, 15);
    let r = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &cfg);
    assert_eq!(r.stage_boundaries.len(), 1);
    let boundary = r.stage_boundaries[0];
    let stage2_final = r.history.last().unwrap().test_acc;
    assert!(
        stage2_final > 0.3,
        "stage 2 should recover from the quantization shock (final {stage2_final}, boundary {boundary})"
    );
}

/// Variation degrades accuracy on average, and σ=0 is exactly clean — the
/// anchor of Fig. 10.
#[test]
fn variation_sweep_behaves() {
    let (train_ds, test_ds) = small_task(17);
    let scheme = QuantScheme::ours();
    let mut net = build_cim_resnet(spec(), &small_cim(), &scheme, 18);
    let cfg = TrainConfig::quick(6, 19);
    let _ = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &cfg);

    let clean = evaluate(&mut net, &test_ds, 16);
    set_variation(&mut net, Some(0.0), VariationMode::PerWeight, 0);
    // σ=0 still goes through the variation path but must change nothing.
    let zero_sigma = evaluate(&mut net, &test_ds, 16);
    assert_eq!(clean, zero_sigma);

    let mut accs = Vec::new();
    for &sigma in &[0.1f32, 0.4] {
        let mut acc = 0.0;
        for seed in 0..3u64 {
            set_variation(&mut net, Some(sigma), VariationMode::PerWeight, 100 + seed);
            acc += evaluate(&mut net, &test_ds, 16);
        }
        accs.push(acc / 3.0);
    }
    set_variation(&mut net, None, VariationMode::PerWeight, 0);
    assert!(
        accs[1] <= clean + 1e-6,
        "σ=0.4 should not beat clean: {} vs {clean}",
        accs[1]
    );
}

/// FP → quantized → FP round trip: toggling quantization off restores the
/// exact FP behaviour (no hidden state contamination).
#[test]
fn quant_toggle_roundtrip_is_clean() {
    let scheme = QuantScheme::ours();
    let mut net = build_cim_resnet(spec(), &small_cim(), &scheme, 20);
    let x = column_quant::tensor::CqRng::new(21).normal_tensor(&[1, 3, 12, 12], 1.0);
    set_quant_enabled(&mut net, false);
    let fp1 = net.forward(&x, Mode::Eval);
    set_quant_enabled(&mut net, true);
    let q = net.forward(&x, Mode::Eval);
    set_quant_enabled(&mut net, false);
    let fp2 = net.forward(&x, Mode::Eval);
    assert_eq!(fp1, fp2);
    assert_ne!(fp1, q);
}

/// Disabling partial-sum quantization mid-eval gives the no-PSQ ceiling;
/// re-enabling restores the quantized result exactly.
#[test]
fn psq_toggle_is_exact() {
    let (train_ds, _) = small_task(23);
    let scheme = QuantScheme::ours();
    let mut net = build_cim_resnet(spec(), &small_cim(), &scheme, 24);
    let batch = column_quant::data::eval_batches(&train_ds, 8).remove(0);
    let with_psq_1 = net.forward(&batch.images, Mode::Eval);
    set_psum_quant_enabled(&mut net, false);
    let without = net.forward(&batch.images, Mode::Eval);
    set_psum_quant_enabled(&mut net, true);
    let with_psq_2 = net.forward(&batch.images, Mode::Eval);
    assert_eq!(with_psq_1, with_psq_2);
    assert_ne!(with_psq_1, without);
}

/// Sanity for the trainer's multi-stage plumbing used by Fig. 9: records
/// accumulate monotonically across manually chained stages.
#[test]
fn chained_training_accumulates_history() {
    let (train_ds, test_ds) = small_task(25);
    let scheme = QuantScheme::ours();
    let mut net = build_cim_resnet(spec(), &small_cim(), &scheme, 26);
    let cfg = TrainConfig::quick(2, 27);
    let mut result = TrainResult::default();
    let mut opt = Sgd::new(0.05, 0.9, 5e-4);
    train_epochs(&mut net, &train_ds, &test_ds, &cfg, &mut opt, &mut result);
    train_epochs(&mut net, &train_ds, &test_ds, &cfg, &mut opt, &mut result);
    assert_eq!(result.history.len(), 4);
    assert!(result
        .history
        .windows(2)
        .all(|w| w[1].cumulative_seconds >= w[0].cumulative_seconds));
}
