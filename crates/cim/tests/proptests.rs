//! Property-based tests for the CIM hardware model: tiling invariants,
//! crossbar MAC correctness, and overhead-model monotonicity.

use cq_cim::{dequant_mults, CimConfig, Crossbar, TilingPlan};
use cq_quant::Granularity;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Kernel-intact tiling: every input channel lands in exactly one row
    /// tile, whole kernels never straddle tiles, and padding never exceeds
    /// one tile's worth of channels.
    #[test]
    fn tiling_partitions_channels(
        in_ch in 1usize..200,
        out_ch in 1usize..96,
        k in 1usize..6,
        rows_pow in 5usize..9,
    ) {
        let mut cfg = CimConfig::cifar10();
        cfg.array_rows = 1 << rows_pow;
        cfg.array_cols = 1 << rows_pow;
        prop_assume!(k * k <= cfg.array_rows);
        let p = TilingPlan::new(&cfg, in_ch, out_ch, k, k);
        let mut seen = vec![0usize; in_ch];
        for g in 0..p.num_row_tiles {
            for c in p.channels_of_row_tile(g) {
                seen[c] += 1;
                prop_assert_eq!(p.row_tile_of_channel(c), g);
            }
        }
        prop_assert!(seen.iter().all(|&s| s == 1), "channels covered exactly once");
        prop_assert!(p.padded_in_ch >= in_ch && p.padded_in_ch - in_ch < p.ch_per_array);
        prop_assert!(p.rows_used <= cfg.array_rows);
        // Output channels partition across column tiles.
        let mut oc_seen = vec![0usize; out_ch];
        for t in 0..p.num_col_tiles {
            for oc in p.outputs_of_col_tile(t) {
                oc_seen[oc] += 1;
                prop_assert_eq!(p.col_tile_of_output(oc), t);
            }
        }
        prop_assert!(oc_seen.iter().all(|&s| s == 1));
    }

    /// Crossbar MAC equals the dense matrix-vector product.
    #[test]
    fn crossbar_mac_is_gemv(
        rows in 1usize..24,
        cols in 1usize..16,
        seed in 0u64..1000,
    ) {
        let mut xb = Crossbar::new(rows, cols);
        let mut cells = vec![0.0f32; rows * cols];
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % 9) as f32 - 4.0
        };
        for r in 0..rows {
            for c in 0..cols {
                let v = next();
                cells[r * cols + c] = v;
                xb.program(r, c, v);
            }
        }
        let input: Vec<f32> = (0..rows).map(|_| next().abs()).collect();
        let got = xb.mac(&input);
        for c in 0..cols {
            let want: f32 = (0..rows).map(|r| input[r] * cells[r * cols + c]).sum();
            prop_assert_eq!(got[c], want);
        }
    }

    /// Overhead is monotone in both granularities and column weights never
    /// exceed the column-psum cost.
    #[test]
    fn overhead_monotone(in_ch in 1usize..128, out_ch in 1usize..64) {
        let cfg = CimConfig::cifar100();
        let p = TilingPlan::new(&cfg, in_ch, out_ch, 3, 3);
        use Granularity::*;
        for w in Granularity::ALL {
            prop_assert!(dequant_mults(&p, w, Layer) <= dequant_mults(&p, w, Array));
            prop_assert!(dequant_mults(&p, w, Array) <= dequant_mults(&p, w, Column));
        }
        for pg in Granularity::ALL {
            prop_assert!(dequant_mults(&p, Layer, pg) <= dequant_mults(&p, Column, pg));
        }
        // The headline claim: C/C costs the same as L/C.
        prop_assert_eq!(
            dequant_mults(&p, Column, Column),
            dequant_mults(&p, Layer, Column)
        );
    }

    /// Weight group maps are consistent with the tiling: elements of one
    /// logical column (same row tile, same oc) always share a group.
    #[test]
    fn weight_layout_consistent(in_ch in 1usize..64, out_ch in 1usize..32) {
        let cfg = CimConfig::cifar10();
        let p = TilingPlan::new(&cfg, in_ch, out_ch, 3, 3);
        let l = p.weight_layout(Granularity::Column);
        for oc in 0..out_ch {
            for cin in 0..in_ch {
                let ch = oc * in_ch + cin;
                let g = p.row_tile_of_channel(cin);
                prop_assert_eq!(l.group_of_channel(ch), g * out_ch + oc);
            }
        }
        prop_assert_eq!(l.num_groups(), p.weight_group_count(Granularity::Column));
    }
}
