//! CIM macro configuration: array geometry, cell capability, converter
//! resolutions. The three presets mirror the paper's Table II.

use cq_quant::{BitSplit, QuantFormat};

/// Configuration of one bit-scalable CIM macro (paper Fig. 2(b)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CimConfig {
    /// Wordlines (rows) per array.
    pub array_rows: usize,
    /// Bitlines (columns) per array.
    pub array_cols: usize,
    /// Weight precision in bits (signed).
    pub weight_bits: u32,
    /// Activation precision in bits (unsigned, post-ReLU).
    pub act_bits: u32,
    /// Partial-sum / ADC precision in bits (signed; 1 = binary).
    pub psum_bits: u32,
    /// Bits stored per memory cell.
    pub cell_bits: u32,
    /// Input DAC resolution in bits. Equal to `act_bits` means a multi-bit
    /// DAC drives the full activation at once; smaller values imply
    /// bit-serial input slicing.
    pub dac_bits: u32,
    /// Columns shared per ADC through the output multiplexer. Affects
    /// throughput/energy reporting only, never accuracy.
    pub adc_share: usize,
}

impl CimConfig {
    /// Paper Table II, CIFAR-10 column: 3b weights (1b/cell), 3b
    /// activations, **binary** partial sums, 128×128 arrays.
    pub fn cifar10() -> Self {
        Self {
            array_rows: 128,
            array_cols: 128,
            weight_bits: 3,
            act_bits: 3,
            psum_bits: 1,
            cell_bits: 1,
            dac_bits: 3,
            adc_share: 8,
        }
    }

    /// Paper Table II, CIFAR-100 column: 4b weights (2b/cell), 4b
    /// activations, 3b partial sums, 128×128 arrays.
    pub fn cifar100() -> Self {
        Self {
            array_rows: 128,
            array_cols: 128,
            weight_bits: 4,
            act_bits: 4,
            psum_bits: 3,
            cell_bits: 2,
            dac_bits: 4,
            adc_share: 8,
        }
    }

    /// Paper Table II, ImageNet column: 3b weights (3b/cell), 3b
    /// activations, 2b partial sums, 256×256 arrays.
    pub fn imagenet() -> Self {
        Self {
            array_rows: 256,
            array_cols: 256,
            weight_bits: 3,
            act_bits: 3,
            psum_bits: 2,
            cell_bits: 3,
            dac_bits: 3,
            adc_share: 8,
        }
    }

    /// A small configuration for unit tests and quick examples.
    pub fn tiny() -> Self {
        Self {
            array_rows: 32,
            array_cols: 32,
            weight_bits: 3,
            act_bits: 3,
            psum_bits: 3,
            cell_bits: 1,
            dac_bits: 3,
            adc_share: 4,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes or inconsistent bit widths.
    pub fn validate(&self) {
        assert!(self.array_rows > 0 && self.array_cols > 0, "empty array");
        assert!(
            self.weight_bits >= 1 && self.weight_bits <= 16,
            "weight bits"
        );
        assert!(self.act_bits >= 1 && self.act_bits <= 16, "act bits");
        assert!(self.psum_bits >= 1 && self.psum_bits <= 16, "psum bits");
        assert!(
            self.cell_bits >= 1 && self.cell_bits <= self.weight_bits,
            "cell bits {} vs weight bits {}",
            self.cell_bits,
            self.weight_bits
        );
        assert!(
            self.dac_bits >= 1 && self.dac_bits <= self.act_bits,
            "dac bits {} vs act bits {}",
            self.dac_bits,
            self.act_bits
        );
        assert!(self.adc_share >= 1, "adc share");
    }

    /// The bit-split geometry implied by weight and cell precision.
    pub fn bit_split(&self) -> BitSplit {
        BitSplit::new(self.weight_bits, self.cell_bits)
    }

    /// Number of bit-splits (`n_split`, physical columns per logical
    /// column).
    pub fn num_splits(&self) -> usize {
        self.bit_split().num_splits()
    }

    /// Weight quantization format (signed).
    pub fn weight_format(&self) -> QuantFormat {
        QuantFormat::signed(self.weight_bits)
    }

    /// Activation quantization format (unsigned, post-ReLU).
    pub fn act_format(&self) -> QuantFormat {
        QuantFormat::unsigned(self.act_bits)
    }

    /// Partial-sum / ADC format (signed; 1 bit means binary ±1).
    pub fn psum_format(&self) -> QuantFormat {
        QuantFormat::signed(self.psum_bits)
    }

    /// Whether inputs are applied bit-serially (DAC narrower than the
    /// activation precision).
    pub fn bit_serial_input(&self) -> bool {
        self.dac_bits < self.act_bits
    }
}

impl Default for CimConfig {
    fn default() -> Self {
        Self::cifar10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table2() {
        let c10 = CimConfig::cifar10();
        assert_eq!(
            (c10.weight_bits, c10.act_bits, c10.psum_bits, c10.cell_bits),
            (3, 3, 1, 1)
        );
        assert_eq!((c10.array_rows, c10.array_cols), (128, 128));
        assert_eq!(c10.num_splits(), 3);
        assert!(c10.psum_format().is_binary());

        let c100 = CimConfig::cifar100();
        assert_eq!(
            (
                c100.weight_bits,
                c100.act_bits,
                c100.psum_bits,
                c100.cell_bits
            ),
            (4, 4, 3, 2)
        );
        assert_eq!(c100.num_splits(), 2);

        let inet = CimConfig::imagenet();
        assert_eq!((inet.array_rows, inet.array_cols), (256, 256));
        assert_eq!(inet.num_splits(), 1);
        for c in [c10, c100, inet] {
            c.validate();
        }
    }

    #[test]
    #[should_panic(expected = "cell bits")]
    fn invalid_cell_bits_panics() {
        let mut c = CimConfig::cifar10();
        c.cell_bits = 5;
        c.validate();
    }

    #[test]
    fn formats_are_consistent() {
        let c = CimConfig::cifar100();
        assert_eq!(c.weight_format().qp(), 7.0);
        assert_eq!(c.act_format().qp(), 15.0);
        assert_eq!(c.psum_format().qn(), 4.0);
        assert!(!c.bit_serial_input());
    }
}
