//! Dequantization-overhead model (paper Sec. III-B, Fig. 4, Fig. 8).
//!
//! Counts the scale-factor multiplication points a layer needs after the
//! ADCs. The key result reproduced here: because shift-and-add is free and
//! the weight scale merges into the partial-sum scale per column,
//! **column-wise weights add no overhead beyond column-wise partial sums**
//! (Fig. 4(d)), and any scheme with layer-wise partial sums collapses to
//! the granularity forced by the weight scales.

use crate::TilingPlan;
use cq_quant::Granularity;

/// Number of dequantization multiplications per layer for a weight/psum
/// granularity pair (the x-axis of the paper's Fig. 8).
///
/// Derivation, matching every count stated in the paper:
///
/// * Partial sums at `Layer` need 1 multiplication point; at `Array`,
///   `n_array · n_oc` (per output channel per array, Fig. 4(b)); at
///   `Column`, `n_split · n_array · n_oc` (per physical column, Fig. 4(c)).
/// * Weight scales at `Array`/`Column` force at least per-(array, output
///   channel) multiplication (`n_array · n_oc`) because psums scaled by
///   different `s_w` cannot be accumulated first. Column-wise weight scales
///   are shared across a logical column's bit-splits, so they never force
///   the `n_split` factor — that is the paper's central overhead claim.
/// * The layer's overhead is the finer (larger) of the two requirements.
pub fn dequant_mults(plan: &TilingPlan, w_gran: Granularity, p_gran: Granularity) -> usize {
    let per_array_oc = plan.num_row_tiles * plan.out_ch;
    let w_level = match w_gran {
        Granularity::Layer => 1,
        Granularity::Array | Granularity::Column => per_array_oc,
    };
    let p_level = match p_gran {
        Granularity::Layer => 1,
        Granularity::Array => per_array_oc,
        Granularity::Column => plan.num_splits * per_array_oc,
    };
    w_level.max(p_level)
}

/// The three overhead classes of Fig. 8, coarse to fine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum OverheadClass {
    /// One multiplication per layer (layer/layer only).
    PerLayer,
    /// `n_array · n_oc` multiplications.
    PerArrayChannel,
    /// `n_split · n_array · n_oc` multiplications.
    PerColumn,
}

/// Classifies a granularity pair into its Fig. 8 overhead bucket.
pub fn overhead_class(w_gran: Granularity, p_gran: Granularity) -> OverheadClass {
    match (w_gran, p_gran) {
        (Granularity::Layer, Granularity::Layer) => OverheadClass::PerLayer,
        (_, Granularity::Column) => OverheadClass::PerColumn,
        _ => OverheadClass::PerArrayChannel,
    }
}

/// Number of scale factors that must be **stored** for a layer (different
/// from the multiplication count: merged `s_w · s_p` products are stored
/// per application point).
pub fn stored_scale_factors(plan: &TilingPlan, w_gran: Granularity, p_gran: Granularity) -> usize {
    dequant_mults(plan, w_gran, p_gran)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CimConfig;
    use Granularity::{Array, Column, Layer};

    fn plan() -> TilingPlan {
        // 2 row tiles, 1 col tile, 3 splits, 8 output channels.
        TilingPlan::new(&CimConfig::cifar10(), 16, 8, 3, 3)
    }

    #[test]
    fn paper_stated_counts() {
        let p = plan();
        let na_noc = 2 * 8;
        // Fig. 4(a): layer/layer -> 1.
        assert_eq!(dequant_mults(&p, Layer, Layer), 1);
        // Fig. 4(b): layer weights, array psums -> n_array * n_oc.
        assert_eq!(dequant_mults(&p, Layer, Array), na_noc);
        // Fig. 4(c): layer weights, column psums -> n_split * n_array * n_oc.
        assert_eq!(dequant_mults(&p, Layer, Column), 3 * na_noc);
        // Fig. 4(d): column/column -> SAME as (c). The paper's key claim.
        assert_eq!(dequant_mults(&p, Column, Column), 3 * na_noc);
    }

    #[test]
    fn column_weights_never_add_overhead_over_column_psums() {
        let p = plan();
        for w in Granularity::ALL {
            assert_eq!(
                dequant_mults(&p, w, Column),
                dequant_mults(&p, Layer, Column),
                "weight granularity {w} changed column-psum overhead"
            );
        }
    }

    #[test]
    fn nine_combos_fall_into_three_classes() {
        use OverheadClass::*;
        let mut counts = std::collections::HashMap::new();
        for w in Granularity::ALL {
            for pg in Granularity::ALL {
                *counts.entry(overhead_class(w, pg)).or_insert(0usize) += 1;
            }
        }
        assert_eq!(counts[&PerLayer], 1); // L/L
        assert_eq!(counts[&PerArrayChannel], 5); // L/A, A/L, A/A, C/L, C/A
        assert_eq!(counts[&PerColumn], 3); // L/C, A/C, C/C
    }

    #[test]
    fn class_matches_mult_ordering() {
        let p = plan();
        for w in Granularity::ALL {
            for pg in Granularity::ALL {
                let class = overhead_class(w, pg);
                let m = dequant_mults(&p, w, pg);
                match class {
                    OverheadClass::PerLayer => assert_eq!(m, 1),
                    OverheadClass::PerArrayChannel => assert_eq!(m, 16),
                    OverheadClass::PerColumn => assert_eq!(m, 48),
                }
            }
        }
    }
}
