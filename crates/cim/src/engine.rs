//! The explicit crossbar inference engine: programs quantized weights into
//! [`Crossbar`] arrays per the kernel-intact [`TilingPlan`], drives im2col
//! patches through the wordlines, digitizes every physical column with an
//! [`Adc`] referenced to that column's scale factor, shift-and-adds the
//! bit-splits, and applies the merged `s_w · s_p` dequantization
//! (paper Fig. 3 / Fig. 4(d)).
//!
//! This is the hardware-shaped twin of the fast group-convolution
//! emulation in `cq-core`. Both paths drive the shared [`PsumPipeline`]
//! back-end — one implementation of the digitize → shift-add → dequant
//! loop with one f32 operation order — so they agree **exactly** at zero
//! variation; integration tests enforce this.

use crate::{
    Adc, AdcDigitizer, Crossbar, HybridDigitizer, IdealDigitizer, PsumPipeline, TilingPlan,
};
use cq_quant::{BitSplit, QuantFormat};
use cq_tensor::{CqRng, Tensor};

/// A fully-quantized convolution layer description, with every scale factor
/// resolved to dense per-column tables. Produced by `cq-core` from a
/// trained `CimConv2d`.
#[derive(Debug, Clone)]
pub struct QuantizedConv {
    /// Integer weights `[OC, Cin, KH, KW]` in the signed weight range.
    pub w_int: Tensor,
    /// Bit-split geometry.
    pub bit_split: BitSplit,
    /// Array tiling plan.
    pub plan: TilingPlan,
    /// Convolution stride.
    pub stride: usize,
    /// Convolution zero padding.
    pub pad: usize,
    /// Activation scale `s_a` (layer-wise).
    pub act_scale: f32,
    /// Activation quantization format (unsigned for post-ReLU inputs).
    /// Together with `act_scale` this lets a prepared engine quantize raw
    /// activations itself instead of requiring pre-quantized inputs.
    pub act_format: QuantFormat,
    /// Weight scale per logical column, indexed `[g · OC + oc]`
    /// (`g` = row tile). Layer-/array-wise schemes repeat the shared value.
    pub weight_scales: Vec<f32>,
    /// Partial-sum scale per physical column, indexed
    /// `[(s · G + g) · OC + oc]`. Ignored when `psum_quant` is false.
    pub psum_scales: Vec<f32>,
    /// ADC output format.
    pub psum_format: QuantFormat,
    /// Whether partial sums are quantized (false = ideal ADC bypass).
    pub psum_quant: bool,
    /// Number of **low-order** bit-splits carried digitally, ADC-less-style
    /// (HCiM): those splits bypass the converter while splits
    /// `digital_splits..num_splits` still go through the ADC. `0` is the
    /// classic all-ADC path; ignored when `psum_quant` is false.
    pub digital_splits: usize,
    /// Optional per-output-channel bias, applied after dequantization.
    pub bias: Option<Vec<f32>>,
}

impl QuantizedConv {
    /// Validates the internal consistency of the description.
    ///
    /// # Panics
    ///
    /// Panics on any size mismatch, non-finite / non-integral /
    /// out-of-range weight, or non-positive scale factor.
    pub fn validate(&self) {
        let p = &self.plan;
        assert_eq!(
            self.w_int.shape(),
            &[p.out_ch, p.in_ch, p.kh, p.kw],
            "w_int shape vs plan"
        );
        assert_eq!(
            self.weight_scales.len(),
            p.num_row_tiles * p.out_ch,
            "weight scale table"
        );
        if self.psum_quant {
            assert_eq!(
                self.psum_scales.len(),
                p.num_splits * p.num_row_tiles * p.out_ch,
                "psum scale table"
            );
            for &s in &self.psum_scales {
                assert!(s > 0.0, "non-positive psum scale {s}");
            }
        }
        if let Some(b) = &self.bias {
            assert_eq!(b.len(), p.out_ch, "bias length");
        }
        let (lo, hi) = self.bit_split.weight_range();
        let (lo, hi) = (lo as f32, hi as f32);
        for &w in self.w_int.data() {
            assert!(w.is_finite(), "non-finite weight {w}");
            assert_eq!(w, w.round(), "non-integral weight {w}");
            assert!((lo..=hi).contains(&w), "weight {w} out of range");
        }
        assert!(self.act_scale > 0.0, "activation scale");
        assert!(
            self.digital_splits <= p.num_splits,
            "digital_splits {} exceeds num_splits {}",
            self.digital_splits,
            p.num_splits
        );
    }

    /// Builds the shared execution pipeline for this description.
    pub fn pipeline(&self) -> PsumPipeline {
        PsumPipeline::new(
            self.plan.clone(),
            self.bit_split,
            self.stride,
            self.pad,
            self.act_scale,
            self.weight_scales.clone(),
            self.bias.clone(),
        )
    }

    /// Computes this description's backend capability profile — what a
    /// `backend.supports(&desc.profile())` probe consumes. This runs the
    /// real freeze-time front-end (grouping every bit-split slice and
    /// attempting the integer repack), so it can never drift from the
    /// kernels' own eligibility rules; it is correspondingly not cheap.
    /// Frozen layers cache the result (`PreparedConv::profile`).
    pub fn profile(&self) -> cq_tensor::ConvProfile {
        let pipeline = self.pipeline();
        let grouped = pipeline.split_grouped_weights(&self.w_int);
        let act_max_abs = self.act_format.qn().abs().max(self.act_format.qp());
        cq_tensor::ConvProfile {
            integer_eligible: pipeline
                .split_grouped_weights_int(&grouped, act_max_abs)
                .is_some(),
        }
    }

    /// Weight scale of logical column (row tile `g`, output channel `oc`).
    #[inline]
    pub fn weight_scale(&self, g: usize, oc: usize) -> f32 {
        self.weight_scales[g * self.plan.out_ch + oc]
    }

    /// Partial-sum scale of physical column (split `s`, row tile `g`,
    /// output channel `oc`).
    #[inline]
    pub fn psum_scale(&self, s: usize, g: usize, oc: usize) -> f32 {
        self.psum_scales[(s * self.plan.num_row_tiles + g) * self.plan.out_ch + oc]
    }
}

/// A convolution layer programmed onto crossbar arrays.
#[derive(Debug, Clone)]
pub struct CrossbarLayer {
    desc: QuantizedConv,
    /// Arrays indexed `[g · num_col_tiles + t]`.
    arrays: Vec<Crossbar>,
    adc: Adc,
    pipeline: PsumPipeline,
}

impl CrossbarLayer {
    /// Programs the quantized weights into crossbars.
    ///
    /// # Panics
    ///
    /// Panics if the description is inconsistent (see
    /// [`QuantizedConv::validate`]).
    pub fn new(desc: QuantizedConv) -> Self {
        desc.validate();
        let p = desc.plan.clone();
        let ns = p.num_splits;
        let kk = p.kh * p.kw;
        let mut arrays = Vec::with_capacity(p.num_arrays());
        for g in 0..p.num_row_tiles {
            let chans = p.channels_of_row_tile(g);
            for t in 0..p.num_col_tiles {
                let ocs = p.outputs_of_col_tile(t);
                let mut xb = Crossbar::new(p.rows_used, ocs.len() * ns);
                for (local_oc, oc) in ocs.clone().enumerate() {
                    for s in 0..ns {
                        let col = local_oc * ns + s;
                        for (c_local, cin) in chans.clone().enumerate() {
                            for ki in 0..p.kh {
                                for kj in 0..p.kw {
                                    let w = desc.w_int.data()[desc.w_int.idx4(oc, cin, ki, kj)];
                                    let v = desc.bit_split.split_value(w as i32, s) as f32;
                                    xb.program(c_local * kk + ki * p.kw + kj, col, v);
                                }
                            }
                        }
                    }
                }
                arrays.push(xb);
            }
        }
        let adc = Adc::new(desc.psum_format);
        let pipeline = desc.pipeline();
        Self {
            desc,
            arrays,
            adc,
            pipeline,
        }
    }

    /// The layer description.
    pub fn desc(&self) -> &QuantizedConv {
        &self.desc
    }

    /// The programmed arrays (row-tile-major).
    pub fn arrays(&self) -> &[Crossbar] {
        &self.arrays
    }

    /// Applies per-cell log-normal variation to every array (Eq. (5)).
    pub fn apply_variation(&mut self, sigma: f32, rng: &mut CqRng) {
        for xb in &mut self.arrays {
            xb.apply_variation(sigma, rng);
        }
    }

    /// Total programmed (non-zero) cells across all arrays.
    pub fn programmed_cells(&self) -> usize {
        self.arrays.iter().map(Crossbar::programmed_cells).sum()
    }

    /// Runs inference on integer activations `a_int` (`[B, Cin, H, W]`,
    /// values on the unsigned activation grid) and returns the dequantized
    /// output `[B, OC, OH, OW]` including the activation scale and bias.
    ///
    /// Both stages run on the shared [`PsumPipeline`]: the crossbar
    /// front-end produces per-split partial sums (parallel across
    /// batch × row-tile), and the shared reduce digitizes each physical
    /// column (real [`Adc`] or ideal bypass) and shift-and-adds with the
    /// merged `s_w · s_p` dequantization.
    ///
    /// # Panics
    ///
    /// Panics if the input shape mismatches the plan.
    pub fn forward(&self, a_int: &Tensor) -> Tensor {
        let psums = self.pipeline.crossbar_psums(&self.arrays, a_int);
        if self.desc.psum_quant {
            let dig = AdcDigitizer::new(self.adc, &self.desc.psum_scales, &self.desc.plan);
            if self.desc.digital_splits > 0 {
                let dig = HybridDigitizer::new(dig, self.desc.digital_splits);
                self.pipeline.reduce(&psums, &dig)
            } else {
                self.pipeline.reduce(&psums, &dig)
            }
        } else {
            self.pipeline.reduce(&psums, &IdealDigitizer)
        }
    }
}

impl CrossbarLayer {
    /// Bit-serial input execution: activations are driven `dac_bits` at a
    /// time (LSB first), every input slice's column current is digitized
    /// separately, and the slice results are shift-and-added digitally —
    /// the narrow-DAC operating mode of bit-scalable CIM macros
    /// (paper Fig. 2(b)).
    ///
    /// Each input slice `j` is converted against a reference scaled to its
    /// significance, `s_p / 2^(db·(n_j−1−j))`, so the most significant
    /// slice sees the column's trained full-scale reference.
    ///
    /// With `dac_bits ≥` the activation precision this reduces to exactly
    /// [`CrossbarLayer::forward`] (single slice); with the ADC bypassed it
    /// is exact for any `dac_bits` (shift-and-add reconstruction).
    ///
    /// # Panics
    ///
    /// Panics if `dac_bits == 0`, any activation is negative/non-integral,
    /// or the input shape mismatches the plan.
    pub fn forward_bit_serial(&self, a_int: &Tensor, dac_bits: u32, act_bits: u32) -> Tensor {
        assert!(dac_bits >= 1, "dac_bits must be positive");
        assert!(
            act_bits >= dac_bits,
            "act_bits {act_bits} < dac_bits {dac_bits}"
        );
        let num_in_slices = act_bits.div_ceil(dac_bits) as usize;
        let p = &self.desc.plan;
        for &a in a_int.data() {
            assert!(
                a >= 0.0 && a == a.round(),
                "bit-serial input must be non-negative integers, got {a}"
            );
        }

        let mut acc: Option<Tensor> = None;
        for j in 0..num_in_slices {
            // Drive each array with input slice `j` (LSB first).
            let sh = dac_bits as usize * j;
            let mask = (1u64 << dac_bits) - 1;
            let line_map = move |a: f32| ((a as u64 >> sh) & mask) as f32;
            let psums = self
                .pipeline
                .crossbar_psums_with(&self.arrays, a_int, &line_map);
            let acc = acc.get_or_insert_with(|| {
                Tensor::zeros(&[psums[0].dim(0), p.out_ch, psums[0].dim(2), psums[0].dim(3)])
            });
            let in_shift = (1u64 << sh) as f32;
            if self.desc.psum_quant {
                // Reference scaling: the MSB slice uses the trained sp.
                let ref_div = (1u64 << (dac_bits as usize * (num_in_slices - 1 - j))) as f32;
                let scales: Vec<f32> = self.desc.psum_scales.iter().map(|s| s / ref_div).collect();
                let dig = AdcDigitizer::new(self.adc, &scales, p);
                if self.desc.digital_splits > 0 {
                    let dig = HybridDigitizer::new(dig, self.desc.digital_splits);
                    self.pipeline.accumulate(&psums, &dig, in_shift, acc);
                } else {
                    self.pipeline.accumulate(&psums, &dig, in_shift, acc);
                }
            } else {
                self.pipeline
                    .accumulate(&psums, &IdealDigitizer, in_shift, acc);
            }
        }
        self.pipeline.finish(acc.expect("at least one input slice"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CimConfig;
    use cq_tensor::conv2d;

    /// Builds a small quantized conv with identity-ish scales.
    fn small_desc(psum_quant: bool) -> QuantizedConv {
        let cfg = CimConfig::tiny(); // 32x32 arrays, w3 a3 p3, 1b cells -> 3 splits
        let (in_ch, out_ch, k) = (7, 5, 3); // 7 channels -> 3/array, 3 row tiles
        let plan = TilingPlan::new(&cfg, in_ch, out_ch, k, k);
        let mut rng = CqRng::new(42);
        let w_int = rng
            .uniform_tensor(&[out_ch, in_ch, k, k], -4.0, 4.0)
            .map(|v| v.floor().clamp(-4.0, 3.0));
        let weight_scales: Vec<f32> = (0..plan.num_row_tiles * out_ch)
            .map(|i| 0.02 + 0.003 * i as f32)
            .collect();
        let psum_scales: Vec<f32> = (0..plan.num_splits * plan.num_row_tiles * out_ch)
            .map(|i| 1.0 + 0.1 * (i % 7) as f32)
            .collect();
        QuantizedConv {
            w_int,
            bit_split: cfg.bit_split(),
            plan,
            stride: 1,
            pad: 1,
            act_scale: 0.05,
            act_format: cfg.act_format(),
            weight_scales,
            psum_scales,
            psum_format: cfg.psum_format(),
            psum_quant,
            digital_splits: 0,
            bias: None,
        }
    }

    /// With the ADC bypassed, the crossbar path must equal an exact
    /// dequantized convolution: y = s_a * conv(a_int, s_w ⊙ w_int).
    #[test]
    fn bypass_adc_equals_reference_conv() {
        let desc = small_desc(false);
        let layer = CrossbarLayer::new(desc.clone());
        let mut rng = CqRng::new(7);
        let a_int = rng.uniform_tensor(&[2, 7, 6, 6], 0.0, 8.0).map(f32::floor);
        let got = layer.forward(&a_int);

        // Reference: scale each weight by its logical column's s_w.
        let p = &desc.plan;
        let mut w_scaled = desc.w_int.clone();
        for oc in 0..p.out_ch {
            for cin in 0..p.in_ch {
                let g = p.row_tile_of_channel(cin);
                let sw = desc.weight_scale(g, oc);
                for ki in 0..p.kh {
                    for kj in 0..p.kw {
                        let i = w_scaled.idx4(oc, cin, ki, kj);
                        w_scaled.data_mut()[i] *= sw;
                    }
                }
            }
        }
        let want = conv2d(&a_int, &w_scaled, 1, 1).scale(desc.act_scale);
        assert!(
            got.allclose(&want, 1e-4),
            "max diff {}",
            got.max_abs_diff(&want)
        );
    }

    /// Bit-split decomposition inside the arrays must be exact: the
    /// shift-and-add of split MACs equals the MAC of the full weight.
    #[test]
    fn shift_add_reconstructs_full_weight_mac() {
        let desc = small_desc(false);
        let layer = CrossbarLayer::new(desc.clone());
        let p = &desc.plan;
        // Drive a single array (g=0, t=0) with an arbitrary patch.
        let mut rng = CqRng::new(3);
        let patch: Vec<f32> = (0..p.rows_used).map(|_| rng.below(8) as f32).collect();
        let currents = layer.arrays()[0].mac(&patch);
        let ns = p.num_splits;
        let kk = p.kh * p.kw;
        for (local_oc, oc) in p.outputs_of_col_tile(0).enumerate() {
            let combined: f32 = (0..ns)
                .map(|s| currents[local_oc * ns + s] * desc.bit_split.shift_weight(s))
                .sum();
            // Full-precision integer MAC over the same channels.
            let mut want = 0.0f32;
            for (c_local, cin) in p.channels_of_row_tile(0).enumerate() {
                for ki in 0..p.kh {
                    for kj in 0..p.kw {
                        want += patch[c_local * kk + ki * p.kw + kj]
                            * desc.w_int.data()[desc.w_int.idx4(oc, cin, ki, kj)];
                    }
                }
            }
            assert_eq!(combined, want, "oc {oc}");
        }
    }

    /// ADC clipping must saturate extreme partial sums.
    #[test]
    fn adc_path_clamps_to_range() {
        let mut desc = small_desc(true);
        // Absurdly small psum scales force every column into saturation.
        desc.psum_scales.iter_mut().for_each(|s| *s = 1e-3);
        let layer = CrossbarLayer::new(desc.clone());
        let a_int = Tensor::full(&[1, 7, 5, 5], 7.0);
        let y = layer.forward(&a_int);
        // Every quantized psum is ±Qn/Qp; output stays finite and small.
        assert!(
            y.max_abs() < 1.0,
            "saturated output should be tiny, got {}",
            y.max_abs()
        );
    }

    #[test]
    fn variation_perturbs_output_monotonically_in_expectation() {
        let desc = small_desc(true);
        let clean = CrossbarLayer::new(desc.clone());
        let mut rng = CqRng::new(11);
        let a_int = rng.uniform_tensor(&[1, 7, 5, 5], 0.0, 8.0).map(f32::floor);
        let y0 = clean.forward(&a_int);
        let mut devs = Vec::new();
        for sigma in [0.05f32, 0.25] {
            let mut sum = 0.0;
            for seed in 0..3u64 {
                let mut noisy = CrossbarLayer::new(desc.clone());
                noisy.apply_variation(sigma, &mut CqRng::new(100 + seed));
                sum += noisy.forward(&a_int).max_abs_diff(&y0);
            }
            devs.push(sum / 3.0);
        }
        assert!(
            devs[1] > devs[0],
            "larger sigma should deviate more: {devs:?}"
        );
        assert!(devs[0] > 0.0);
    }

    /// With the ADC bypassed, bit-serial input execution must reconstruct
    /// the multi-bit result exactly for every DAC width.
    #[test]
    fn bit_serial_exact_without_adc() {
        let desc = small_desc(false);
        let layer = CrossbarLayer::new(desc);
        let mut rng = CqRng::new(17);
        let a_int = rng.uniform_tensor(&[1, 7, 5, 5], 0.0, 8.0).map(f32::floor);
        let full = layer.forward(&a_int);
        for dac_bits in 1..=3u32 {
            let bs = layer.forward_bit_serial(&a_int, dac_bits, 3);
            assert!(
                bs.allclose(&full, 1e-4),
                "dac_bits={dac_bits}: max diff {}",
                bs.max_abs_diff(&full)
            );
        }
    }

    /// With a full-width DAC (single input slice), bit-serial equals the
    /// plain path bit for bit, ADC included.
    #[test]
    fn bit_serial_full_width_matches_plain_path() {
        let desc = small_desc(true);
        let layer = CrossbarLayer::new(desc);
        let mut rng = CqRng::new(19);
        let a_int = rng.uniform_tensor(&[1, 7, 5, 5], 0.0, 8.0).map(f32::floor);
        let plain = layer.forward(&a_int);
        let serial = layer.forward_bit_serial(&a_int, 3, 3);
        assert_eq!(plain, serial);
    }

    /// Narrow-DAC execution with live ADCs quantizes each input slice
    /// separately — output differs from the wide-DAC path but remains
    /// strongly correlated.
    #[test]
    fn bit_serial_with_adc_stays_correlated() {
        let desc = small_desc(true);
        let layer = CrossbarLayer::new(desc);
        let mut rng = CqRng::new(23);
        let a_int = rng.uniform_tensor(&[1, 7, 5, 5], 0.0, 8.0).map(f32::floor);
        let wide = layer.forward(&a_int);
        let serial = layer.forward_bit_serial(&a_int, 1, 3);
        assert_ne!(wide, serial);
        let cos =
            wide.mul(&serial).sum() / (wide.sq_sum().sqrt() * serial.sq_sum().sqrt()).max(1e-9);
        assert!(cos > 0.6, "bit-serial output decorrelated: {cos}");
    }

    #[test]
    fn programmed_cells_counted() {
        let desc = small_desc(false);
        let layer = CrossbarLayer::new(desc);
        assert!(layer.programmed_cells() > 0);
        assert_eq!(layer.arrays().len(), 3); // 3 row tiles x 1 col tile
    }

    #[test]
    #[should_panic(expected = "weight scale table")]
    fn bad_scale_table_panics() {
        let mut desc = small_desc(false);
        desc.weight_scales.pop();
        let _ = CrossbarLayer::new(desc);
    }

    #[test]
    #[should_panic(expected = "non-positive psum scale")]
    fn zero_psum_scale_rejected() {
        let mut desc = small_desc(true);
        desc.psum_scales[3] = 0.0;
        desc.validate();
    }

    #[test]
    #[should_panic(expected = "non-positive psum scale")]
    fn negative_psum_scale_rejected() {
        let mut desc = small_desc(true);
        desc.psum_scales[0] = -0.5;
        desc.validate();
    }

    /// With psum quantization off the scale table is ignored entirely, so
    /// a bogus table must not be rejected.
    #[test]
    fn psum_scales_unchecked_when_quant_disabled() {
        let mut desc = small_desc(false);
        desc.psum_scales.iter_mut().for_each(|s| *s = -1.0);
        desc.validate();
    }

    #[test]
    #[should_panic(expected = "non-finite weight")]
    fn nan_weight_rejected() {
        let mut desc = small_desc(false);
        desc.w_int.data_mut()[5] = f32::NAN;
        desc.validate();
    }

    #[test]
    #[should_panic(expected = "non-finite weight")]
    fn infinite_weight_rejected() {
        let mut desc = small_desc(false);
        desc.w_int.data_mut()[0] = f32::INFINITY;
        desc.validate();
    }

    #[test]
    #[should_panic(expected = "non-integral weight")]
    fn fractional_weight_rejected() {
        let mut desc = small_desc(false);
        desc.w_int.data_mut()[1] = 0.5;
        desc.validate();
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oversized_weight_rejected() {
        let mut desc = small_desc(false);
        desc.w_int.data_mut()[2] = 4.0; // 3b signed range is [-4, 3]
        desc.validate();
    }
}
