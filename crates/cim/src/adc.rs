//! Behavioural ADC: digitizes an analog partial sum against a reference
//! derived from the column's scale factor (paper Sec. II-A: "the reference
//! voltage for each ADC, Vref, is set by the scale factor corresponding to
//! its input partial-sums").

use cq_quant::QuantFormat;

/// An ADC with a fixed resolution/format.
///
/// Conversion is `round(clamp(analog / scale, -Qn, Qp))` — identical to the
/// LSQ integer grid, so the hardware path and the training-time emulation
/// quantize partial sums bit-identically. A 1-bit (binary) format converts
/// to the sign, the near-ADC-less regime of the paper's references \[8\]/\[9\].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Adc {
    format: QuantFormat,
}

impl Adc {
    /// Creates an ADC with the given output format.
    pub fn new(format: QuantFormat) -> Self {
        Self { format }
    }

    /// The output format.
    pub fn format(&self) -> QuantFormat {
        self.format
    }

    /// Digitizes one analog value against a scale (Vref) and returns the
    /// integer code as `f32`.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not positive.
    pub fn convert(&self, analog: f32, scale: f32) -> f32 {
        assert!(scale > 0.0, "ADC scale must be positive, got {scale}");
        let vs = analog / scale;
        if self.format.is_binary() {
            if vs >= 0.0 {
                1.0
            } else {
                -1.0
            }
        } else {
            vs.clamp(-self.format.qn(), self.format.qp()).round()
        }
    }
}

/// First-order energy/area model for SAR-style ADCs and the surrounding
/// periphery. Constants are ISAAC-flavoured ballparks; the model feeds the
/// cost *reports* only, never an accuracy result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdcCostModel {
    /// Energy per conversion of a 1-bit ADC, femtojoules. Energy scales as
    /// `2^bits`.
    pub energy_fj_1b: f64,
    /// Area of a 1-bit ADC, µm². Area scales as `2^bits`.
    pub area_um2_1b: f64,
}

impl Default for AdcCostModel {
    fn default() -> Self {
        Self {
            energy_fj_1b: 2.0,
            area_um2_1b: 30.0,
        }
    }
}

impl AdcCostModel {
    /// Energy of one conversion at the given resolution, femtojoules.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=16` — `QuantFormat` caps every
    /// partial-sum format at 16 bits, so an out-of-range resolution is a
    /// caller bug; silently clamping would under-report the cost.
    pub fn energy_fj(&self, bits: u32) -> f64 {
        assert_adc_bits(bits);
        self.energy_fj_1b * f64::from(1u32 << bits) / 2.0
    }

    /// Area of one ADC at the given resolution, µm².
    ///
    /// # Panics
    ///
    /// Panics if `bits` is outside `1..=16` (see
    /// [`AdcCostModel::energy_fj`]).
    pub fn area_um2(&self, bits: u32) -> f64 {
        assert_adc_bits(bits);
        self.area_um2_1b * f64::from(1u32 << bits) / 2.0
    }
}

fn assert_adc_bits(bits: u32) {
    assert!(
        (1..=16).contains(&bits),
        "ADC resolution {bits}b outside the supported 1..=16 range"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convert_rounds_and_clamps() {
        let adc = Adc::new(QuantFormat::signed(3));
        assert_eq!(adc.convert(0.9, 1.0), 1.0);
        assert_eq!(adc.convert(0.4, 1.0), 0.0);
        assert_eq!(adc.convert(100.0, 1.0), 3.0);
        assert_eq!(adc.convert(-100.0, 1.0), -4.0);
        // Scale acts as Vref: halving the scale doubles the code.
        assert_eq!(adc.convert(1.0, 0.5), 2.0);
    }

    #[test]
    fn binary_adc_is_sign_detector() {
        let adc = Adc::new(QuantFormat::signed(1));
        assert_eq!(adc.convert(0.01, 1.0), 1.0);
        assert_eq!(adc.convert(-0.01, 1.0), -1.0);
        assert_eq!(adc.convert(0.0, 1.0), 1.0);
    }

    #[test]
    fn matches_lsq_integer_grid() {
        use cq_quant::{GroupLayout, LsqQuantizer};
        use cq_tensor::Tensor;
        let fmt = QuantFormat::signed(4);
        let adc = Adc::new(fmt);
        let mut q = LsqQuantizer::new(fmt, 1);
        q.set_scales(&[0.37]);
        let vals: Vec<f32> = (-40..40).map(|i| i as f32 * 0.31).collect();
        let t = Tensor::from_vec(vals.clone(), &[vals.len()]);
        let viq = q.forward_int(&t, &GroupLayout::single());
        for (i, &v) in vals.iter().enumerate() {
            assert_eq!(
                adc.convert(v, 0.37),
                viq.data()[i],
                "ADC and LSQ disagree at {v}"
            );
        }
    }

    #[test]
    fn energy_doubles_per_bit() {
        let m = AdcCostModel::default();
        assert_eq!(m.energy_fj(1), 2.0);
        assert_eq!(m.energy_fj(2), 4.0);
        assert_eq!(m.energy_fj(8), 256.0);
        assert!(m.area_um2(3) > m.area_um2(2));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn nonpositive_scale_panics() {
        Adc::new(QuantFormat::signed(3)).convert(1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "outside the supported")]
    fn oversized_resolution_cost_panics() {
        let _ = AdcCostModel::default().energy_fj(17);
    }

    #[test]
    #[should_panic(expected = "outside the supported")]
    fn zero_resolution_area_panics() {
        let _ = AdcCostModel::default().area_um2(0);
    }
}
