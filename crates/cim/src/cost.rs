//! Per-layer cost accounting: arrays, cells, ADC conversions, dequantization
//! multiplications, and first-order energy. Reporting only — none of these
//! numbers feed back into accuracy.

use crate::{dequant_mults, AdcCostModel, CimConfig, TilingPlan};
use cq_quant::Granularity;

/// Cost summary of one convolution layer mapped onto a CIM macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerCost {
    /// Arrays used (row tiles × column tiles).
    pub arrays: usize,
    /// Memory cells occupied (including per-split columns).
    pub cells: usize,
    /// ADC conversions needed per output pixel (one per physical column).
    pub adc_conversions_per_pixel: usize,
    /// Dequantization multiplications per layer (paper Fig. 8 x-axis).
    pub dequant_mults: usize,
    /// ADC energy per output pixel, picojoules.
    pub adc_energy_pj_per_pixel: f64,
    /// Fraction of array rows used by the kernel-intact tiling.
    pub row_utilization: f64,
}

/// Computes the cost of a layer under a weight/psum granularity pair.
pub fn layer_cost(
    plan: &TilingPlan,
    cfg: &CimConfig,
    w_gran: Granularity,
    p_gran: Granularity,
) -> LayerCost {
    let model = AdcCostModel::default();
    let physical_columns = plan.num_splits * plan.num_row_tiles * plan.out_ch;
    LayerCost {
        arrays: plan.num_arrays(),
        cells: plan.rows_used * physical_columns / plan.num_row_tiles * plan.num_row_tiles,
        adc_conversions_per_pixel: physical_columns,
        dequant_mults: dequant_mults(plan, w_gran, p_gran),
        adc_energy_pj_per_pixel: physical_columns as f64 * model.energy_fj(cfg.psum_bits) / 1000.0,
        row_utilization: plan.row_utilization(cfg),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Granularity::{Column, Layer};

    #[test]
    fn cost_scales_with_tiling() {
        let cfg = CimConfig::cifar10();
        let small = TilingPlan::new(&cfg, 16, 16, 3, 3);
        let large = TilingPlan::new(&cfg, 64, 64, 3, 3);
        let cs = layer_cost(&small, &cfg, Column, Column);
        let cl = layer_cost(&large, &cfg, Column, Column);
        assert!(cl.arrays > cs.arrays);
        assert!(cl.adc_conversions_per_pixel > cs.adc_conversions_per_pixel);
        assert!(cl.adc_energy_pj_per_pixel > cs.adc_energy_pj_per_pixel);
    }

    #[test]
    fn dequant_matches_overhead_model() {
        let cfg = CimConfig::cifar10();
        let plan = TilingPlan::new(&cfg, 16, 8, 3, 3);
        assert_eq!(layer_cost(&plan, &cfg, Layer, Layer).dequant_mults, 1);
        assert_eq!(
            layer_cost(&plan, &cfg, Column, Column).dequant_mults,
            plan.num_splits * plan.num_row_tiles * plan.out_ch
        );
    }

    #[test]
    fn binary_adc_is_cheapest() {
        let c10 = CimConfig::cifar10(); // 1b ADC
        let c100 = CimConfig::cifar100(); // 3b ADC
        let p10 = TilingPlan::new(&c10, 16, 16, 3, 3);
        let p100 = TilingPlan::new(&c100, 16, 16, 3, 3);
        let e10 = layer_cost(&p10, &c10, Column, Column).adc_energy_pj_per_pixel
            / layer_cost(&p10, &c10, Column, Column).adc_conversions_per_pixel as f64;
        let e100 = layer_cost(&p100, &c100, Column, Column).adc_energy_pj_per_pixel
            / layer_cost(&p100, &c100, Column, Column).adc_conversions_per_pixel as f64;
        assert!(e10 < e100, "per-conversion energy: 1b {e10} vs 3b {e100}");
    }
}
