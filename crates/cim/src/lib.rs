//! # cq-cim
//!
//! The compute-in-memory hardware model underneath the ColumnQuant
//! framework:
//!
//! * [`CimConfig`] — macro geometry and precisions (Table II presets).
//! * [`TilingPlan`] — the paper's kernel-intact array tiling (Sec. III-C)
//!   plus the weight/partial-sum scale-group layouts it induces.
//! * [`Crossbar`] / [`Adc`] — behavioural array and converter models.
//! * [`PsumPipeline`] / [`ColumnDigitizer`] — the **shared execution
//!   layer**: the single implementation of the tile → bit-split →
//!   psum-quantize → shift-add → merged-dequant loop driven by both the
//!   fast emulation (`cq-core`) and the crossbar engine.
//! * [`CrossbarLayer`] — the explicit, column-by-column inference engine,
//!   bit-exact against the fast group-convolution emulation in `cq-core`.
//! * [`PreparedConv`] — the frozen serving executor: weight quantization,
//!   bit-splitting, and grouping done **once** at load, per-call
//!   intermediates checked out of per-worker [`cq_tensor::arena`] pools.
//! * [`BackendSet`] / [`ExecBackend`] (re-exported from `cq_tensor`) —
//!   serving-side backend selection: the psum front-end resolves an
//!   ordered fallback chain of execution backends (scalar reference,
//!   blocked f32, freeze-time repacked `i8×i8→i32` panel kernels over
//!   [`IntGroupedWeights`]) against each layer's capability profile, all
//!   bit-identical where applicable. The legacy [`PsumKernel`] enum
//!   survives as a thin compat constructor.
//! * [`ShardPlan`] — contiguous partitioning of row tiles (or batch rows)
//!   behind the bit-exact sharded execution paths: shards compute
//!   independent partial-sum blocks that are scattered — never re-summed —
//!   back into the canonical layout before the fixed-order accumulation.
//!   Plans are optionally **placement-aware**: each shard can be pinned to
//!   the backend that owns its weights.
//! * [`dequant_mults`] / [`overhead_class`] — the dequantization-overhead
//!   model behind the paper's Fig. 8.
//! * [`apply_lognormal`] — the Eq. (5) memory-cell variation model.
//!
//! ## Example
//!
//! ```
//! use cq_cim::{CimConfig, TilingPlan};
//! use cq_quant::Granularity;
//!
//! let cfg = CimConfig::cifar10();
//! let plan = TilingPlan::new(&cfg, 64, 64, 3, 3);
//! assert_eq!(plan.num_row_tiles, 5); // ceil(64 / floor(128/9))
//! let mults = cq_cim::dequant_mults(&plan, Granularity::Column, Granularity::Column);
//! assert_eq!(mults, 3 * 5 * 64); // n_split · n_array · n_oc
//! ```

#![warn(missing_docs)]

mod adc;
mod config;
mod cost;
mod crossbar;
mod engine;
mod overhead;
mod pipeline;
mod prepared;
mod shard;
mod tiling;
mod variation;

pub use adc::{Adc, AdcCostModel};
pub use config::CimConfig;
pub use cost::{layer_cost, LayerCost};
pub use cq_tensor::{
    backend_instance, BackendError, BackendKind, BackendSet, ConvProfile, ExecBackend, IntPanels,
    PsumKernel, ScalarRef, SimdF32,
};
pub use crossbar::Crossbar;
pub use engine::{CrossbarLayer, QuantizedConv};
pub use overhead::{dequant_mults, overhead_class, stored_scale_factors, OverheadClass};
pub use pipeline::{
    AdcDigitizer, ColumnDigitizer, HybridDigitizer, IdealDigitizer, IntGroupedWeights,
    PerturbedDigitizer, PsumPipeline,
};
pub use prepared::PreparedConv;
pub use shard::ShardPlan;
pub use tiling::TilingPlan;
pub use variation::{apply_lognormal, apply_lognormal_in_place, FIG10_SIGMAS};
