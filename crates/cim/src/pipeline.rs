//! The **shared partial-sum pipeline** — the single implementation of the
//! paper's tile → bit-split → psum-quantize → shift-add → merged-dequant
//! loop (Fig. 3 / Fig. 4(d) / Fig. 5), used by *both* execution paths:
//!
//! * the fast group-convolution emulation (`cq_core::CimConv2d`), whose
//!   front-end produces per-split partial-sum tensors with
//!   [`PsumPipeline::grouped_psums`], and
//! * the explicit crossbar engine (`crate::CrossbarLayer`), whose
//!   front-end drives programmed [`Crossbar`] arrays with
//!   [`PsumPipeline::crossbar_psums`].
//!
//! Both front-ends emit the same intermediate representation — one tensor
//! of integer partial sums `[B, G·OC, OH, OW]` per bit-split, channel
//! `g·OC + oc` holding row tile `g`'s contribution to output channel `oc` —
//! and then share [`PsumPipeline::reduce`]: every physical column is
//! digitized by a [`ColumnDigitizer`], shift-and-added across bit-splits,
//! and dequantized with the merged `s_w · s_p` factor. Because the
//! digitize/shift-add/dequant arithmetic is one implementation with one
//! f32 operation order, the two paths agree **bit-exactly** at zero
//! variation (`engine_equivalence` integration tests pin this).
//!
//! Heavy loops are parallelized across `batch × row-tile` work items on the
//! persistent [`cq_tensor::exec`] pool, using the same
//! [`cq_tensor::threads_for`] policy (and `CQ_THREADS` override) as the GEMM
//! kernels; per-task integer scratch comes from the executing worker's
//! [`cq_tensor::arena`].

use crate::{Adc, Crossbar, ShardPlan, TilingPlan};
use cq_quant::BitSplit;
use cq_tensor::{
    arena, conv2d_grouped, conv_out_dim, exec, threads_for, ConvShape, CqRng, ExecBackend,
    PackedPanels, Tensor,
};
use std::ops::Range;

/// One bit-split's grouped weights repacked for the integer kernel: one
/// [`PackedPanels`] per row-tile group, each packing that group's
/// `[OC, c_pa·K·K]` slice. Built once at freeze time by
/// [`PsumPipeline::split_grouped_weights_int`].
#[derive(Debug, Clone)]
pub struct IntGroupedWeights {
    panels: Vec<PackedPanels>,
}

impl IntGroupedWeights {
    /// The per-row-tile packed panel sets.
    pub fn panels(&self) -> &[PackedPanels] {
        &self.panels
    }
}

/// Digitizes one physical column's analog partial sum into its dequantized
/// value `p̂` (the ADC output multiplied back by the column's scale factor,
/// *before* the weight scale and bit-split shift are applied).
///
/// Implementations must be [`Sync`]: the pipeline calls them from scoped
/// worker threads.
pub trait ColumnDigitizer: Sync {
    /// Digitizes the analog current of physical column
    /// (`split`, `row_tile`, `oc`).
    fn digitize(&self, analog: f32, split: usize, row_tile: usize, oc: usize) -> f32;

    /// Digitizes one physical column's contiguous psum block and
    /// accumulates `((digitize(p) · sw) · shift) · gain` into `out` —
    /// the shift-and-add hot loop of [`PsumPipeline::accumulate`].
    ///
    /// The provided body forwards to
    /// [`digitize`](ColumnDigitizer::digitize) per value, but it is
    /// monomorphized per implementor, so that call inlines and the loop
    /// vectorizes: dynamic dispatch happens once per **column**, not
    /// once per value. Overrides must keep the exact multiply order
    /// (digitize, `· sw`, `· shift`, `· gain`) — outputs are pinned
    /// bit-exact across every execution path.
    #[allow(clippy::too_many_arguments)] // mirrors `digitize`'s column coordinates plus the three merged scales
    fn digitize_axpy(
        &self,
        psums: &[f32],
        split: usize,
        row_tile: usize,
        oc: usize,
        sw: f32,
        shift: f32,
        gain: f32,
        out: &mut [f32],
    ) {
        for (yv, &pv) in out.iter_mut().zip(psums) {
            *yv += ((self.digitize(pv, split, row_tile, oc) * sw) * shift) * gain;
        }
    }
}

/// The ideal ADC bypass: partial sums pass through unquantized
/// (infinite-precision converter; the paper's "w/o psum quant" ablation).
#[derive(Debug, Clone, Copy, Default)]
pub struct IdealDigitizer;

impl ColumnDigitizer for IdealDigitizer {
    #[inline]
    fn digitize(&self, analog: f32, _split: usize, _row_tile: usize, _oc: usize) -> f32 {
        analog
    }
}

/// A real [`Adc`] referenced to a dense per-physical-column scale table
/// (`s_p` indexed `[(split · G + row_tile) · OC + oc]`): the column is
/// converted against its scale and immediately dequantized, `p̂ = code · s_p`.
///
/// The ADC's clamp-then-round grid is identical to the LSQ integer grid, so
/// this digitizer reproduces training-time partial-sum quantization
/// bit-exactly at every granularity (the table repeats shared scales).
#[derive(Debug, Clone)]
pub struct AdcDigitizer<'a> {
    adc: Adc,
    scales: &'a [f32],
    num_row_tiles: usize,
    out_ch: usize,
}

impl<'a> AdcDigitizer<'a> {
    /// Creates a digitizer from an ADC and a dense scale table.
    ///
    /// # Panics
    ///
    /// Panics if the table length is not
    /// `num_splits · num_row_tiles · out_ch`.
    pub fn new(adc: Adc, scales: &'a [f32], plan: &TilingPlan) -> Self {
        assert_eq!(
            scales.len(),
            plan.num_splits * plan.num_row_tiles * plan.out_ch,
            "psum scale table length vs plan"
        );
        Self {
            adc,
            scales,
            num_row_tiles: plan.num_row_tiles,
            out_ch: plan.out_ch,
        }
    }
}

impl ColumnDigitizer for AdcDigitizer<'_> {
    #[inline]
    fn digitize(&self, analog: f32, split: usize, row_tile: usize, oc: usize) -> f32 {
        let sp = self.scales[(split * self.num_row_tiles + row_tile) * self.out_ch + oc];
        self.adc.convert(analog, sp) * sp
    }
}

/// Wraps another digitizer with deterministic per-physical-column
/// log-normal read variation: the analog current is multiplied by
/// `e^θ`, `θ ~ N(0, σ)`, before conversion — modelling column-level
/// reference/sense drift (as opposed to the per-cell programming
/// variation of [`Crossbar::apply_variation`]).
#[derive(Debug, Clone)]
pub struct PerturbedDigitizer<D> {
    inner: D,
    factors: Vec<f32>,
    num_row_tiles: usize,
    out_ch: usize,
}

impl<D: ColumnDigitizer> PerturbedDigitizer<D> {
    /// Draws one factor per physical column from `seed`. `sigma == 0`
    /// makes this an exact pass-through to `inner`.
    pub fn new(inner: D, plan: &TilingPlan, sigma: f32, seed: u64) -> Self {
        assert!(sigma >= 0.0, "negative sigma");
        let n = plan.num_splits * plan.num_row_tiles * plan.out_ch;
        let mut rng = CqRng::new(seed);
        let factors = (0..n).map(|_| rng.lognormal_factor(sigma)).collect();
        Self {
            inner,
            factors,
            num_row_tiles: plan.num_row_tiles,
            out_ch: plan.out_ch,
        }
    }
}

impl<D: ColumnDigitizer> ColumnDigitizer for PerturbedDigitizer<D> {
    #[inline]
    fn digitize(&self, analog: f32, split: usize, row_tile: usize, oc: usize) -> f32 {
        let f = self.factors[(split * self.num_row_tiles + row_tile) * self.out_ch + oc];
        self.inner.digitize(analog * f, split, row_tile, oc)
    }
}

/// HCiM-style ADC-less **hybrid digitization**: the `digital_splits`
/// low-order bit-splits (slice indices `0..digital_splits`, shift weights
/// `2^(cb·s)`) bypass the converter entirely — their partial sums are
/// carried digitally, bit-exact — while the high-order splits still go
/// through the wrapped digitizer (typically an [`AdcDigitizer`]).
///
/// `digital_splits == 0` is an exact pass-through to `inner`;
/// `digital_splits == num_splits` degenerates to [`IdealDigitizer`].
#[derive(Debug, Clone)]
pub struct HybridDigitizer<D> {
    inner: D,
    digital_splits: usize,
}

impl<D: ColumnDigitizer> HybridDigitizer<D> {
    /// Wraps `inner`, routing splits `< digital_splits` around it.
    pub fn new(inner: D, digital_splits: usize) -> Self {
        Self {
            inner,
            digital_splits,
        }
    }

    /// Number of low-order splits carried digitally.
    pub fn digital_splits(&self) -> usize {
        self.digital_splits
    }
}

impl<D: ColumnDigitizer> ColumnDigitizer for HybridDigitizer<D> {
    #[inline]
    fn digitize(&self, analog: f32, split: usize, row_tile: usize, oc: usize) -> f32 {
        if split < self.digital_splits {
            analog
        } else {
            self.inner.digitize(analog, split, row_tile, oc)
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn digitize_axpy(
        &self,
        psums: &[f32],
        split: usize,
        row_tile: usize,
        oc: usize,
        sw: f32,
        shift: f32,
        gain: f32,
        out: &mut [f32],
    ) {
        // A whole column belongs to one split, so the branch is taken once
        // per column; both legs keep the pinned multiply order.
        if split < self.digital_splits {
            for (yv, &pv) in out.iter_mut().zip(psums) {
                *yv += ((pv * sw) * shift) * gain;
            }
        } else {
            self.inner
                .digitize_axpy(psums, split, row_tile, oc, sw, shift, gain, out);
        }
    }
}

/// The shared execution layer for one quantized convolution: owns the
/// tiling geometry, the bit-split shifts, and the merged dequantization
/// tables (activation scale, per-logical-column weight scales, bias), and
/// turns per-split partial sums into the layer output (see module docs).
#[derive(Debug, Clone)]
pub struct PsumPipeline {
    plan: TilingPlan,
    bit_split: BitSplit,
    stride: usize,
    pad: usize,
    act_scale: f32,
    weight_scales: Vec<f32>,
    bias: Option<Vec<f32>>,
}

impl PsumPipeline {
    /// Creates a pipeline.
    ///
    /// `weight_scales` is the dense per-logical-column table indexed
    /// `[g · OC + oc]` (layer-/array-wise schemes repeat shared values);
    /// `bias` is per output channel.
    ///
    /// # Panics
    ///
    /// Panics on table-length mismatches or a non-positive activation
    /// scale.
    pub fn new(
        plan: TilingPlan,
        bit_split: BitSplit,
        stride: usize,
        pad: usize,
        act_scale: f32,
        weight_scales: Vec<f32>,
        bias: Option<Vec<f32>>,
    ) -> Self {
        assert_eq!(
            weight_scales.len(),
            plan.num_row_tiles * plan.out_ch,
            "weight scale table length vs plan"
        );
        if let Some(b) = &bias {
            assert_eq!(b.len(), plan.out_ch, "bias length vs plan");
        }
        assert!(act_scale > 0.0, "activation scale must be positive");
        Self {
            plan,
            bit_split,
            stride,
            pad,
            act_scale,
            weight_scales,
            bias,
        }
    }

    /// The tiling plan.
    pub fn plan(&self) -> &TilingPlan {
        &self.plan
    }

    /// Weight scale of logical column (row tile `g`, output channel `oc`).
    #[inline]
    pub fn weight_scale(&self, g: usize, oc: usize) -> f32 {
        self.weight_scales[g * self.plan.out_ch + oc]
    }

    // ---- front-end: tile → bit-split -----------------------------------

    /// Rearranges one bit-split weight slice `[OC, Cin, K, K]` into the
    /// grouped-conv layout `[G·OC, c_pa, K, K]` (group = row tile / CIM
    /// array, Fig. 5 step #2). Padding channels stay zero.
    pub fn group_weight_slice(&self, slice: &Tensor) -> Tensor {
        let p = &self.plan;
        let (oc, kk) = (p.out_ch, p.kh * p.kw);
        let mut wg = Tensor::zeros(&[p.num_row_tiles * oc, p.ch_per_array, p.kh, p.kw]);
        for g in 0..p.num_row_tiles {
            for o in 0..oc {
                for (c_local, cin) in p.channels_of_row_tile(g).enumerate() {
                    let src = (o * p.in_ch + cin) * kk;
                    let dst = ((g * oc + o) * p.ch_per_array + c_local) * kk;
                    wg.data_mut()[dst..dst + kk].copy_from_slice(&slice.data()[src..src + kk]);
                }
            }
        }
        wg
    }

    /// Bit-splits integer weights `[OC, Cin, K, K]` and groups every slice:
    /// the complete tile→bit-split front-end for the fast path.
    pub fn split_grouped_weights(&self, w_int: &Tensor) -> Vec<Tensor> {
        (0..self.plan.num_splits)
            .map(|s| self.group_weight_slice(&self.bit_split.split_tensor(w_int, s)))
            .collect()
    }

    /// The integer sibling of [`PsumPipeline::split_grouped_weights`]:
    /// repacks already-grouped (and possibly variation-transformed) weight
    /// slices into per-row-tile integer panels for
    /// [`PsumPipeline::grouped_psums_int_into`].
    ///
    /// Returns `None` — the cue to stay on the f32 kernels — when any
    /// slice value is not an exact integer in i8 range (device variation),
    /// when activations do not fit i8 (`act_max_abs > 127`), or when the
    /// worst-case column sum `max|w| · act_max_abs · c_pa·K·K` could leave
    /// the 2²⁴ window in which f32 carries integers exactly. Every
    /// unperturbed CIM configuration is orders of magnitude inside these
    /// bounds.
    ///
    /// # Panics
    ///
    /// Panics if `grouped_weights` disagrees with the plan.
    pub fn split_grouped_weights_int(
        &self,
        grouped_weights: &[Tensor],
        act_max_abs: f32,
    ) -> Option<Vec<IntGroupedWeights>> {
        let p = &self.plan;
        assert_eq!(
            grouped_weights.len(),
            p.num_splits,
            "one weight set per split"
        );
        if !(0.0..=127.0).contains(&act_max_abs) {
            return None;
        }
        let cr = p.ch_per_array * p.kh * p.kw;
        let mut max_abs = 0i32;
        let sets = grouped_weights
            .iter()
            .map(|wg| {
                debug_assert_eq!(
                    wg.shape(),
                    &[p.num_row_tiles * p.out_ch, p.ch_per_array, p.kh, p.kw],
                    "grouped weight shape vs plan"
                );
                let panels = (0..p.num_row_tiles)
                    .map(|g| {
                        let rows = g * p.out_ch * cr..(g + 1) * p.out_ch * cr;
                        let packed = PackedPanels::pack(p.out_ch, cr, &wg.data()[rows])?;
                        max_abs = max_abs.max(packed.max_abs());
                        Some(packed)
                    })
                    .collect::<Option<Vec<_>>>()?;
                Some(IntGroupedWeights { panels })
            })
            .collect::<Option<Vec<_>>>()?;
        let bound = max_abs as f64 * act_max_abs as f64 * cr as f64;
        (bound < (1u64 << 24) as f64).then_some(sets)
    }

    /// Computes every split's integer partial sums `[B, G·OC, OH, OW]` by
    /// group convolution over channel-padded integer activations — the
    /// fast emulation front-end (Fig. 5 step #3). `grouped_weights` comes
    /// from [`PsumPipeline::split_grouped_weights`] (possibly with
    /// variation applied to the slices first).
    pub fn grouped_psums(&self, a_pad: &Tensor, grouped_weights: &[Tensor]) -> Vec<Tensor> {
        assert_eq!(
            grouped_weights.len(),
            self.plan.num_splits,
            "one weight set per split"
        );
        grouped_weights
            .iter()
            .map(|wg| conv2d_grouped(a_pad, wg, self.stride, self.pad, self.plan.num_row_tiles))
            .collect()
    }

    /// Like [`PsumPipeline::grouped_psums`] but reusing caller-provided
    /// partial-sum tensors and an im2col scratch buffer — the prepared
    /// serving path calls this on every batch without reallocating the
    /// (large) per-split intermediates — and running the sweep on an
    /// execution `backend`'s f32 conv kernel. Bit-identical to
    /// [`PsumPipeline::grouped_psums`] for every backend.
    ///
    /// # Panics
    ///
    /// Panics if `grouped_weights` disagrees with the plan.
    pub fn grouped_psums_into(
        &self,
        backend: &dyn ExecBackend,
        a_pad: &Tensor,
        grouped_weights: &[Tensor],
        psums: &mut Vec<Tensor>,
        col: &mut Vec<f32>,
    ) {
        assert_eq!(
            grouped_weights.len(),
            self.plan.num_splits,
            "one weight set per split"
        );
        let shape = self.psum_shape(a_pad, self.plan.num_row_tiles);
        psums.resize_with(self.plan.num_splits, || Tensor::zeros(&shape));
        for (wg, ps) in grouped_weights.iter().zip(psums.iter_mut()) {
            backend.conv_grouped_into(
                a_pad,
                wg,
                self.stride,
                self.pad,
                self.plan.num_row_tiles,
                ps,
                col,
            );
            debug_assert_eq!(ps.shape(), shape, "per-split psum shape vs plan");
        }
    }

    /// Final `[B, groups·OC, OH, OW]` per-split psum shape for an
    /// activation tensor covering `groups` row tiles — so resized psum
    /// tensors are allocated at their final shape directly instead of
    /// through a placeholder.
    fn psum_shape(&self, a: &Tensor, groups: usize) -> [usize; 4] {
        let (b, h, w) = (a.dim(0), a.dim(2), a.dim(3));
        [
            b,
            groups * self.plan.out_ch,
            conv_out_dim(h, self.plan.kh, self.stride, self.pad),
            conv_out_dim(w, self.plan.kw, self.stride, self.pad),
        ]
    }

    /// The integer twin of [`PsumPipeline::grouped_psums_into`], also
    /// covering the shard case of
    /// [`PsumPipeline::grouped_psums_shard_into`]: computes the partial
    /// sums of row tiles `tiles` from activations `a` (`[B, len·c_pa, H,
    /// W]` — the full padded tensor when `tiles` spans the plan, or a
    /// [`PsumPipeline::slice_padded_row_tiles`] block) with the
    /// `i8×i8→i32` panel kernels, writing exact `i32→f32` conversions
    /// into `psums`.
    ///
    /// The im2col patch matrix is built **once per (image, row tile)** in
    /// i8, widened once, and reused across every bit-split's GEMM — the
    /// f32 path re-runs im2col per split — and work is parallelized
    /// across `batch × row-tile` items like
    /// [`PsumPipeline::crossbar_psums`]. Output values are bit-identical
    /// to the f32 path (psums are exact integers inside f32's mantissa;
    /// the `engine_equivalence` tests pin the whole matrix).
    ///
    /// The integer chain (i8 im2col → widen → panel GEMM → i32→f32
    /// epilogue) is routed through `backend`'s trait methods, so an
    /// integer-capable backend owns every arithmetic step of its sweep.
    ///
    /// # Panics
    ///
    /// Panics if `int_weights`, `tiles`, or the activation shape disagree
    /// with the plan.
    pub fn grouped_psums_int_into(
        &self,
        backend: &dyn ExecBackend,
        a: &Tensor,
        int_weights: &[IntGroupedWeights],
        tiles: Range<usize>,
        psums: &mut Vec<Tensor>,
    ) {
        let p = &self.plan;
        assert_eq!(int_weights.len(), p.num_splits, "one weight set per split");
        assert!(
            tiles.start < tiles.end && tiles.end <= p.num_row_tiles,
            "row-tile shard {tiles:?} out of range"
        );
        let groups = tiles.len();
        let shape = self.psum_shape(a, groups);
        psums.resize_with(p.num_splits, || Tensor::zeros(&shape));
        for ps in psums.iter_mut() {
            if ps.shape() != shape {
                *ps = Tensor::zeros(&shape);
            }
        }
        let s = ConvShape::new(
            a.shape(),
            &[groups * p.out_ch, p.ch_per_array, p.kh, p.kw],
            self.stride,
            self.pad,
            groups,
        );
        let (batch, inner) = (shape[0], shape[2] * shape[3]);
        if batch == 0 || inner == 0 {
            return; // nothing to compute; empty tensors are correct
        }
        let (cr, cc) = (s.col_rows(), s.col_cols());
        let in_img = s.in_ch * s.in_h * s.in_w;

        // One work item per (batch element, row tile); each owns the
        // `[OC, inner]` channel block it writes in every split tensor.
        struct Item<'a> {
            bi: usize,
            g: usize,
            chunks: Vec<&'a mut [f32]>,
        }
        let block = p.out_ch * inner;
        let mut per_split: Vec<_> = psums
            .iter_mut()
            .map(|t| t.data_mut().chunks_mut(block))
            .collect();
        let mut items: Vec<Item<'_>> = Vec::with_capacity(batch * groups);
        for bi in 0..batch {
            for g in 0..groups {
                items.push(Item {
                    bi,
                    g,
                    chunks: per_split.iter_mut().map(|it| it.next().unwrap()).collect(),
                });
            }
        }
        let work = items.len() * p.num_splits * p.out_ch * cr * cc;
        let nt = threads_for(work).min(items.len()).max(1);
        let per = items.len().div_ceil(nt);
        exec::scope(|sc| {
            for group in items.chunks_mut(per) {
                sc.spawn(move || {
                    // Integer scratch from the executing worker's arena: the
                    // im2col patch matrix, its i32 widening, and the GEMM
                    // accumulator are recycled across tasks and layers.
                    let mut col = arena::take_i8(cr * cc);
                    let mut b32 = arena::take_i32(cr * cc);
                    let mut acc = arena::take_i32(p.out_ch * cc);
                    for item in group {
                        let img = &a.data()[item.bi * in_img..(item.bi + 1) * in_img];
                        backend.im2col_i8(
                            img,
                            item.g * p.ch_per_array,
                            p.ch_per_array,
                            &s,
                            &mut col,
                        );
                        backend.widen_i8_to_i32(&col, &mut b32);
                        for (iw, chunk) in int_weights.iter().zip(item.chunks.iter_mut()) {
                            acc.fill(0);
                            backend.igemm_into(
                                &iw.panels[tiles.start + item.g],
                                &b32,
                                cc,
                                &mut acc,
                            );
                            backend.accum_to_f32(&acc, chunk);
                        }
                    }
                    arena::put_i8(col);
                    arena::put_i32(b32);
                    arena::put_i32(acc);
                });
            }
        });
    }

    // ---- row-tile sharding: shardable front-end entry points -----------

    /// Slices the grouped-weight rows of row tiles `tiles` out of every
    /// per-split tensor produced by
    /// [`PsumPipeline::split_grouped_weights`]: each returned tensor is the
    /// contiguous `[len·OC, c_pa, K, K]` block of the shard's groups.
    /// Typically called once at freeze time so sharded serving does no
    /// per-call weight copying.
    ///
    /// # Panics
    ///
    /// Panics if `tiles` is out of range or `grouped_weights` disagrees
    /// with the plan.
    pub fn shard_grouped_weights(
        &self,
        grouped_weights: &[Tensor],
        tiles: Range<usize>,
    ) -> Vec<Tensor> {
        let p = &self.plan;
        assert!(
            tiles.start < tiles.end && tiles.end <= p.num_row_tiles,
            "row-tile shard {tiles:?} out of range"
        );
        assert_eq!(
            grouped_weights.len(),
            p.num_splits,
            "one weight set per split"
        );
        grouped_weights
            .iter()
            .map(|wg| wg.slice_outer(tiles.start * p.out_ch, tiles.end * p.out_ch))
            .collect()
    }

    /// Copies the padded-activation channel block of row tiles `tiles` out
    /// of `a_pad` (`[B, G·c_pa, H, W]`) into `out`
    /// (`[B, len·c_pa, H, W]`, reallocated on shape change).
    pub fn slice_padded_row_tiles(&self, a_pad: &Tensor, tiles: Range<usize>, out: &mut Tensor) {
        let p = &self.plan;
        assert!(
            tiles.start < tiles.end && tiles.end <= p.num_row_tiles,
            "row-tile shard {tiles:?} out of range"
        );
        let (b, h, w) = (a_pad.dim(0), a_pad.dim(2), a_pad.dim(3));
        assert_eq!(a_pad.dim(1), p.padded_in_ch, "padded channels vs plan");
        let hw = h * w;
        let (c_shard, c_full) = (tiles.len() * p.ch_per_array, p.padded_in_ch);
        let shape = [b, c_shard, h, w];
        if out.shape() != shape {
            *out = Tensor::zeros(&shape);
        }
        let src0 = tiles.start * p.ch_per_array * hw;
        for bi in 0..b {
            out.data_mut()[bi * c_shard * hw..(bi + 1) * c_shard * hw]
                .copy_from_slice(&a_pad.data()[bi * c_full * hw + src0..][..c_shard * hw]);
        }
    }

    /// Computes the integer partial sums of row tiles `tiles` **only**
    /// (`[B, len·OC, OH, OW]` per split, written into `psums`), from the
    /// pre-sliced shard activations and weights, on the f32 conv kernel of
    /// the shard's assigned `backend`. Group convolutions treat groups
    /// independently, so every value is bit-identical to the corresponding
    /// channel block of [`PsumPipeline::grouped_psums`].
    pub fn grouped_psums_shard_into(
        &self,
        backend: &dyn ExecBackend,
        a_shard: &Tensor,
        shard_weights: &[Tensor],
        tiles: Range<usize>,
        psums: &mut Vec<Tensor>,
        col: &mut Vec<f32>,
    ) {
        assert_eq!(
            shard_weights.len(),
            self.plan.num_splits,
            "one weight set per split"
        );
        let shape = self.psum_shape(a_shard, tiles.len());
        psums.resize_with(self.plan.num_splits, || Tensor::zeros(&shape));
        for (wg, ps) in shard_weights.iter().zip(psums.iter_mut()) {
            backend.conv_grouped_into(a_shard, wg, self.stride, self.pad, tiles.len(), ps, col);
            debug_assert_eq!(ps.shape(), shape, "per-split shard psum shape vs plan");
        }
    }

    /// Scatters one shard's partial sums back into the full per-split
    /// tensors — the **bit-exact rejoin**: shard contributions are copied
    /// (never re-summed) into their canonical channel blocks, so the
    /// subsequent [`PsumPipeline::accumulate`] runs in exactly the
    /// unsharded operation order regardless of shard count.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the plan or `tiles`.
    pub fn scatter_psum_shard(
        &self,
        shard_psums: &[Tensor],
        tiles: Range<usize>,
        psums: &mut [Tensor],
    ) {
        let p = &self.plan;
        assert_eq!(shard_psums.len(), p.num_splits, "one psum tensor per split");
        assert_eq!(psums.len(), p.num_splits, "one psum tensor per split");
        for (sp, full) in shard_psums.iter().zip(psums.iter_mut()) {
            let (b, oh, ow) = (sp.dim(0), sp.dim(2), sp.dim(3));
            assert_eq!(sp.dim(1), tiles.len() * p.out_ch, "shard channels vs tiles");
            assert_eq!(
                full.shape(),
                &[b, p.num_row_tiles * p.out_ch, oh, ow],
                "full psum shape vs plan"
            );
            let inner = oh * ow;
            let (blk, full_blk) = (
                tiles.len() * p.out_ch * inner,
                p.num_row_tiles * p.out_ch * inner,
            );
            let dst0 = tiles.start * p.out_ch * inner;
            for bi in 0..b {
                full.data_mut()[bi * full_blk + dst0..][..blk]
                    .copy_from_slice(&sp.data()[bi * blk..(bi + 1) * blk]);
            }
        }
    }

    /// Pre-computes the per-shard weight slices of a row-tile [`ShardPlan`]
    /// (outer index: shard; inner: split).
    pub fn shard_weight_sets(
        &self,
        grouped_weights: &[Tensor],
        plan: &ShardPlan,
    ) -> Vec<Vec<Tensor>> {
        assert_eq!(
            plan.num_items(),
            self.plan.num_row_tiles,
            "shard plan vs row tiles"
        );
        plan.iter()
            .map(|tiles| self.shard_grouped_weights(grouped_weights, tiles))
            .collect()
    }

    /// Computes every split's integer partial sums `[B, G·OC, OH, OW]` by
    /// driving im2col patches through programmed crossbar arrays (indexed
    /// `[g · num_col_tiles + t]`) — the hardware-shaped front-end.
    ///
    /// Work is parallelized across `batch × row-tile` items: each item
    /// drives one row tile's arrays over all pixels of one image and owns
    /// a disjoint channel block of every split's output tensor.
    ///
    /// # Panics
    ///
    /// Panics if the input shape or array count mismatches the plan.
    pub fn crossbar_psums(&self, arrays: &[Crossbar], a_int: &Tensor) -> Vec<Tensor> {
        self.crossbar_psums_with(arrays, a_int, &|a| a)
    }

    /// Like [`PsumPipeline::crossbar_psums`] with a wordline transform:
    /// every activation is mapped through `line_map` before driving the
    /// arrays (bit-serial input execution drives one DAC-width slice of
    /// the activation at a time).
    pub fn crossbar_psums_with(
        &self,
        arrays: &[Crossbar],
        a_int: &Tensor,
        line_map: &(dyn Fn(f32) -> f32 + Sync),
    ) -> Vec<Tensor> {
        let p = &self.plan;
        assert_eq!(a_int.rank(), 4, "input must be [B,C,H,W]");
        assert_eq!(a_int.dim(1), p.in_ch, "input channels vs plan");
        assert_eq!(arrays.len(), p.num_arrays(), "array count vs plan");
        let (batch, h, w) = (a_int.dim(0), a_int.dim(2), a_int.dim(3));
        let oh = conv_out_dim(h, p.kh, self.stride, self.pad);
        let ow = conv_out_dim(w, p.kw, self.stride, self.pad);
        let inner = oh * ow;
        let gch = p.num_row_tiles * p.out_ch;
        let mut psums: Vec<Tensor> = (0..p.num_splits)
            .map(|_| Tensor::zeros(&[batch, gch, oh, ow]))
            .collect();
        if batch == 0 || inner == 0 {
            return psums; // nothing to drive; empty tensors are correct
        }

        // One work item per (batch element, row tile); each owns the
        // `[oc, inner]` channel block it writes in every split tensor.
        struct Item<'a> {
            bi: usize,
            g: usize,
            chunks: Vec<&'a mut [f32]>,
        }
        {
            let block = p.out_ch * inner;
            let mut per_split: Vec<_> = psums
                .iter_mut()
                .map(|t| t.data_mut().chunks_mut(block))
                .collect();
            let mut items: Vec<Item<'_>> = Vec::with_capacity(batch * p.num_row_tiles);
            for bi in 0..batch {
                for g in 0..p.num_row_tiles {
                    items.push(Item {
                        bi,
                        g,
                        chunks: per_split.iter_mut().map(|it| it.next().unwrap()).collect(),
                    });
                }
            }
            // MAC work per item: pixels × (rows driven × columns read).
            let cols_per_tile: usize = (0..p.num_col_tiles).map(|t| arrays[t].cols()).sum();
            let work = items.len() * inner * p.rows_used * cols_per_tile;
            let nt = threads_for(work).min(items.len()).max(1);
            let per = items.len().div_ceil(nt);
            exec::scope(|sc| {
                for group in items.chunks_mut(per) {
                    sc.spawn(move || {
                        let mut patch = arena::take_f32_zeroed(p.rows_used);
                        for item in group {
                            self.drive_row_tile(
                                arrays,
                                a_int,
                                line_map,
                                item.bi,
                                item.g,
                                oh,
                                ow,
                                &mut patch,
                                &mut item.chunks,
                            );
                        }
                        arena::put_f32(patch);
                    });
                }
            });
        }
        psums
    }

    /// Drives one (batch element, row tile) work item: im2col patches
    /// through the row tile's arrays, scattering every physical column's
    /// current into its split's `[oc, inner]` block.
    #[allow(clippy::too_many_arguments)]
    fn drive_row_tile(
        &self,
        arrays: &[Crossbar],
        a_int: &Tensor,
        line_map: &(dyn Fn(f32) -> f32 + Sync),
        bi: usize,
        g: usize,
        oh: usize,
        ow: usize,
        patch: &mut [f32],
        chunks: &mut [&mut [f32]],
    ) {
        let p = &self.plan;
        let (h, w) = (a_int.dim(2), a_int.dim(3));
        let (ns, kk, inner) = (p.num_splits, p.kh * p.kw, oh * ow);
        let chans = p.channels_of_row_tile(g);
        let mut macs: Vec<Vec<f32>> = (0..p.num_col_tiles)
            .map(|t| vec![0.0f32; arrays[g * p.num_col_tiles + t].cols()])
            .collect();
        for ohi in 0..oh {
            for owi in 0..ow {
                patch.fill(0.0);
                for (c_local, cin) in chans.clone().enumerate() {
                    for ki in 0..p.kh {
                        for kj in 0..p.kw {
                            let ih = (ohi * self.stride + ki) as isize - self.pad as isize;
                            let iw = (owi * self.stride + kj) as isize - self.pad as isize;
                            if ih < 0 || iw < 0 || ih as usize >= h || iw as usize >= w {
                                continue;
                            }
                            let a = a_int.data()[a_int.idx4(bi, cin, ih as usize, iw as usize)];
                            patch[c_local * kk + ki * p.kw + kj] = line_map(a);
                        }
                    }
                }
                let pix = ohi * ow + owi;
                for (t, mac) in macs.iter_mut().enumerate() {
                    arrays[g * p.num_col_tiles + t].mac_into(patch, mac);
                    for (local_oc, oc) in p.outputs_of_col_tile(t).enumerate() {
                        for (s, chunk) in chunks.iter_mut().enumerate() {
                            chunk[oc * inner + pix] = mac[local_oc * ns + s];
                        }
                    }
                }
            }
        }
    }

    // ---- shared back-end: digitize → shift-add → merged dequant --------

    /// The complete back-end: digitizes every physical column of the
    /// per-split partial sums, shift-and-adds across bit-splits and row
    /// tiles with the merged `s_w · s_p` dequantization, applies the
    /// activation scale and bias, and returns the output `[B, OC, OH, OW]`.
    ///
    /// # Panics
    ///
    /// Panics if `psums` disagrees with the plan.
    pub fn reduce(&self, psums: &[Tensor], digitizer: &dyn ColumnDigitizer) -> Tensor {
        let (batch, oh, ow) = (psums[0].dim(0), psums[0].dim(2), psums[0].dim(3));
        let mut acc = Tensor::zeros(&[batch, self.plan.out_ch, oh, ow]);
        self.accumulate(psums, digitizer, 1.0, &mut acc);
        self.finish(acc)
    }

    /// Accumulates `gain · Σ_{s,g} digitize(p[s,g,oc]) · s_w · 2^(cb·s)`
    /// into `out` (no activation scale or bias — see
    /// [`PsumPipeline::finish`]). `gain` is 1 for plain execution and the
    /// input-slice shift for bit-serial execution.
    ///
    /// Per output element the f32 accumulation order is fixed — split
    /// outer, row tile inner — regardless of thread count: work splits
    /// across batch elements only, so results are deterministic and the
    /// fast and crossbar paths agree bit-exactly.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree with the plan.
    pub fn accumulate(
        &self,
        psums: &[Tensor],
        digitizer: &dyn ColumnDigitizer,
        gain: f32,
        out: &mut Tensor,
    ) {
        let p = &self.plan;
        assert_eq!(psums.len(), p.num_splits, "one psum tensor per split");
        let (batch, oh, ow) = (psums[0].dim(0), psums[0].dim(2), psums[0].dim(3));
        let gch = p.num_row_tiles * p.out_ch;
        for ps in psums {
            assert_eq!(ps.shape(), &[batch, gch, oh, ow], "psum shape vs plan");
        }
        assert_eq!(
            out.shape(),
            &[batch, p.out_ch, oh, ow],
            "output shape vs plan"
        );
        let inner = oh * ow;
        let block = p.out_ch * inner;
        if batch == 0 || inner == 0 {
            return; // nothing to accumulate
        }
        let work = batch * p.num_splits * gch * inner;
        let nt = threads_for(work).min(batch).max(1);
        let per = batch.div_ceil(nt);
        exec::scope(|sc| {
            for (chunk_i, out_chunk) in out.data_mut().chunks_mut(per * block).enumerate() {
                sc.spawn(move || {
                    let b0 = chunk_i * per;
                    for (bl, ob) in out_chunk.chunks_mut(block).enumerate() {
                        self.accumulate_one(psums, digitizer, gain, b0 + bl, inner, ob);
                    }
                });
            }
        });
    }

    /// Shift-and-add for one batch element into its `[OC, inner]` block.
    fn accumulate_one(
        &self,
        psums: &[Tensor],
        digitizer: &dyn ColumnDigitizer,
        gain: f32,
        bi: usize,
        inner: usize,
        out: &mut [f32],
    ) {
        let p = &self.plan;
        for (s, ps) in psums.iter().enumerate() {
            let shift = self.bit_split.shift_weight(s);
            for g in 0..p.num_row_tiles {
                for oc in 0..p.out_ch {
                    let sw = self.weight_scales[g * p.out_ch + oc];
                    let src = ((bi * p.num_row_tiles + g) * p.out_ch + oc) * inner;
                    let pd = &ps.data()[src..src + inner];
                    let ob = &mut out[oc * inner..(oc + 1) * inner];
                    digitizer.digitize_axpy(pd, s, g, oc, sw, shift, gain, ob);
                }
            }
        }
    }

    /// Applies the layer-wise activation scale and the bias to an
    /// accumulated output — the last step of Eq. (3).
    pub fn finish(&self, mut acc: Tensor) -> Tensor {
        acc.scale_in_place(self.act_scale);
        if let Some(bias) = &self.bias {
            let (batch, oc) = (acc.dim(0), acc.dim(1));
            let inner = acc.dim(2) * acc.dim(3);
            for bi in 0..batch {
                for (o, &b) in bias.iter().enumerate().take(oc) {
                    let start = (bi * oc + o) * inner;
                    for v in &mut acc.data_mut()[start..start + inner] {
                        *v += b;
                    }
                }
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CimConfig;
    use cq_quant::QuantFormat;
    use cq_tensor::{IntPanels, SimdF32};

    fn small_pipeline() -> (PsumPipeline, Tensor) {
        let cfg = CimConfig::tiny(); // 32×32, 3 splits
        let (in_ch, out_ch, k) = (7, 5, 3);
        let plan = TilingPlan::new(&cfg, in_ch, out_ch, k, k);
        let mut rng = CqRng::new(3);
        let w_int = rng
            .uniform_tensor(&[out_ch, in_ch, k, k], -4.0, 4.0)
            .map(|v| v.floor().clamp(-4.0, 3.0));
        let weight_scales: Vec<f32> = (0..plan.num_row_tiles * out_ch)
            .map(|i| 0.02 + 0.003 * i as f32)
            .collect();
        let pipeline = PsumPipeline::new(plan, cfg.bit_split(), 1, 1, 0.05, weight_scales, None);
        (pipeline, w_int)
    }

    /// The two front-ends must produce identical integer partial sums:
    /// grouped convolution vs programmed crossbar arrays.
    #[test]
    fn grouped_and_crossbar_psums_agree() {
        let (pl, w_int) = small_pipeline();
        let p = pl.plan().clone();
        let mut rng = CqRng::new(5);
        let a_int = rng
            .uniform_tensor(&[2, p.in_ch, 6, 6], 0.0, 8.0)
            .map(f32::floor);

        // Fast front-end: pad channels, group, convolve.
        let (b, h, w) = (a_int.dim(0), a_int.dim(2), a_int.dim(3));
        let mut a_pad = Tensor::zeros(&[b, p.padded_in_ch, h, w]);
        for bi in 0..b {
            let chw = p.in_ch * h * w;
            let pchw = p.padded_in_ch * h * w;
            a_pad.data_mut()[bi * pchw..bi * pchw + chw]
                .copy_from_slice(&a_int.data()[bi * chw..(bi + 1) * chw]);
        }
        let fast = pl.grouped_psums(&a_pad, &pl.split_grouped_weights(&w_int));

        // Hardware front-end: program arrays column by column.
        let kk = p.kh * p.kw;
        let mut arrays = Vec::new();
        for g in 0..p.num_row_tiles {
            let chans = p.channels_of_row_tile(g);
            for t in 0..p.num_col_tiles {
                let ocs = p.outputs_of_col_tile(t);
                let mut xb = Crossbar::new(p.rows_used, ocs.len() * p.num_splits);
                for (local_oc, oc) in ocs.clone().enumerate() {
                    for s in 0..p.num_splits {
                        for (c_local, cin) in chans.clone().enumerate() {
                            for ki in 0..p.kh {
                                for kj in 0..p.kw {
                                    let wv = w_int.data()[w_int.idx4(oc, cin, ki, kj)];
                                    let v = pl.bit_split.split_value(wv as i32, s) as f32;
                                    xb.program(
                                        c_local * kk + ki * p.kw + kj,
                                        local_oc * p.num_splits + s,
                                        v,
                                    );
                                }
                            }
                        }
                    }
                }
                arrays.push(xb);
            }
        }
        let slow = pl.crossbar_psums(&arrays, &a_int);

        assert_eq!(fast.len(), slow.len());
        for (s, (f, sl)) in fast.iter().zip(&slow).enumerate() {
            assert_eq!(f, sl, "split {s} psums differ");
        }
    }

    /// The scratch-reusing front-end must match the allocating one
    /// bit-for-bit, even on dirty reused buffers.
    #[test]
    fn grouped_psums_into_matches_allocating_path() {
        let (pl, w_int) = small_pipeline();
        let p = pl.plan().clone();
        let mut rng = CqRng::new(23);
        let a_int = rng
            .uniform_tensor(&[2, p.in_ch, 6, 6], 0.0, 8.0)
            .map(f32::floor);
        let mut a_pad = Tensor::zeros(&[2, p.padded_in_ch, 6, 6]);
        let chw = p.in_ch * 36;
        let pchw = p.padded_in_ch * 36;
        for bi in 0..2 {
            a_pad.data_mut()[bi * pchw..bi * pchw + chw]
                .copy_from_slice(&a_int.data()[bi * chw..(bi + 1) * chw]);
        }
        let weights = pl.split_grouped_weights(&w_int);
        let want = pl.grouped_psums(&a_pad, &weights);
        let mut psums = Vec::new();
        let mut col = Vec::new();
        pl.grouped_psums_into(&SimdF32, &a_pad, &weights, &mut psums, &mut col);
        assert_eq!(psums, want);
        // Reuse the (now dirty) scratch.
        pl.grouped_psums_into(&SimdF32, &a_pad, &weights, &mut psums, &mut col);
        assert_eq!(psums, want, "dirty-scratch call diverged");
    }

    /// The integer panel front-end must match the f32 grouped convolution
    /// bit-for-bit, for the full plan and for every row-tile shard, on
    /// dirty reused buffers.
    #[test]
    fn integer_psums_match_f32_path() {
        let (pl, w_int) = small_pipeline();
        let p = pl.plan().clone();
        let mut rng = CqRng::new(29);
        let a_int = rng
            .uniform_tensor(&[2, p.in_ch, 6, 6], 0.0, 8.0)
            .map(f32::floor);
        let mut a_pad = Tensor::zeros(&[2, p.padded_in_ch, 6, 6]);
        let chw = p.in_ch * 36;
        let pchw = p.padded_in_ch * 36;
        for bi in 0..2 {
            a_pad.data_mut()[bi * pchw..bi * pchw + chw]
                .copy_from_slice(&a_int.data()[bi * chw..(bi + 1) * chw]);
        }
        let weights = pl.split_grouped_weights(&w_int);
        let int_weights = pl
            .split_grouped_weights_int(&weights, 7.0)
            .expect("tiny config slices are integer-eligible");
        let want = pl.grouped_psums(&a_pad, &weights);
        let mut psums = Vec::new();
        pl.grouped_psums_int_into(
            &IntPanels,
            &a_pad,
            &int_weights,
            0..p.num_row_tiles,
            &mut psums,
        );
        assert_eq!(psums, want);
        // Dirty reuse must stay identical.
        pl.grouped_psums_int_into(
            &IntPanels,
            &a_pad,
            &int_weights,
            0..p.num_row_tiles,
            &mut psums,
        );
        assert_eq!(psums, want, "dirty-scratch call diverged");
        // Every single-tile shard must equal its channel block.
        let mut a_shard = Tensor::zeros(&[1]);
        for g in 0..p.num_row_tiles {
            pl.slice_padded_row_tiles(&a_pad, g..g + 1, &mut a_shard);
            let mut shard_psums = Vec::new();
            pl.grouped_psums_int_into(
                &IntPanels,
                &a_shard,
                &int_weights,
                g..g + 1,
                &mut shard_psums,
            );
            for (sp, full) in shard_psums.iter().zip(&want) {
                let inner = 36;
                let blk = p.out_ch * inner;
                let full_blk = p.num_row_tiles * p.out_ch * inner;
                for bi in 0..2 {
                    assert_eq!(
                        &sp.data()[bi * blk..(bi + 1) * blk],
                        &full.data()[bi * full_blk + g * blk..bi * full_blk + (g + 1) * blk],
                        "shard {g} psums differ"
                    );
                }
            }
        }
    }

    /// Integer repacking must refuse off-integer slices (the variation
    /// fallback), out-of-range activations, and accumulators that could
    /// leave the f32-exact window.
    #[test]
    fn integer_repack_eligibility_gates() {
        let (pl, w_int) = small_pipeline();
        let weights = pl.split_grouped_weights(&w_int);
        assert!(pl.split_grouped_weights_int(&weights, 7.0).is_some());
        // Variation-style perturbation makes slices off-integer.
        let perturbed: Vec<Tensor> = weights.iter().map(|w| w.scale(1.37)).collect();
        assert!(pl.split_grouped_weights_int(&perturbed, 7.0).is_none());
        // Activations beyond i8 cannot feed the i8 im2col.
        assert!(pl.split_grouped_weights_int(&weights, 255.0).is_none());
        // Integer slices too large for i8 are refused.
        let huge: Vec<Tensor> = weights.iter().map(|w| w.scale(200.0)).collect();
        assert!(pl.split_grouped_weights_int(&huge, 7.0).is_none());
    }

    /// reduce with the ideal digitizer equals the hand-written
    /// shift-add-dequant reference.
    #[test]
    fn reduce_matches_reference() {
        let (pl, w_int) = small_pipeline();
        let p = pl.plan().clone();
        let mut rng = CqRng::new(7);
        let a_int = rng
            .uniform_tensor(&[1, p.in_ch, 5, 5], 0.0, 8.0)
            .map(f32::floor);
        let (h, w) = (5, 5);
        let mut a_pad = Tensor::zeros(&[1, p.padded_in_ch, h, w]);
        a_pad.data_mut()[..p.in_ch * h * w].copy_from_slice(a_int.data());
        let psums = pl.grouped_psums(&a_pad, &pl.split_grouped_weights(&w_int));
        let got = pl.reduce(&psums, &IdealDigitizer);

        let (oh, ow) = (psums[0].dim(2), psums[0].dim(3));
        let inner = oh * ow;
        let mut want = Tensor::zeros(&[1, p.out_ch, oh, ow]);
        for (s, ps) in psums.iter().enumerate() {
            let shift = pl.bit_split.shift_weight(s);
            for g in 0..p.num_row_tiles {
                for oc in 0..p.out_ch {
                    for i in 0..inner {
                        let pv = ps.data()[((g * p.out_ch) + oc) * inner + i];
                        want.data_mut()[oc * inner + i] += (pv * pl.weight_scale(g, oc)) * shift;
                    }
                }
            }
        }
        want.scale_in_place(0.05);
        assert_eq!(got, want);
    }

    /// Adc digitization through the pipeline clamps to the ADC range.
    #[test]
    fn adc_digitizer_saturates() {
        let (pl, w_int) = small_pipeline();
        let p = pl.plan().clone();
        let a_int = Tensor::full(&[1, p.in_ch, 5, 5], 7.0);
        let mut a_pad = Tensor::zeros(&[1, p.padded_in_ch, 5, 5]);
        a_pad.data_mut()[..p.in_ch * 25].copy_from_slice(a_int.data());
        let psums = pl.grouped_psums(&a_pad, &pl.split_grouped_weights(&w_int));
        // Absurdly small scales force saturation everywhere.
        let scales = vec![1e-3f32; p.num_splits * p.num_row_tiles * p.out_ch];
        let adc = Adc::new(QuantFormat::signed(3));
        let dig = AdcDigitizer::new(adc, &scales, &p);
        let y = pl.reduce(&psums, &dig);
        assert!(
            y.max_abs() < 1.0,
            "saturated output should be tiny, got {}",
            y.max_abs()
        );
    }

    /// Zero-sigma perturbation is an exact pass-through; nonzero sigma
    /// perturbs the output deterministically.
    #[test]
    fn perturbed_digitizer_behaviour() {
        let (pl, w_int) = small_pipeline();
        let p = pl.plan().clone();
        let mut rng = CqRng::new(11);
        let a_int = rng
            .uniform_tensor(&[1, p.in_ch, 5, 5], 0.0, 8.0)
            .map(f32::floor);
        let mut a_pad = Tensor::zeros(&[1, p.padded_in_ch, 5, 5]);
        a_pad.data_mut()[..p.in_ch * 25].copy_from_slice(a_int.data());
        let psums = pl.grouped_psums(&a_pad, &pl.split_grouped_weights(&w_int));

        let clean = pl.reduce(&psums, &IdealDigitizer);
        let zero = pl.reduce(
            &psums,
            &PerturbedDigitizer::new(IdealDigitizer, &p, 0.0, 42),
        );
        assert_eq!(clean, zero, "sigma 0 must be exact");
        let noisy1 = pl.reduce(
            &psums,
            &PerturbedDigitizer::new(IdealDigitizer, &p, 0.2, 42),
        );
        let noisy2 = pl.reduce(
            &psums,
            &PerturbedDigitizer::new(IdealDigitizer, &p, 0.2, 42),
        );
        assert_ne!(clean, noisy1, "sigma > 0 must perturb");
        assert_eq!(noisy1, noisy2, "same seed, same perturbation");
    }

    /// Hybrid digitization: `digital_splits == 0` is bit-exact the wrapped
    /// ADC; `digital_splits == num_splits` is bit-exact the ideal bypass;
    /// anything in between converts only the high-order splits.
    #[test]
    fn hybrid_digitizer_interpolates_between_adc_and_ideal() {
        let (pl, w_int) = small_pipeline();
        let p = pl.plan().clone();
        let mut rng = CqRng::new(13);
        let a_int = rng
            .uniform_tensor(&[1, p.in_ch, 5, 5], 0.0, 8.0)
            .map(f32::floor);
        let mut a_pad = Tensor::zeros(&[1, p.padded_in_ch, 5, 5]);
        a_pad.data_mut()[..p.in_ch * 25].copy_from_slice(a_int.data());
        let psums = pl.grouped_psums(&a_pad, &pl.split_grouped_weights(&w_int));
        // Coarse scales so the ADC grid visibly quantizes.
        let scales = vec![0.5f32; p.num_splits * p.num_row_tiles * p.out_ch];
        let adc = Adc::new(QuantFormat::signed(4));
        let make = |ds: usize| HybridDigitizer::new(AdcDigitizer::new(adc, &scales, &p), ds);

        let full_adc = pl.reduce(&psums, &AdcDigitizer::new(adc, &scales, &p));
        let ideal = pl.reduce(&psums, &IdealDigitizer);
        assert_eq!(
            pl.reduce(&psums, &make(0)),
            full_adc,
            "0 digital splits must be the pure-ADC path"
        );
        assert_eq!(
            pl.reduce(&psums, &make(p.num_splits)),
            ideal,
            "all-digital must be the ideal bypass"
        );
        let hybrid = pl.reduce(&psums, &make(1));
        assert_ne!(hybrid, full_adc, "hybrid must skip ADC on low splits");
        assert_ne!(hybrid, ideal, "hybrid must still convert high splits");
        // Per column: the low split passes through, high splits hit the ADC.
        let dig = make(1);
        assert_eq!(dig.digital_splits(), 1);
        assert_eq!(dig.digitize(0.37, 0, 0, 0), 0.37);
        assert_eq!(
            dig.digitize(0.37, 1, 0, 0),
            AdcDigitizer::new(adc, &scales, &p).digitize(0.37, 1, 0, 0)
        );
    }

    /// Bias and activation scale are applied exactly once, in the engine's
    /// operation order.
    #[test]
    fn finish_applies_scale_then_bias() {
        let cfg = CimConfig::tiny();
        let plan = TilingPlan::new(&cfg, 3, 2, 3, 3);
        let ws = vec![1.0; plan.num_row_tiles * 2];
        let pl = PsumPipeline::new(plan, cfg.bit_split(), 1, 1, 0.5, ws, Some(vec![1.0, -2.0]));
        let acc = Tensor::full(&[1, 2, 2, 2], 4.0);
        let y = pl.finish(acc);
        for i in 0..4 {
            assert_eq!(y.data()[i], 4.0 * 0.5 + 1.0);
            assert_eq!(y.data()[4 + i], 4.0 * 0.5 - 2.0);
        }
    }

    /// A batch of zero images must flow through both front-ends and the
    /// reduce without panicking (the parallel work split degrades to a
    /// no-op, like the old per-pixel loops did).
    #[test]
    fn empty_batch_is_a_noop() {
        let (pl, w_int) = small_pipeline();
        let p = pl.plan().clone();
        let a_pad = Tensor::zeros(&[0, p.padded_in_ch, 6, 6]);
        let psums = pl.grouped_psums(&a_pad, &pl.split_grouped_weights(&w_int));
        assert_eq!(psums[0].dim(0), 0);
        let y = pl.reduce(&psums, &IdealDigitizer);
        assert_eq!(y.shape(), &[0, p.out_ch, 6, 6]);
    }

    #[test]
    #[should_panic(expected = "weight scale table")]
    fn bad_weight_table_panics() {
        let cfg = CimConfig::tiny();
        let plan = TilingPlan::new(&cfg, 3, 2, 3, 3);
        let _ = PsumPipeline::new(plan, cfg.bit_split(), 1, 1, 1.0, vec![1.0], None);
    }
}
