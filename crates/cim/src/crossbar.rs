//! A behavioural crossbar array: programmable cells, analog
//! multiply-accumulate along bitlines, and per-cell variation injection.
//!
//! Cell values are the signed integers produced by bit-splitting (the top
//! slice's sign is realized in hardware by a differential pair; the model
//! simply allows negative conductance). Analog currents are represented as
//! exact integers in `f32` — all partial sums in this workspace stay far
//! below the 2²⁴ exactness limit.

use cq_tensor::CqRng;

/// One CIM array of `rows × cols` programmable cells.
#[derive(Debug, Clone, PartialEq)]
pub struct Crossbar {
    rows: usize,
    cols: usize,
    cells: Vec<f32>,
}

impl Crossbar {
    /// Creates an all-zero array.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "empty crossbar {rows}x{cols}");
        Self {
            rows,
            cols,
            cells: vec![0.0; rows * cols],
        }
    }

    /// Number of wordlines.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of bitlines.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Cell value at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn cell(&self, row: usize, col: usize) -> f32 {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row},{col}) out of bounds"
        );
        self.cells[row * self.cols + col]
    }

    /// Programs one cell.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn program(&mut self, row: usize, col: usize, value: f32) {
        assert!(
            row < self.rows && col < self.cols,
            "cell ({row},{col}) out of bounds"
        );
        self.cells[row * self.cols + col] = value;
    }

    /// Programs a column from the top; unspecified rows keep their value.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > rows` or `col` is out of bounds.
    pub fn program_column(&mut self, col: usize, values: &[f32]) {
        assert!(col < self.cols, "column {col} out of bounds");
        assert!(values.len() <= self.rows, "column data longer than array");
        for (r, &v) in values.iter().enumerate() {
            self.cells[r * self.cols + col] = v;
        }
    }

    /// Analog MAC: drives `input` on the wordlines and returns the bitline
    /// currents `out[c] = Σ_r input[r] · cell[r][c]`.
    ///
    /// # Panics
    ///
    /// Panics if `input.len() > rows`.
    pub fn mac(&self, input: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        self.mac_into(input, &mut out);
        out
    }

    /// Like [`Crossbar::mac`] but accumulating into a caller buffer (which
    /// is zeroed first).
    ///
    /// # Panics
    ///
    /// Panics if `input.len() > rows` or `out.len() != cols`.
    pub fn mac_into(&self, input: &[f32], out: &mut [f32]) {
        assert!(input.len() <= self.rows, "input longer than wordlines");
        assert_eq!(out.len(), self.cols, "output buffer size");
        out.fill(0.0);
        for (r, &x) in input.iter().enumerate() {
            if x == 0.0 {
                continue;
            }
            let row = &self.cells[r * self.cols..(r + 1) * self.cols];
            for (o, &c) in out.iter_mut().zip(row) {
                *o += x * c;
            }
        }
    }

    /// Applies log-normal device variation to every programmed (non-zero)
    /// cell: `g ← g · e^θ`, `θ ~ N(0, σ)` (paper Eq. (5)).
    pub fn apply_variation(&mut self, sigma: f32, rng: &mut CqRng) {
        assert!(sigma >= 0.0, "negative sigma");
        if sigma == 0.0 {
            return;
        }
        for c in &mut self.cells {
            if *c != 0.0 {
                *c *= rng.lognormal_factor(sigma);
            }
        }
    }

    /// Number of non-zero (programmed) cells.
    pub fn programmed_cells(&self) -> usize {
        self.cells.iter().filter(|&&c| c != 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mac_is_matrix_vector_product() {
        let mut xb = Crossbar::new(3, 2);
        // cells = [[1, 2], [3, 4], [5, 6]]
        xb.program(0, 0, 1.0);
        xb.program(0, 1, 2.0);
        xb.program(1, 0, 3.0);
        xb.program(1, 1, 4.0);
        xb.program(2, 0, 5.0);
        xb.program(2, 1, 6.0);
        let out = xb.mac(&[1.0, 2.0, 3.0]);
        assert_eq!(out, vec![1.0 + 6.0 + 15.0, 2.0 + 8.0 + 18.0]);
    }

    #[test]
    fn short_input_drives_top_rows_only() {
        let mut xb = Crossbar::new(4, 1);
        for r in 0..4 {
            xb.program(r, 0, 1.0);
        }
        assert_eq!(xb.mac(&[2.0, 3.0]), vec![5.0]);
    }

    #[test]
    fn program_column_and_cell_access() {
        let mut xb = Crossbar::new(4, 3);
        xb.program_column(1, &[-1.0, 2.0, -3.0]);
        assert_eq!(xb.cell(0, 1), -1.0);
        assert_eq!(xb.cell(2, 1), -3.0);
        assert_eq!(xb.cell(3, 1), 0.0);
        assert_eq!(xb.programmed_cells(), 3);
    }

    #[test]
    fn variation_only_touches_programmed_cells() {
        let mut xb = Crossbar::new(8, 8);
        xb.program(3, 3, 2.0);
        xb.program(5, 1, -4.0);
        let mut rng = CqRng::new(1);
        xb.apply_variation(0.2, &mut rng);
        assert_eq!(xb.programmed_cells(), 2);
        assert!(xb.cell(3, 3) > 0.0 && xb.cell(3, 3) != 2.0);
        assert!(xb.cell(5, 1) < 0.0 && xb.cell(5, 1) != -4.0);
        assert_eq!(xb.cell(0, 0), 0.0);
    }

    #[test]
    fn zero_sigma_variation_is_identity() {
        let mut xb = Crossbar::new(2, 2);
        xb.program(0, 0, 3.0);
        let before = xb.clone();
        xb.apply_variation(0.0, &mut CqRng::new(9));
        assert_eq!(xb, before);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_program_panics() {
        Crossbar::new(2, 2).program(2, 0, 1.0);
    }
}
