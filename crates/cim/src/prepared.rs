//! The **prepared inference executor**: all weight-side work of a
//! quantized convolution — LSQ weight quantization, bit-plane splitting,
//! grouping into the kernel-intact crossbar layout — done **once** at
//! construction, so serving a request costs only activation quantization,
//! the grouped-convolution sweep, and the shared digitize → shift-add →
//! merged-dequant back-end.
//!
//! This is the serving-side counterpart of the per-call training path in
//! `cq-core::CimConv2d` (which must re-quantize weights every forward
//! because QAT updates them between steps) and of the explicit
//! [`CrossbarLayer`](crate::CrossbarLayer) engine (which programs arrays
//! once but recomputes nothing weight-side either — `PreparedConv` is its
//! fast-emulation twin). All three produce **bit-identical** outputs at
//! zero device variation; the `engine_equivalence` and
//! `prepared_inference` integration tests pin this.
//!
//! Per-call intermediates (channel-padded activations, per-split partial
//! sums, the im2col matrix) live in a caller-owned [`ConvScratch`] and are
//! reused across requests, so a steady-state serving loop allocates only
//! its output tensors.

use crate::{Adc, AdcDigitizer, IdealDigitizer, PsumPipeline, QuantizedConv};
use cq_quant::{GroupLayout, LsqQuantizer};
use cq_tensor::Tensor;

/// Reusable per-call buffers of a [`PreparedConv`] (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ConvScratch {
    a_int: Tensor,
    a_pad: Tensor,
    psums: Vec<Tensor>,
    col: Vec<f32>,
}

impl ConvScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-split integer partial sums of the most recent call (empty
    /// before the first call). Exposed for probing/analysis.
    pub fn psums(&self) -> &[Tensor] {
        &self.psums
    }
}

/// A quantized convolution frozen for inference: weights quantized,
/// bit-split, and grouped once; every serve drives the shared
/// [`PsumPipeline`].
#[derive(Debug, Clone)]
pub struct PreparedConv {
    desc: QuantizedConv,
    pipeline: PsumPipeline,
    /// One grouped `[G·OC, c_pa, K, K]` weight tensor per bit-split,
    /// computed at construction.
    grouped_weights: Vec<Tensor>,
    adc: Adc,
    a_quant: LsqQuantizer,
}

impl PreparedConv {
    /// Prepares a conv from its dense quantized description.
    ///
    /// # Panics
    ///
    /// Panics if the description is inconsistent (see
    /// [`QuantizedConv::validate`]).
    pub fn new(desc: QuantizedConv) -> Self {
        Self::with_slice_transform(desc, |_, slice| slice)
    }

    /// Like [`PreparedConv::new`] but mapping every bit-split weight slice
    /// through `transform(split, slice)` before grouping — the hook that
    /// bakes deterministic device variation into the prepared weights
    /// exactly where cells would be programmed.
    ///
    /// # Panics
    ///
    /// Panics if the description is inconsistent or a transformed slice
    /// changes shape.
    pub fn with_slice_transform(
        desc: QuantizedConv,
        mut transform: impl FnMut(usize, Tensor) -> Tensor,
    ) -> Self {
        desc.validate();
        let pipeline = desc.pipeline();
        let shape = desc.w_int.shape().to_vec();
        let grouped_weights = (0..desc.plan.num_splits)
            .map(|s| {
                let slice = transform(s, desc.bit_split.split_tensor(&desc.w_int, s));
                assert_eq!(slice.shape(), &shape[..], "slice transform changed shape");
                pipeline.group_weight_slice(&slice)
            })
            .collect();
        let mut a_quant = LsqQuantizer::new(desc.act_format, 1);
        a_quant.set_scales(&[desc.act_scale]);
        let adc = Adc::new(desc.psum_format);
        Self {
            pipeline,
            grouped_weights,
            adc,
            a_quant,
            desc,
        }
    }

    /// The frozen layer description.
    pub fn desc(&self) -> &QuantizedConv {
        &self.desc
    }

    /// The shared execution pipeline.
    pub fn pipeline(&self) -> &PsumPipeline {
        &self.pipeline
    }

    /// Quantizes raw activations onto this layer's integer grid
    /// (bit-identical to the training-time LSQ activation quantizer).
    pub fn quantize_activations(&self, x: &Tensor) -> Tensor {
        self.a_quant.forward_int(x, &GroupLayout::single())
    }

    /// Serves one batch of raw activations `[B, Cin, H, W]`, allocating
    /// fresh intermediates. Prefer [`PreparedConv::infer_with_scratch`] in
    /// a serving loop.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        self.infer_with_scratch(x, &mut ConvScratch::new())
    }

    /// Serves one batch of raw activations, reusing `scratch` for every
    /// per-call intermediate.
    ///
    /// # Panics
    ///
    /// Panics if the input shape mismatches the plan.
    pub fn infer_with_scratch(&self, x: &Tensor, scratch: &mut ConvScratch) -> Tensor {
        self.a_quant
            .forward_int_into(x, &GroupLayout::single(), &mut scratch.a_int);
        let ConvScratch {
            a_int,
            a_pad,
            psums,
            col,
        } = scratch;
        self.run(a_int, a_pad, psums, col)
    }

    /// Serves one batch of already-quantized integer activations.
    ///
    /// # Panics
    ///
    /// Panics if the input shape mismatches the plan.
    pub fn infer_quantized_with_scratch(
        &self,
        a_int: &Tensor,
        scratch: &mut ConvScratch,
    ) -> Tensor {
        let ConvScratch {
            a_pad, psums, col, ..
        } = scratch;
        self.run(a_int, a_pad, psums, col)
    }

    /// The shared serving body: pad channels, sweep the grouped conv,
    /// digitize and reduce.
    fn run(
        &self,
        a_int: &Tensor,
        a_pad: &mut Tensor,
        psums: &mut Vec<Tensor>,
        col: &mut Vec<f32>,
    ) -> Tensor {
        self.desc.plan.pad_channels_into(a_int, a_pad);
        self.pipeline
            .grouped_psums_into(a_pad, &self.grouped_weights, psums, col);
        if self.desc.psum_quant {
            let dig = AdcDigitizer::new(self.adc, &self.desc.psum_scales, &self.desc.plan);
            self.pipeline.reduce(psums, &dig)
        } else {
            self.pipeline.reduce(psums, &IdealDigitizer)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CimConfig, CrossbarLayer, TilingPlan};
    use cq_tensor::CqRng;

    fn small_desc(psum_quant: bool) -> QuantizedConv {
        let cfg = CimConfig::tiny();
        let (in_ch, out_ch, k) = (7, 5, 3);
        let plan = TilingPlan::new(&cfg, in_ch, out_ch, k, k);
        let mut rng = CqRng::new(42);
        let w_int = rng
            .uniform_tensor(&[out_ch, in_ch, k, k], -4.0, 4.0)
            .map(|v| v.floor().clamp(-4.0, 3.0));
        let weight_scales: Vec<f32> = (0..plan.num_row_tiles * out_ch)
            .map(|i| 0.02 + 0.003 * i as f32)
            .collect();
        let psum_scales: Vec<f32> = (0..plan.num_splits * plan.num_row_tiles * out_ch)
            .map(|i| 1.0 + 0.1 * (i % 7) as f32)
            .collect();
        QuantizedConv {
            w_int,
            bit_split: cfg.bit_split(),
            plan,
            stride: 1,
            pad: 1,
            act_scale: 0.05,
            act_format: cfg.act_format(),
            weight_scales,
            psum_scales,
            psum_format: cfg.psum_format(),
            psum_quant,
            bias: Some(vec![0.1, -0.2, 0.0, 0.3, -0.1]),
        }
    }

    /// The prepared fast-emulation path must equal the explicit crossbar
    /// engine bit-for-bit, with and without partial-sum quantization.
    #[test]
    fn prepared_matches_crossbar_engine() {
        for psq in [false, true] {
            let desc = small_desc(psq);
            let engine = CrossbarLayer::new(desc.clone());
            let prepared = PreparedConv::new(desc);
            let mut rng = CqRng::new(7);
            let x = rng.normal_tensor(&[2, 7, 6, 6], 1.0).map(|v| v.max(0.0));
            let a_int = prepared.quantize_activations(&x);
            let slow = engine.forward(&a_int);
            let fast = prepared.infer(&x);
            assert_eq!(fast, slow, "psq={psq}");
        }
    }

    /// Serving repeatedly through one scratch must be idempotent
    /// bit-for-bit, including across interleaved input shapes.
    #[test]
    fn scratch_reuse_is_bit_stable() {
        let prepared = PreparedConv::new(small_desc(true));
        let mut rng = CqRng::new(9);
        let a = rng.normal_tensor(&[1, 7, 6, 6], 1.0).map(|v| v.max(0.0));
        let b = rng.normal_tensor(&[3, 7, 4, 4], 1.0).map(|v| v.max(0.0));
        let mut scratch = ConvScratch::new();
        let ya1 = prepared.infer_with_scratch(&a, &mut scratch);
        let yb1 = prepared.infer_with_scratch(&b, &mut scratch);
        let ya2 = prepared.infer_with_scratch(&a, &mut scratch);
        let yb2 = prepared.infer_with_scratch(&b, &mut scratch);
        assert_eq!(ya1, ya2);
        assert_eq!(yb1, yb2);
        assert_eq!(ya1, prepared.infer(&a), "scratch path vs fresh path");
    }

    /// A slice transform (the variation hook) must change the output, and
    /// the identity transform must not.
    #[test]
    fn slice_transform_hook_applies() {
        let desc = small_desc(true);
        let plain = PreparedConv::new(desc.clone());
        let identity = PreparedConv::with_slice_transform(desc.clone(), |_, s| s);
        let scaled = PreparedConv::with_slice_transform(desc, |_, s| s.scale(1.5));
        let mut rng = CqRng::new(11);
        let x = rng.normal_tensor(&[1, 7, 6, 6], 1.0).map(|v| v.max(0.0));
        assert_eq!(plain.infer(&x), identity.infer(&x));
        assert_ne!(plain.infer(&x), scaled.infer(&x));
    }

    #[test]
    #[should_panic(expected = "weight scale table")]
    fn invalid_description_rejected() {
        let mut desc = small_desc(false);
        desc.weight_scales.pop();
        let _ = PreparedConv::new(desc);
    }
}
