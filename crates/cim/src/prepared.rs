//! The **prepared inference executor**: all weight-side work of a
//! quantized convolution — LSQ weight quantization, bit-plane splitting,
//! grouping into the kernel-intact crossbar layout — done **once** at
//! construction, so serving a request costs only activation quantization,
//! the grouped-convolution sweep, and the shared digitize → shift-add →
//! merged-dequant back-end.
//!
//! This is the serving-side counterpart of the per-call training path in
//! `cq-core::CimConv2d` (which must re-quantize weights every forward
//! because QAT updates them between steps) and of the explicit
//! [`CrossbarLayer`](crate::CrossbarLayer) engine (which programs arrays
//! once but recomputes nothing weight-side either — `PreparedConv` is its
//! fast-emulation twin). All three produce **bit-identical** outputs at
//! zero device variation; the `engine_equivalence` and
//! `prepared_inference` integration tests pin this.
//!
//! Per-call intermediates (channel-padded activations, per-split partial
//! sums, the im2col matrix) live in a caller-owned [`ConvScratch`] and are
//! reused across requests, so a steady-state serving loop allocates only
//! its output tensors.

use crate::pipeline::IntGroupedWeights;
use crate::{
    Adc, AdcDigitizer, IdealDigitizer, PsumKernel, PsumPipeline, QuantizedConv, ShardPlan,
};
use cq_quant::{GroupLayout, LsqQuantizer};
use cq_tensor::{conv_out_dim, Tensor};

/// Per-shard buffers of a row-tile-sharded sweep (see
/// [`PreparedConv::set_row_tile_shards`]).
#[derive(Debug, Clone, Default)]
struct ShardScratch {
    a_shard: Tensor,
    psums: Vec<Tensor>,
    col: Vec<f32>,
}

/// Reusable per-call buffers of a [`PreparedConv`] (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ConvScratch {
    a_int: Tensor,
    a_pad: Tensor,
    psums: Vec<Tensor>,
    col: Vec<f32>,
    shards: Vec<ShardScratch>,
}

impl ConvScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-split integer partial sums of the most recent call (empty
    /// before the first call). Exposed for probing/analysis.
    pub fn psums(&self) -> &[Tensor] {
        &self.psums
    }
}

/// Row-tile shard execution state: the shard plan plus the per-shard
/// weight slices, computed once when sharding is enabled.
#[derive(Debug, Clone)]
struct ShardExec {
    plan: ShardPlan,
    /// `weights[shard][split]` — contiguous `[len·OC, c_pa, K, K]` slices.
    weights: Vec<Vec<Tensor>>,
}

/// A quantized convolution frozen for inference: weights quantized,
/// bit-split, and grouped once; every serve drives the shared
/// [`PsumPipeline`].
#[derive(Debug, Clone)]
pub struct PreparedConv {
    desc: QuantizedConv,
    pipeline: PsumPipeline,
    /// One grouped `[G·OC, c_pa, K, K]` weight tensor per bit-split,
    /// computed at construction.
    grouped_weights: Vec<Tensor>,
    /// The same slices repacked into integer panels at construction, when
    /// they are integer-eligible (see
    /// [`PsumPipeline::split_grouped_weights_int`]); `None` under device
    /// variation or out-of-range formats.
    int_weights: Option<Vec<IntGroupedWeights>>,
    /// Which kernel family the serving body dispatches to.
    kernel: PsumKernel,
    adc: Adc,
    a_quant: LsqQuantizer,
    /// Row-tile sharded front-end, when enabled (see
    /// [`PreparedConv::set_row_tile_shards`]).
    shard: Option<ShardExec>,
}

impl PreparedConv {
    /// Prepares a conv from its dense quantized description.
    ///
    /// # Panics
    ///
    /// Panics if the description is inconsistent (see
    /// [`QuantizedConv::validate`]).
    pub fn new(desc: QuantizedConv) -> Self {
        Self::with_slice_transform(desc, |_, slice| slice)
    }

    /// Like [`PreparedConv::new`] but mapping every bit-split weight slice
    /// through `transform(split, slice)` before grouping — the hook that
    /// bakes deterministic device variation into the prepared weights
    /// exactly where cells would be programmed.
    ///
    /// # Panics
    ///
    /// Panics if the description is inconsistent or a transformed slice
    /// changes shape.
    pub fn with_slice_transform(
        desc: QuantizedConv,
        mut transform: impl FnMut(usize, Tensor) -> Tensor,
    ) -> Self {
        desc.validate();
        let pipeline = desc.pipeline();
        let shape = desc.w_int.shape().to_vec();
        let grouped_weights: Vec<Tensor> = (0..desc.plan.num_splits)
            .map(|s| {
                let slice = transform(s, desc.bit_split.split_tensor(&desc.w_int, s));
                assert_eq!(slice.shape(), &shape[..], "slice transform changed shape");
                pipeline.group_weight_slice(&slice)
            })
            .collect();
        let mut a_quant = LsqQuantizer::new(desc.act_format, 1);
        a_quant.set_scales(&[desc.act_scale]);
        let adc = Adc::new(desc.psum_format);
        let act_max_abs = desc.act_format.qn().abs().max(desc.act_format.qp());
        let int_weights = pipeline.split_grouped_weights_int(&grouped_weights, act_max_abs);
        Self {
            pipeline,
            grouped_weights,
            int_weights,
            kernel: PsumKernel::default(),
            adc,
            a_quant,
            desc,
            shard: None,
        }
    }

    /// Selects the partial-sum kernel family (default
    /// [`PsumKernel::Auto`]): with `Auto`, the `i8×i8→i32` panel kernels
    /// run whenever the frozen slices were integer-eligible at
    /// construction, falling back to the f32 grouped convolution
    /// otherwise (e.g. when a slice transform baked in device variation).
    /// The choice is pure speed — outputs are bit-identical either way —
    /// and applies to both the whole-sweep and row-tile-sharded paths.
    ///
    /// # Panics
    ///
    /// Panics on [`PsumKernel::Int`] when the frozen slices are not
    /// integer-eligible.
    pub fn set_psum_kernel(&mut self, kernel: PsumKernel) {
        assert!(
            kernel != PsumKernel::Int || self.int_weights.is_some(),
            "integer kernel required but frozen slices are not integer-eligible \
             (device variation or out-of-range formats); use Auto for f32 fallback"
        );
        self.kernel = kernel;
    }

    /// The selected kernel family.
    pub fn psum_kernel(&self) -> PsumKernel {
        self.kernel
    }

    /// Whether serving currently dispatches to the integer kernels (the
    /// selected family permits them and the frozen slices are
    /// integer-eligible).
    pub fn integer_kernel_active(&self) -> bool {
        self.kernel != PsumKernel::F32 && self.int_weights.is_some()
    }

    /// The integer panel sets when the kernel selection dispatches to
    /// them (see [`PreparedConv::integer_kernel_active`]).
    fn active_int_weights(&self) -> Option<&[IntGroupedWeights]> {
        if self.kernel == PsumKernel::F32 {
            return None;
        }
        self.int_weights.as_deref()
    }

    /// Enables (or disables, with `None`/`Some(1)`) **row-tile sharding**:
    /// the grouped-conv front-end is split into up to `shards` independent
    /// row-tile shards that execute on scoped threads and are rejoined by
    /// exact scatter before the canonical fixed-order reduce — outputs are
    /// **bit-identical** to the unsharded path for every shard count
    /// (counts larger than the number of row tiles are clamped). Per-shard
    /// weight slices are cut once here, so serving does no per-call weight
    /// copying.
    ///
    /// Each shard's grouped convolution still uses the kernel's own
    /// `threads_for`/`CQ_THREADS` policy internally, so shard threads
    /// multiply with that pool — keep `shards × CQ_THREADS` within the
    /// machine's core budget on a saturated host.
    ///
    /// # Panics
    ///
    /// Panics if `shards == Some(0)`.
    pub fn set_row_tile_shards(&mut self, shards: Option<usize>) {
        assert!(shards != Some(0), "shard count must be positive");
        self.shard = shards.and_then(|n| {
            let plan = ShardPlan::split(self.desc.plan.num_row_tiles, n);
            (!plan.is_trivial()).then(|| ShardExec {
                weights: self
                    .pipeline
                    .shard_weight_sets(&self.grouped_weights, &plan),
                plan,
            })
        });
    }

    /// The effective row-tile shard count (1 when sharding is off or the
    /// layer has a single row tile).
    pub fn row_tile_shards(&self) -> usize {
        self.shard.as_ref().map_or(1, |s| s.plan.num_shards())
    }

    /// The frozen layer description.
    pub fn desc(&self) -> &QuantizedConv {
        &self.desc
    }

    /// The shared execution pipeline.
    pub fn pipeline(&self) -> &PsumPipeline {
        &self.pipeline
    }

    /// Quantizes raw activations onto this layer's integer grid
    /// (bit-identical to the training-time LSQ activation quantizer).
    pub fn quantize_activations(&self, x: &Tensor) -> Tensor {
        self.a_quant.forward_int(x, &GroupLayout::single())
    }

    /// Serves one batch of raw activations `[B, Cin, H, W]`, allocating
    /// fresh intermediates. Prefer [`PreparedConv::infer_with_scratch`] in
    /// a serving loop.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        self.infer_with_scratch(x, &mut ConvScratch::new())
    }

    /// Serves one batch of raw activations, reusing `scratch` for every
    /// per-call intermediate.
    ///
    /// # Panics
    ///
    /// Panics if the input shape mismatches the plan.
    pub fn infer_with_scratch(&self, x: &Tensor, scratch: &mut ConvScratch) -> Tensor {
        self.a_quant
            .forward_int_into(x, &GroupLayout::single(), &mut scratch.a_int);
        let a_int = std::mem::take(&mut scratch.a_int);
        let y = self.run(&a_int, scratch);
        scratch.a_int = a_int;
        y
    }

    /// Serves one batch of already-quantized integer activations.
    ///
    /// # Panics
    ///
    /// Panics if the input shape mismatches the plan.
    pub fn infer_quantized_with_scratch(
        &self,
        a_int: &Tensor,
        scratch: &mut ConvScratch,
    ) -> Tensor {
        self.run(a_int, scratch)
    }

    /// The shared serving body: pad channels, sweep the grouped conv
    /// (whole, or as independent row-tile shards rejoined by exact
    /// scatter), digitize and reduce.
    fn run(&self, a_int: &Tensor, scratch: &mut ConvScratch) -> Tensor {
        let ConvScratch {
            a_pad,
            psums,
            col,
            shards,
            ..
        } = scratch;
        self.desc.plan.pad_channels_into(a_int, a_pad);
        let tiles = self.desc.plan.num_row_tiles;
        match (&self.shard, self.active_int_weights()) {
            (None, Some(iw)) => self
                .pipeline
                .grouped_psums_int_into(a_pad, iw, 0..tiles, psums),
            (None, None) => {
                self.pipeline
                    .grouped_psums_into(a_pad, &self.grouped_weights, psums, col)
            }
            (Some(se), _) => self.sharded_psums(se, a_pad, psums, shards),
        }
        if self.desc.psum_quant {
            let dig = AdcDigitizer::new(self.adc, &self.desc.psum_scales, &self.desc.plan);
            self.pipeline.reduce(psums, &dig)
        } else {
            self.pipeline.reduce(psums, &IdealDigitizer)
        }
    }

    /// Row-tile sharded front-end: every shard computes its groups'
    /// partial sums on its own scoped thread, then the shards are
    /// scattered — exact copies, never re-summed — into the full per-split
    /// tensors, so the subsequent reduce runs in the canonical unsharded
    /// operation order.
    fn sharded_psums(
        &self,
        se: &ShardExec,
        a_pad: &Tensor,
        psums: &mut Vec<Tensor>,
        shards: &mut Vec<ShardScratch>,
    ) {
        let p = &self.desc.plan;
        let int_weights = self.active_int_weights();
        shards.resize_with(se.plan.num_shards(), ShardScratch::default);
        std::thread::scope(|sc| {
            for (tiles, (sw, ss)) in se.plan.iter().zip(se.weights.iter().zip(shards.iter_mut())) {
                let pipeline = &self.pipeline;
                sc.spawn(move || {
                    pipeline.slice_padded_row_tiles(a_pad, tiles.clone(), &mut ss.a_shard);
                    match int_weights {
                        Some(iw) => {
                            pipeline.grouped_psums_int_into(&ss.a_shard, iw, tiles, &mut ss.psums)
                        }
                        None => pipeline.grouped_psums_shard_into(
                            &ss.a_shard,
                            sw,
                            tiles,
                            &mut ss.psums,
                            &mut ss.col,
                        ),
                    }
                });
            }
        });
        // Rejoin: size the full tensors, then scatter every shard block.
        let (b, h, w) = (a_pad.dim(0), a_pad.dim(2), a_pad.dim(3));
        let oh = conv_out_dim(h, p.kh, self.desc.stride, self.desc.pad);
        let ow = conv_out_dim(w, p.kw, self.desc.stride, self.desc.pad);
        let shape = [b, p.num_row_tiles * p.out_ch, oh, ow];
        psums.resize_with(p.num_splits, || Tensor::zeros(&shape));
        for ps in psums.iter_mut() {
            if ps.shape() != shape {
                *ps = Tensor::zeros(&shape);
            }
        }
        for (tiles, ss) in se.plan.iter().zip(shards.iter()) {
            self.pipeline.scatter_psum_shard(&ss.psums, tiles, psums);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CimConfig, CrossbarLayer, TilingPlan};
    use cq_tensor::CqRng;

    fn small_desc(psum_quant: bool) -> QuantizedConv {
        let cfg = CimConfig::tiny();
        let (in_ch, out_ch, k) = (7, 5, 3);
        let plan = TilingPlan::new(&cfg, in_ch, out_ch, k, k);
        let mut rng = CqRng::new(42);
        let w_int = rng
            .uniform_tensor(&[out_ch, in_ch, k, k], -4.0, 4.0)
            .map(|v| v.floor().clamp(-4.0, 3.0));
        let weight_scales: Vec<f32> = (0..plan.num_row_tiles * out_ch)
            .map(|i| 0.02 + 0.003 * i as f32)
            .collect();
        let psum_scales: Vec<f32> = (0..plan.num_splits * plan.num_row_tiles * out_ch)
            .map(|i| 1.0 + 0.1 * (i % 7) as f32)
            .collect();
        QuantizedConv {
            w_int,
            bit_split: cfg.bit_split(),
            plan,
            stride: 1,
            pad: 1,
            act_scale: 0.05,
            act_format: cfg.act_format(),
            weight_scales,
            psum_scales,
            psum_format: cfg.psum_format(),
            psum_quant,
            bias: Some(vec![0.1, -0.2, 0.0, 0.3, -0.1]),
        }
    }

    /// The prepared fast-emulation path must equal the explicit crossbar
    /// engine bit-for-bit, with and without partial-sum quantization.
    #[test]
    fn prepared_matches_crossbar_engine() {
        for psq in [false, true] {
            let desc = small_desc(psq);
            let engine = CrossbarLayer::new(desc.clone());
            let prepared = PreparedConv::new(desc);
            let mut rng = CqRng::new(7);
            let x = rng.normal_tensor(&[2, 7, 6, 6], 1.0).map(|v| v.max(0.0));
            let a_int = prepared.quantize_activations(&x);
            let slow = engine.forward(&a_int);
            let fast = prepared.infer(&x);
            assert_eq!(fast, slow, "psq={psq}");
        }
    }

    /// Serving repeatedly through one scratch must be idempotent
    /// bit-for-bit, including across interleaved input shapes.
    #[test]
    fn scratch_reuse_is_bit_stable() {
        let prepared = PreparedConv::new(small_desc(true));
        let mut rng = CqRng::new(9);
        let a = rng.normal_tensor(&[1, 7, 6, 6], 1.0).map(|v| v.max(0.0));
        let b = rng.normal_tensor(&[3, 7, 4, 4], 1.0).map(|v| v.max(0.0));
        let mut scratch = ConvScratch::new();
        let ya1 = prepared.infer_with_scratch(&a, &mut scratch);
        let yb1 = prepared.infer_with_scratch(&b, &mut scratch);
        let ya2 = prepared.infer_with_scratch(&a, &mut scratch);
        let yb2 = prepared.infer_with_scratch(&b, &mut scratch);
        assert_eq!(ya1, ya2);
        assert_eq!(yb1, yb2);
        assert_eq!(ya1, prepared.infer(&a), "scratch path vs fresh path");
    }

    /// A slice transform (the variation hook) must change the output, and
    /// the identity transform must not.
    #[test]
    fn slice_transform_hook_applies() {
        let desc = small_desc(true);
        let plain = PreparedConv::new(desc.clone());
        let identity = PreparedConv::with_slice_transform(desc.clone(), |_, s| s);
        let scaled = PreparedConv::with_slice_transform(desc, |_, s| s.scale(1.5));
        let mut rng = CqRng::new(11);
        let x = rng.normal_tensor(&[1, 7, 6, 6], 1.0).map(|v| v.max(0.0));
        assert_eq!(plain.infer(&x), identity.infer(&x));
        assert_ne!(plain.infer(&x), scaled.infer(&x));
    }

    /// Row-tile sharded execution must be bit-identical to the unsharded
    /// path for every shard count — including counts above the number of
    /// row tiles — with and without psum quantization, and across scratch
    /// reuse.
    #[test]
    fn row_tile_sharding_is_bit_exact() {
        for psq in [false, true] {
            let desc = small_desc(psq);
            let tiles = desc.plan.num_row_tiles; // 3 for the tiny config
            assert!(tiles > 1, "test needs a multi-tile layer");
            let baseline = PreparedConv::new(desc.clone());
            let mut rng = CqRng::new(31);
            let x = rng.normal_tensor(&[2, 7, 6, 6], 1.0).map(|v| v.max(0.0));
            let want = baseline.infer(&x);
            for n in [1usize, 2, 7] {
                let mut sharded = PreparedConv::new(desc.clone());
                sharded.set_row_tile_shards(Some(n));
                assert_eq!(sharded.row_tile_shards(), n.min(tiles));
                let mut scratch = ConvScratch::new();
                let got1 = sharded.infer_with_scratch(&x, &mut scratch);
                let got2 = sharded.infer_with_scratch(&x, &mut scratch);
                assert_eq!(got1, want, "shards={n} psq={psq}");
                assert_eq!(got2, want, "dirty-scratch shards={n} psq={psq}");
                sharded.set_row_tile_shards(None);
                assert_eq!(sharded.row_tile_shards(), 1);
                assert_eq!(sharded.infer(&x), want, "disable diverged");
            }
        }
    }

    /// Kernel selection is pure speed: the integer panel path must equal
    /// the f32 path bit-for-bit, sharded or not, with and without psum
    /// quantization.
    #[test]
    fn integer_kernel_is_bit_exact_and_selectable() {
        for psq in [false, true] {
            let desc = small_desc(psq);
            let mut f32_forced = PreparedConv::new(desc.clone());
            f32_forced.set_psum_kernel(PsumKernel::F32);
            assert!(!f32_forced.integer_kernel_active());
            let mut int_forced = PreparedConv::new(desc.clone());
            int_forced.set_psum_kernel(PsumKernel::Int);
            assert!(int_forced.integer_kernel_active());
            let auto = PreparedConv::new(desc.clone());
            assert_eq!(auto.psum_kernel(), PsumKernel::Auto);
            assert!(auto.integer_kernel_active(), "clean slices must qualify");
            let mut rng = CqRng::new(17);
            let x = rng.normal_tensor(&[2, 7, 6, 6], 1.0).map(|v| v.max(0.0));
            let want = f32_forced.infer(&x);
            assert_eq!(int_forced.infer(&x), want, "psq={psq}");
            assert_eq!(auto.infer(&x), want, "psq={psq}");
            // Sharded integer path.
            let mut sharded = PreparedConv::new(desc);
            sharded.set_psum_kernel(PsumKernel::Int);
            sharded.set_row_tile_shards(Some(2));
            let mut scratch = ConvScratch::new();
            assert_eq!(
                sharded.infer_with_scratch(&x, &mut scratch),
                want,
                "sharded int psq={psq}"
            );
            assert_eq!(
                sharded.infer_with_scratch(&x, &mut scratch),
                want,
                "dirty-scratch sharded int psq={psq}"
            );
        }
    }

    /// A variation-style slice transform disqualifies the integer path:
    /// `Auto` falls back to f32 (bit-identical to forcing f32) and `Int`
    /// is rejected.
    #[test]
    fn variation_falls_back_to_f32() {
        let desc = small_desc(true);
        let auto = PreparedConv::with_slice_transform(desc.clone(), |_, s| s.scale(1.37));
        assert!(
            !auto.integer_kernel_active(),
            "off-integer slices must disqualify the integer kernel"
        );
        let mut f32_forced = PreparedConv::with_slice_transform(desc, |_, s| s.scale(1.37));
        f32_forced.set_psum_kernel(PsumKernel::F32);
        let mut rng = CqRng::new(19);
        let x = rng.normal_tensor(&[1, 7, 6, 6], 1.0).map(|v| v.max(0.0));
        assert_eq!(auto.infer(&x), f32_forced.infer(&x));
    }

    #[test]
    #[should_panic(expected = "not integer-eligible")]
    fn forcing_int_kernel_under_variation_panics() {
        let mut prepared =
            PreparedConv::with_slice_transform(small_desc(false), |_, s| s.scale(1.37));
        prepared.set_psum_kernel(PsumKernel::Int);
    }

    #[test]
    #[should_panic(expected = "weight scale table")]
    fn invalid_description_rejected() {
        let mut desc = small_desc(false);
        desc.weight_scales.pop();
        let _ = PreparedConv::new(desc);
    }
}
