//! The **prepared inference executor**: all weight-side work of a
//! quantized convolution — LSQ weight quantization, bit-plane splitting,
//! grouping into the kernel-intact crossbar layout — done **once** at
//! construction, so serving a request costs only activation quantization,
//! the grouped-convolution sweep, and the shared digitize → shift-add →
//! merged-dequant back-end.
//!
//! This is the serving-side counterpart of the per-call training path in
//! `cq-core::CimConv2d` (which must re-quantize weights every forward
//! because QAT updates them between steps) and of the explicit
//! [`CrossbarLayer`](crate::CrossbarLayer) engine (which programs arrays
//! once but recomputes nothing weight-side either — `PreparedConv` is its
//! fast-emulation twin). All three produce **bit-identical** outputs at
//! zero device variation; the `engine_equivalence` and
//! `prepared_inference` integration tests pin this.
//!
//! Sweeps execute on a pluggable [`ExecBackend`] resolved from a
//! [`BackendSet`] fallback chain against the layer's [`ConvProfile`]
//! (capability probe), and row-tile sharding is **placement-aware**: every
//! shard of a [`ShardPlan`] can be pinned to its own backend, with
//! freeze-time weight artifacts (grouped f32 slices, repacked integer
//! panels) living with the backend that consumes them. All backends are
//! bit-identical, so placement is purely about speed and locality.
//!
//! Per-call intermediates (the quantized and channel-padded activations,
//! per-split partial sums, the im2col matrix, shard slices) are checked out
//! of the executing thread's [`cq_tensor::arena`], so a steady-state
//! serving loop allocates only its output tensors — one arena per worker
//! instead of the old per-layer scratch pools that multiplied across
//! layers × workers × models.

use crate::pipeline::IntGroupedWeights;
use crate::{
    Adc, AdcDigitizer, HybridDigitizer, IdealDigitizer, PsumKernel, PsumPipeline, QuantizedConv,
    ShardPlan,
};
use cq_quant::{GroupLayout, LsqQuantizer};
use cq_tensor::{
    arena, backend_instance, conv_out_dim, exec, BackendError, BackendKind, BackendSet,
    ConvProfile, ConvShape, ExecBackend, Tensor,
};
use std::sync::Arc;

/// One shard's execution assignment: the backend it runs on plus the
/// freeze-time weight artifacts that backend consumes (pre-sliced f32
/// weights for f32-family backends; integer backends index the layer's
/// full panel sets by tile range instead).
#[derive(Debug, Clone)]
struct ShardBackend {
    backend: Arc<dyn ExecBackend>,
    /// Per-split contiguous `[len·OC, c_pa, K, K]` slices; empty for
    /// integer backends.
    weights: Vec<Tensor>,
}

/// Row-tile shard execution state: the (possibly placement-aware) shard
/// plan plus each shard's backend assignment and weight artifacts.
#[derive(Debug, Clone)]
struct ShardExec {
    plan: ShardPlan,
    shards: Vec<ShardBackend>,
}

/// A quantized convolution frozen for inference: weights quantized,
/// bit-split, and grouped once; every serve drives the shared
/// [`PsumPipeline`] on the resolved execution backend.
#[derive(Debug, Clone)]
pub struct PreparedConv {
    desc: QuantizedConv,
    pipeline: PsumPipeline,
    /// One grouped `[G·OC, c_pa, K, K]` weight tensor per bit-split,
    /// computed at construction.
    grouped_weights: Vec<Tensor>,
    /// The same slices repacked into integer panels at construction, when
    /// they are integer-eligible (see
    /// [`PsumPipeline::split_grouped_weights_int`]); `None` under device
    /// variation or out-of-range formats.
    int_weights: Option<Vec<IntGroupedWeights>>,
    /// What this layer offers to backend capability probes
    /// ([`ExecBackend::supports`]).
    profile: ConvProfile,
    /// The configured fallback chain.
    backends: BackendSet,
    /// The resolved backend whole sweeps (and unplaced shards) run on.
    active: Arc<dyn ExecBackend>,
    adc: Adc,
    a_quant: LsqQuantizer,
    /// Row-tile sharded front-end, when enabled (see
    /// [`PreparedConv::set_row_tile_shards`] /
    /// [`PreparedConv::set_shard_plan`]).
    shard: Option<ShardExec>,
}

impl PreparedConv {
    /// Prepares a conv from its dense quantized description.
    ///
    /// # Panics
    ///
    /// Panics if the description is inconsistent (see
    /// [`QuantizedConv::validate`]).
    pub fn new(desc: QuantizedConv) -> Self {
        Self::with_slice_transform(desc, |_, slice| slice)
    }

    /// Like [`PreparedConv::new`] but mapping every bit-split weight slice
    /// through `transform(split, slice)` before grouping — the hook that
    /// bakes deterministic device variation into the prepared weights
    /// exactly where cells would be programmed.
    ///
    /// The initial backend chain is [`BackendSet::standard`] (the
    /// `CQ_BACKEND` process default).
    ///
    /// # Panics
    ///
    /// Panics if the description is inconsistent, a transformed slice
    /// changes shape, or the process-default backend chain cannot execute
    /// this layer (e.g. `CQ_BACKEND=int` with variation-perturbed slices).
    pub fn with_slice_transform(
        desc: QuantizedConv,
        mut transform: impl FnMut(usize, Tensor) -> Tensor,
    ) -> Self {
        desc.validate();
        let pipeline = desc.pipeline();
        let shape = desc.w_int.shape().to_vec();
        let grouped_weights: Vec<Tensor> = (0..desc.plan.num_splits)
            .map(|s| {
                let slice = transform(s, desc.bit_split.split_tensor(&desc.w_int, s));
                assert_eq!(slice.shape(), &shape[..], "slice transform changed shape");
                pipeline.group_weight_slice(&slice)
            })
            .collect();
        let mut a_quant = LsqQuantizer::new(desc.act_format, 1);
        a_quant.set_scales(&[desc.act_scale]);
        let adc = Adc::new(desc.psum_format);
        let act_max_abs = desc.act_format.qn().abs().max(desc.act_format.qp());
        let int_weights = pipeline.split_grouped_weights_int(&grouped_weights, act_max_abs);
        let profile = ConvProfile {
            integer_eligible: int_weights.is_some(),
        };
        let backends = BackendSet::standard();
        let active = backends.resolve(&profile).unwrap_or_else(|| {
            panic!(
                "process-default backend chain (CQ_BACKEND) cannot execute this \
                 layer: {}",
                BackendError::NoBackend(backends.kinds())
            )
        });
        Self {
            pipeline,
            grouped_weights,
            int_weights,
            profile,
            backends,
            active,
            adc,
            a_quant,
            desc,
            shard: None,
        }
    }

    /// Selects the execution-backend fallback chain: the layer resolves
    /// (and whole sweeps run on) the first chain entry whose capability
    /// probe accepts this layer's [`ConvProfile`]. Any active row-tile
    /// shard state is rebuilt with every shard on the newly resolved
    /// backend (explicit placements are re-derived, see
    /// [`PreparedConv::set_shard_plan`]). All backends are bit-identical,
    /// so the choice is purely speed.
    ///
    /// # Errors
    ///
    /// [`BackendError::NoBackend`] when no chain entry supports the layer
    /// (e.g. [`BackendSet::int`] on slices that are not integer-eligible);
    /// the previous configuration is left untouched.
    pub fn set_backends(&mut self, backends: BackendSet) -> Result<(), BackendError> {
        let active = backends
            .resolve(&self.profile)
            .ok_or_else(|| BackendError::NoBackend(backends.kinds()))?;
        let old_active = std::mem::replace(&mut self.active, active);
        let old_backends = std::mem::replace(&mut self.backends, backends);
        if let Some(plan) = self.shard.as_ref().map(|se| se.plan.clone()) {
            match self.build_shard_exec(&plan) {
                Ok(se) => self.shard = Some(se),
                Err(e) => {
                    self.active = old_active;
                    self.backends = old_backends;
                    return Err(e);
                }
            }
        }
        Ok(())
    }

    /// The configured backend chain.
    pub fn backends(&self) -> &BackendSet {
        &self.backends
    }

    /// The resolved backend whole sweeps (and unplaced shards) run on.
    pub fn active_backend(&self) -> BackendKind {
        self.active.kind()
    }

    /// What this layer offers to backend capability probes.
    pub fn profile(&self) -> ConvProfile {
        self.profile
    }

    /// Compat selector for the legacy kernel-family enum: equivalent to
    /// `set_backends(kernel.into())` (see [`BackendSet::from`]).
    ///
    /// # Errors
    ///
    /// [`BackendError::NoBackend`] on [`PsumKernel::Int`] when the frozen
    /// slices are not integer-eligible (device variation or out-of-range
    /// formats); use `Auto` for f32 fallback.
    pub fn set_psum_kernel(&mut self, kernel: PsumKernel) -> Result<(), BackendError> {
        self.set_backends(kernel.into())
    }

    /// The legacy [`PsumKernel`] view of the configured chain (see
    /// [`BackendSet::as_psum_kernel`]).
    pub fn psum_kernel(&self) -> PsumKernel {
        self.backends.as_psum_kernel()
    }

    /// Whether whole sweeps currently dispatch to the integer kernels
    /// (the resolved backend runs the integer chain).
    pub fn integer_kernel_active(&self) -> bool {
        self.active.integer()
    }

    /// Enables (or disables, with `None`/`Some(1)`) **row-tile sharding**:
    /// the grouped-conv front-end is split into up to `shards` independent
    /// row-tile shards that execute as tasks on the shared
    /// [`cq_tensor::exec`] pool and are rejoined by exact scatter before
    /// the canonical fixed-order reduce — outputs are **bit-identical**
    /// to the unsharded path for every shard count (counts larger than
    /// the number of row tiles are clamped). Every shard runs on the
    /// layer's resolved backend; use [`PreparedConv::set_shard_plan`] for
    /// per-shard placement. Per-shard weight slices are cut once here, so
    /// serving does no per-call weight copying.
    ///
    /// Shard tasks and the kernels they call all run on the one
    /// `CQ_THREADS`-capped pool (nested scopes lend their caller to the
    /// queue instead of spawning), so total parallelism never exceeds
    /// `CQ_THREADS` no matter how many shards are configured — no
    /// multiplicative thread budgeting needed.
    ///
    /// # Panics
    ///
    /// Panics if `shards == Some(0)`.
    pub fn set_row_tile_shards(&mut self, shards: Option<usize>) {
        assert!(shards != Some(0), "shard count must be positive");
        self.shard = shards.and_then(|n| {
            let plan = ShardPlan::split(self.desc.plan.num_row_tiles, n);
            (!plan.is_trivial()).then(|| {
                self.build_shard_exec(&plan)
                    .expect("unplaced shard plans always build on the resolved backend")
            })
        });
    }

    /// Installs an explicit (possibly **placement-aware**) row-tile shard
    /// plan: each shard executes on its assigned [`BackendKind`] (unplaced
    /// shards use the layer's resolved backend), and freeze-time weight
    /// artifacts are cut per shard for the backend that consumes them.
    /// Mixed-backend plans rejoin bit-exactly — every backend computes
    /// identical partial sums, and the scatter rejoin preserves the
    /// canonical reduce order.
    ///
    /// Unlike [`PreparedConv::set_row_tile_shards`], a trivial one-shard
    /// plan is honored as given (useful for pinning a whole layer's sweep
    /// onto one placed backend).
    ///
    /// # Errors
    ///
    /// [`BackendError::Unsupported`] when a placed backend's capability
    /// probe rejects this layer (placement is strict — there is no silent
    /// fallback); the previous shard state is left untouched.
    ///
    /// # Panics
    ///
    /// Panics if the plan does not partition this layer's row tiles.
    pub fn set_shard_plan(&mut self, plan: Option<ShardPlan>) -> Result<(), BackendError> {
        match plan {
            None => {
                self.shard = None;
                Ok(())
            }
            Some(plan) => {
                self.shard = Some(self.build_shard_exec(&plan)?);
                Ok(())
            }
        }
    }

    /// Resolves each shard's backend and cuts its weight artifacts.
    fn build_shard_exec(&self, plan: &ShardPlan) -> Result<ShardExec, BackendError> {
        assert_eq!(
            plan.num_items(),
            self.desc.plan.num_row_tiles,
            "shard plan vs row tiles"
        );
        let shards = plan
            .iter()
            .enumerate()
            .map(|(i, tiles)| {
                let backend = match plan.backend_of(i) {
                    Some(kind) => {
                        let b = backend_instance(kind);
                        if !b.supports(&self.profile) {
                            return Err(BackendError::Unsupported(kind));
                        }
                        b
                    }
                    None => self.active.clone(),
                };
                let weights = if backend.integer() {
                    Vec::new()
                } else {
                    self.pipeline
                        .shard_grouped_weights(&self.grouped_weights, tiles)
                };
                Ok(ShardBackend { backend, weights })
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ShardExec {
            plan: plan.clone(),
            shards,
        })
    }

    /// The effective row-tile shard count (1 when sharding is off or the
    /// layer has a single row tile).
    pub fn row_tile_shards(&self) -> usize {
        self.shard.as_ref().map_or(1, |s| s.plan.num_shards())
    }

    /// The installed row-tile shard plan, if sharding is enabled.
    pub fn shard_plan(&self) -> Option<&ShardPlan> {
        self.shard.as_ref().map(|se| &se.plan)
    }

    /// The frozen layer description.
    pub fn desc(&self) -> &QuantizedConv {
        &self.desc
    }

    /// The shared execution pipeline.
    pub fn pipeline(&self) -> &PsumPipeline {
        &self.pipeline
    }

    /// Quantizes raw activations onto this layer's integer grid
    /// (bit-identical to the training-time LSQ activation quantizer).
    pub fn quantize_activations(&self, x: &Tensor) -> Tensor {
        self.a_quant.forward_int(x, &GroupLayout::single())
    }

    /// Serves one batch of raw activations `[B, Cin, H, W]`. Per-call
    /// intermediates come from the executing thread's
    /// [`cq_tensor::arena`], so repeated calls on a warm worker allocate
    /// only the output tensor.
    ///
    /// # Panics
    ///
    /// Panics if the input shape mismatches the plan.
    pub fn infer(&self, x: &Tensor) -> Tensor {
        let mut a_int = arena::take_tensor(x.shape());
        self.a_quant
            .forward_int_into(x, &GroupLayout::single(), &mut a_int);
        let y = self.run(&a_int);
        arena::put_tensor(a_int);
        y
    }

    /// Serves one batch of already-quantized integer activations.
    ///
    /// # Panics
    ///
    /// Panics if the input shape mismatches the plan.
    pub fn infer_quantized(&self, a_int: &Tensor) -> Tensor {
        self.run(a_int)
    }

    /// The shared serving body: pad channels, sweep the grouped conv on
    /// the resolved backend (whole, or as independent per-backend row-tile
    /// shards rejoined by exact scatter), digitize and reduce.
    fn run(&self, a_int: &Tensor) -> Tensor {
        let p = &self.desc.plan;
        let (b, h, w) = (a_int.dim(0), a_int.dim(2), a_int.dim(3));
        let mut a_pad = arena::take_tensor(&[b, p.padded_in_ch, h, w]);
        self.desc.plan.pad_channels_into(a_int, &mut a_pad);
        let oh = conv_out_dim(h, p.kh, self.desc.stride, self.desc.pad);
        let ow = conv_out_dim(w, p.kw, self.desc.stride, self.desc.pad);
        let shape = [b, p.num_row_tiles * p.out_ch, oh, ow];
        let mut psums: Vec<Tensor> = (0..p.num_splits)
            .map(|_| arena::take_tensor(&shape))
            .collect();
        let tiles = p.num_row_tiles;
        match &self.shard {
            Some(se) => self.sharded_psums(se, &a_pad, &mut psums),
            None if self.active.integer() => {
                let iw = self
                    .int_weights
                    .as_deref()
                    .expect("integer backend resolved without panels");
                self.pipeline.grouped_psums_int_into(
                    self.active.as_ref(),
                    &a_pad,
                    iw,
                    0..tiles,
                    &mut psums,
                );
            }
            None => {
                let s = ConvShape::new(
                    a_pad.shape(),
                    &[tiles * p.out_ch, p.ch_per_array, p.kh, p.kw],
                    self.desc.stride,
                    self.desc.pad,
                    tiles,
                );
                let mut col = arena::take_f32(s.col_rows() * s.col_cols());
                self.pipeline.grouped_psums_into(
                    self.active.as_ref(),
                    &a_pad,
                    &self.grouped_weights,
                    &mut psums,
                    &mut col,
                );
                arena::put_f32(col);
            }
        }
        let y = if self.desc.psum_quant {
            let dig = AdcDigitizer::new(self.adc, &self.desc.psum_scales, &self.desc.plan);
            if self.desc.digital_splits > 0 {
                let dig = HybridDigitizer::new(dig, self.desc.digital_splits);
                self.pipeline.reduce(&psums, &dig)
            } else {
                self.pipeline.reduce(&psums, &dig)
            }
        } else {
            self.pipeline.reduce(&psums, &IdealDigitizer)
        };
        for ps in psums {
            arena::put_tensor(ps);
        }
        arena::put_tensor(a_pad);
        y
    }

    /// Row-tile sharded front-end: every shard computes its groups'
    /// partial sums on its assigned backend as an executor task (shard
    /// scratch from the executing worker's arena) and scatters them —
    /// exact copies, never re-summed — straight into its pre-split blocks
    /// of the full per-split tensors, so the subsequent reduce runs in the
    /// canonical unsharded operation order regardless of placement.
    fn sharded_psums(&self, se: &ShardExec, a_pad: &Tensor, psums: &mut [Tensor]) {
        let p = &self.desc.plan;
        let int_weights = self.int_weights.as_deref();
        let (b, h, w) = (a_pad.dim(0), a_pad.dim(2), a_pad.dim(3));
        let oh = conv_out_dim(h, p.kh, self.desc.stride, self.desc.pad);
        let ow = conv_out_dim(w, p.kw, self.desc.stride, self.desc.pad);
        let inner = oh * ow;
        let n_shards = se.plan.num_shards();
        // Pre-split every full per-split tensor into its (batch element ×
        // shard) destination blocks, so each shard task owns the disjoint
        // canonical-layout slices it rejoins into.
        let mut dst: Vec<Vec<Vec<&mut [f32]>>> = (0..n_shards)
            .map(|_| (0..p.num_splits).map(|_| Vec::with_capacity(b)).collect())
            .collect();
        for (s, ps) in psums.iter_mut().enumerate() {
            let mut rest: &mut [f32] = ps.data_mut();
            for _bi in 0..b {
                for (sh, tiles) in se.plan.iter().enumerate() {
                    let blk = tiles.len() * p.out_ch * inner;
                    let (head, tail) = rest.split_at_mut(blk);
                    dst[sh][s].push(head);
                    rest = tail;
                }
            }
            debug_assert!(rest.is_empty(), "shard blocks must tile the psum tensor");
        }
        exec::scope(|sc| {
            for ((tiles, sb), mut task_dst) in se.plan.iter().zip(se.shards.iter()).zip(dst) {
                let pipeline = &self.pipeline;
                let desc = &self.desc;
                sc.spawn(move || {
                    let len = tiles.len();
                    let mut a_shard = arena::take_tensor(&[b, len * p.ch_per_array, h, w]);
                    pipeline.slice_padded_row_tiles(a_pad, tiles.clone(), &mut a_shard);
                    let mut sps: Vec<Tensor> = (0..p.num_splits)
                        .map(|_| arena::take_tensor(&[b, len * p.out_ch, oh, ow]))
                        .collect();
                    if sb.backend.integer() {
                        let iw = int_weights.expect("integer shard placed without panels");
                        pipeline.grouped_psums_int_into(
                            sb.backend.as_ref(),
                            &a_shard,
                            iw,
                            tiles.clone(),
                            &mut sps,
                        );
                    } else {
                        let s = ConvShape::new(
                            a_shard.shape(),
                            &[len * p.out_ch, p.ch_per_array, p.kh, p.kw],
                            desc.stride,
                            desc.pad,
                            len,
                        );
                        let mut col = arena::take_f32(s.col_rows() * s.col_cols());
                        pipeline.grouped_psums_shard_into(
                            sb.backend.as_ref(),
                            &a_shard,
                            &sb.weights,
                            tiles.clone(),
                            &mut sps,
                            &mut col,
                        );
                        arena::put_f32(col);
                    }
                    let blk = len * p.out_ch * inner;
                    for (sp, d) in sps.iter().zip(task_dst.iter_mut()) {
                        for (bi, db) in d.iter_mut().enumerate() {
                            db.copy_from_slice(&sp.data()[bi * blk..(bi + 1) * blk]);
                        }
                    }
                    for t in sps {
                        arena::put_tensor(t);
                    }
                    arena::put_tensor(a_shard);
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CimConfig, CrossbarLayer, TilingPlan};
    use cq_tensor::CqRng;

    fn small_desc(psum_quant: bool) -> QuantizedConv {
        let cfg = CimConfig::tiny();
        let (in_ch, out_ch, k) = (7, 5, 3);
        let plan = TilingPlan::new(&cfg, in_ch, out_ch, k, k);
        let mut rng = CqRng::new(42);
        let w_int = rng
            .uniform_tensor(&[out_ch, in_ch, k, k], -4.0, 4.0)
            .map(|v| v.floor().clamp(-4.0, 3.0));
        let weight_scales: Vec<f32> = (0..plan.num_row_tiles * out_ch)
            .map(|i| 0.02 + 0.003 * i as f32)
            .collect();
        let psum_scales: Vec<f32> = (0..plan.num_splits * plan.num_row_tiles * out_ch)
            .map(|i| 1.0 + 0.1 * (i % 7) as f32)
            .collect();
        QuantizedConv {
            w_int,
            bit_split: cfg.bit_split(),
            plan,
            stride: 1,
            pad: 1,
            act_scale: 0.05,
            act_format: cfg.act_format(),
            weight_scales,
            psum_scales,
            psum_format: cfg.psum_format(),
            psum_quant,
            digital_splits: 0,
            bias: Some(vec![0.1, -0.2, 0.0, 0.3, -0.1]),
        }
    }

    /// The prepared fast-emulation path must equal the explicit crossbar
    /// engine bit-for-bit, with and without partial-sum quantization.
    #[test]
    fn prepared_matches_crossbar_engine() {
        for psq in [false, true] {
            let desc = small_desc(psq);
            let engine = CrossbarLayer::new(desc.clone());
            let prepared = PreparedConv::new(desc);
            let mut rng = CqRng::new(7);
            let x = rng.normal_tensor(&[2, 7, 6, 6], 1.0).map(|v| v.max(0.0));
            let a_int = prepared.quantize_activations(&x);
            let slow = engine.forward(&a_int);
            let fast = prepared.infer(&x);
            assert_eq!(fast, slow, "psq={psq}");
        }
    }

    /// Hybrid (ADC-less low-split) digitization stays bit-identical
    /// between the prepared path and the crossbar engine, across every
    /// backend and under row-tile sharding, while differing from the
    /// pure-ADC path.
    #[test]
    fn hybrid_digitization_is_bit_exact_across_paths() {
        let mut desc = small_desc(true);
        desc.digital_splits = 1;
        let engine = CrossbarLayer::new(desc.clone());
        let prepared = PreparedConv::new(desc.clone());
        let mut rng = CqRng::new(53);
        let x = rng.normal_tensor(&[2, 7, 6, 6], 1.0).map(|v| v.max(0.0));
        let a_int = prepared.quantize_activations(&x);
        let want = prepared.infer(&x);
        assert_eq!(want, engine.forward(&a_int), "prepared vs crossbar");
        let pure_adc = PreparedConv::new(small_desc(true));
        assert_ne!(want, pure_adc.infer(&x), "hybrid must skip low-split ADC");
        let mut scalar = PreparedConv::new(desc.clone());
        scalar.set_backends(BackendSet::scalar()).unwrap();
        assert_eq!(scalar.infer(&x), want, "scalar backend");
        let mut int_forced = PreparedConv::new(desc.clone());
        int_forced.set_psum_kernel(PsumKernel::Int).unwrap();
        assert_eq!(int_forced.infer(&x), want, "integer backend");
        let mut sharded = PreparedConv::new(desc);
        sharded.set_row_tile_shards(Some(2));
        assert_eq!(sharded.infer(&x), want, "sharded");
        assert_eq!(sharded.infer(&x), want, "warm-arena sharded");
    }

    /// Serving repeatedly on one thread (so every call reuses the same
    /// warm arena buffers) must be idempotent bit-for-bit, including
    /// across interleaved input shapes.
    #[test]
    fn arena_reuse_is_bit_stable() {
        let prepared = PreparedConv::new(small_desc(true));
        let mut rng = CqRng::new(9);
        let a = rng.normal_tensor(&[1, 7, 6, 6], 1.0).map(|v| v.max(0.0));
        let b = rng.normal_tensor(&[3, 7, 4, 4], 1.0).map(|v| v.max(0.0));
        let ya1 = prepared.infer(&a);
        let yb1 = prepared.infer(&b);
        let ya2 = prepared.infer(&a);
        let yb2 = prepared.infer(&b);
        assert_eq!(ya1, ya2);
        assert_eq!(yb1, yb2);
    }

    /// A slice transform (the variation hook) must change the output, and
    /// the identity transform must not.
    #[test]
    fn slice_transform_hook_applies() {
        let desc = small_desc(true);
        let plain = PreparedConv::new(desc.clone());
        let identity = PreparedConv::with_slice_transform(desc.clone(), |_, s| s);
        let scaled = PreparedConv::with_slice_transform(desc, |_, s| s.scale(1.5));
        let mut rng = CqRng::new(11);
        let x = rng.normal_tensor(&[1, 7, 6, 6], 1.0).map(|v| v.max(0.0));
        assert_eq!(plain.infer(&x), identity.infer(&x));
        assert_ne!(plain.infer(&x), scaled.infer(&x));
    }

    /// Row-tile sharded execution must be bit-identical to the unsharded
    /// path for every shard count — including counts above the number of
    /// row tiles — with and without psum quantization, and across warm
    /// (arena-reusing) repeat calls.
    #[test]
    fn row_tile_sharding_is_bit_exact() {
        for psq in [false, true] {
            let desc = small_desc(psq);
            let tiles = desc.plan.num_row_tiles; // 3 for the tiny config
            assert!(tiles > 1, "test needs a multi-tile layer");
            let baseline = PreparedConv::new(desc.clone());
            let mut rng = CqRng::new(31);
            let x = rng.normal_tensor(&[2, 7, 6, 6], 1.0).map(|v| v.max(0.0));
            let want = baseline.infer(&x);
            for n in [1usize, 2, 7] {
                let mut sharded = PreparedConv::new(desc.clone());
                sharded.set_row_tile_shards(Some(n));
                assert_eq!(sharded.row_tile_shards(), n.min(tiles));
                let got1 = sharded.infer(&x);
                let got2 = sharded.infer(&x);
                assert_eq!(got1, want, "shards={n} psq={psq}");
                assert_eq!(got2, want, "warm-arena shards={n} psq={psq}");
                sharded.set_row_tile_shards(None);
                assert_eq!(sharded.row_tile_shards(), 1);
                assert_eq!(sharded.infer(&x), want, "disable diverged");
            }
        }
    }

    /// Backend selection is pure speed: every backend (and the legacy
    /// kernel-family selectors) must equal the forced-f32 path
    /// bit-for-bit, sharded or not, with and without psum quantization.
    #[test]
    fn integer_kernel_is_bit_exact_and_selectable() {
        for psq in [false, true] {
            let desc = small_desc(psq);
            let mut f32_forced = PreparedConv::new(desc.clone());
            f32_forced.set_psum_kernel(PsumKernel::F32).unwrap();
            assert!(!f32_forced.integer_kernel_active());
            assert_eq!(f32_forced.active_backend(), BackendKind::SimdF32);
            let mut int_forced = PreparedConv::new(desc.clone());
            int_forced.set_psum_kernel(PsumKernel::Int).unwrap();
            assert!(int_forced.integer_kernel_active());
            assert_eq!(int_forced.active_backend(), BackendKind::IntPanels);
            let mut scalar = PreparedConv::new(desc.clone());
            scalar.set_backends(BackendSet::scalar()).unwrap();
            assert_eq!(scalar.active_backend(), BackendKind::Scalar);
            let mut auto = PreparedConv::new(desc.clone());
            auto.set_psum_kernel(PsumKernel::Auto).unwrap();
            assert_eq!(auto.psum_kernel(), PsumKernel::Auto);
            assert!(auto.integer_kernel_active(), "clean slices must qualify");
            let mut rng = CqRng::new(17);
            let x = rng.normal_tensor(&[2, 7, 6, 6], 1.0).map(|v| v.max(0.0));
            let want = f32_forced.infer(&x);
            assert_eq!(int_forced.infer(&x), want, "psq={psq}");
            assert_eq!(scalar.infer(&x), want, "scalar psq={psq}");
            assert_eq!(auto.infer(&x), want, "psq={psq}");
            // Sharded integer path.
            let mut sharded = PreparedConv::new(desc);
            sharded.set_psum_kernel(PsumKernel::Int).unwrap();
            sharded.set_row_tile_shards(Some(2));
            assert_eq!(sharded.infer(&x), want, "sharded int psq={psq}");
            assert_eq!(sharded.infer(&x), want, "warm-arena sharded int psq={psq}");
        }
    }

    /// A placement-aware shard plan running every shard on a *different*
    /// backend must rejoin bit-exactly, and re-selecting the chain must
    /// rebuild shard state without drift.
    #[test]
    fn mixed_backend_placement_is_bit_exact() {
        for psq in [false, true] {
            let desc = small_desc(psq);
            let tiles = desc.plan.num_row_tiles;
            assert_eq!(tiles, 3, "tiny config must have 3 row tiles");
            let baseline = PreparedConv::new(desc.clone());
            let mut rng = CqRng::new(47);
            let x = rng.normal_tensor(&[2, 7, 6, 6], 1.0).map(|v| v.max(0.0));
            let want = baseline.infer(&x);
            let mut placed = PreparedConv::new(desc.clone());
            let plan = ShardPlan::split(tiles, 3).with_placement(vec![
                BackendKind::IntPanels,
                BackendKind::Scalar,
                BackendKind::SimdF32,
            ]);
            placed.set_shard_plan(Some(plan.clone())).unwrap();
            assert_eq!(placed.shard_plan(), Some(&plan));
            assert_eq!(placed.infer(&x), want, "mixed placement psq={psq}");
            assert_eq!(placed.infer(&x), want, "warm-arena mixed placement");
            // Chain re-selection rebuilds shard artifacts consistently.
            placed.set_backends(BackendSet::f32()).unwrap();
            assert_eq!(placed.infer(&x), want, "rebuilt shards diverged");
            // A trivial placed plan pins the whole sweep onto one backend.
            let mut pinned = PreparedConv::new(desc);
            pinned
                .set_shard_plan(Some(
                    ShardPlan::split(tiles, 1).with_placement(vec![BackendKind::Scalar]),
                ))
                .unwrap();
            assert_eq!(pinned.infer(&x), want, "pinned scalar shard psq={psq}");
        }
    }

    /// A variation-style slice transform disqualifies the integer path:
    /// `Auto` falls back to f32 (bit-identical to forcing f32) and `Int`
    /// is rejected.
    #[test]
    fn variation_falls_back_to_f32() {
        let desc = small_desc(true);
        let mut auto = PreparedConv::with_slice_transform(desc.clone(), |_, s| s.scale(1.37));
        auto.set_psum_kernel(PsumKernel::Auto).unwrap();
        assert!(
            !auto.integer_kernel_active(),
            "off-integer slices must disqualify the integer kernel"
        );
        let mut f32_forced = PreparedConv::with_slice_transform(desc, |_, s| s.scale(1.37));
        f32_forced.set_psum_kernel(PsumKernel::F32).unwrap();
        let mut rng = CqRng::new(19);
        let x = rng.normal_tensor(&[1, 7, 6, 6], 1.0).map(|v| v.max(0.0));
        assert_eq!(auto.infer(&x), f32_forced.infer(&x));
    }

    /// Forcing the integer backend on variation-perturbed slices is a
    /// recoverable error (the PR 5 `ConfigError` convention), and an
    /// integer placement on such a layer is rejected the same way —
    /// leaving the previous configuration intact either way.
    #[test]
    fn ineligible_backend_selection_is_an_error() {
        let mut prepared =
            PreparedConv::with_slice_transform(small_desc(false), |_, s| s.scale(1.37));
        prepared.set_psum_kernel(PsumKernel::F32).unwrap();
        let err = prepared.set_psum_kernel(PsumKernel::Int).unwrap_err();
        assert_eq!(err, BackendError::NoBackend(vec![BackendKind::IntPanels]));
        assert!(err.to_string().contains("not integer-eligible"));
        assert_eq!(prepared.psum_kernel(), PsumKernel::F32, "config clobbered");
        let tiles = prepared.desc().plan.num_row_tiles;
        let err = prepared
            .set_shard_plan(Some(
                ShardPlan::split(tiles, 2)
                    .with_placement(vec![BackendKind::IntPanels, BackendKind::SimdF32]),
            ))
            .unwrap_err();
        assert_eq!(err, BackendError::Unsupported(BackendKind::IntPanels));
        assert_eq!(prepared.row_tile_shards(), 1, "shard state clobbered");
    }

    #[test]
    #[should_panic(expected = "weight scale table")]
    fn invalid_description_rejected() {
        let mut desc = small_desc(false);
        desc.weight_scales.pop();
        let _ = PreparedConv::new(desc);
    }
}
