//! Memory-cell variation model (paper Sec. IV-E, Eq. (5), after Charan et
//! al. [11]): programmed values are perturbed multiplicatively by a
//! log-normal factor, `w_var = w · e^θ`, `θ ~ N(0, σ)`.

use cq_tensor::{CqRng, Tensor};

/// Applies log-normal multiplicative noise to every element: `v · e^θ`.
///
/// With `sigma == 0` the tensor is returned unchanged (bit-exact), which
/// the variation sweeps rely on for their σ = 0 anchor point.
pub fn apply_lognormal(t: &Tensor, sigma: f32, rng: &mut CqRng) -> Tensor {
    assert!(sigma >= 0.0, "negative variation sigma {sigma}");
    let mut out = t.clone();
    apply_lognormal_in_place(&mut out, sigma, rng);
    out
}

/// In-place variant of [`apply_lognormal`].
pub fn apply_lognormal_in_place(t: &mut Tensor, sigma: f32, rng: &mut CqRng) {
    assert!(sigma >= 0.0, "negative variation sigma {sigma}");
    if sigma == 0.0 {
        return;
    }
    for v in t.data_mut() {
        *v *= rng.lognormal_factor(sigma);
    }
}

/// The standard-deviation sweep used in the paper's Fig. 10.
pub const FIG10_SIGMAS: [f32; 6] = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigma_zero_is_identity() {
        let mut rng = CqRng::new(1);
        let t = Tensor::from_vec(vec![1.0, -2.0, 3.5], &[3]);
        assert_eq!(apply_lognormal(&t, 0.0, &mut rng), t);
    }

    #[test]
    fn preserves_sign_and_zero() {
        let mut rng = CqRng::new(2);
        let t = Tensor::from_vec(vec![-4.0, 0.0, 4.0, -1.0, 1.0, 0.0], &[6]);
        let v = apply_lognormal(&t, 0.25, &mut rng);
        for (a, b) in t.data().iter().zip(v.data()) {
            assert_eq!(a.signum(), b.signum(), "{a} -> {b}");
            if *a == 0.0 {
                assert_eq!(*b, 0.0, "zero cells stay zero");
            }
        }
    }

    #[test]
    fn noise_magnitude_scales_with_sigma() {
        let base = Tensor::ones(&[5000]);
        let mut r1 = CqRng::new(3);
        let mut r2 = CqRng::new(3);
        let small = apply_lognormal(&base, 0.05, &mut r1);
        let large = apply_lognormal(&base, 0.25, &mut r2);
        let dev = |t: &Tensor| {
            t.data().iter().map(|v| (v - 1.0).abs() as f64).sum::<f64>() / t.numel() as f64
        };
        assert!(
            dev(&large) > 3.0 * dev(&small),
            "{} vs {}",
            dev(&large),
            dev(&small)
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let t = Tensor::from_vec((0..32).map(|i| i as f32).collect(), &[32]);
        let a = apply_lognormal(&t, 0.1, &mut CqRng::new(7));
        let b = apply_lognormal(&t, 0.1, &mut CqRng::new(7));
        assert_eq!(a, b);
    }
}
