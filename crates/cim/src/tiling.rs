//! The paper's **kernel-intact array tiling** (Sec. III-C, Fig. 2(a) and
//! Fig. 5).
//!
//! A convolution weight `[OC, Cin, K, K]` is im2col-stretched so each
//! logical column holds one kernel of length `Cin·K²`. Rows beyond the
//! array height must be tiled; the naive im2col tiling cuts kernels at
//! arbitrary row boundaries, while the paper's method chooses the tiling
//! stride so that *whole kernels* (a whole number of input channels) land
//! in each array. Each row tile then becomes one **group** of a group
//! convolution, which is what removes the sequential-array indexing
//! bottleneck.
//!
//! Columns are tiled too: every logical column occupies `n_split` physical
//! columns (one per bit-split), so an array fits
//! `floor(cols / n_split)` output channels.

use crate::CimConfig;
use cq_quant::{Granularity, GroupLayout};
use cq_tensor::Tensor;
use std::ops::Range;

/// Placement of one convolution layer onto CIM arrays.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TilingPlan {
    /// Input channels of the layer.
    pub in_ch: usize,
    /// Output channels of the layer.
    pub out_ch: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Input channels whose stretched kernels fit in one array
    /// (`floor(rows / (kh·kw))`, capped at `in_ch`).
    pub ch_per_array: usize,
    /// Number of row tiles (`n_array` in the paper's row direction).
    pub num_row_tiles: usize,
    /// `ch_per_array · num_row_tiles ≥ in_ch`; trailing channels of the
    /// last tile are zero-padded.
    pub padded_in_ch: usize,
    /// Rows actually used in each array (`ch_per_array · kh · kw`).
    pub rows_used: usize,
    /// Number of bit-splits (physical columns per logical column).
    pub num_splits: usize,
    /// Output channels per column tile (`floor(cols / n_split)`, capped at
    /// `out_ch`).
    pub oc_per_col_tile: usize,
    /// Number of column tiles.
    pub num_col_tiles: usize,
}

impl TilingPlan {
    /// Plans the kernel-intact tiling of a `[out_ch, in_ch, kh, kw]` conv
    /// layer onto arrays described by `cfg`.
    ///
    /// # Panics
    ///
    /// Panics if a single stretched kernel (`kh·kw` rows) does not fit in
    /// one array, or any dimension is zero.
    pub fn new(cfg: &CimConfig, in_ch: usize, out_ch: usize, kh: usize, kw: usize) -> Self {
        cfg.validate();
        assert!(in_ch > 0 && out_ch > 0 && kh > 0 && kw > 0, "empty layer");
        let kk = kh * kw;
        assert!(
            kk <= cfg.array_rows,
            "a {kh}x{kw} kernel needs {kk} rows but the array has {} — kernel-intact tiling impossible",
            cfg.array_rows
        );
        let ch_per_array = (cfg.array_rows / kk).min(in_ch);
        let num_row_tiles = in_ch.div_ceil(ch_per_array);
        let num_splits = cfg.num_splits();
        assert!(
            num_splits <= cfg.array_cols,
            "one logical column needs {num_splits} physical columns but the array has {}",
            cfg.array_cols
        );
        let oc_per_col_tile = (cfg.array_cols / num_splits).min(out_ch);
        let num_col_tiles = out_ch.div_ceil(oc_per_col_tile);
        TilingPlan {
            in_ch,
            out_ch,
            kh,
            kw,
            ch_per_array,
            num_row_tiles,
            padded_in_ch: ch_per_array * num_row_tiles,
            rows_used: ch_per_array * kk,
            num_splits,
            oc_per_col_tile,
            num_col_tiles,
        }
    }

    /// Total number of arrays: row tiles × column tiles.
    pub fn num_arrays(&self) -> usize {
        self.num_row_tiles * self.num_col_tiles
    }

    /// Row tile holding input channel `cin`.
    ///
    /// # Panics
    ///
    /// Panics if `cin >= in_ch`.
    pub fn row_tile_of_channel(&self, cin: usize) -> usize {
        assert!(cin < self.in_ch, "channel {cin} out of range");
        cin / self.ch_per_array
    }

    /// Input channels assigned to row tile `g` (clipped to real channels;
    /// the remainder of the tile is zero padding).
    ///
    /// # Panics
    ///
    /// Panics if `g >= num_row_tiles`.
    pub fn channels_of_row_tile(&self, g: usize) -> Range<usize> {
        assert!(g < self.num_row_tiles, "row tile {g} out of range");
        let start = g * self.ch_per_array;
        start..(start + self.ch_per_array).min(self.in_ch)
    }

    /// Column tile holding output channel `oc`.
    ///
    /// # Panics
    ///
    /// Panics if `oc >= out_ch`.
    pub fn col_tile_of_output(&self, oc: usize) -> usize {
        assert!(oc < self.out_ch, "output channel {oc} out of range");
        oc / self.oc_per_col_tile
    }

    /// Output channels assigned to column tile `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t >= num_col_tiles`.
    pub fn outputs_of_col_tile(&self, t: usize) -> Range<usize> {
        assert!(t < self.num_col_tiles, "col tile {t} out of range");
        let start = t * self.oc_per_col_tile;
        start..(start + self.oc_per_col_tile).min(self.out_ch)
    }

    /// Number of row tiles a *naive* im2col tiling would need (kernels
    /// allowed to straddle arrays): `ceil(in_ch·kh·kw / rows)`. Used by the
    /// framework benchmarks as the baseline.
    pub fn naive_row_tiles(cfg: &CimConfig, in_ch: usize, kh: usize, kw: usize) -> usize {
        (in_ch * kh * kw).div_ceil(cfg.array_rows)
    }

    /// Fraction of array rows left unused by kernel-intact tiling (the
    /// price paid for never splitting a kernel).
    pub fn row_utilization(&self, cfg: &CimConfig) -> f64 {
        self.rows_used as f64 / cfg.array_rows as f64
    }

    /// Zero-pads the channels of `[B, in_ch, H, W]` activations up to
    /// `padded_in_ch` into a reused buffer (kernel-intact tiling rounds
    /// channels up to whole arrays; the padding lanes must stay zero).
    /// `out` is reallocated on shape change and its padding lanes are
    /// re-zeroed on reuse. This is the one implementation of the padding
    /// layout both conv execution paths share.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not `[B, in_ch, H, W]`.
    pub fn pad_channels_into(&self, a: &Tensor, out: &mut Tensor) {
        assert_eq!(a.rank(), 4, "input must be [B,C,H,W]");
        assert_eq!(a.dim(1), self.in_ch, "input channels vs plan");
        let (b, c, h, w) = (a.dim(0), a.dim(1), a.dim(2), a.dim(3));
        let pc = self.padded_in_ch;
        let shape = [b, pc, h, w];
        if out.shape() != shape {
            *out = Tensor::zeros(&shape);
        }
        let chw = c * h * w;
        let pchw = pc * h * w;
        for bi in 0..b {
            out.data_mut()[bi * pchw..bi * pchw + chw]
                .copy_from_slice(&a.data()[bi * chw..(bi + 1) * chw]);
            // Only the padding lanes need re-zeroing on reuse; the data
            // lanes were just overwritten (this runs on every serve of
            // every conv, so don't clear the whole buffer).
            out.data_mut()[bi * pchw + chw..(bi + 1) * pchw].fill(0.0);
        }
    }

    /// Group layout for **weight** quantization at `gran` over a
    /// `[out_ch, in_ch, kh, kw]` tensor.
    ///
    /// * `Layer`: one group.
    /// * `Array`: one group per (row tile, column tile).
    /// * `Column`: one group per logical column, i.e. per
    ///   (row tile, output channel), shared across bit-splits so the
    ///   integer weight reassembles exactly.
    pub fn weight_layout(&self, gran: Granularity) -> GroupLayout {
        match gran {
            Granularity::Layer => GroupLayout::single(),
            Granularity::Array => {
                let mut map = Vec::with_capacity(self.out_ch * self.in_ch);
                for oc in 0..self.out_ch {
                    let t = self.col_tile_of_output(oc);
                    for cin in 0..self.in_ch {
                        let g = self.row_tile_of_channel(cin);
                        map.push((g * self.num_col_tiles + t) as u32);
                    }
                }
                GroupLayout::channelwise_with_groups(self.kh * self.kw, map, self.num_arrays())
            }
            Granularity::Column => {
                let mut map = Vec::with_capacity(self.out_ch * self.in_ch);
                for oc in 0..self.out_ch {
                    for cin in 0..self.in_ch {
                        let g = self.row_tile_of_channel(cin);
                        map.push((g * self.out_ch + oc) as u32);
                    }
                }
                GroupLayout::channelwise_with_groups(
                    self.kh * self.kw,
                    map,
                    self.num_row_tiles * self.out_ch,
                )
            }
        }
    }

    /// Total number of **weight** scale factors at `gran`.
    pub fn weight_group_count(&self, gran: Granularity) -> usize {
        match gran {
            Granularity::Layer => 1,
            Granularity::Array => self.num_arrays(),
            Granularity::Column => self.num_row_tiles * self.out_ch,
        }
    }

    /// Group layout for **partial-sum** quantization at `gran`, for the
    /// split-`s` partial-sum tensor `[B, num_row_tiles·out_ch, OH, OW]`
    /// (channel = `g·out_ch + oc`), with `inner` spatial elements per
    /// channel.
    ///
    /// * `Layer`: one group shared by every split.
    /// * `Array`: one group per (row tile, column tile), shared by splits.
    /// * `Column`: one group per **physical** column, i.e. per
    ///   (split, row tile, output channel) — `n_split · n_array · n_oc`
    ///   scales, exactly the paper's accounting.
    ///
    /// # Panics
    ///
    /// Panics if `split >= num_splits`.
    pub fn psum_layout(&self, gran: Granularity, split: usize, inner: usize) -> GroupLayout {
        assert!(split < self.num_splits, "split {split} out of range");
        let channels = self.num_row_tiles * self.out_ch;
        match gran {
            Granularity::Layer => GroupLayout::single(),
            Granularity::Array => {
                let mut map = Vec::with_capacity(channels);
                for g in 0..self.num_row_tiles {
                    for oc in 0..self.out_ch {
                        let t = self.col_tile_of_output(oc);
                        map.push((g * self.num_col_tiles + t) as u32);
                    }
                }
                GroupLayout::channelwise_with_groups(inner, map, self.num_arrays())
            }
            Granularity::Column => {
                let mut map = Vec::with_capacity(channels);
                for g in 0..self.num_row_tiles {
                    for oc in 0..self.out_ch {
                        map.push(((split * self.num_row_tiles + g) * self.out_ch + oc) as u32);
                    }
                }
                GroupLayout::channelwise_with_groups(
                    inner,
                    map,
                    self.num_splits * self.num_row_tiles * self.out_ch,
                )
            }
        }
    }

    /// Total number of **partial-sum** scale factors at `gran`.
    pub fn psum_group_count(&self, gran: Granularity) -> usize {
        match gran {
            Granularity::Layer => 1,
            Granularity::Array => self.num_arrays(),
            Granularity::Column => self.num_splits * self.num_row_tiles * self.out_ch,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CimConfig {
        CimConfig::cifar10() // 128x128, 3 splits
    }

    #[test]
    fn resnet20_layer_plans() {
        // Conv 16->16, 3x3 on 128-row arrays: 14 channels per array.
        let p = TilingPlan::new(&cfg(), 16, 16, 3, 3);
        assert_eq!(p.ch_per_array, 14);
        assert_eq!(p.num_row_tiles, 2);
        assert_eq!(p.padded_in_ch, 28);
        assert_eq!(p.rows_used, 126);
        // 3 splits -> 42 logical columns per array; 16 oc fit in one tile.
        assert_eq!(p.oc_per_col_tile, 16);
        assert_eq!(p.num_col_tiles, 1);
        assert_eq!(p.num_arrays(), 2);

        // Conv 64->64: ceil(64/14) = 5 row tiles.
        let p = TilingPlan::new(&cfg(), 64, 64, 3, 3);
        assert_eq!(p.num_row_tiles, 5);
        // 64 oc need ceil(64/42) = 2 column tiles.
        assert_eq!(p.num_col_tiles, 2);
        assert_eq!(p.num_arrays(), 10);
    }

    #[test]
    fn small_layer_fits_single_array() {
        let p = TilingPlan::new(&cfg(), 3, 16, 3, 3);
        assert_eq!(p.ch_per_array, 3);
        assert_eq!(p.num_row_tiles, 1);
        assert_eq!(p.padded_in_ch, 3);
        assert_eq!(p.num_arrays(), 1);
    }

    #[test]
    fn kernel_never_straddles_arrays() {
        // The defining invariant of kernel-intact tiling: all kh*kw rows of
        // any (channel, kernel) pair live in the same row tile.
        for in_ch in [3usize, 14, 15, 16, 64, 100] {
            let p = TilingPlan::new(&cfg(), in_ch, 8, 3, 3);
            for cin in 0..in_ch {
                let g = p.row_tile_of_channel(cin);
                assert!(p.channels_of_row_tile(g).contains(&cin));
            }
            // Channels of tiles partition 0..in_ch.
            let mut seen = vec![false; in_ch];
            for g in 0..p.num_row_tiles {
                for c in p.channels_of_row_tile(g) {
                    assert!(!seen[c], "channel {c} in two tiles");
                    seen[c] = true;
                }
            }
            assert!(seen.iter().all(|&s| s), "in_ch={in_ch}");
        }
    }

    #[test]
    fn naive_tiling_uses_fewer_or_equal_arrays_but_breaks_kernels() {
        let c = cfg();
        // 64 channels * 9 = 576 rows; naive: ceil(576/128) = 5 tiles,
        // kernel-intact also 5 — but e.g. 15 channels: naive 2 vs intact 2;
        // 29 channels * 9 = 261 -> naive 3, intact ceil(29/14) = 3.
        assert_eq!(TilingPlan::naive_row_tiles(&c, 64, 3, 3), 5);
        let p = TilingPlan::new(&c, 64, 8, 3, 3);
        assert!(p.num_row_tiles >= TilingPlan::naive_row_tiles(&c, 64, 3, 3));
        assert!(p.row_utilization(&c) > 0.9);
    }

    #[test]
    #[should_panic(expected = "kernel-intact tiling impossible")]
    fn oversized_kernel_panics() {
        let mut c = CimConfig::tiny();
        c.array_rows = 8;
        let _ = TilingPlan::new(&c, 3, 4, 3, 3);
    }

    #[test]
    fn pad_channels_into_zero_pads_and_reuses() {
        let p = TilingPlan::new(&cfg(), 16, 8, 3, 3); // padded_in_ch = 28
        let a = Tensor::full(&[2, 16, 3, 3], 2.5);
        let mut out = Tensor::zeros(&[1]); // wrong shape on purpose
        p.pad_channels_into(&a, &mut out);
        assert_eq!(out.shape(), &[2, 28, 3, 3]);
        for bi in 0..2 {
            for ch in 0..28 {
                let want = if ch < 16 { 2.5 } else { 0.0 };
                assert_eq!(out.at(&[bi, ch, 1, 1]), want, "b={bi} ch={ch}");
            }
        }
        // Reuse with dirty padding lanes: they must be re-zeroed.
        let idx = out.idx4(0, 20, 0, 0);
        out.data_mut()[idx] = 9.0;
        p.pad_channels_into(&a, &mut out);
        assert_eq!(out.at(&[0, 20, 0, 0]), 0.0, "stale padding lane");
    }

    #[test]
    fn weight_layout_column_groups() {
        let p = TilingPlan::new(&cfg(), 16, 8, 3, 3); // 2 row tiles
        let l = p.weight_layout(Granularity::Column);
        assert_eq!(l.num_groups(), 2 * 8);
        // Element (oc=3, cin=0, *, *) is row tile 0 -> group 0*8+3 = 3.
        // Flat channel index = oc*in_ch + cin = 48.
        assert_eq!(l.group_of_channel(48), 3);
        // (oc=3, cin=15) is row tile 1 -> group 8+3 = 11.
        assert_eq!(l.group_of_channel(3 * 16 + 15), 11);
        assert_eq!(p.weight_group_count(Granularity::Column), 16);
    }

    #[test]
    fn weight_layout_array_groups() {
        let p = TilingPlan::new(&cfg(), 16, 8, 3, 3);
        let l = p.weight_layout(Granularity::Array);
        assert_eq!(l.num_groups(), p.num_arrays());
        assert_eq!(p.weight_group_count(Granularity::Array), 2);
        // All ocs share the array group determined by cin's row tile.
        assert_eq!(l.group_of_channel(0), 0); // oc0, cin0
        assert_eq!(l.group_of_channel(15), 1); // oc0, cin15
    }

    #[test]
    fn psum_layout_column_distinct_per_split() {
        let p = TilingPlan::new(&cfg(), 16, 8, 3, 3); // 2 row tiles, 3 splits
        let total = p.psum_group_count(Granularity::Column);
        assert_eq!(total, 3 * 2 * 8);
        let l0 = p.psum_layout(Granularity::Column, 0, 4);
        let l2 = p.psum_layout(Granularity::Column, 2, 4);
        assert_eq!(l0.num_groups(), total);
        assert_eq!(l2.num_groups(), total);
        // Same (g, oc) channel maps to different groups per split.
        assert_ne!(l0.group_of_channel(5), l2.group_of_channel(5));
        // Layer psum layout is shared across splits.
        let ll = p.psum_layout(Granularity::Layer, 1, 4);
        assert_eq!(ll.num_groups(), 1);
    }

    #[test]
    fn psum_layout_array_shared_across_splits() {
        let p = TilingPlan::new(&cfg(), 64, 64, 3, 3); // 5 row, 2 col tiles
        let a0 = p.psum_layout(Granularity::Array, 0, 1);
        let a1 = p.psum_layout(Granularity::Array, 1, 1);
        assert_eq!(a0, a1, "array psum groups must not depend on split");
        assert_eq!(a0.num_groups(), 10);
        // Channel (g=2, oc=50): col tile of oc 50 with 42 oc/tile is 1.
        let ch = 2 * 64 + 50;
        assert_eq!(a0.group_of_channel(ch), 2 * 2 + 1);
    }
}
