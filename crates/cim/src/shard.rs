//! Shard planning for intra-model parallelism.
//!
//! Column-wise psum quantization keeps every row tile's shift-add
//! contribution independent until the final merged dequantization, and
//! every layer in this workspace processes batch elements independently.
//! Both properties make a sweep splittable into **shards** — contiguous
//! ranges of row tiles (within one convolution) or of batch rows (within
//! one coalesced serving sweep) — that execute on different threads or
//! serve workers and rejoin **bit-exactly**: shard outputs are scattered
//! (exact copies, never re-summed) back into the canonical layout before
//! the fixed-order accumulation runs.
//!
//! [`ShardPlan`] is the one implementation of that partitioning; the
//! prepared conv executor uses it over row tiles and the `cq-serve` shard
//! pool uses it over the rows of an oversized sweep.

use cq_tensor::BackendKind;
use std::ops::Range;

/// A partition of `0..num_items` into contiguous, disjoint, covering
/// shards (each non-empty), optionally **placement-aware**: each shard
/// may carry the [`BackendKind`] it should execute on (see
/// [`ShardPlan::with_placement`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    num_items: usize,
    shards: Vec<Range<usize>>,
    placement: Option<Vec<BackendKind>>,
}

impl ShardPlan {
    /// Splits `num_items` into (up to) `num_shards` contiguous shards of
    /// near-equal size: sizes differ by at most one, earlier shards take
    /// the remainder. A shard count larger than `num_items` is clamped —
    /// shards are never empty.
    ///
    /// # Panics
    ///
    /// Panics if `num_items == 0` or `num_shards == 0`.
    pub fn split(num_items: usize, num_shards: usize) -> Self {
        assert!(num_items > 0, "nothing to shard");
        assert!(num_shards > 0, "need at least one shard");
        let n = num_shards.min(num_items);
        let (base, extra) = (num_items / n, num_items % n);
        let mut shards = Vec::with_capacity(n);
        let mut start = 0;
        for i in 0..n {
            let len = base + usize::from(i < extra);
            shards.push(start..start + len);
            start += len;
        }
        debug_assert_eq!(start, num_items);
        Self {
            num_items,
            shards,
            placement: None,
        }
    }

    /// Assigns each shard an execution backend, in shard order. The
    /// consumer (e.g. `PreparedConv::set_shard_plan`) validates that every
    /// assigned backend actually supports the layer; unplaced plans run
    /// every shard on the layer's resolved backend.
    ///
    /// # Panics
    ///
    /// Panics if `placement.len() != self.num_shards()`.
    #[must_use]
    pub fn with_placement(mut self, placement: Vec<BackendKind>) -> Self {
        assert_eq!(placement.len(), self.shards.len(), "one backend per shard");
        self.placement = Some(placement);
        self
    }

    /// The per-shard backend assignments, if placed.
    pub fn placement(&self) -> Option<&[BackendKind]> {
        self.placement.as_deref()
    }

    /// Shard `i`'s backend assignment (`None` when the plan is unplaced).
    pub fn backend_of(&self, i: usize) -> Option<BackendKind> {
        self.placement.as_ref().map(|p| p[i])
    }

    /// Splits `num_items` into the fewest shards of at most `max_shard`
    /// items each (`ceil(num_items / max_shard)` shards, balanced like
    /// [`ShardPlan::split`]).
    ///
    /// # Panics
    ///
    /// Panics if `num_items == 0` or `max_shard == 0`.
    pub fn split_max(num_items: usize, max_shard: usize) -> Self {
        assert!(max_shard > 0, "max shard size must be positive");
        Self::split(num_items, num_items.div_ceil(max_shard))
    }

    /// The partitioned item count.
    pub fn num_items(&self) -> usize {
        self.num_items
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard ranges, ascending and contiguous.
    pub fn shards(&self) -> &[Range<usize>] {
        &self.shards
    }

    /// Iterates the shard ranges.
    pub fn iter(&self) -> impl Iterator<Item = Range<usize>> + '_ {
        self.shards.iter().cloned()
    }

    /// Whether the plan is a single shard (sharding is a no-op).
    pub fn is_trivial(&self) -> bool {
        self.shards.len() == 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_balanced_and_covering() {
        let p = ShardPlan::split(10, 3);
        assert_eq!(p.shards(), &[0..4, 4..7, 7..10]);
        assert_eq!(p.num_shards(), 3);
        assert_eq!(p.num_items(), 10);
        assert!(!p.is_trivial());
    }

    #[test]
    fn oversubscribed_split_clamps_to_items() {
        let p = ShardPlan::split(2, 7);
        assert_eq!(p.shards(), &[0..1, 1..2]);
        assert!(ShardPlan::split(1, 7).is_trivial());
    }

    #[test]
    fn split_max_bounds_shard_size() {
        let p = ShardPlan::split_max(10, 4);
        assert_eq!(p.num_shards(), 3);
        assert!(p.iter().all(|r| r.len() <= 4));
        assert!(ShardPlan::split_max(3, 8).is_trivial());
    }

    #[test]
    #[should_panic(expected = "nothing to shard")]
    fn empty_split_rejected() {
        let _ = ShardPlan::split(0, 1);
    }

    #[test]
    fn placement_attaches_per_shard_backends() {
        let p = ShardPlan::split(5, 2);
        assert_eq!(p.placement(), None);
        assert_eq!(p.backend_of(0), None);
        let placed = p
            .clone()
            .with_placement(vec![BackendKind::IntPanels, BackendKind::Scalar]);
        assert_eq!(placed.backend_of(0), Some(BackendKind::IntPanels));
        assert_eq!(placed.backend_of(1), Some(BackendKind::Scalar));
        assert_ne!(p, placed, "placement participates in plan equality");
    }

    #[test]
    #[should_panic(expected = "one backend per shard")]
    fn placement_length_mismatch_rejected() {
        let _ = ShardPlan::split(5, 2).with_placement(vec![BackendKind::Scalar]);
    }
}
