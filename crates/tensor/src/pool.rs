//! Pooling operators (average, max, global average) with explicit backward
//! passes, used by the ResNet models.

use crate::conv::conv_out_dim;
use crate::Tensor;

/// Average pooling over `[B, C, H, W]` with a square kernel.
///
/// Returns `[B, C, OH, OW]`.
///
/// # Panics
///
/// Panics if the input is not rank 4 or the kernel does not fit.
pub fn avg_pool2d(input: &Tensor, kernel: usize, stride: usize) -> Tensor {
    assert_eq!(input.rank(), 4, "avg_pool2d input must be [B,C,H,W]");
    let (b, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let oh = conv_out_dim(h, kernel, stride, 0);
    let ow = conv_out_dim(w, kernel, stride, 0);
    let mut out = Tensor::zeros(&[b, c, oh, ow]);
    let norm = 1.0 / (kernel * kernel) as f32;
    for bi in 0..b {
        for ci in 0..c {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut acc = 0.0;
                    for ki in 0..kernel {
                        for kj in 0..kernel {
                            acc += input.data()
                                [input.idx4(bi, ci, ohi * stride + ki, owi * stride + kj)];
                        }
                    }
                    let oi = out.idx4(bi, ci, ohi, owi);
                    out.data_mut()[oi] = acc * norm;
                }
            }
        }
    }
    out
}

/// Backward of [`avg_pool2d`]: spreads each output gradient uniformly over
/// its pooling window.
///
/// # Panics
///
/// Panics on shape inconsistencies.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    input_shape: &[usize],
    kernel: usize,
    stride: usize,
) -> Tensor {
    assert_eq!(input_shape.len(), 4);
    let (b, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    let oh = conv_out_dim(h, kernel, stride, 0);
    let ow = conv_out_dim(w, kernel, stride, 0);
    assert_eq!(grad_out.shape(), &[b, c, oh, ow], "grad_out shape");
    let mut dx = Tensor::zeros(input_shape);
    let norm = 1.0 / (kernel * kernel) as f32;
    for bi in 0..b {
        for ci in 0..c {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let g = grad_out.data()[grad_out.idx4(bi, ci, ohi, owi)] * norm;
                    for ki in 0..kernel {
                        for kj in 0..kernel {
                            let di = dx.idx4(bi, ci, ohi * stride + ki, owi * stride + kj);
                            dx.data_mut()[di] += g;
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Max pooling; returns the pooled tensor and the flat input index of each
/// maximum (for the backward pass).
///
/// # Panics
///
/// Panics if the input is not rank 4 or the kernel does not fit.
pub fn max_pool2d(
    input: &Tensor,
    kernel: usize,
    stride: usize,
    pad: usize,
) -> (Tensor, Vec<usize>) {
    assert_eq!(input.rank(), 4, "max_pool2d input must be [B,C,H,W]");
    let (b, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let oh = conv_out_dim(h, kernel, stride, pad);
    let ow = conv_out_dim(w, kernel, stride, pad);
    let mut out = Tensor::zeros(&[b, c, oh, ow]);
    let mut idx = vec![0usize; b * c * oh * ow];
    for bi in 0..b {
        for ci in 0..c {
            for ohi in 0..oh {
                for owi in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0usize;
                    for ki in 0..kernel {
                        for kj in 0..kernel {
                            let ih = (ohi * stride + ki) as isize - pad as isize;
                            let iw = (owi * stride + kj) as isize - pad as isize;
                            if ih < 0 || iw < 0 || ih as usize >= h || iw as usize >= w {
                                // Zero padding participates with value 0.
                                if 0.0 > best {
                                    best = 0.0;
                                    best_i = usize::MAX;
                                }
                                continue;
                            }
                            let fi = input.idx4(bi, ci, ih as usize, iw as usize);
                            let v = input.data()[fi];
                            if v > best {
                                best = v;
                                best_i = fi;
                            }
                        }
                    }
                    let oi = out.idx4(bi, ci, ohi, owi);
                    out.data_mut()[oi] = best;
                    idx[oi] = best_i;
                }
            }
        }
    }
    (out, idx)
}

/// Backward of [`max_pool2d`]: routes each output gradient to the argmax
/// position recorded in `indices` (padding positions, recorded as
/// `usize::MAX`, receive nothing).
///
/// # Panics
///
/// Panics if `indices` length mismatches `grad_out`.
pub fn max_pool2d_backward(grad_out: &Tensor, indices: &[usize], input_shape: &[usize]) -> Tensor {
    assert_eq!(grad_out.numel(), indices.len(), "indices length");
    let mut dx = Tensor::zeros(input_shape);
    for (g, &i) in grad_out.data().iter().zip(indices) {
        if i != usize::MAX {
            dx.data_mut()[i] += g;
        }
    }
    dx
}

/// Global average pooling `[B, C, H, W] -> [B, C]`.
///
/// # Panics
///
/// Panics if the input is not rank 4.
pub fn global_avg_pool(input: &Tensor) -> Tensor {
    assert_eq!(input.rank(), 4, "global_avg_pool input must be [B,C,H,W]");
    let (b, c, h, w) = (input.dim(0), input.dim(1), input.dim(2), input.dim(3));
    let hw = (h * w) as f32;
    let mut out = Tensor::zeros(&[b, c]);
    for bi in 0..b {
        for ci in 0..c {
            let base = (bi * c + ci) * h * w;
            let s: f32 = input.data()[base..base + h * w].iter().sum();
            out.data_mut()[bi * c + ci] = s / hw;
        }
    }
    out
}

/// Backward of [`global_avg_pool`].
///
/// # Panics
///
/// Panics on shape inconsistencies.
pub fn global_avg_pool_backward(grad_out: &Tensor, input_shape: &[usize]) -> Tensor {
    assert_eq!(input_shape.len(), 4);
    let (b, c, h, w) = (
        input_shape[0],
        input_shape[1],
        input_shape[2],
        input_shape[3],
    );
    assert_eq!(grad_out.shape(), &[b, c], "grad_out shape");
    let mut dx = Tensor::zeros(input_shape);
    let inv = 1.0 / (h * w) as f32;
    for bi in 0..b {
        for ci in 0..c {
            let g = grad_out.data()[bi * c + ci] * inv;
            let base = (bi * c + ci) * h * w;
            for v in &mut dx.data_mut()[base..base + h * w] {
                *v = g;
            }
        }
    }
    dx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_known_values() {
        let x = Tensor::from_vec((1..=16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let y = avg_pool2d(&x, 2, 2);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[3.5, 5.5, 11.5, 13.5]);
    }

    #[test]
    fn avg_pool_backward_uniform() {
        let g = Tensor::ones(&[1, 1, 2, 2]);
        let dx = avg_pool2d_backward(&g, &[1, 1, 4, 4], 2, 2);
        assert!(dx.data().iter().all(|&v| (v - 0.25).abs() < 1e-7));
        assert!((dx.sum() - g.sum()).abs() < 1e-5, "gradient mass preserved");
    }

    #[test]
    fn max_pool_forward_and_backward() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 5.0, 4.0, 3.0, 0.0, -1.0, 2.0, 7.0, 1.0, 0.0, 0.0, 2.0, 3.0, 1.0, 6.0,
            ],
            &[1, 1, 4, 4],
        );
        let (y, idx) = max_pool2d(&x, 2, 2, 0);
        assert_eq!(y.data(), &[3.0, 5.0, 7.0, 6.0]);
        let g = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let dx = max_pool2d_backward(&g, &idx, &[1, 1, 4, 4]);
        assert_eq!(dx.at(&[0, 0, 1, 0]), 1.0); // 3.0 was at (1,0)
        assert_eq!(dx.at(&[0, 0, 0, 2]), 2.0); // 5.0 at (0,2)
        assert_eq!(dx.at(&[0, 0, 2, 0]), 3.0); // 7.0 at (2,0)
        assert_eq!(dx.at(&[0, 0, 3, 3]), 4.0); // 6.0 at (3,3)
        assert_eq!(dx.sum(), 10.0);
    }

    #[test]
    fn max_pool_with_padding_prefers_positive_values() {
        let x = Tensor::from_vec(vec![-1.0; 9], &[1, 1, 3, 3]);
        let (y, idx) = max_pool2d(&x, 3, 3, 1);
        // All real values are -1; zero padding wins.
        assert_eq!(y.data(), &[0.0]);
        assert_eq!(idx[0], usize::MAX);
        let dx = max_pool2d_backward(&Tensor::ones(&[1, 1, 1, 1]), &idx, &[1, 1, 3, 3]);
        assert_eq!(dx.sum(), 0.0, "gradient into padding is dropped");
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let x = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[2, 3, 2, 2]);
        let y = global_avg_pool(&x);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.at(&[0, 0]), 1.5);
        assert_eq!(y.at(&[1, 2]), 21.5);
        let g = Tensor::ones(&[2, 3]);
        let dx = global_avg_pool_backward(&g, x.shape());
        assert!((dx.sum() - 6.0).abs() < 1e-5);
        assert!((dx.at(&[0, 0, 0, 0]) - 0.25).abs() < 1e-7);
    }
}
