//! Persistent, `CQ_THREADS`-capped executor for every parallel kernel in the
//! workspace.
//!
//! Before this module existed each GEMM / psum-pipeline call forked fresh OS
//! threads through `std::thread::scope` and joined them at the end of the
//! call — seven spawn sites across `cq-tensor`, `cq-cim` and `cq-core`, each
//! paying the fork/join cost per request. [`scope`] keeps the familiar
//! borrow-friendly structure of `std::thread::scope` (spawn closures that
//! borrow the caller's stack, panics propagate to the caller) but runs the
//! closures on one shared, lazily-started worker pool sized by
//! [`max_threads`], so steady-state serving spawns **zero** threads per
//! request.
//!
//! # Scheduling, not arithmetic
//!
//! The executor moves *where* a task runs, never *what* it computes. Every
//! call site splits its output into disjoint `&mut` chunks and each chunk's
//! arithmetic is a fixed serial order, so results are bit-identical for any
//! pool size — the same invariant the psum reduce order relies on.
//!
//! # Waiting callers help
//!
//! A thread blocked in [`scope`] does not idle: while its tasks are
//! outstanding it pops and runs queued jobs (its own or other scopes').
//! This makes nested scopes safe — a pool worker that opens a scope of its
//! own (a pipelined conv wave whose GEMMs fan out again) can never deadlock
//! the pool, because a scope only sleeps once the queue is empty, at which
//! point all of its remaining tasks are already running on other threads.
//!
//! # Backends
//!
//! [`set_backend`] switches between the default pooled executor and a
//! spawn-per-call reference backend that forks one OS thread per task, used
//! by the throughput benchmark to measure what the pool saves. The switch is
//! process-global and intended for single-threaded A/B harnesses only.
//! [`os_threads_spawned`] counts every OS thread either backend has ever
//! created; on the pooled path the count stops moving once the pool is warm,
//! which the benchmark asserts.

use std::any::Any;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

use crate::matmul::max_threads;

/// Count of OS threads ever spawned by this module (pool workers and
/// spawn-per-call backend threads alike). Steady-state serving on the pooled
/// backend leaves this flat; the throughput benchmark asserts exactly that.
static OS_THREADS_SPAWNED: AtomicUsize = AtomicUsize::new(0);

/// Total OS threads the executor has created since process start.
pub fn os_threads_spawned() -> usize {
    OS_THREADS_SPAWNED.load(Ordering::Relaxed)
}

/// Which machinery [`scope`] uses to run spawned tasks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The persistent shared worker pool (default).
    Pooled,
    /// One fresh OS thread per spawned task — the pre-executor behaviour,
    /// kept as a reference point for the throughput benchmark.
    SpawnPerCall,
}

static BACKEND: AtomicU8 = AtomicU8::new(0);

/// Selects the executor backend. Process-global; meant for single-threaded
/// benchmark harnesses that A/B the pooled path against spawn-per-call, not
/// for concurrent use.
pub fn set_backend(b: Backend) {
    BACKEND.store(
        match b {
            Backend::Pooled => 0,
            Backend::SpawnPerCall => 1,
        },
        Ordering::Relaxed,
    );
}

/// The currently selected executor backend.
pub fn backend() -> Backend {
    match BACKEND.load(Ordering::Relaxed) {
        0 => Backend::Pooled,
        _ => Backend::SpawnPerCall,
    }
}

/// A queued unit of work. Jobs are always the panic-catching wrappers built
/// by [`Scope::spawn`], so running one can never unwind into a worker.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct PoolQueue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<PoolQueue>,
    work_ready: Condvar,
    threads: usize,
}

impl PoolShared {
    /// Pops and runs one queued job. Returns `false` if the queue was empty.
    fn try_run_one(&self) -> bool {
        let job = self.queue.lock().unwrap().jobs.pop_front();
        match job {
            Some(job) => {
                job();
                true
            }
            None => false,
        }
    }

    fn push(&self, job: Job) {
        let mut q = self.queue.lock().unwrap();
        q.jobs.push_back(job);
        drop(q);
        self.work_ready.notify_one();
    }
}

/// A fixed-width worker pool executing [`scope`] tasks.
///
/// One process-wide pool (sized by [`max_threads`], i.e. the `CQ_THREADS`
/// cap) is started lazily on first use and lives for the life of the
/// process. Tests that need a specific width create their own with
/// [`ExecPool::with_threads`] and route a closure through it with
/// [`ExecPool::install`].
pub struct ExecPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ExecPool {
    /// Starts a standalone pool with exactly `threads` workers (minimum 1).
    pub fn with_threads(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            queue: Mutex::new(PoolQueue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            threads,
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                OS_THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
                std::thread::Builder::new()
                    .name(format!("cq-exec-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("spawn executor worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads in this pool.
    pub fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Runs `f` with this pool installed as the calling thread's executor:
    /// every [`scope`] reached from `f` (including from tasks that end up
    /// running on this pool's workers) uses this pool instead of the global
    /// one. The previous installation is restored on return.
    pub fn install<R>(&self, f: impl FnOnce() -> R) -> R {
        let prev = CURRENT_POOL.with(|c| c.replace(Some(Arc::clone(&self.shared))));
        let restore = RestorePool(prev);
        let r = f();
        drop(restore);
        r
    }
}

impl Drop for ExecPool {
    fn drop(&mut self) {
        {
            let mut q = self.shared.queue.lock().unwrap();
            q.shutdown = true;
        }
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Restores the caller's previous pool installation even if `f` unwinds.
struct RestorePool(Option<Arc<PoolShared>>);

impl Drop for RestorePool {
    fn drop(&mut self) {
        let prev = self.0.take();
        CURRENT_POOL.with(|c| *c.borrow_mut() = prev);
    }
}

thread_local! {
    /// The pool this thread submits to: set for the lifetime of a worker
    /// thread, or temporarily by [`ExecPool::install`]. `None` means the
    /// process-global pool.
    static CURRENT_POOL: RefCell<Option<Arc<PoolShared>>> = const { RefCell::new(None) };
}

fn worker_loop(shared: Arc<PoolShared>) {
    CURRENT_POOL.with(|c| *c.borrow_mut() = Some(Arc::clone(&shared)));
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    break job;
                }
                if q.shutdown {
                    return;
                }
                q = shared.work_ready.wait(q).unwrap();
            }
        };
        // Jobs are panic-catching wrappers (see `Scope::spawn`), so this
        // cannot unwind and kill the worker.
        job();
    }
}

fn global_pool() -> &'static ExecPool {
    static GLOBAL: OnceLock<ExecPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ExecPool::with_threads(max_threads()))
}

fn current_pool() -> Arc<PoolShared> {
    if let Some(p) = CURRENT_POOL.with(|c| c.borrow().clone()) {
        return p;
    }
    Arc::clone(&global_pool().shared)
}

/// Shared completion state for one [`scope`] call.
struct ScopeState {
    sync: Mutex<ScopeSync>,
    done: Condvar,
}

struct ScopeSync {
    pending: usize,
    panic: Option<Box<dyn Any + Send + 'static>>,
}

/// Handle passed to the closure given to [`scope`]; tasks are spawned
/// through it exactly as with `std::thread::Scope`.
pub struct Scope<'env> {
    pool: Arc<PoolShared>,
    state: Arc<ScopeState>,
    spawn_per_call: bool,
    // Invariant over 'env, mirroring std::thread::Scope: spawned closures
    // may borrow from the environment both immutably and mutably.
    _env: PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'env> {
    /// Submits `f` to the executor. Like `std::thread::Scope::spawn`, `f`
    /// may borrow anything that outlives the enclosing [`scope`] call; the
    /// scope does not return until every spawned task has finished.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        {
            let mut sync = self.state.sync.lock().unwrap();
            sync.pending += 1;
        }
        let state = Arc::clone(&self.state);
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            // `f` and its borrows are dead here; only the ('static) panic
            // payload, if any, survives past this point.
            let mut sync = state.sync.lock().unwrap();
            if let Err(p) = result {
                sync.panic.get_or_insert(p);
            }
            sync.pending -= 1;
            state.done.notify_all();
        });
        // SAFETY: the job's only non-'static captures are borrows living at
        // least 'env. `scope` does not return (even on panic in the body or
        // in a task) until `pending` drops to zero, i.e. until this job has
        // run to the point where `f` and everything it borrowed is dropped.
        // The queue never outlives the job: it is popped exactly once.
        // This is the same lifetime-erasure argument `std::thread::scope`
        // makes for its implicit join.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Box<dyn FnOnce() + Send>>(job)
        };
        if self.spawn_per_call {
            OS_THREADS_SPAWNED.fetch_add(1, Ordering::Relaxed);
            std::thread::Builder::new()
                .name("cq-spawn".into())
                .spawn(job)
                .expect("spawn reference-backend thread");
        } else {
            self.pool.push(job);
        }
    }
}

/// Runs `body` with a [`Scope`] handle, waits for every task it spawned
/// (helping to run queued work while waiting), and propagates the first
/// panic — from the body or from any task — to the caller.
///
/// Drop-in replacement for `std::thread::scope` on the workspace's
/// disjoint-chunk kernels: same borrowing rules, same panic semantics, but
/// tasks run on the persistent pool instead of fresh OS threads.
pub fn scope<'env, F, R>(body: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let scope = Scope {
        pool: current_pool(),
        state: Arc::new(ScopeState {
            sync: Mutex::new(ScopeSync {
                pending: 0,
                panic: None,
            }),
            done: Condvar::new(),
        }),
        spawn_per_call: backend() == Backend::SpawnPerCall,
        _env: PhantomData,
    };
    // The body may panic after spawning tasks; those tasks still borrow the
    // environment, so we must wait for them before unwinding out.
    let result = catch_unwind(AssertUnwindSafe(|| body(&scope)));

    // Wait for all tasks, running queued jobs while any are outstanding.
    // Once the queue is empty every remaining task of ours is already
    // executing on another thread, so blocking on the condvar is safe: each
    // completion notifies `done`.
    loop {
        let pending = { scope.state.sync.lock().unwrap().pending };
        if pending == 0 {
            break;
        }
        if !scope.pool.try_run_one() {
            let mut sync = scope.state.sync.lock().unwrap();
            while sync.pending > 0 {
                sync = scope.state.done.wait(sync).unwrap();
            }
        }
    }

    let task_panic = scope.state.sync.lock().unwrap().panic.take();
    match result {
        Err(body_panic) => resume_unwind(body_panic),
        Ok(r) => {
            if let Some(p) = task_panic {
                resume_unwind(p);
            }
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_runs_borrowed_tasks() {
        let mut out = vec![0usize; 64];
        let base = 7usize;
        scope(|s| {
            for (i, chunk) in out.chunks_mut(16).enumerate() {
                let base = &base;
                s.spawn(move || {
                    for (j, v) in chunk.iter_mut().enumerate() {
                        *v = base + i * 16 + j;
                    }
                });
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, 7 + i);
        }
    }

    #[test]
    fn nested_scopes_complete() {
        let mut out = [0u32; 32];
        scope(|s| {
            for chunk in out.chunks_mut(8) {
                s.spawn(move || {
                    scope(|inner| {
                        for sub in chunk.chunks_mut(2) {
                            inner.spawn(move || {
                                for v in sub.iter_mut() {
                                    *v = 1;
                                }
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(out.iter().sum::<u32>(), 32);
    }

    #[test]
    fn panic_in_task_propagates_and_pool_survives() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| panic!("task boom"));
            });
        }));
        assert!(r.is_err());
        // Pool still serves work after a task panicked.
        let mut v = vec![0u8; 4];
        scope(|s| {
            for b in v.chunks_mut(1) {
                s.spawn(move || b[0] = 1);
            }
        });
        assert_eq!(v, vec![1u8; 4]);
    }

    #[test]
    fn panic_in_body_waits_for_tasks() {
        let flag = std::sync::atomic::AtomicBool::new(false);
        let r = catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|| {
                    std::thread::sleep(std::time::Duration::from_millis(20));
                    flag.store(true, Ordering::SeqCst);
                });
                panic!("body boom");
            });
        }));
        assert!(r.is_err());
        // The spawned task must have finished before scope unwound.
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn install_routes_to_custom_pool() {
        let pool = ExecPool::with_threads(2);
        assert_eq!(pool.threads(), 2);
        let mut out = vec![0usize; 8];
        pool.install(|| {
            scope(|s| {
                for (i, chunk) in out.chunks_mut(2).enumerate() {
                    s.spawn(move || chunk.fill(i));
                }
            });
        });
        assert_eq!(out, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn steady_state_spawns_no_threads() {
        // Warm the pool, then check repeated scopes leave the counter flat.
        scope(|s| s.spawn(|| {}));
        let before = os_threads_spawned();
        for _ in 0..32 {
            let mut v = [0u8; 8];
            scope(|s| {
                for b in v.chunks_mut(2) {
                    s.spawn(move || b.fill(1));
                }
            });
            assert_eq!(v, [1u8; 8]);
        }
        assert_eq!(os_threads_spawned(), before);
    }
}
