//! Integer GEMM kernels for exact small-integer arithmetic carried in
//! `i8 × i8 → i32`, plus the freeze-time panel repacking they stream
//! through.
//!
//! The CIM partial-sum front-end multiplies tiny integers — a bit-split
//! weight slice (a couple of bits) by a quantized activation — yet the
//! f32 path pays full-width float multiply-accumulate for it. This module
//! provides the integer alternative:
//!
//! * [`PackedPanels`] — a weight matrix repacked **once** into
//!   fixed-width row panels of [`PANEL_ROWS`] rows, k-major interleaved
//!   (the CPU analogue of cuBLASLt's `COL32` ampere layouts): the inner
//!   kernel streams one contiguous panel while revisiting a register-band
//!   of output rows, and the layout is chosen at freeze time so serving
//!   never repacks.
//! * [`im2col_i8`] — the i8 twin of the f32 im2col used by
//!   [`conv2d_grouped`](crate::conv2d_grouped), quartering patch-matrix
//!   write traffic.
//! * [`widen_i8_to_i32`] — widens an i8 activation matrix to the i32
//!   operand the kernel streams (done once per image/group, shared by
//!   every bit-split's GEMM).
//! * [`igemm_into`] — the `i8 × i32 → i32` accumulation kernel itself, a
//!   plain axpy loop written so the autovectorizer emits SIMD
//!   multiply-add, with strength reduction for the `±1` weights that
//!   dominate low-bit slices.
//! * [`accum_to_f32`] / [`shift_add_into`] — the exact `i32 → f32`
//!   epilogues: psums are integers well inside f32's 24-bit mantissa, so
//!   converting (and optionally shift-adding across bit-splits) is
//!   bit-identical to having run the whole chain in f32.
//!
//! Everything here is plain safe Rust; the unit tests pin each piece
//! against the f32 kernels bit-for-bit.

use crate::conv::ConvShape;

/// Rows per weight panel (the register-blocking height `MR`).
pub const PANEL_ROWS: usize = 4;

/// A row-major `[rows, k]` integer weight matrix repacked into
/// [`PANEL_ROWS`]-row panels.
///
/// Panel `p` covers rows `[p·MR, min((p+1)·MR, rows))`; within a panel the
/// storage is **k-major**: for each `kk` the `MR` lane values
/// `a[(p·MR + lane), kk]` sit contiguously (tail lanes of a short final
/// panel are zero-padded). [`igemm_into`] streams this layout linearly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedPanels {
    rows: usize,
    k: usize,
    max_abs: i32,
    data: Vec<i8>,
}

impl PackedPanels {
    /// Packs a row-major `[rows, k]` matrix of f32-carried integers.
    ///
    /// Returns `None` if any value is not an exact integer in
    /// `[-128, 127]` — the caller's cue to stay on the f32 path (e.g.
    /// when device variation has perturbed weight slices off-integer).
    ///
    /// # Panics
    ///
    /// Panics if `a.len() != rows * k`.
    pub fn pack(rows: usize, k: usize, a: &[f32]) -> Option<Self> {
        assert_eq!(a.len(), rows * k, "panel source length");
        let num_panels = rows.div_ceil(PANEL_ROWS).max(1);
        let mut data = vec![0i8; num_panels * k * PANEL_ROWS];
        let mut max_abs = 0i32;
        for (i, &v) in a.iter().enumerate() {
            if v != v.round() || !(-128.0..=127.0).contains(&v) {
                return None;
            }
            let q = v as i32;
            max_abs = max_abs.max(q.abs());
            let (row, kk) = (i / k, i % k);
            let (p, lane) = (row / PANEL_ROWS, row % PANEL_ROWS);
            data[(p * k + kk) * PANEL_ROWS + lane] = q as i8;
        }
        Some(Self {
            rows,
            k,
            max_abs,
            data,
        })
    }

    /// Logical row count of the packed matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Inner (`k`) dimension of the packed matrix.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Largest absolute packed value (for accumulator-range checks).
    pub fn max_abs(&self) -> i32 {
        self.max_abs
    }
}

/// Writes the i8 im2col matrix for channels `[c_start, c_start + c_len)`
/// of one image into `col` (shape `[c_len·kh·kw, out_h·out_w]`,
/// row-major) — the integer twin of the f32 im2col inside
/// [`conv2d_grouped`](crate::conv2d_grouped), producing the identical
/// patch matrix for integer-valued inputs.
///
/// `img` is the `[C, H, W]` slice of a single image whose values must be
/// exact integers in `[-128, 127]` (quantized activations are; debug
/// builds assert it).
pub fn im2col_i8(img: &[f32], c_start: usize, c_len: usize, s: &ConvShape, col: &mut [i8]) {
    let (h, w) = (s.in_h, s.in_w);
    let ohw = s.out_h * s.out_w;
    debug_assert_eq!(col.len(), c_len * s.kh * s.kw * ohw);
    for c_local in 0..c_len {
        let ch = &img[(c_start + c_local) * h * w..(c_start + c_local + 1) * h * w];
        for ki in 0..s.kh {
            for kj in 0..s.kw {
                let row = ((c_local * s.kh + ki) * s.kw + kj) * ohw;
                for oh in 0..s.out_h {
                    let ih = (oh * s.stride + ki) as isize - s.pad as isize;
                    let dst = &mut col[row + oh * s.out_w..row + (oh + 1) * s.out_w];
                    if ih < 0 || ih as usize >= h {
                        dst.fill(0);
                        continue;
                    }
                    let src_row = &ch[ih as usize * w..(ih as usize + 1) * w];
                    for (ow, d) in dst.iter_mut().enumerate() {
                        let iw = (ow * s.stride + kj) as isize - s.pad as isize;
                        *d = if iw < 0 || iw as usize >= w {
                            0
                        } else {
                            let v = src_row[iw as usize];
                            debug_assert!(
                                v == v.round() && (-128.0..=127.0).contains(&v),
                                "activation {v} is not an i8 integer"
                            );
                            v as i8
                        };
                    }
                }
            }
        }
    }
}

/// Widens an i8 matrix to the i32 operand [`igemm_into`] streams.
///
/// Done once per image/group and shared by every bit-split's GEMM, this
/// keeps the hot kernel free of lane-width conversions.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn widen_i8_to_i32(src: &[i8], dst: &mut [i32]) {
    assert_eq!(src.len(), dst.len(), "widen buffer length");
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s as i32;
    }
}

/// `C[rows,n] += A · B` where `A` is a [`PackedPanels`] weight matrix and
/// `b` is the row-major `[k, n]` widened activation matrix.
///
/// Per panel the kernel walks the k-major lane quads and performs one
/// axpy over the contiguous output row per non-zero weight — long
/// unit-stride loops the autovectorizer turns into SIMD adds. The `±1`
/// weights (the bulk of low-bit slices) are strength-reduced to pure
/// add/sub axpys, which matters because packed i32 multiply is the one
/// SIMD op the x86-64 baseline lacks; wider magnitudes keep the scalar
/// multiply arm rather than more match arms, which benchmarked worse
/// (a 7-way dispatch mispredicts more than it saves).
///
/// The caller guarantees accumulators stay within i32 (see
/// [`PackedPanels::max_abs`]); all CIM psum configurations are orders of
/// magnitude inside the range.
///
/// # Panics
///
/// Panics if `b` or `c` lengths disagree with the panel geometry.
pub fn igemm_into(a: &PackedPanels, b: &[i32], n: usize, c: &mut [i32]) {
    let (rows, k) = (a.rows, a.k);
    assert_eq!(b.len(), k * n, "B buffer length");
    assert_eq!(c.len(), rows * n, "C buffer length");
    for (p, panel) in a.data.chunks_exact(k * PANEL_ROWS).enumerate() {
        let r0 = p * PANEL_ROWS;
        let band = (rows - r0).min(PANEL_ROWS);
        for (kk, lanes) in panel.chunks_exact(PANEL_ROWS).enumerate() {
            let brow = &b[kk * n..(kk + 1) * n];
            for (lane, &wq) in lanes.iter().take(band).enumerate() {
                let w = wq as i32;
                if w == 0 {
                    continue;
                }
                let crow = &mut c[(r0 + lane) * n..(r0 + lane + 1) * n];
                match w {
                    1 => {
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += bv;
                        }
                    }
                    -1 => {
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv -= bv;
                        }
                    }
                    _ => {
                        for (cv, &bv) in crow.iter_mut().zip(brow) {
                            *cv += w * bv;
                        }
                    }
                }
            }
        }
    }
}

/// Exact `i32 → f32` epilogue: overwrites `out` with the accumulator
/// values. Bit-identical to an f32 computation of the same sums for
/// accumulators inside the 24-bit mantissa (debug builds assert it).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn accum_to_f32(acc: &[i32], out: &mut [f32]) {
    assert_eq!(acc.len(), out.len(), "epilogue buffer length");
    for (o, &v) in out.iter_mut().zip(acc) {
        debug_assert!(v.unsigned_abs() < 1 << 24, "psum {v} exceeds f32 exactness");
        *o = v as f32;
    }
}

/// Shift-add `i32 → f32` epilogue: `out[i] += (acc[i] as f32) · shift` —
/// folds one bit-split's accumulator into a running f32 output with its
/// `2^(cb·s)` shift weight. Exact under the same mantissa bound as
/// [`accum_to_f32`].
///
/// # Panics
///
/// Panics if lengths differ.
pub fn shift_add_into(acc: &[i32], shift: f32, out: &mut [f32]) {
    assert_eq!(acc.len(), out.len(), "epilogue buffer length");
    for (o, &v) in out.iter_mut().zip(acc) {
        debug_assert!(v.unsigned_abs() < 1 << 24, "psum {v} exceeds f32 exactness");
        *o += (v as f32) * shift;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{conv2d_grouped, gemm_nn_acc, Tensor};

    fn int_filled(len: usize, seed: u64, lo: i32, hi: i32) -> Vec<f32> {
        let span = (hi - lo + 1) as u64;
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                (lo + ((x >> 33) % span) as i32) as f32
            })
            .collect()
    }

    #[test]
    fn pack_roundtrips_layout() {
        // 5 rows × 3 cols: two panels, second one zero-padded.
        let a: Vec<f32> = (0..15).map(|i| (i as f32) - 7.0).collect();
        let p = PackedPanels::pack(5, 3, &a).unwrap();
        assert_eq!(p.rows(), 5);
        assert_eq!(p.k(), 3);
        assert_eq!(p.max_abs(), 7);
        for row in 0..5 {
            for kk in 0..3 {
                let (pi, lane) = (row / PANEL_ROWS, row % PANEL_ROWS);
                let got = p.data[(pi * 3 + kk) * PANEL_ROWS + lane] as f32;
                assert_eq!(got, a[row * 3 + kk], "row {row} kk {kk}");
            }
        }
        // Padding lanes of the tail panel stay zero.
        for kk in 0..3 {
            for lane in 1..PANEL_ROWS {
                assert_eq!(p.data[(3 + kk) * PANEL_ROWS + lane], 0);
            }
        }
    }

    #[test]
    fn pack_rejects_non_integer_and_out_of_range() {
        assert!(PackedPanels::pack(1, 2, &[1.0, 1.5]).is_none());
        assert!(PackedPanels::pack(1, 2, &[1.0, 129.0]).is_none());
        assert!(PackedPanels::pack(1, 2, &[-129.0, 0.0]).is_none());
        assert!(PackedPanels::pack(1, 2, &[-128.0, 127.0]).is_some());
    }

    #[test]
    fn igemm_matches_f32_gemm() {
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (3, 5, 7), (8, 27, 25), (5, 9, 16)] {
            let a = int_filled(m * k, 1, -4, 3);
            let b = int_filled(k * n, 2, 0, 7);
            let mut want = vec![0.0f32; m * n];
            gemm_nn_acc(m, k, n, &a, &b, &mut want);
            let packed = PackedPanels::pack(m, k, &a).unwrap();
            let b32: Vec<i32> = b.iter().map(|&v| v as i32).collect();
            let mut acc = vec![0i32; m * n];
            igemm_into(&packed, &b32, n, &mut acc);
            let mut got = vec![0.0f32; m * n];
            accum_to_f32(&acc, &mut got);
            assert_eq!(got, want, "m={m} k={k} n={n}");
        }
    }

    #[test]
    fn igemm_accumulates() {
        let a = PackedPanels::pack(2, 2, &[1.0, 2.0, -1.0, 3.0]).unwrap();
        let b32 = vec![1i32, 1, 1, 1];
        let mut acc = vec![10i32; 4];
        igemm_into(&a, &b32, 2, &mut acc);
        assert_eq!(acc, vec![13, 13, 12, 12]);
    }

    /// The full integer chain — im2col-i8, widen, panel igemm, f32
    /// epilogue — reproduces the f32 grouped convolution bit-for-bit on
    /// integer data.
    #[test]
    fn integer_conv_chain_matches_f32_grouped_conv() {
        for &(batch, groups, cg, ocg, hw, kk, stride, pad) in &[
            (
                2usize, 3usize, 2usize, 4usize, 6usize, 3usize, 1usize, 1usize,
            ),
            (1, 1, 3, 5, 5, 3, 2, 1),
            (1, 2, 4, 2, 5, 1, 1, 0),
        ] {
            let c = groups * cg;
            let x = Tensor::from_vec(
                int_filled(batch * c * hw * hw, 11, 0, 7),
                &[batch, c, hw, hw],
            );
            let w = Tensor::from_vec(
                int_filled(groups * ocg * cg * kk * kk, 13, -4, 3),
                &[groups * ocg, cg, kk, kk],
            );
            let want = conv2d_grouped(&x, &w, stride, pad, groups);
            let s = ConvShape::new(x.shape(), w.shape(), stride, pad, groups);
            let (cr, cc) = (s.col_rows(), s.col_cols());
            let mut col = vec![0i8; cr * cc];
            let mut b32 = vec![0i32; cr * cc];
            let mut acc = vec![0i32; ocg * cc];
            let mut got = Tensor::zeros(&[batch, s.out_ch, s.out_h, s.out_w]);
            let panels: Vec<PackedPanels> = (0..groups)
                .map(|g| {
                    PackedPanels::pack(ocg, cr, &w.data()[g * ocg * cr..(g + 1) * ocg * cr])
                        .unwrap()
                })
                .collect();
            let in_img = c * hw * hw;
            let out_img = s.out_ch * cc;
            for b in 0..batch {
                let img = &x.data()[b * in_img..(b + 1) * in_img];
                for (g, panel) in panels.iter().enumerate() {
                    im2col_i8(img, g * cg, cg, &s, &mut col);
                    widen_i8_to_i32(&col, &mut b32);
                    acc.fill(0);
                    igemm_into(panel, &b32, cc, &mut acc);
                    let out_g = &mut got.data_mut()
                        [b * out_img + g * ocg * cc..b * out_img + (g + 1) * ocg * cc];
                    accum_to_f32(&acc, out_g);
                }
            }
            assert_eq!(got, want, "batch={batch} groups={groups} k={kk}");
        }
    }

    #[test]
    fn shift_add_epilogue_is_exact() {
        let acc = vec![3i32, -5, 0, 1 << 20];
        let mut out = vec![1.0f32; 4];
        shift_add_into(&acc, 4.0, &mut out);
        assert_eq!(out, vec![13.0, -19.0, 1.0, 4194305.0]);
    }
}
