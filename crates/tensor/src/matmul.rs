//! Blocked, optionally multi-threaded matrix multiplication kernels.
//!
//! Three entry points cover every GEMM orientation this workspace needs
//! (forward conv, input gradient, weight gradient) without strided views:
//!
//! * [`matmul`]      — `C[m,n] = A[m,k] · B[k,n]`
//! * [`matmul_a_bt`] — `C[m,n] = A[m,k] · B[n,k]ᵀ`
//! * [`matmul_at_b`] — `C[m,n] = A[k,m]ᵀ · B[k,n]`
//!
//! The inner kernels use an `i-k-j` loop order (axpy over contiguous output
//! rows) or row-dot-products, both of which auto-vectorize well. Work is
//! split across the persistent [`crate::exec`] pool once it is large enough
//! to pay for the submission overhead.

use crate::exec;
use crate::Tensor;

/// Work threshold (multiply-accumulate count) below which threading is not
/// worth the fork overhead.
const PAR_THRESHOLD: usize = 1 << 20;

/// Thread count for a kernel doing `work` multiply-accumulates: 1 below the
/// fork-overhead threshold, then roughly one thread per threshold's worth of
/// work, capped by the `CQ_THREADS` override (if set) or the machine's
/// available parallelism — so a conv tail barely past the threshold forks
/// two threads, not the whole pool (tiny GEMMs used to spawn every core and
/// drown micro-benchmarks in fork noise).
///
/// `CQ_THREADS` exists so benchmark numbers are reproducible on shared CI
/// runners whose visible core count varies run to run; it is read once and
/// cached. Invalid or zero values are ignored.
pub fn threads_for(work: usize) -> usize {
    if work < PAR_THRESHOLD {
        return 1;
    }
    max_threads().min(work / PAR_THRESHOLD).max(1)
}

/// The `CQ_THREADS`-capped machine parallelism (read once, cached).
pub fn max_threads() -> usize {
    use std::sync::OnceLock;
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        if let Ok(v) = std::env::var("CQ_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// `C = A · B` for row-major slices, accumulating into `c` (which must be
/// zeroed by the caller if a fresh product is wanted).
///
/// # Panics
///
/// Panics if the slice lengths do not match `m*k`, `k*n`, `m*n`.
pub fn gemm_nn_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A buffer length");
    assert_eq!(b.len(), k * n, "B buffer length");
    assert_eq!(c.len(), m * n, "C buffer length");
    let nt = threads_for(m * k * n);
    if nt <= 1 || m < nt {
        gemm_nn_rows(k, n, a, b, c);
        return;
    }
    let rows_per = m.div_ceil(nt);
    exec::scope(|s| {
        for (chunk_i, c_chunk) in c.chunks_mut(rows_per * n).enumerate() {
            let a_off = chunk_i * rows_per * k;
            let rows = c_chunk.len() / n;
            let a_chunk = &a[a_off..a_off + rows * k];
            s.spawn(move || gemm_nn_rows(k, n, a_chunk, b, c_chunk));
        }
    });
}

/// Serial `i-k-j` kernel over a row block: `c[i,:] += a[i,kk] * b[kk,:]`.
fn gemm_nn_rows(k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let m = a.len() / k;
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (kk, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// `C += A · Bᵀ` where `a` is `m×k` and `b` is `n×k` (both row-major).
///
/// # Panics
///
/// Panics if slice lengths do not match.
pub fn gemm_nt_acc(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A buffer length");
    assert_eq!(b.len(), n * k, "B buffer length");
    assert_eq!(c.len(), m * n, "C buffer length");
    let nt = threads_for(m * k * n);
    if nt <= 1 || m < nt {
        gemm_nt_rows(k, n, a, b, c);
        return;
    }
    let rows_per = m.div_ceil(nt);
    exec::scope(|s| {
        for (chunk_i, c_chunk) in c.chunks_mut(rows_per * n).enumerate() {
            let a_off = chunk_i * rows_per * k;
            let rows = c_chunk.len() / n;
            let a_chunk = &a[a_off..a_off + rows * k];
            s.spawn(move || gemm_nt_rows(k, n, a_chunk, b, c_chunk));
        }
    });
}

fn gemm_nt_rows(k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    let m = a.len() / k;
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for j in 0..n {
            let brow = &b[j * k..(j + 1) * k];
            crow[j] += dot(arow, brow);
        }
    }
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    // Four partial accumulators break the serial dependency chain so the
    // compiler can vectorize.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let ia = i * 4;
        acc[0] += a[ia] * b[ia];
        acc[1] += a[ia + 1] * b[ia + 1];
        acc[2] += a[ia + 2] * b[ia + 2];
        acc[3] += a[ia + 3] * b[ia + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

/// `C[m,n] = A[m,k] · B[k,n]` on [`Tensor`]s.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul rhs must be rank 2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (k2, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul inner dims: {k} vs {k2}");
    let mut c = Tensor::zeros(&[m, n]);
    gemm_nn_acc(m, k, n, a.data(), b.data(), c.data_mut());
    c
}

/// `C[m,n] = A[m,k] · B[n,k]ᵀ` on [`Tensor`]s.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the `k` dimensions disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_a_bt lhs must be rank 2");
    assert_eq!(b.rank(), 2, "matmul_a_bt rhs must be rank 2");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, k2) = (b.dim(0), b.dim(1));
    assert_eq!(k, k2, "matmul_a_bt inner dims: {k} vs {k2}");
    let mut c = Tensor::zeros(&[m, n]);
    gemm_nt_acc(m, k, n, a.data(), b.data(), c.data_mut());
    c
}

/// `C[m,n] = A[k,m]ᵀ · B[k,n]` on [`Tensor`]s.
///
/// Implemented as an explicit transpose followed by [`matmul`]; the
/// transpose cost is negligible against the GEMM for the sizes used here.
///
/// # Panics
///
/// Panics if either input is not rank 2 or the `k` dimensions disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.rank(), 2, "matmul_at_b lhs must be rank 2");
    let at = a.transpose2();
    matmul(&at, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a[i * k + kk] * b[kk * n + j];
                }
                c[i * n + j] = s;
            }
        }
        c
    }

    fn filled(len: usize, seed: u64) -> Vec<f32> {
        // Small deterministic pseudo-random values, exactly representable
        // enough for strict comparisons at these sizes.
        (0..len)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(seed);
                ((x >> 33) % 17) as f32 - 8.0
            })
            .collect()
    }

    #[test]
    fn matmul_matches_naive_small() {
        let (m, k, n) = (5, 7, 3);
        let a = filled(m * k, 1);
        let b = filled(k * n, 2);
        let c = matmul(
            &Tensor::from_vec(a.clone(), &[m, k]),
            &Tensor::from_vec(b.clone(), &[k, n]),
        );
        assert_eq!(c.data(), naive(m, k, n, &a, &b).as_slice());
    }

    #[test]
    fn matmul_identity() {
        let n = 8;
        let mut eye = Tensor::zeros(&[n, n]);
        for i in 0..n {
            eye.set(&[i, i], 1.0);
        }
        let a = Tensor::from_vec(filled(n * n, 3), &[n, n]);
        assert_eq!(matmul(&a, &eye), a);
        assert_eq!(matmul(&eye, &a), a);
    }

    #[test]
    fn matmul_a_bt_matches_naive() {
        let (m, k, n) = (4, 6, 5);
        let a = filled(m * k, 4);
        let b = filled(n * k, 5);
        // naive against transposed b
        let mut bt = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                bt[kk * n + j] = b[j * k + kk];
            }
        }
        let want = naive(m, k, n, &a, &bt);
        let c = matmul_a_bt(&Tensor::from_vec(a, &[m, k]), &Tensor::from_vec(b, &[n, k]));
        assert_eq!(c.data(), want.as_slice());
    }

    #[test]
    fn matmul_at_b_matches_naive() {
        let (m, k, n) = (3, 6, 4);
        let a = filled(k * m, 6); // stored as [k, m]
        let b = filled(k * n, 7);
        let mut at = vec![0.0f32; m * k];
        for i in 0..k {
            for j in 0..m {
                at[j * k + i] = a[i * m + j];
            }
        }
        let want = naive(m, k, n, &at, &b);
        let c = matmul_at_b(&Tensor::from_vec(a, &[k, m]), &Tensor::from_vec(b, &[k, n]));
        assert_eq!(c.data(), want.as_slice());
    }

    #[test]
    fn large_matmul_uses_threads_and_matches_naive() {
        // Big enough to cross PAR_THRESHOLD.
        let (m, k, n) = (128, 96, 128);
        let a = filled(m * k, 8);
        let b = filled(k * n, 9);
        let want = naive(m, k, n, &a, &b);
        let c = matmul(&Tensor::from_vec(a, &[m, k]), &Tensor::from_vec(b, &[k, n]));
        assert_eq!(c.data(), want.as_slice());
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn mismatched_inner_dims_panic() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        let _ = matmul(&a, &b);
    }

    #[test]
    fn gemm_acc_accumulates() {
        let a = Tensor::ones(&[2, 2]);
        let b = Tensor::ones(&[2, 2]);
        let mut c = Tensor::full(&[2, 2], 10.0);
        gemm_nn_acc(2, 2, 2, a.data(), b.data(), c.data_mut());
        assert_eq!(c.data(), &[12.0, 12.0, 12.0, 12.0]);
    }
}
