//! Deterministic random-number utilities shared by every crate in the
//! workspace.
//!
//! A self-contained xoshiro256++ generator (seeded through splitmix64, the
//! reference seeding procedure) with the distributions the workspace needs:
//! Gaussian via Box–Muller and log-normal for the device variation model of
//! Eq. (5). No external crates — the workspace builds fully offline.

use crate::Tensor;

/// xoshiro256++ core state (Blackman & Vigna). Deterministic, portable,
/// and plenty for initialization / synthetic data / variation injection —
/// nothing here is cryptographic.
#[derive(Debug, Clone)]
struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Expands a 64-bit seed into the full state with splitmix64.
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next_sm = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next_sm(), next_sm(), next_sm(), next_sm()],
        }
    }

    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Seeded random source for initialization, synthetic data, and device
/// variation.
///
/// # Examples
///
/// ```
/// use cq_tensor::CqRng;
/// let mut a = CqRng::new(7);
/// let mut b = CqRng::new(7);
/// assert_eq!(a.normal(), b.normal());
/// ```
#[derive(Debug, Clone)]
pub struct CqRng {
    inner: Xoshiro256pp,
    spare_normal: Option<f32>,
}

impl CqRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: Xoshiro256pp::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        // Top 24 bits give every representable f32 step in [0, 1).
        (self.inner.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform sample in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi, "uniform_in range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        // Multiply-shift range reduction (Lemire); bias is < 2⁻⁶⁴·n,
        // irrelevant for simulation workloads.
        ((self.inner.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Fair coin flip.
    pub fn coin(&mut self) -> bool {
        self.inner.next_u64() & 1 == 1
    }

    /// Standard normal sample (Box–Muller, with spare caching).
    pub fn normal(&mut self) -> f32 {
        if let Some(v) = self.spare_normal.take() {
            return v;
        }
        // Avoid ln(0).
        let u1 = loop {
            let u = self.uniform();
            if u > 1e-12 {
                break u;
            }
        };
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Log-normal multiplicative factor `e^θ`, `θ ~ N(0, sigma)` — the
    /// memory-cell variation model of the paper's Eq. (5).
    pub fn lognormal_factor(&mut self, sigma: f32) -> f32 {
        (sigma * self.normal()).exp()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i + 1);
            items.swap(i, j);
        }
    }

    /// Tensor of i.i.d. `N(0, std²)` samples.
    pub fn normal_tensor(&mut self, shape: &[usize], std: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| self.normal() * std).collect();
        Tensor::from_vec(data, shape)
    }

    /// Tensor of i.i.d. uniform samples in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_tensor(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| self.uniform_in(lo, hi)).collect();
        Tensor::from_vec(data, shape)
    }

    /// Derives an independent child generator (for per-worker streams).
    pub fn fork(&mut self, stream: u64) -> CqRng {
        let s = self.inner.next_u64() ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
        CqRng::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_from_seed() {
        let mut a = CqRng::new(42);
        let mut b = CqRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
        assert_ne!(CqRng::new(1).uniform(), CqRng::new(2).uniform());
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = CqRng::new(7);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_factor_properties() {
        let mut rng = CqRng::new(9);
        // sigma = 0 must be exactly 1 (no variation).
        assert_eq!(rng.lognormal_factor(0.0), 1.0);
        let n = 20_000;
        let mean_ln: f32 = (0..n).map(|_| rng.lognormal_factor(0.2).ln()).sum::<f32>() / n as f32;
        assert!(mean_ln.abs() < 0.01, "log-mean {mean_ln} should be ~0");
        assert!((0..100).all(|_| rng.lognormal_factor(0.25) > 0.0));
    }

    #[test]
    fn below_and_shuffle_cover_range() {
        let mut rng = CqRng::new(3);
        let mut seen = [false; 8];
        for _ in 0..256 {
            seen[rng.below(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let mut v: Vec<usize> = (0..16).collect();
        let orig = v.clone();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle is a permutation");
    }

    #[test]
    fn tensors_have_right_shape_and_spread() {
        let mut rng = CqRng::new(11);
        let t = rng.normal_tensor(&[8, 8], 2.0);
        assert_eq!(t.shape(), &[8, 8]);
        let u = rng.uniform_tensor(&[100], -1.0, 1.0);
        assert!(u.min() >= -1.0 && u.max() < 1.0);
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = CqRng::new(5);
        let mut a = root.fork(0);
        let mut b = root.fork(1);
        let xa: Vec<f32> = (0..8).map(|_| a.uniform()).collect();
        let xb: Vec<f32> = (0..8).map(|_| b.uniform()).collect();
        assert_ne!(xa, xb);
    }
}
