//! Descriptive statistics used for quantizer calibration and for the
//! partial-sum distribution analysis (paper Fig. 6).

/// Five-number-style summary of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Smallest value.
    pub min: f32,
    /// Largest value.
    pub max: f32,
    /// Arithmetic mean.
    pub mean: f32,
    /// Population standard deviation.
    pub std: f32,
    /// 25th percentile.
    pub p25: f32,
    /// Median.
    pub p50: f32,
    /// 75th percentile.
    pub p75: f32,
}

impl Summary {
    /// Dynamic range `max - min`.
    pub fn range(&self) -> f32 {
        self.max - self.min
    }
}

/// Computes a [`Summary`] of `data`.
///
/// # Panics
///
/// Panics if `data` is empty.
pub fn summarize(data: &[f32]) -> Summary {
    assert!(!data.is_empty(), "summarize of empty sample");
    let n = data.len() as f64;
    let mean = data.iter().map(|&v| v as f64).sum::<f64>() / n;
    let var = data.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n;
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Summary {
        min: sorted[0],
        max: *sorted.last().unwrap(),
        mean: mean as f32,
        std: var.sqrt() as f32,
        p25: percentile_sorted(&sorted, 0.25),
        p50: percentile_sorted(&sorted, 0.50),
        p75: percentile_sorted(&sorted, 0.75),
    }
}

/// Percentile (linear interpolation) of an unsorted sample; `q` in `[0, 1]`.
///
/// # Panics
///
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
pub fn percentile(data: &[f32], q: f32) -> f32 {
    assert!(!data.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "q = {q} outside [0, 1]");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    percentile_sorted(&sorted, q)
}

fn percentile_sorted(sorted: &[f32], q: f32) -> f32 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q as f64 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = (pos - lo as f64) as f32;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Fixed-range histogram; values outside `[lo, hi)` clamp to the edge bins.
///
/// # Panics
///
/// Panics if `bins == 0` or `lo >= hi`.
pub fn histogram(data: &[f32], bins: usize, lo: f32, hi: f32) -> Vec<usize> {
    assert!(bins > 0, "histogram with zero bins");
    assert!(lo < hi, "histogram range [{lo}, {hi})");
    let mut counts = vec![0usize; bins];
    let scale = bins as f32 / (hi - lo);
    for &v in data {
        let b = (((v - lo) * scale).floor() as isize).clamp(0, bins as isize - 1) as usize;
        counts[b] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p50, 3.0);
        assert_eq!(s.p25, 2.0);
        assert_eq!(s.p75, 4.0);
        assert_eq!(s.range(), 4.0);
        assert!((s.std - 2.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn percentile_interpolates() {
        let data = [0.0, 10.0];
        assert_eq!(percentile(&data, 0.0), 0.0);
        assert_eq!(percentile(&data, 0.5), 5.0);
        assert_eq!(percentile(&data, 1.0), 10.0);
        assert_eq!(percentile(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_empty_panics() {
        percentile(&[], 0.5);
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let h = histogram(&[-1.0, 0.0, 0.5, 0.99, 2.0], 2, 0.0, 1.0);
        // -1.0 clamps to bin 0; 0.5, 0.99 land in bin 1; 2.0 clamps to bin 1.
        assert_eq!(h, vec![2, 3]);
        assert_eq!(h.iter().sum::<usize>(), 5);
    }
}
