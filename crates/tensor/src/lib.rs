//! # cq-tensor
//!
//! Dense `f32` tensor substrate for the ColumnQuant workspace: a simple
//! contiguous row-major [`Tensor`], blocked/threaded GEMM kernels,
//! im2col-based (grouped) 2-D convolution with explicit gradients, pooling
//! operators, deterministic RNG utilities, and descriptive statistics.
//!
//! The design goal is *auditable numerics*: every kernel is plain safe Rust
//! with an obvious reference implementation next to it in the tests, because
//! downstream crates rely on bit-exact integer arithmetic carried in `f32`
//! (CIM partial sums are integers well below the 2²⁴ exactness limit).
//! Parallel kernels run on the persistent [`exec`] executor (the one place
//! in the workspace with an `unsafe` block — the scoped-task lifetime
//! erasure, documented at the site), and per-call scratch comes from
//! per-worker [`arena`] pools.
//!
//! ## Example
//!
//! ```
//! use cq_tensor::{conv2d, CqRng, Tensor};
//!
//! let mut rng = CqRng::new(0);
//! let x = rng.normal_tensor(&[1, 3, 8, 8], 1.0);
//! let w = rng.normal_tensor(&[4, 3, 3, 3], 0.1);
//! let y = conv2d(&x, &w, 1, 1);
//! assert_eq!(y.shape(), &[1, 4, 8, 8]);
//! ```

#![warn(missing_docs)]

pub mod arena;
pub mod backend;
mod conv;
pub mod exec;
mod igemm;
mod matmul;
mod pool;
mod rng;
pub mod stats;
mod tensor;

pub use arena::ScratchArena;
pub use backend::{
    backend_instance, BackendError, BackendKind, BackendSet, ConvProfile, ExecBackend, IntPanels,
    PsumKernel, ScalarRef, SimdF32,
};
pub use conv::{
    conv2d, conv2d_backward_input, conv2d_backward_weight, conv2d_grouped, conv2d_grouped_into,
    conv2d_naive, conv_out_dim, ConvShape,
};
pub use igemm::{
    accum_to_f32, igemm_into, im2col_i8, shift_add_into, widen_i8_to_i32, PackedPanels, PANEL_ROWS,
};
pub use matmul::{
    gemm_nn_acc, gemm_nt_acc, matmul, matmul_a_bt, matmul_at_b, max_threads, threads_for,
};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward, max_pool2d,
    max_pool2d_backward,
};
pub use rng::CqRng;
pub use tensor::Tensor;
