//! im2col-based 2-D convolution: forward, input gradient, weight gradient,
//! with first-class support for **grouped convolution over input channels**.
//!
//! Grouped convolution is load-bearing here: the ColumnQuant framework maps
//! each CIM array to one group (the paper's Sec. III-C), so each group
//! consumes a contiguous slice of input channels and produces a full set of
//! output channels — the array-wise partial sums.
//!
//! All functions are shape-checked and panic with descriptive messages on
//! misuse; see the `# Panics` sections.

use crate::matmul::{gemm_nn_acc, gemm_nt_acc};
use crate::Tensor;

/// Geometry of a (possibly grouped) 2-D convolution, with all derived sizes
/// validated once up front.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvShape {
    /// Batch size.
    pub batch: usize,
    /// Total input channels.
    pub in_ch: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Total output channels (across all groups).
    pub out_ch: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both spatial dims).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
    /// Number of channel groups.
    pub groups: usize,
    /// Output height.
    pub out_h: usize,
    /// Output width.
    pub out_w: usize,
}

/// Output spatial size of a convolution along one dimension.
///
/// # Panics
///
/// Panics if the kernel does not fit in the padded input.
pub fn conv_out_dim(input: usize, kernel: usize, stride: usize, pad: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(
        input + 2 * pad >= kernel,
        "kernel {kernel} larger than padded input {input}+2*{pad}"
    );
    (input + 2 * pad - kernel) / stride + 1
}

impl ConvShape {
    /// Derives and validates the geometry from input/weight shapes.
    ///
    /// `input` is `[B, C, H, W]`; `weight` is `[OC, C/groups, KH, KW]`.
    ///
    /// # Panics
    ///
    /// Panics if ranks are wrong, `C` is not divisible by `groups`, `OC` is
    /// not divisible by `groups`, or the kernel does not fit.
    pub fn new(
        input: &[usize],
        weight: &[usize],
        stride: usize,
        pad: usize,
        groups: usize,
    ) -> Self {
        assert_eq!(
            input.len(),
            4,
            "conv input must be [B,C,H,W], got {input:?}"
        );
        assert_eq!(
            weight.len(),
            4,
            "conv weight must be [OC,Cg,KH,KW], got {weight:?}"
        );
        assert!(groups > 0, "groups must be positive");
        let (batch, in_ch, in_h, in_w) = (input[0], input[1], input[2], input[3]);
        let (out_ch, cg, kh, kw) = (weight[0], weight[1], weight[2], weight[3]);
        assert_eq!(
            in_ch % groups,
            0,
            "input channels {in_ch} not divisible by groups {groups}"
        );
        assert_eq!(
            in_ch / groups,
            cg,
            "weight expects {cg} channels/group but input has {} ({} ch / {} groups)",
            in_ch / groups,
            in_ch,
            groups
        );
        assert_eq!(
            out_ch % groups,
            0,
            "output channels {out_ch} not divisible by groups {groups}"
        );
        let out_h = conv_out_dim(in_h, kh, stride, pad);
        let out_w = conv_out_dim(in_w, kw, stride, pad);
        ConvShape {
            batch,
            in_ch,
            in_h,
            in_w,
            out_ch,
            kh,
            kw,
            stride,
            pad,
            groups,
            out_h,
            out_w,
        }
    }

    /// Input channels per group.
    pub fn ch_per_group(&self) -> usize {
        self.in_ch / self.groups
    }

    /// Output channels per group.
    pub fn out_per_group(&self) -> usize {
        self.out_ch / self.groups
    }

    /// Rows of the im2col matrix for one group: `Cg * KH * KW`.
    pub fn col_rows(&self) -> usize {
        self.ch_per_group() * self.kh * self.kw
    }

    /// Columns of the im2col matrix: `OH * OW`.
    pub fn col_cols(&self) -> usize {
        self.out_h * self.out_w
    }
}

/// Writes the im2col matrix for channels `[c_start, c_start + c_len)` of one
/// image into `col` (shape `[c_len*kh*kw, out_h*out_w]`, row-major).
///
/// `img` is the `[C, H, W]` slice of a single image.
pub(crate) fn im2col_image(
    img: &[f32],
    c_start: usize,
    c_len: usize,
    s: &ConvShape,
    col: &mut [f32],
) {
    let (h, w) = (s.in_h, s.in_w);
    let ohw = s.out_h * s.out_w;
    debug_assert_eq!(col.len(), c_len * s.kh * s.kw * ohw);
    for c_local in 0..c_len {
        let ch = &img[(c_start + c_local) * h * w..(c_start + c_local + 1) * h * w];
        for ki in 0..s.kh {
            for kj in 0..s.kw {
                let row = ((c_local * s.kh + ki) * s.kw + kj) * ohw;
                for oh in 0..s.out_h {
                    let ih = (oh * s.stride + ki) as isize - s.pad as isize;
                    let dst = &mut col[row + oh * s.out_w..row + (oh + 1) * s.out_w];
                    if ih < 0 || ih as usize >= h {
                        dst.fill(0.0);
                        continue;
                    }
                    let src_row = &ch[ih as usize * w..(ih as usize + 1) * w];
                    for (ow, d) in dst.iter_mut().enumerate() {
                        let iw = (ow * s.stride + kj) as isize - s.pad as isize;
                        *d = if iw < 0 || iw as usize >= w {
                            0.0
                        } else {
                            src_row[iw as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Scatters (accumulates) a col matrix back into channels
/// `[c_start, c_start + c_len)` of one image gradient (col2im).
fn col2im_image(col: &[f32], c_start: usize, c_len: usize, s: &ConvShape, img: &mut [f32]) {
    let (h, w) = (s.in_h, s.in_w);
    let ohw = s.out_h * s.out_w;
    debug_assert_eq!(col.len(), c_len * s.kh * s.kw * ohw);
    for c_local in 0..c_len {
        let ch = &mut img[(c_start + c_local) * h * w..(c_start + c_local + 1) * h * w];
        for ki in 0..s.kh {
            for kj in 0..s.kw {
                let row = ((c_local * s.kh + ki) * s.kw + kj) * ohw;
                for oh in 0..s.out_h {
                    let ih = (oh * s.stride + ki) as isize - s.pad as isize;
                    if ih < 0 || ih as usize >= h {
                        continue;
                    }
                    let src = &col[row + oh * s.out_w..row + (oh + 1) * s.out_w];
                    let dst_row = &mut ch[ih as usize * w..(ih as usize + 1) * w];
                    for (ow, &v) in src.iter().enumerate() {
                        let iw = (ow * s.stride + kj) as isize - s.pad as isize;
                        if iw >= 0 && (iw as usize) < w {
                            dst_row[iw as usize] += v;
                        }
                    }
                }
            }
        }
    }
}

/// Standard (groups = 1) 2-D convolution.
///
/// `input` is `[B, C, H, W]`, `weight` is `[OC, C, KH, KW]`; returns
/// `[B, OC, OH, OW]`.
///
/// # Panics
///
/// Panics on any shape inconsistency (see [`ConvShape::new`]).
pub fn conv2d(input: &Tensor, weight: &Tensor, stride: usize, pad: usize) -> Tensor {
    conv2d_grouped(input, weight, stride, pad, 1)
}

/// Grouped 2-D convolution: group `g` consumes input channels
/// `[g*Cg, (g+1)*Cg)` and produces output channels `[g*OCg, (g+1)*OCg)`.
///
/// # Panics
///
/// Panics on any shape inconsistency (see [`ConvShape::new`]).
pub fn conv2d_grouped(
    input: &Tensor,
    weight: &Tensor,
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    let s = ConvShape::new(input.shape(), weight.shape(), stride, pad, groups);
    let mut out = Tensor::zeros(&[s.batch, s.out_ch, s.out_h, s.out_w]);
    let mut col = vec![0.0f32; s.col_rows() * s.col_cols()];
    conv2d_grouped_write(input, weight, &s, &mut out, &mut col);
    out
}

/// Like [`conv2d_grouped`] but writing into caller-provided output and
/// im2col scratch buffers, so a serving loop that runs the same layer
/// geometry repeatedly allocates nothing per call. `out` is resized and
/// overwritten; `col` is grown as needed and left dirty.
///
/// Bit-identical to [`conv2d_grouped`] (same kernels, same operation
/// order).
///
/// # Panics
///
/// Panics on any shape inconsistency (see [`ConvShape::new`]).
pub fn conv2d_grouped_into(
    input: &Tensor,
    weight: &Tensor,
    stride: usize,
    pad: usize,
    groups: usize,
    out: &mut Tensor,
    col: &mut Vec<f32>,
) {
    let s = ConvShape::new(input.shape(), weight.shape(), stride, pad, groups);
    let out_shape = [s.batch, s.out_ch, s.out_h, s.out_w];
    if out.shape() != out_shape {
        *out = Tensor::zeros(&out_shape);
    } else {
        out.fill(0.0);
    }
    let need = s.col_rows() * s.col_cols();
    if col.len() < need {
        col.resize(need, 0.0);
    }
    conv2d_grouped_write(input, weight, &s, out, &mut col[..need]);
}

fn conv2d_grouped_write(
    input: &Tensor,
    weight: &Tensor,
    s: &ConvShape,
    out: &mut Tensor,
    col: &mut [f32],
) {
    let (cr, cc) = (s.col_rows(), s.col_cols());
    let cg = s.ch_per_group();
    let ocg = s.out_per_group();
    debug_assert_eq!(col.len(), cr * cc);
    let in_img = s.in_ch * s.in_h * s.in_w;
    let out_img = s.out_ch * s.out_h * s.out_w;
    for b in 0..s.batch {
        let img = &input.data()[b * in_img..(b + 1) * in_img];
        for g in 0..s.groups {
            im2col_image(img, g * cg, cg, s, col);
            let w_g = &weight.data()[g * ocg * cr..(g + 1) * ocg * cr];
            let out_g =
                &mut out.data_mut()[b * out_img + g * ocg * cc..b * out_img + (g + 1) * ocg * cc];
            gemm_nn_acc(ocg, cr, cc, w_g, col, out_g);
        }
    }
}

/// Gradient of a grouped convolution with respect to its input.
///
/// `grad_out` is `[B, OC, OH, OW]`; returns `[B, C, H, W]` matching
/// `input_shape`.
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_backward_input(
    grad_out: &Tensor,
    weight: &Tensor,
    input_shape: &[usize],
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    let s = ConvShape::new(input_shape, weight.shape(), stride, pad, groups);
    assert_eq!(
        grad_out.shape(),
        &[s.batch, s.out_ch, s.out_h, s.out_w],
        "grad_out shape mismatch"
    );
    let mut dinput = Tensor::zeros(input_shape);
    let (cr, cc) = (s.col_rows(), s.col_cols());
    let cg = s.ch_per_group();
    let ocg = s.out_per_group();
    let in_img = s.in_ch * s.in_h * s.in_w;
    let out_img = s.out_ch * s.out_h * s.out_w;
    let mut dcol = vec![0.0f32; cr * cc];
    // Pre-transpose each group's weight to [cr, ocg] once.
    let mut wt = vec![0.0f32; s.groups * cr * ocg];
    for g in 0..s.groups {
        let w_g = &weight.data()[g * ocg * cr..(g + 1) * ocg * cr];
        let wt_g = &mut wt[g * cr * ocg..(g + 1) * cr * ocg];
        for oc in 0..ocg {
            for r in 0..cr {
                wt_g[r * ocg + oc] = w_g[oc * cr + r];
            }
        }
    }
    for b in 0..s.batch {
        for g in 0..s.groups {
            let gout_g =
                &grad_out.data()[b * out_img + g * ocg * cc..b * out_img + (g + 1) * ocg * cc];
            let wt_g = &wt[g * cr * ocg..(g + 1) * cr * ocg];
            dcol.fill(0.0);
            // dcol[cr, cc] = Wᵀ[cr, ocg] · gout[ocg, cc]
            gemm_nn_acc(cr, ocg, cc, wt_g, gout_g, &mut dcol);
            let img = &mut dinput.data_mut()[b * in_img..(b + 1) * in_img];
            col2im_image(&dcol, g * cg, cg, &s, img);
        }
    }
    dinput
}

/// Gradient of a grouped convolution with respect to its weight.
///
/// Returns a tensor shaped like `weight_shape` (`[OC, C/groups, KH, KW]`).
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_backward_weight(
    grad_out: &Tensor,
    input: &Tensor,
    weight_shape: &[usize],
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    let s = ConvShape::new(input.shape(), weight_shape, stride, pad, groups);
    assert_eq!(
        grad_out.shape(),
        &[s.batch, s.out_ch, s.out_h, s.out_w],
        "grad_out shape mismatch"
    );
    let mut dweight = Tensor::zeros(weight_shape);
    let (cr, cc) = (s.col_rows(), s.col_cols());
    let cg = s.ch_per_group();
    let ocg = s.out_per_group();
    let in_img = s.in_ch * s.in_h * s.in_w;
    let out_img = s.out_ch * s.out_h * s.out_w;
    let mut col = vec![0.0f32; cr * cc];
    for b in 0..s.batch {
        let img = &input.data()[b * in_img..(b + 1) * in_img];
        for g in 0..s.groups {
            im2col_image(img, g * cg, cg, &s, &mut col);
            let gout_g =
                &grad_out.data()[b * out_img + g * ocg * cc..b * out_img + (g + 1) * ocg * cc];
            let dw_g = &mut dweight.data_mut()[g * ocg * cr..(g + 1) * ocg * cr];
            // dW[ocg, cr] += gout[ocg, cc] · colᵀ[cc, cr]
            gemm_nt_acc(ocg, cc, cr, gout_g, &col, dw_g);
        }
    }
    dweight
}

/// Direct (seven-loop) reference convolution used by tests and as the
/// "naive" baseline in benchmarks. Semantics identical to
/// [`conv2d_grouped`].
///
/// # Panics
///
/// Panics on any shape inconsistency.
pub fn conv2d_naive(
    input: &Tensor,
    weight: &Tensor,
    stride: usize,
    pad: usize,
    groups: usize,
) -> Tensor {
    let s = ConvShape::new(input.shape(), weight.shape(), stride, pad, groups);
    let mut out = Tensor::zeros(&[s.batch, s.out_ch, s.out_h, s.out_w]);
    let cg = s.ch_per_group();
    let ocg = s.out_per_group();
    for b in 0..s.batch {
        for oc in 0..s.out_ch {
            let g = oc / ocg;
            for oh in 0..s.out_h {
                for ow in 0..s.out_w {
                    let mut acc = 0.0f32;
                    for cl in 0..cg {
                        let c = g * cg + cl;
                        for ki in 0..s.kh {
                            for kj in 0..s.kw {
                                let ih = (oh * s.stride + ki) as isize - s.pad as isize;
                                let iw = (ow * s.stride + kj) as isize - s.pad as isize;
                                if ih < 0
                                    || iw < 0
                                    || ih as usize >= s.in_h
                                    || iw as usize >= s.in_w
                                {
                                    continue;
                                }
                                let iv = input.data()[input.idx4(b, c, ih as usize, iw as usize)];
                                let wv = weight.data()[((oc * cg + cl) * s.kh + ki) * s.kw + kj];
                                acc += iv * wv;
                            }
                        }
                    }
                    let oi = out.idx4(b, oc, oh, ow);
                    out.data_mut()[oi] = acc;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_tensor(shape: &[usize], seed: u64) -> Tensor {
        let n: usize = shape.iter().product();
        let data = (0..n)
            .map(|i| {
                let x = (i as u64)
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(seed);
                ((x >> 32) % 9) as f32 - 4.0
            })
            .collect();
        Tensor::from_vec(data, shape)
    }

    #[test]
    fn conv_out_dim_cases() {
        assert_eq!(conv_out_dim(32, 3, 1, 1), 32);
        assert_eq!(conv_out_dim(32, 3, 2, 1), 16);
        assert_eq!(conv_out_dim(7, 7, 1, 0), 1);
        assert_eq!(conv_out_dim(224, 7, 2, 3), 112);
    }

    #[test]
    #[should_panic(expected = "larger than padded input")]
    fn conv_out_dim_too_small_panics() {
        conv_out_dim(2, 5, 1, 0);
    }

    #[test]
    fn conv2d_matches_naive() {
        for &(stride, pad) in &[(1usize, 0usize), (1, 1), (2, 1)] {
            let x = det_tensor(&[2, 3, 8, 8], 11);
            let w = det_tensor(&[4, 3, 3, 3], 22);
            let fast = conv2d(&x, &w, stride, pad);
            let slow = conv2d_naive(&x, &w, stride, pad, 1);
            assert_eq!(fast, slow, "stride={stride} pad={pad}");
        }
    }

    #[test]
    fn conv2d_1x1_kernel_matches_naive() {
        let x = det_tensor(&[1, 4, 5, 5], 33);
        let w = det_tensor(&[6, 4, 1, 1], 44);
        assert_eq!(conv2d(&x, &w, 1, 0), conv2d_naive(&x, &w, 1, 0, 1));
        // stride-2 1x1 (ResNet downsample shortcut)
        assert_eq!(conv2d(&x, &w, 2, 0), conv2d_naive(&x, &w, 2, 0, 1));
    }

    #[test]
    fn grouped_conv_matches_naive() {
        // 6 in channels, 3 groups, 4 out channels per group.
        let x = det_tensor(&[2, 6, 6, 6], 55);
        let w = det_tensor(&[12, 2, 3, 3], 66);
        let fast = conv2d_grouped(&x, &w, 1, 1, 3);
        let slow = conv2d_naive(&x, &w, 1, 1, 3);
        assert_eq!(fast, slow);
    }

    #[test]
    fn grouped_conv_equals_sum_of_slices() {
        // The CIM property: a groups=G conv with full out-channel sets per
        // group equals per-group plain convs over channel slices.
        let (g, cg, oc) = (3usize, 2usize, 4usize);
        let x = det_tensor(&[1, g * cg, 5, 5], 77);
        let w = det_tensor(&[g * oc, cg, 3, 3], 88);
        let grouped = conv2d_grouped(&x, &w, 1, 1, g);
        for gi in 0..g {
            // Build the slice conv manually.
            let mut xs = Tensor::zeros(&[1, cg, 5, 5]);
            for c in 0..cg {
                for h in 0..5 {
                    for wi in 0..5 {
                        let v = x.at(&[0, gi * cg + c, h, wi]);
                        xs.set(&[0, c, h, wi], v);
                    }
                }
            }
            let ws = w.slice_outer(gi * oc, (gi + 1) * oc);
            let part = conv2d(&xs, &ws, 1, 1);
            for o in 0..oc {
                for h in 0..5 {
                    for wi in 0..5 {
                        assert_eq!(
                            grouped.at(&[0, gi * oc + o, h, wi]),
                            part.at(&[0, o, h, wi])
                        );
                    }
                }
            }
        }
    }

    /// Finite-difference check of both gradients on a small conv.
    #[test]
    fn conv_gradients_match_finite_difference() {
        let x = det_tensor(&[1, 2, 5, 5], 99).scale(0.25);
        let w = det_tensor(&[3, 2, 3, 3], 111).scale(0.25);
        let (stride, pad) = (1, 1);
        // Loss = sum of outputs weighted by a fixed pattern.
        let pat = det_tensor(&[1, 3, 5, 5], 123).scale(0.1);
        let loss =
            |xx: &Tensor, ww: &Tensor| -> f32 { conv2d(xx, ww, stride, pad).mul(&pat).sum() };
        let gout = pat.clone();
        let dx = conv2d_backward_input(&gout, &w, x.shape(), stride, pad, 1);
        let dw = conv2d_backward_weight(&gout, &x, w.shape(), stride, pad, 1);
        let eps = 1e-2f32;
        for i in [0usize, 7, 23, 49] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 1e-2,
                "dx[{i}]: numeric {num} vs analytic {}",
                dx.data()[i]
            );
        }
        for i in [0usize, 5, 17, 53] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!(
                (num - dw.data()[i]).abs() < 1e-2,
                "dw[{i}]: numeric {num} vs analytic {}",
                dw.data()[i]
            );
        }
    }

    #[test]
    fn grouped_gradients_match_finite_difference() {
        let x = det_tensor(&[1, 4, 4, 4], 13).scale(0.25);
        let w = det_tensor(&[6, 2, 3, 3], 17).scale(0.25);
        let groups = 2;
        let pat = det_tensor(&[1, 6, 4, 4], 19).scale(0.1);
        let loss = |xx: &Tensor, ww: &Tensor| -> f32 {
            conv2d_grouped(xx, ww, 1, 1, groups).mul(&pat).sum()
        };
        let dx = conv2d_backward_input(&pat, &w, x.shape(), 1, 1, groups);
        let dw = conv2d_backward_weight(&pat, &x, w.shape(), 1, 1, groups);
        let eps = 1e-2f32;
        for i in [0usize, 15, 31, 63] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp, &w) - loss(&xm, &w)) / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-2, "dx[{i}]");
        }
        for i in [0usize, 20, 50, 100] {
            let mut wp = w.clone();
            wp.data_mut()[i] += eps;
            let mut wm = w.clone();
            wm.data_mut()[i] -= eps;
            let num = (loss(&x, &wp) - loss(&x, &wm)) / (2.0 * eps);
            assert!((num - dw.data()[i]).abs() < 1e-2, "dw[{i}]");
        }
    }

    /// The scratch-buffer variant must be bit-identical to the allocating
    /// path, including when the buffers are reused across calls with
    /// different geometries (stale shapes, oversized col scratch).
    #[test]
    fn conv2d_grouped_into_matches_and_reuses_scratch() {
        let mut out = Tensor::zeros(&[1]); // wrong shape on purpose
        let mut col = Vec::new();
        for &(b, c, hw, groups, oc) in &[(2usize, 6usize, 6usize, 3usize, 12usize), (1, 4, 5, 2, 6)]
        {
            let x = det_tensor(&[b, c, hw, hw], 55);
            let w = det_tensor(&[oc, c / groups, 3, 3], 66);
            let want = conv2d_grouped(&x, &w, 1, 1, groups);
            conv2d_grouped_into(&x, &w, 1, 1, groups, &mut out, &mut col);
            assert_eq!(out, want, "b={b} c={c}");
            // Second call on dirty buffers must give the same answer.
            conv2d_grouped_into(&x, &w, 1, 1, groups, &mut out, &mut col);
            assert_eq!(out, want, "dirty-scratch call b={b} c={c}");
        }
    }

    #[test]
    #[should_panic(expected = "not divisible by groups")]
    fn bad_group_count_panics() {
        let x = Tensor::zeros(&[1, 5, 4, 4]);
        let w = Tensor::zeros(&[4, 2, 3, 3]);
        let _ = conv2d_grouped(&x, &w, 1, 1, 2);
    }

    #[test]
    fn integer_inputs_produce_exact_integer_outputs() {
        // CIM partial sums rely on exact integer arithmetic in f32.
        let x = det_tensor(&[1, 3, 6, 6], 21); // integers in [-4, 4]
        let w = det_tensor(&[4, 3, 3, 3], 23);
        let y = conv2d(&x, &w, 1, 1);
        for &v in y.data() {
            assert_eq!(v, v.round(), "non-integer output {v}");
        }
    }
}
