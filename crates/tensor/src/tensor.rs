//! The dense, contiguous, row-major `f32` tensor at the heart of the
//! workspace.
//!
//! The type is deliberately simple: a `Vec<f32>` plus a shape. All views are
//! materialized (no stride tricks), which keeps every kernel in this
//! workspace easy to audit — an explicit goal for a hardware-simulation
//! codebase where bit-exactness matters more than zero-copy cleverness.

use std::fmt;

/// A dense row-major `f32` tensor of arbitrary rank.
///
/// # Examples
///
/// ```
/// use cq_tensor::Tensor;
/// let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
/// assert_eq!(t.shape(), &[2, 2]);
/// assert_eq!(t.sum(), 10.0);
/// ```
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "buffer of {} elements cannot have shape {:?}",
            data.len(),
            shape
        );
        Self {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![0.0; numel],
        }
    }

    /// Creates a one-filled tensor.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Self {
            shape: shape.to_vec(),
            data: vec![value; numel],
        }
    }

    /// Creates a rank-1 tensor `[0, 1, ..., n-1]`.
    pub fn arange(n: usize) -> Self {
        Self {
            shape: vec![n],
            data: (0..n).map(|i| i as f32).collect(),
        }
    }

    /// The shape as a slice, outermost dimension first.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rank`.
    pub fn dim(&self, i: usize) -> usize {
        self.shape[i]
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the flat row-major buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Returns a copy with a new shape (same number of elements).
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        Tensor::from_vec(self.data.clone(), shape)
    }

    /// Reshapes in place without copying the buffer.
    ///
    /// # Panics
    ///
    /// Panics if the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let numel: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            numel,
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        self.shape = shape.to_vec();
    }

    /// Flat index of a 4-D coordinate in an NCHW tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 4 (debug assertions also check
    /// bounds).
    #[inline]
    pub fn idx4(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert_eq!(self.rank(), 4);
        debug_assert!(
            n < self.shape[0] && c < self.shape[1] && h < self.shape[2] && w < self.shape[3]
        );
        ((n * self.shape[1] + c) * self.shape[2] + h) * self.shape[3] + w
    }

    /// Element at a full multi-index. Intended for tests and debugging.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or is out of bounds.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.flat_index(index)]
    }

    /// Sets the element at a full multi-index. Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics if the index rank mismatches or is out of bounds.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let i = self.flat_index(index);
        self.data[i] = value;
    }

    fn flat_index(&self, index: &[usize]) -> usize {
        assert_eq!(index.len(), self.rank(), "index rank mismatch");
        let mut flat = 0;
        for (i, (&ix, &d)) in index.iter().zip(&self.shape).enumerate() {
            assert!(ix < d, "index {ix} out of bounds for dim {i} of size {d}");
            flat = flat * d + ix;
        }
        flat
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Element-wise combination of two same-shaped tensors.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other);
        Tensor {
            shape: self.shape.clone(),
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    fn assert_same_shape(&self, other: &Tensor) {
        assert_eq!(
            self.shape, other.shape,
            "shape mismatch: {:?} vs {:?}",
            self.shape, other.shape
        );
    }

    /// Element-wise sum.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place element-wise accumulation `self += other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, alpha: f32) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// Returns `self * alpha` element-wise.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|v| v * alpha)
    }

    /// In-place scalar multiply.
    pub fn scale_in_place(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        for v in &mut self.data {
            *v = value;
        }
    }

    /// Sum of all elements (f64 accumulator for stability).
    pub fn sum(&self) -> f32 {
        self.data.iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Arithmetic mean of all elements.
    ///
    /// Returns `0.0` for an empty tensor.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Mean of absolute values (used for LSQ scale initialization).
    ///
    /// Returns `0.0` for an empty tensor.
    pub fn abs_mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let s: f64 = self.data.iter().map(|&v| v.abs() as f64).sum();
        (s / self.data.len() as f64) as f32
    }

    /// Largest element (−∞ for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Smallest element (+∞ for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Largest absolute value (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data
            .iter()
            .copied()
            .fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Sum of squares.
    pub fn sq_sum(&self) -> f32 {
        self.data
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>() as f32
    }

    /// Index of the maximum element of a rank-1 tensor, or of each row of a
    /// rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics for ranks other than 1 or 2.
    pub fn argmax_rows(&self) -> Vec<usize> {
        match self.rank() {
            1 => vec![argmax_slice(&self.data)],
            2 => {
                let (rows, cols) = (self.shape[0], self.shape[1]);
                (0..rows)
                    .map(|r| argmax_slice(&self.data[r * cols..(r + 1) * cols]))
                    .collect()
            }
            r => panic!("argmax_rows supports rank 1 or 2, got {r}"),
        }
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.rank(), 2, "transpose2 requires rank 2");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor {
            shape: vec![n, m],
            data: out,
        }
    }

    /// Copies rows `[start, end)` along the outermost dimension.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end` exceeds the outermost dimension.
    pub fn slice_outer(&self, start: usize, end: usize) -> Tensor {
        assert!(
            start <= end && end <= self.shape[0],
            "slice [{start},{end}) of {:?}",
            self.shape
        );
        let inner: usize = self.shape[1..].iter().product();
        let mut shape = self.shape.clone();
        shape[0] = end - start;
        Tensor {
            shape,
            data: self.data[start * inner..end * inner].to_vec(),
        }
    }

    /// Stacks tensors along a new outermost dimension.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or shapes differ.
    pub fn stack_outer(items: &[Tensor]) -> Tensor {
        assert!(!items.is_empty(), "stack_outer of empty list");
        let inner_shape = items[0].shape.clone();
        let mut data = Vec::with_capacity(items.len() * items[0].numel());
        for t in items {
            assert_eq!(t.shape, inner_shape, "stack_outer shape mismatch");
            data.extend_from_slice(&t.data);
        }
        let mut shape = vec![items.len()];
        shape.extend_from_slice(&inner_shape);
        Tensor { shape, data }
    }

    /// Element-wise division.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ (division by zero follows IEEE 754).
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a / b)
    }

    /// Concatenates tensors along the outermost dimension.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty or inner shapes differ.
    pub fn concat_outer(items: &[&Tensor]) -> Tensor {
        assert!(!items.is_empty(), "concat_outer of empty list");
        let inner = &items[0].shape[1..];
        let mut outer = 0;
        let mut data = Vec::new();
        for t in items {
            assert_eq!(&t.shape[1..], inner, "concat_outer inner-shape mismatch");
            outer += t.shape[0];
            data.extend_from_slice(&t.data);
        }
        let mut shape = vec![outer];
        shape.extend_from_slice(inner);
        Tensor { shape, data }
    }

    /// Sum along one axis, removing it from the shape.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank` or the tensor is rank 1 with no remaining
    /// dims... (a rank-1 tensor reduces to a scalar-shaped `[1]` tensor).
    pub fn sum_axis(&self, axis: usize) -> Tensor {
        assert!(
            axis < self.rank(),
            "axis {axis} out of range for rank {}",
            self.rank()
        );
        let outer: usize = self.shape[..axis].iter().product();
        let mid = self.shape[axis];
        let inner: usize = self.shape[axis + 1..].iter().product();
        let mut out = vec![0.0f32; outer * inner];
        for o in 0..outer {
            for m in 0..mid {
                let base = (o * mid + m) * inner;
                let obase = o * inner;
                for i in 0..inner {
                    out[obase + i] += self.data[base + i];
                }
            }
        }
        let mut shape: Vec<usize> = self.shape[..axis]
            .iter()
            .chain(&self.shape[axis + 1..])
            .copied()
            .collect();
        if shape.is_empty() {
            shape.push(1);
        }
        Tensor::from_vec(out, &shape)
    }

    /// Mean along one axis, removing it from the shape.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn mean_axis(&self, axis: usize) -> Tensor {
        let n = self.shape[axis] as f32;
        let mut t = self.sum_axis(axis);
        t.scale_in_place(1.0 / n);
        t
    }

    /// Maximum absolute element-wise difference to another tensor.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        self.assert_same_shape(other);
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// `true` when every element differs from `other` by at most `tol`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn allclose(&self, other: &Tensor, tol: f32) -> bool {
        self.max_abs_diff(other) <= tol
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

fn argmax_slice(s: &[f32]) -> usize {
    let mut best = 0;
    let mut bestv = f32::NEG_INFINITY;
    for (i, &v) in s.iter().enumerate() {
        if v > bestv {
            bestv = v;
            best = i;
        }
    }
    best
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.numel() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{} elements, mean {:.4}, min {:.4}, max {:.4}]",
                self.numel(),
                self.mean(),
                self.min(),
                self.max()
            )
        }
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.at(&[0, 0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot have shape")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(vec![1.0; 5], &[2, 3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[3, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[3, 2]).sum(), 6.0);
        assert_eq!(Tensor::full(&[4], 2.5).sum(), 10.0);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]);
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).data(), &[4.0, 10.0, 18.0]);
        let mut c = a.clone();
        c.add_scaled(&b, 2.0);
        assert_eq!(c.data(), &[9.0, 12.0, 15.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2, 2]);
        let b = Tensor::zeros(&[4]);
        let _ = a.add(&b);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-2.0, 1.0, 3.0, -4.0], &[2, 2]);
        assert_eq!(t.sum(), -2.0);
        assert_eq!(t.mean(), -0.5);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), -4.0);
        assert_eq!(t.max_abs(), 4.0);
        assert_eq!(t.abs_mean(), 2.5);
        assert_eq!(t.sq_sum(), 4.0 + 1.0 + 9.0 + 16.0);
    }

    #[test]
    fn empty_tensor_reductions_are_defined() {
        let t = Tensor::zeros(&[0]);
        assert!(t.is_empty());
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.abs_mean(), 0.0);
        assert_eq!(t.max_abs(), 0.0);
    }

    #[test]
    fn transpose2_is_involution() {
        let t = Tensor::from_vec((0..12).map(|i| i as f32).collect(), &[3, 4]);
        let tt = t.transpose2();
        assert_eq!(tt.shape(), &[4, 3]);
        assert_eq!(tt.at(&[1, 2]), t.at(&[2, 1]));
        assert_eq!(tt.transpose2(), t);
    }

    #[test]
    fn argmax_rows_rank1_and_rank2() {
        let t = Tensor::from_vec(vec![0.1, 0.9, 0.5], &[3]);
        assert_eq!(t.argmax_rows(), vec![1]);
        let m = Tensor::from_vec(vec![1.0, 2.0, 3.0, 9.0, 8.0, 7.0], &[2, 3]);
        assert_eq!(m.argmax_rows(), vec![2, 0]);
    }

    #[test]
    fn slice_and_stack_roundtrip() {
        let t = Tensor::from_vec((0..24).map(|i| i as f32).collect(), &[4, 3, 2]);
        let a = t.slice_outer(0, 2);
        let b = t.slice_outer(2, 4);
        assert_eq!(a.shape(), &[2, 3, 2]);
        let parts: Vec<Tensor> = (0..4)
            .map(|i| {
                let s = t.slice_outer(i, i + 1);
                s.reshape(&[3, 2])
            })
            .collect();
        let restacked = Tensor::stack_outer(&parts);
        assert_eq!(restacked, t);
        assert_eq!(b.at(&[0, 0, 0]), 12.0);
    }

    #[test]
    fn idx4_matches_at() {
        let t = Tensor::from_vec((0..120).map(|i| i as f32).collect(), &[2, 3, 4, 5]);
        assert_eq!(t.data()[t.idx4(1, 2, 3, 4)], t.at(&[1, 2, 3, 4]));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::arange(6);
        let r = t.reshape(&[2, 3]);
        assert_eq!(r.at(&[1, 0]), 3.0);
        let mut r2 = r.clone();
        r2.reshape_in_place(&[3, 2]);
        assert_eq!(r2.shape(), &[3, 2]);
        assert_eq!(r2.data(), t.data());
    }

    #[test]
    fn div_elementwise() {
        let a = Tensor::from_vec(vec![6.0, 9.0, -4.0], &[3]);
        let b = Tensor::from_vec(vec![2.0, 3.0, 4.0], &[3]);
        assert_eq!(a.div(&b).data(), &[3.0, 3.0, -1.0]);
    }

    #[test]
    fn concat_outer_stacks_batches() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]);
        let b = Tensor::from_vec(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = Tensor::concat_outer(&[&a, &b]);
        assert_eq!(c.shape(), &[3, 2]);
        assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "inner-shape mismatch")]
    fn concat_outer_rejects_mismatch() {
        let a = Tensor::zeros(&[1, 2]);
        let b = Tensor::zeros(&[1, 3]);
        let _ = Tensor::concat_outer(&[&a, &b]);
    }

    #[test]
    fn sum_and_mean_axis() {
        let t = Tensor::from_vec((1..=6).map(|i| i as f32).collect(), &[2, 3]);
        // Sum over rows (axis 0): column sums.
        assert_eq!(t.sum_axis(0).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(t.sum_axis(0).shape(), &[3]);
        // Sum over columns (axis 1): row sums.
        assert_eq!(t.sum_axis(1).data(), &[6.0, 15.0]);
        assert_eq!(t.mean_axis(1).data(), &[2.0, 5.0]);
        // Middle axis of a rank-3 tensor.
        let u = Tensor::arange(8).reshape(&[2, 2, 2]);
        assert_eq!(u.sum_axis(1).data(), &[2.0, 4.0, 10.0, 12.0]);
        // Rank-1 reduces to [1].
        assert_eq!(Tensor::arange(4).sum_axis(0).data(), &[6.0]);
    }

    #[test]
    fn allclose_and_diff() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]);
        let b = Tensor::from_vec(vec![1.01, 1.995], &[2]);
        assert!(a.allclose(&b, 0.011));
        assert!(!a.allclose(&b, 0.005));
        assert!((a.max_abs_diff(&b) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn debug_is_never_empty() {
        let t = Tensor::zeros(&[0]);
        assert!(!format!("{t:?}").is_empty());
        let big = Tensor::zeros(&[100]);
        assert!(format!("{big:?}").contains("elements"));
    }
}
