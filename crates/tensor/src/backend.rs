//! **Pluggable execution backends** for the partial-sum front-end.
//!
//! [`ExecBackend`] owns the per-layer compute contract that the CIM
//! pipeline used to hardcode: the f32 grouped-convolution sweep (im2col +
//! GEMM) and the integer chain (i8 im2col, i8→i32 widening, panel GEMM,
//! exact i32→f32 epilogue). Three first-class implementations ship:
//!
//! * [`ScalarRef`] — a plain serial loop-nest **reference oracle** for
//!   differential testing. No threading inside the GEMM, no zero-skip, no
//!   blocking: the simplest auditable implementation of the arithmetic.
//! * [`SimdF32`] — the production f32 path: blocked, autovectorized,
//!   row-parallel GEMM kernels on the persistent [`exec`](crate::exec)
//!   pool.
//! * [`IntPanels`] — the `i8×i8→i32` panel kernels over freeze-time
//!   repacked weights ([`PackedPanels`]); applicable only when a layer's
//!   frozen slices are integer-eligible, which the capability probe
//!   [`ExecBackend::supports`] reports from a [`ConvProfile`].
//!
//! All backends are **bit-identical** where applicable: partial sums are
//! exact integers well inside f32's 24-bit mantissa, and the only latitude
//! the f32 paths have is the sign of a zero (skipping vs including
//! products with a `±0.0` factor), which no downstream operation — add,
//! multiply, clamp, round, compare — can amplify into an observable
//! difference under `f32` equality. The equivalence test matrices pin
//! this.
//!
//! [`BackendSet`] is an ordered fallback chain of backends; a layer
//! resolves the first chain entry that supports its profile. The legacy
//! [`PsumKernel`] enum survives as a thin compat constructor
//! (`BackendSet::from(PsumKernel)`). The process-wide default chain is
//! read once from the `CQ_BACKEND` environment variable
//! (`auto` | `f32` | `int` | `scalar`, default `auto`) by
//! [`BackendSet::standard`].

use crate::conv::{conv2d_grouped_into, im2col_image};
use crate::igemm::{accum_to_f32, igemm_into, im2col_i8, widen_i8_to_i32, PackedPanels};
use crate::{ConvShape, Tensor};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// Identity of an execution backend — the unit of placement, fallback
/// ordering, and per-backend serving statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// Serial loop-nest reference oracle ([`ScalarRef`]).
    Scalar,
    /// Blocked/threaded f32 kernels ([`SimdF32`]).
    SimdF32,
    /// Integer `i8×i8→i32` panel kernels ([`IntPanels`]).
    IntPanels,
}

impl BackendKind {
    /// Every backend kind, in [`BackendKind::index`] order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Scalar,
        BackendKind::SimdF32,
        BackendKind::IntPanels,
    ];

    /// Stable short name (used in bench JSON and `ServeStats`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Scalar => "scalar",
            BackendKind::SimdF32 => "simd-f32",
            BackendKind::IntPanels => "int-panels",
        }
    }

    /// Dense index (for per-backend counter arrays).
    pub fn index(self) -> usize {
        match self {
            BackendKind::Scalar => 0,
            BackendKind::SimdF32 => 1,
            BackendKind::IntPanels => 2,
        }
    }
}

/// What a frozen convolution offers to the capability probe
/// [`ExecBackend::supports`].
///
/// `integer_eligible` reports whether the layer's frozen weight slices
/// actually repacked into integer panels at freeze time (exact i8 values,
/// activations in i8 range, worst-case column sums inside the 2²⁴ f32
/// window) — computed from the real pack outcome, so the probe can never
/// drift from the kernels' own eligibility rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConvProfile {
    /// Frozen slices repacked into integer panels at freeze time.
    pub integer_eligible: bool,
}

/// Backend selection failure, mirroring the `ConfigError` convention:
/// recoverable configuration mistakes are reported, not panicked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BackendError {
    /// A shard placement named a backend that does not support the layer
    /// (e.g. `IntPanels` on slices that are not integer-eligible).
    Unsupported(BackendKind),
    /// No backend in the chain supports the layer.
    NoBackend(Vec<BackendKind>),
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unsupported(k) => write!(
                f,
                "backend `{}` does not support this layer \
                 (frozen slices not integer-eligible?)",
                k.name()
            ),
            BackendError::NoBackend(kinds) => {
                let names: Vec<_> = kinds.iter().map(|k| k.name()).collect();
                write!(
                    f,
                    "no backend in chain [{}] supports this layer \
                     (frozen slices not integer-eligible?)",
                    names.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for BackendError {}

/// The per-layer compute contract of the partial-sum front-end.
///
/// The f32 entry point is [`conv_grouped_into`](ExecBackend::conv_grouped_into);
/// the integer chain (`im2col_i8` → `widen_i8_to_i32` → `igemm_into` →
/// `accum_to_f32`) is only driven when [`integer`](ExecBackend::integer)
/// is `true`, and its default methods forward to the free-function
/// kernels of this crate. Implementations must be `Send + Sync`: shard
/// tasks call them from pooled worker threads.
pub trait ExecBackend: Send + Sync + fmt::Debug {
    /// This backend's identity.
    fn kind(&self) -> BackendKind;

    /// Stable short name (defaults to the kind's name).
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Capability probe: can this backend execute a layer with `profile`?
    fn supports(&self, profile: &ConvProfile) -> bool;

    /// Whether sweeps on this backend run the integer chain (over
    /// freeze-time repacked panels) instead of the f32 grouped conv.
    fn integer(&self) -> bool {
        false
    }

    /// Grouped 2-D convolution into caller-provided output and im2col
    /// scratch — the f32 partial-sum sweep for one bit-split. `out` is
    /// resized and overwritten; `col` is grown as needed and left dirty.
    // The signature mirrors `conv2d_grouped_into` exactly so overrides
    // stay drop-in for the free-function kernel.
    #[allow(clippy::too_many_arguments)]
    fn conv_grouped_into(
        &self,
        input: &Tensor,
        weight: &Tensor,
        stride: usize,
        pad: usize,
        groups: usize,
        out: &mut Tensor,
        col: &mut Vec<f32>,
    ) {
        conv2d_grouped_into(input, weight, stride, pad, groups, out, col);
    }

    /// i8 im2col of one image's channel block (integer chain step 1).
    fn im2col_i8(&self, img: &[f32], c_start: usize, c_len: usize, s: &ConvShape, col: &mut [i8]) {
        im2col_i8(img, c_start, c_len, s, col);
    }

    /// Widens the i8 patch matrix to the i32 GEMM operand (step 2).
    fn widen_i8_to_i32(&self, src: &[i8], dst: &mut [i32]) {
        widen_i8_to_i32(src, dst);
    }

    /// `C += A · B` over packed weight panels (step 3).
    fn igemm_into(&self, a: &PackedPanels, b: &[i32], n: usize, c: &mut [i32]) {
        igemm_into(a, b, n, c);
    }

    /// Exact `i32 → f32` psum epilogue (step 4).
    fn accum_to_f32(&self, acc: &[i32], out: &mut [f32]) {
        accum_to_f32(acc, out);
    }
}

/// Serial single-accumulator `C += A·B` in ascending-`k` axpy order — the
/// same per-element accumulation order as the production f32 kernels, with
/// no threading, blocking, or zero-skip.
fn gemm_nn_scalar(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A buffer length");
    assert_eq!(b.len(), k * n, "B buffer length");
    assert_eq!(c.len(), m * n, "C buffer length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let c_row = &mut c[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (cv, &bv) in c_row.iter_mut().zip(b_row) {
                *cv += av * bv;
            }
        }
    }
}

/// The loop-nest reference backend: im2col + serial scalar GEMM, one
/// accumulator per output element, ascending-`k` order. Slow on purpose —
/// it exists so every optimized backend has a differential-testing oracle
/// that can never rot (CI runs the full test suite with
/// `CQ_BACKEND=scalar`).
#[derive(Debug, Clone, Copy, Default)]
pub struct ScalarRef;

impl ExecBackend for ScalarRef {
    fn kind(&self) -> BackendKind {
        BackendKind::Scalar
    }

    fn supports(&self, _profile: &ConvProfile) -> bool {
        true
    }

    #[allow(clippy::too_many_arguments)]
    fn conv_grouped_into(
        &self,
        input: &Tensor,
        weight: &Tensor,
        stride: usize,
        pad: usize,
        groups: usize,
        out: &mut Tensor,
        col: &mut Vec<f32>,
    ) {
        let s = ConvShape::new(input.shape(), weight.shape(), stride, pad, groups);
        let out_shape = [s.batch, s.out_ch, s.out_h, s.out_w];
        if out.shape() != out_shape {
            *out = Tensor::zeros(&out_shape);
        } else {
            out.fill(0.0);
        }
        let (cr, cc) = (s.col_rows(), s.col_cols());
        if col.len() < cr * cc {
            col.resize(cr * cc, 0.0);
        }
        let col = &mut col[..cr * cc];
        let cg = s.ch_per_group();
        let ocg = s.out_per_group();
        let in_img = s.in_ch * s.in_h * s.in_w;
        let out_img = s.out_ch * s.out_h * s.out_w;
        for b in 0..s.batch {
            let img = &input.data()[b * in_img..(b + 1) * in_img];
            for g in 0..s.groups {
                im2col_image(img, g * cg, cg, &s, col);
                let w_g = &weight.data()[g * ocg * cr..(g + 1) * ocg * cr];
                let out_g = &mut out.data_mut()
                    [b * out_img + g * ocg * cc..b * out_img + (g + 1) * ocg * cc];
                gemm_nn_scalar(ocg, cr, cc, w_g, col, out_g);
            }
        }
    }
}

/// The production f32 backend: blocked, autovectorized, row-parallel GEMM
/// on the persistent executor pool (this crate's default kernels).
#[derive(Debug, Clone, Copy, Default)]
pub struct SimdF32;

impl ExecBackend for SimdF32 {
    fn kind(&self) -> BackendKind {
        BackendKind::SimdF32
    }

    fn supports(&self, _profile: &ConvProfile) -> bool {
        true
    }
}

/// The integer panel backend: freeze-time repacked `i8` weight panels
/// driven through `i8×i8→i32` GEMMs with exact `i32→f32` epilogues.
/// Applicable only to integer-eligible layers (the capability probe
/// replaces the scattered `Option<IntGroupedWeights>` checks it grew out
/// of).
#[derive(Debug, Clone, Copy, Default)]
pub struct IntPanels;

impl ExecBackend for IntPanels {
    fn kind(&self) -> BackendKind {
        BackendKind::IntPanels
    }

    fn supports(&self, profile: &ConvProfile) -> bool {
        profile.integer_eligible
    }

    fn integer(&self) -> bool {
        true
    }
}

/// The shared instance of a backend kind (backends are stateless; weight
/// artifacts live with the frozen layer, keyed by the backend that owns
/// them).
pub fn backend_instance(kind: BackendKind) -> Arc<dyn ExecBackend> {
    static CELLS: OnceLock<[Arc<dyn ExecBackend>; 3]> = OnceLock::new();
    let cells = CELLS.get_or_init(|| [Arc::new(ScalarRef), Arc::new(SimdF32), Arc::new(IntPanels)]);
    cells[kind.index()].clone()
}

/// Legacy kernel-family selector, kept as a thin compat constructor for
/// [`BackendSet`] (`BackendSet::from(kernel)`): `Auto` maps to the
/// `[IntPanels, SimdF32]` fallback chain, `F32` to `[SimdF32]`, `Int` to
/// the no-fallback `[IntPanels]` chain.
///
/// Partial sums are exact integers well inside f32's 24-bit mantissa, so
/// every backend is **bit-identical** where applicable — the choice is
/// purely about speed. The digitizer is downstream of the psums, so both
/// ideal and ADC digitizers run unchanged over any backend's output.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PsumKernel {
    /// The integer `i8×i8→i32` panel kernels whenever the frozen weight
    /// slices are integer-exact, the f32 kernels otherwise (e.g. when
    /// device variation has perturbed slices off-integer).
    #[default]
    Auto,
    /// Always the f32 grouped-convolution kernels.
    F32,
    /// Require the integer kernels; selection fails if the frozen slices
    /// are not integer-eligible.
    Int,
}

/// An ordered fallback chain of execution backends.
///
/// A layer resolves to the **first** chain entry whose capability probe
/// accepts its [`ConvProfile`]; resolution fails (a [`BackendError`], not
/// a panic) when no entry does. Equality compares the chain's
/// [`BackendKind`]s.
#[derive(Debug, Clone)]
pub struct BackendSet {
    chain: Vec<Arc<dyn ExecBackend>>,
}

impl BackendSet {
    /// A chain of the given kinds, in fallback order.
    ///
    /// # Panics
    ///
    /// Panics on an empty chain.
    pub fn new(kinds: &[BackendKind]) -> Self {
        assert!(!kinds.is_empty(), "backend chain must not be empty");
        Self {
            chain: kinds.iter().map(|&k| backend_instance(k)).collect(),
        }
    }

    /// `[IntPanels, SimdF32]` — integer kernels with f32 fallback (the
    /// historical `PsumKernel::Auto`).
    pub fn auto() -> Self {
        Self::new(&[BackendKind::IntPanels, BackendKind::SimdF32])
    }

    /// `[SimdF32]` — always the f32 kernels.
    pub fn f32() -> Self {
        Self::new(&[BackendKind::SimdF32])
    }

    /// `[IntPanels]` — integer kernels with no fallback; resolution fails
    /// on layers that are not integer-eligible.
    pub fn int() -> Self {
        Self::new(&[BackendKind::IntPanels])
    }

    /// `[Scalar]` — the serial reference oracle.
    pub fn scalar() -> Self {
        Self::new(&[BackendKind::Scalar])
    }

    /// The process-wide default chain, read **once** from the
    /// `CQ_BACKEND` environment variable: `auto` (default), `f32`, `int`,
    /// or `scalar`. Explicit `set_backends`/`set_psum_kernel` calls always
    /// override this default.
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized `CQ_BACKEND` value.
    pub fn standard() -> Self {
        static DEFAULT: OnceLock<BackendSet> = OnceLock::new();
        DEFAULT
            .get_or_init(|| match std::env::var("CQ_BACKEND") {
                Ok(v) => BackendSet::from_name(&v).unwrap_or_else(|| {
                    panic!("CQ_BACKEND must be one of auto|f32|int|scalar, got {v:?}")
                }),
                Err(_) => BackendSet::auto(),
            })
            .clone()
    }

    /// Parses a chain name as accepted by `CQ_BACKEND`.
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "auto" => Some(Self::auto()),
            "f32" => Some(Self::f32()),
            "int" => Some(Self::int()),
            "scalar" => Some(Self::scalar()),
            _ => None,
        }
    }

    /// The chain, in fallback order.
    pub fn chain(&self) -> &[Arc<dyn ExecBackend>] {
        &self.chain
    }

    /// The chain's kinds, in fallback order.
    pub fn kinds(&self) -> Vec<BackendKind> {
        self.chain.iter().map(|b| b.kind()).collect()
    }

    /// Whether the chain contains `kind`.
    pub fn contains(&self, kind: BackendKind) -> bool {
        self.chain.iter().any(|b| b.kind() == kind)
    }

    /// The first backend that supports `profile`, if any.
    pub fn resolve(&self, profile: &ConvProfile) -> Option<Arc<dyn ExecBackend>> {
        self.chain.iter().find(|b| b.supports(profile)).cloned()
    }

    /// The legacy [`PsumKernel`] view of this chain: `Auto` when it holds
    /// `IntPanels` plus a fallback, `Int` for the bare `IntPanels` chain,
    /// `F32` otherwise (including the scalar chain, which the closed enum
    /// cannot name).
    pub fn as_psum_kernel(&self) -> PsumKernel {
        if self.contains(BackendKind::IntPanels) {
            if self.chain.len() > 1 {
                PsumKernel::Auto
            } else {
                PsumKernel::Int
            }
        } else {
            PsumKernel::F32
        }
    }
}

impl PartialEq for BackendSet {
    fn eq(&self, other: &Self) -> bool {
        self.kinds() == other.kinds()
    }
}

impl Eq for BackendSet {}

impl From<PsumKernel> for BackendSet {
    fn from(kernel: PsumKernel) -> Self {
        match kernel {
            PsumKernel::Auto => Self::auto(),
            PsumKernel::F32 => Self::f32(),
            PsumKernel::Int => Self::int(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{conv2d_grouped, CqRng};

    /// The scalar oracle must equal the production f32 conv bit-for-bit
    /// (zero-sign latitude compares equal under f32 `==`), across batch,
    /// groups, stride, and padding.
    #[test]
    fn scalar_conv_matches_production_f32() {
        let mut rng = CqRng::new(5);
        for (b, groups, cin_g, oc_g, hw, k, stride, pad) in [
            (1, 1, 3, 4, 6, 3, 1, 1),
            (2, 3, 2, 5, 5, 3, 1, 1),
            (3, 2, 4, 4, 7, 3, 2, 0),
            (1, 4, 1, 2, 4, 1, 1, 0),
        ] {
            let x = rng.normal_tensor(&[b, groups * cin_g, hw, hw], 1.0);
            let w = rng
                .uniform_tensor(&[groups * oc_g, cin_g, k, k], -4.0, 4.0)
                .map(|v| v.floor());
            let want = conv2d_grouped(&x, &w, stride, pad, groups);
            let mut got = Tensor::zeros(&[1]);
            let mut col = Vec::new();
            ScalarRef.conv_grouped_into(&x, &w, stride, pad, groups, &mut got, &mut col);
            assert_eq!(got, want, "groups={groups} stride={stride} pad={pad}");
            // Dirty-scratch reuse must be bit-stable.
            ScalarRef.conv_grouped_into(&x, &w, stride, pad, groups, &mut got, &mut col);
            assert_eq!(got, want, "warm scratch diverged");
        }
    }

    #[test]
    fn chain_resolution_honors_capability_probe() {
        let eligible = ConvProfile {
            integer_eligible: true,
        };
        let ineligible = ConvProfile {
            integer_eligible: false,
        };
        assert_eq!(
            BackendSet::auto().resolve(&eligible).unwrap().kind(),
            BackendKind::IntPanels
        );
        assert_eq!(
            BackendSet::auto().resolve(&ineligible).unwrap().kind(),
            BackendKind::SimdF32
        );
        assert!(BackendSet::int().resolve(&ineligible).is_none());
        assert_eq!(
            BackendSet::scalar().resolve(&ineligible).unwrap().kind(),
            BackendKind::Scalar
        );
    }

    /// The `PsumKernel` compat mapping is pinned in both directions.
    #[test]
    fn psum_kernel_compat_mapping_is_pinned() {
        assert_eq!(
            BackendSet::from(PsumKernel::Auto).kinds(),
            vec![BackendKind::IntPanels, BackendKind::SimdF32]
        );
        assert_eq!(
            BackendSet::from(PsumKernel::F32).kinds(),
            vec![BackendKind::SimdF32]
        );
        assert_eq!(
            BackendSet::from(PsumKernel::Int).kinds(),
            vec![BackendKind::IntPanels]
        );
        for k in [PsumKernel::Auto, PsumKernel::F32, PsumKernel::Int] {
            assert_eq!(BackendSet::from(k).as_psum_kernel(), k);
        }
        assert_eq!(BackendSet::scalar().as_psum_kernel(), PsumKernel::F32);
    }

    #[test]
    fn chain_names_parse_and_compare() {
        for name in ["auto", "f32", "int", "scalar"] {
            let set = BackendSet::from_name(name).unwrap();
            assert_eq!(set, set.clone());
        }
        assert!(BackendSet::from_name("gpu").is_none());
        assert_ne!(BackendSet::auto(), BackendSet::int());
        assert_eq!(
            BackendError::NoBackend(vec![BackendKind::IntPanels]).to_string(),
            "no backend in chain [int-panels] supports this layer \
             (frozen slices not integer-eligible?)"
        );
    }
}
