//! Per-worker scratch arenas: recycled, typed buffers for every per-call
//! allocation on the inference hot path.
//!
//! Each OS thread that executes kernel work — executor pool workers, serve
//! session workers, or a client thread calling the engine directly — owns
//! one thread-local [`ScratchArena`]. Checkout is by element type
//! ([`take_f32`] / [`take_i8`] / [`take_i32`], plus [`take_tensor`] for
//! tensor-shaped psum/activation scratch, which is just an `f32` slab with a
//! shape attached), and buffers are handed back with the matching `put_*`
//! call so the capacity is reused by the next layer on the same worker.
//!
//! This replaces the old per-layer `ConvScratch` design, where every frozen
//! conv held its own `Mutex<Vec<ConvScratch>>` pool: scratch memory
//! multiplied across layers × serve workers × models, each pool grew to the
//! largest batch that layer ever saw, and nothing ever shrank. With one
//! arena per worker the footprint is `workers × max-single-layer-need`, and
//! a high-water trim (see below) lets it decay after a burst.
//!
//! # Checkout is by value
//!
//! `take_*` transfers ownership of a plain `Vec` (or [`Tensor`]) rather than
//! lending a borrow, so checkout is re-entrant: a conv that holds its im2col
//! buffer can call into a kernel that checks out more scratch on the same
//! thread without aliasing trouble. If a task panics between `take` and
//! `put`, the buffer is simply dropped — the arena loses a recycled buffer,
//! never its integrity.
//!
//! # High-water trim
//!
//! The arena tracks the peak number of bytes simultaneously checked out
//! within a sliding window of [`TRIM_WINDOW`] returns. At each window
//! boundary, retained free capacity beyond that recent peak is released, so
//! one huge calibration batch no longer pins its scratch for the life of the
//! server. [`ScratchArena::peak_bytes`] (per arena) and
//! [`global_peak_bytes`] (process-wide high-water across all arenas) are
//! exposed as debug stats.

use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::Tensor;

/// Number of `put_*` calls between high-water trims of retained capacity.
pub const TRIM_WINDOW: usize = 256;

/// Process-wide high-water mark of bytes held by any single arena.
static GLOBAL_PEAK: AtomicUsize = AtomicUsize::new(0);

/// The largest number of scratch bytes any single arena has held (checked
/// out + retained free capacity) since process start. Debug stat.
pub fn global_peak_bytes() -> usize {
    GLOBAL_PEAK.load(Ordering::Relaxed)
}

/// One type's recycled buffers.
struct Slab<T> {
    free: Vec<Vec<T>>,
}

impl<T: Clone + Default> Slab<T> {
    const fn new() -> Self {
        Self { free: Vec::new() }
    }

    /// Bytes of retained free capacity.
    fn held_bytes(&self) -> usize {
        self.free
            .iter()
            .map(|v| v.capacity() * std::mem::size_of::<T>())
            .sum()
    }

    /// Takes the best-fitting free buffer (smallest capacity ≥ `len`, else
    /// the largest available) resized to exactly `len` elements. Contents of
    /// the reused prefix are stale unless `zero` is set.
    fn take(&mut self, len: usize, zero: bool) -> Vec<T> {
        let pick = self
            .free
            .iter()
            .enumerate()
            .filter(|(_, v)| v.capacity() >= len)
            .min_by_key(|(_, v)| v.capacity())
            .map(|(i, _)| i)
            .or_else(|| {
                self.free
                    .iter()
                    .enumerate()
                    .max_by_key(|(_, v)| v.capacity())
                    .map(|(i, _)| i)
            });
        let mut v = match pick {
            Some(i) => self.free.swap_remove(i),
            None => Vec::new(),
        };
        if zero {
            v.clear();
        }
        v.resize(len, T::default());
        v
    }

    fn put(&mut self, v: Vec<T>) {
        if v.capacity() > 0 {
            self.free.push(v);
        }
    }

    /// Drops free buffers (smallest first) until retained capacity is at
    /// most `budget` bytes.
    fn trim_to(&mut self, budget: usize) {
        self.free.sort_by_key(|v| v.capacity());
        while self.held_bytes() > budget && !self.free.is_empty() {
            self.free.remove(0);
        }
    }
}

/// A per-worker pool of recycled scratch buffers with typed checkout.
///
/// Usually accessed through the thread-local free functions ([`take_f32`]
/// and friends); owning one directly is useful in tests.
pub struct ScratchArena {
    f32s: Slab<f32>,
    i8s: Slab<i8>,
    i32s: Slab<i32>,
    /// Capacity bytes currently checked out (footprint accounting).
    out_cap_bytes: usize,
    /// Requested bytes currently checked out (what the workload needs, as
    /// opposed to the capacity that happens to back it).
    out_need_bytes: usize,
    /// All-time high-water of checked-out + retained capacity bytes.
    peak_bytes: usize,
    /// Peak of *requested* checked-out bytes within the current trim
    /// window — becomes the retention budget at the window boundary.
    window_peak: usize,
    /// Retention budget from the previous window: any buffer whose return
    /// pushes held capacity past this is released immediately.
    trim_budget: usize,
    /// `put_*` calls since the last trim.
    puts: usize,
}

impl Default for ScratchArena {
    fn default() -> Self {
        Self::new()
    }
}

impl ScratchArena {
    /// Creates an empty arena.
    pub const fn new() -> Self {
        Self {
            f32s: Slab::new(),
            i8s: Slab::new(),
            i32s: Slab::new(),
            out_cap_bytes: 0,
            out_need_bytes: 0,
            peak_bytes: 0,
            window_peak: 0,
            trim_budget: usize::MAX,
            puts: 0,
        }
    }

    /// Bytes of free capacity currently retained for reuse.
    pub fn held_bytes(&self) -> usize {
        self.f32s.held_bytes() + self.i8s.held_bytes() + self.i32s.held_bytes()
    }

    /// All-time high-water mark of this arena's footprint (checked out plus
    /// retained), in bytes. Debug stat.
    pub fn peak_bytes(&self) -> usize {
        self.peak_bytes
    }

    fn note_take(&mut self, need: usize, cap: usize) {
        self.out_need_bytes += need;
        self.out_cap_bytes += cap;
        self.window_peak = self.window_peak.max(self.out_need_bytes);
        let footprint = self.out_cap_bytes + self.held_bytes();
        if footprint > self.peak_bytes {
            self.peak_bytes = footprint;
            GLOBAL_PEAK.fetch_max(footprint, Ordering::Relaxed);
        }
    }

    /// Called after the buffer is back in its slab, so enforcement can
    /// release the very capacity that was just returned.
    fn note_put(&mut self, need: usize, cap: usize) {
        self.out_need_bytes = self.out_need_bytes.saturating_sub(need);
        self.out_cap_bytes = self.out_cap_bytes.saturating_sub(cap);
        self.puts += 1;
        if self.puts >= TRIM_WINDOW {
            self.trim();
        } else if self.held_bytes() > self.trim_budget {
            self.enforce_budget();
        }
    }

    /// Adopts the ending window's checked-out peak as the retention budget,
    /// releases capacity beyond it, and starts a new window. Called
    /// automatically every [`TRIM_WINDOW`] returns; public for tests and
    /// manual memory-pressure relief.
    pub fn trim(&mut self) {
        // Budget what the recent workload actually had in flight; anything
        // beyond that is a leftover from a larger burst. Buffers checked
        // out right now escape this pass, but the budget stays in force and
        // `note_put` releases them the moment they come back.
        self.trim_budget = self.window_peak;
        self.enforce_budget();
        self.window_peak = self.out_need_bytes;
        self.puts = 0;
    }

    /// Shrinks retained capacity to the current budget.
    fn enforce_budget(&mut self) {
        let budget = self.trim_budget;
        let held = self.held_bytes();
        if held > budget {
            // Split the budget across slabs proportionally to what each
            // currently holds, so a trim cannot starve one type.
            let scale = |h: usize| {
                if held == 0 {
                    0
                } else {
                    (h as u128 * budget as u128 / held as u128) as usize
                }
            };
            let f = scale(self.f32s.held_bytes());
            let i8b = scale(self.i8s.held_bytes());
            let i32b = scale(self.i32s.held_bytes());
            self.f32s.trim_to(f);
            self.i8s.trim_to(i8b);
            self.i32s.trim_to(i32b);
        }
    }

    /// Checks out an `f32` buffer of `len` elements with stale contents
    /// (every caller-visible element will be overwritten by the user).
    pub fn take_f32(&mut self, len: usize) -> Vec<f32> {
        let v = self.f32s.take(len, false);
        self.note_take(len * 4, v.capacity() * 4);
        v
    }

    /// Checks out a zero-filled `f32` buffer of `len` elements.
    pub fn take_f32_zeroed(&mut self, len: usize) -> Vec<f32> {
        let v = self.f32s.take(len, true);
        self.note_take(len * 4, v.capacity() * 4);
        v
    }

    /// Returns an `f32` buffer for reuse.
    pub fn put_f32(&mut self, v: Vec<f32>) {
        let (need, cap) = (v.len() * 4, v.capacity() * 4);
        self.f32s.put(v);
        self.note_put(need, cap);
    }

    /// Checks out an `i8` buffer of `len` elements with stale contents.
    pub fn take_i8(&mut self, len: usize) -> Vec<i8> {
        let v = self.i8s.take(len, false);
        self.note_take(len, v.capacity());
        v
    }

    /// Returns an `i8` buffer for reuse.
    pub fn put_i8(&mut self, v: Vec<i8>) {
        let (need, cap) = (v.len(), v.capacity());
        self.i8s.put(v);
        self.note_put(need, cap);
    }

    /// Checks out an `i32` buffer of `len` elements with stale contents.
    pub fn take_i32(&mut self, len: usize) -> Vec<i32> {
        let v = self.i32s.take(len, false);
        self.note_take(len * 4, v.capacity() * 4);
        v
    }

    /// Returns an `i32` buffer for reuse.
    pub fn put_i32(&mut self, v: Vec<i32>) {
        let (need, cap) = (v.len() * 4, v.capacity() * 4);
        self.i32s.put(v);
        self.note_put(need, cap);
    }

    /// Checks out a zero-filled tensor of `shape`, reusing recycled `f32`
    /// capacity.
    pub fn take_tensor(&mut self, shape: &[usize]) -> Tensor {
        let numel: usize = shape.iter().product();
        Tensor::from_vec(self.take_f32_zeroed(numel), shape)
    }

    /// Returns a tensor's storage for reuse.
    pub fn put_tensor(&mut self, t: Tensor) {
        self.put_f32(t.into_vec());
    }
}

thread_local! {
    static ARENA: RefCell<ScratchArena> = const { RefCell::new(ScratchArena::new()) };
}

/// Checks out an `f32` buffer (stale contents) from this thread's arena.
pub fn take_f32(len: usize) -> Vec<f32> {
    ARENA.with(|a| a.borrow_mut().take_f32(len))
}

/// Checks out a zero-filled `f32` buffer from this thread's arena.
pub fn take_f32_zeroed(len: usize) -> Vec<f32> {
    ARENA.with(|a| a.borrow_mut().take_f32_zeroed(len))
}

/// Returns an `f32` buffer to this thread's arena.
pub fn put_f32(v: Vec<f32>) {
    ARENA.with(|a| a.borrow_mut().put_f32(v));
}

/// Checks out an `i8` buffer (stale contents) from this thread's arena.
pub fn take_i8(len: usize) -> Vec<i8> {
    ARENA.with(|a| a.borrow_mut().take_i8(len))
}

/// Returns an `i8` buffer to this thread's arena.
pub fn put_i8(v: Vec<i8>) {
    ARENA.with(|a| a.borrow_mut().put_i8(v));
}

/// Checks out an `i32` buffer (stale contents) from this thread's arena.
pub fn take_i32(len: usize) -> Vec<i32> {
    ARENA.with(|a| a.borrow_mut().take_i32(len))
}

/// Returns an `i32` buffer to this thread's arena.
pub fn put_i32(v: Vec<i32>) {
    ARENA.with(|a| a.borrow_mut().put_i32(v));
}

/// Checks out a zero-filled tensor from this thread's arena.
pub fn take_tensor(shape: &[usize]) -> Tensor {
    ARENA.with(|a| a.borrow_mut().take_tensor(shape))
}

/// Returns a tensor's storage to this thread's arena.
pub fn put_tensor(t: Tensor) {
    ARENA.with(|a| a.borrow_mut().put_tensor(t));
}

/// This thread's arena high-water mark in bytes. Debug stat.
pub fn thread_peak_bytes() -> usize {
    ARENA.with(|a| a.borrow().peak_bytes())
}

/// Trims this thread's arena to its recent checked-out peak immediately.
pub fn trim_thread_arena() {
    ARENA.with(|a| a.borrow_mut().trim());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_reuses_capacity() {
        let mut a = ScratchArena::new();
        let v = a.take_f32_zeroed(1024);
        assert!(v.iter().all(|&x| x == 0.0));
        let cap = v.capacity();
        let ptr = v.as_ptr();
        a.put_f32(v);
        let v2 = a.take_f32(512);
        assert_eq!(v2.capacity(), cap);
        assert_eq!(v2.as_ptr(), ptr);
    }

    #[test]
    fn best_fit_prefers_smallest_sufficient() {
        let mut a = ScratchArena::new();
        let big = a.take_f32(4096);
        let small = a.take_f32(64);
        let (big_cap, small_cap) = (big.capacity(), small.capacity());
        a.put_f32(big);
        a.put_f32(small);
        let v = a.take_f32(32);
        assert_eq!(v.capacity(), small_cap);
        let v2 = a.take_f32(2048);
        assert_eq!(v2.capacity(), big_cap);
    }

    #[test]
    fn tensor_checkout_is_zeroed_and_shaped() {
        let mut a = ScratchArena::new();
        let mut t = a.take_tensor(&[2, 3]);
        t.data_mut().fill(5.0);
        a.put_tensor(t);
        let t2 = a.take_tensor(&[3, 2]);
        assert_eq!(t2.shape(), &[3, 2]);
        assert!(t2.data().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn high_water_trim_releases_burst_capacity() {
        let mut a = ScratchArena::new();
        // A huge one-off burst...
        let burst = a.take_f32(1 << 20);
        a.put_f32(burst);
        assert!(a.held_bytes() >= 4 << 20);
        let peak_after_burst = a.peak_bytes();
        // ...followed by a steady small workload. Two full windows: the
        // first trim's budget still includes the burst (it was in-window),
        // the second one releases it.
        for _ in 0..2 * TRIM_WINDOW {
            let v = a.take_i8(128);
            let w = a.take_f32(256);
            a.put_i8(v);
            a.put_f32(w);
        }
        // The trim at the window boundary released the burst capacity.
        assert!(
            a.held_bytes() < 1 << 20,
            "held {} bytes after trim",
            a.held_bytes()
        );
        // The debug stat still remembers the high-water mark.
        assert!(a.peak_bytes() >= peak_after_burst);
    }

    #[test]
    fn thread_local_roundtrip() {
        let v = take_f32_zeroed(100);
        assert_eq!(v.len(), 100);
        put_f32(v);
        assert!(thread_peak_bytes() >= 400);
        trim_thread_arena();
    }
}
