//! Property-based tests for the tensor substrate: the fast GEMM/conv kernels
//! must agree with naive references on arbitrary shapes, and shape algebra
//! must round-trip.

use cq_tensor::{
    conv2d_backward_input, conv2d_backward_weight, conv2d_grouped, conv2d_naive, matmul,
    matmul_a_bt, matmul_at_b, Tensor,
};
use proptest::prelude::*;

fn small_vals(n: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec((-8i8..=8).prop_map(|v| v as f32), n..=n)
}

fn naive_mm(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
    let mut c = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0;
            for kk in 0..k {
                s += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = s;
        }
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn gemm_matches_naive(m in 1usize..12, k in 1usize..12, n in 1usize..12, seed in 0u64..1000) {
        let a: Vec<f32> = (0..m * k)
            .map(|i| (((i as u64 + seed) * 2654435761) % 15) as f32 - 7.0)
            .collect();
        let b: Vec<f32> = (0..k * n)
            .map(|i| (((i as u64 + seed * 3) * 2246822519) % 15) as f32 - 7.0)
            .collect();
        let want = naive_mm(m, k, n, &a, &b);
        let got = matmul(&Tensor::from_vec(a, &[m, k]), &Tensor::from_vec(b, &[k, n]));
        prop_assert_eq!(got.data(), want.as_slice());
    }

    #[test]
    fn gemm_transpose_identities(m in 1usize..8, k in 1usize..8, n in 1usize..8, a in small_vals(64), b in small_vals(64)) {
        let a = Tensor::from_vec(a[..m * k].to_vec(), &[m, k]);
        let b = Tensor::from_vec(b[..k * n].to_vec(), &[k, n]);
        // A·B == (Aᵀ)ᵀ·B == A·(Bᵀ)ᵀ through the specialized kernels.
        let want = matmul(&a, &b);
        let via_at = matmul_at_b(&a.transpose2(), &b);
        let via_bt = matmul_a_bt(&a, &b.transpose2());
        prop_assert_eq!(want.clone(), via_at);
        prop_assert_eq!(want, via_bt);
    }

    #[test]
    fn conv_grouped_matches_naive(
        groups in 1usize..4,
        cg in 1usize..3,
        ocg in 1usize..3,
        hw in 3usize..8,
        k in 1usize..4,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..500,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let c = groups * cg;
        let oc = groups * ocg;
        let xn = c * hw * hw;
        let wn = oc * cg * k * k;
        let x: Vec<f32> = (0..xn).map(|i| (((i as u64 + seed) * 97) % 9) as f32 - 4.0).collect();
        let w: Vec<f32> = (0..wn).map(|i| (((i as u64 + seed * 7) * 193) % 9) as f32 - 4.0).collect();
        let x = Tensor::from_vec(x, &[1, c, hw, hw]);
        let w = Tensor::from_vec(w, &[oc, cg, k, k]);
        let fast = conv2d_grouped(&x, &w, stride, pad, groups);
        let slow = conv2d_naive(&x, &w, stride, pad, groups);
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn conv_gradient_shapes_and_linearity(
        c in 1usize..4, oc in 1usize..4, hw in 4usize..7, seed in 0u64..200,
    ) {
        let x: Vec<f32> = (0..c * hw * hw).map(|i| (((i as u64 + seed) * 31) % 7) as f32 - 3.0).collect();
        let x = Tensor::from_vec(x, &[1, c, hw, hw]);
        let w: Vec<f32> = (0..oc * c * 9).map(|i| (((i as u64 + seed * 5) * 61) % 7) as f32 - 3.0).collect();
        let w = Tensor::from_vec(w, &[oc, c, 3, 3]);
        let g = Tensor::ones(&[1, oc, hw, hw]);
        let dx = conv2d_backward_input(&g, &w, x.shape(), 1, 1, 1);
        let dw = conv2d_backward_weight(&g, &x, w.shape(), 1, 1, 1);
        prop_assert_eq!(dx.shape(), x.shape());
        prop_assert_eq!(dw.shape(), w.shape());
        // Linearity: doubling the upstream gradient doubles both gradients.
        let g2 = g.scale(2.0);
        let dx2 = conv2d_backward_input(&g2, &w, x.shape(), 1, 1, 1);
        let dw2 = conv2d_backward_weight(&g2, &x, w.shape(), 1, 1, 1);
        prop_assert!(dx.scale(2.0).allclose(&dx2, 1e-4));
        prop_assert!(dw.scale(2.0).allclose(&dw2, 1e-4));
    }

    #[test]
    fn reshape_roundtrip(dims in proptest::collection::vec(1usize..5, 1..4)) {
        let n: usize = dims.iter().product();
        let t = Tensor::arange(n);
        let r = t.reshape(&dims);
        prop_assert_eq!(r.reshape(&[n]), t);
    }
}
