//! Softmax cross-entropy loss with gradient and accuracy accounting.

use cq_tensor::Tensor;

/// Result of a loss evaluation on one batch.
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean cross-entropy over the batch.
    pub loss: f32,
    /// `∂L/∂logits`, shaped like the input logits.
    pub grad: Tensor,
    /// Number of top-1 correct predictions in the batch.
    pub correct: usize,
}

/// Numerically-stable softmax cross-entropy over `[B, C]` logits.
///
/// # Panics
///
/// Panics if shapes mismatch or a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> LossOutput {
    assert_eq!(logits.rank(), 2, "logits must be [B, C]");
    let (b, c) = (logits.dim(0), logits.dim(1));
    assert_eq!(labels.len(), b, "one label per batch row");
    let mut grad = Tensor::zeros(&[b, c]);
    let mut total = 0.0f64;
    let mut correct = 0usize;
    for (bi, &label) in labels.iter().enumerate().take(b) {
        let row = &logits.data()[bi * c..(bi + 1) * c];
        assert!(label < c, "label {label} out of range for {c} classes");
        let maxv = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f64;
        for &v in row {
            sum += ((v - maxv) as f64).exp();
        }
        let logsum = sum.ln() as f32 + maxv;
        total += (logsum - row[label]) as f64;
        let mut best = 0usize;
        let mut bestv = f32::NEG_INFINITY;
        for (j, &v) in row.iter().enumerate() {
            let p = ((v - logsum) as f64).exp() as f32;
            grad.data_mut()[bi * c + j] = p / b as f32;
            if v > bestv {
                bestv = v;
                best = j;
            }
        }
        grad.data_mut()[bi * c + label] -= 1.0 / b as f32;
        if best == label {
            correct += 1;
        }
    }
    LossOutput {
        loss: (total / b as f64) as f32,
        grad,
        correct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_c() {
        let logits = Tensor::zeros(&[2, 4]);
        let out = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, 0.0, 0.0], &[1, 3]);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss < 1e-3);
        assert_eq!(out.correct, 1);
        let wrong = softmax_cross_entropy(&logits, &[2]);
        assert!(wrong.loss > 5.0);
        assert_eq!(wrong.correct, 0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.5, -0.2, 1.0, 0.1, 0.0, -0.5], &[2, 3]);
        let labels = [2usize, 0];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-3f32;
        for i in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[i] += eps;
            let mut lm = logits.clone();
            lm.data_mut()[i] -= eps;
            let num = (softmax_cross_entropy(&lp, &labels).loss
                - softmax_cross_entropy(&lm, &labels).loss)
                / (2.0 * eps);
            assert!(
                (num - out.grad.data()[i]).abs() < 1e-3,
                "grad[{i}]: {num} vs {}",
                out.grad.data()[i]
            );
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Tensor::from_vec(vec![3.0, -1.0, 0.5, 2.0], &[1, 4]);
        let out = softmax_cross_entropy(&logits, &[1]);
        assert!(out.grad.sum().abs() < 1e-6);
    }

    #[test]
    fn extreme_logits_stay_finite() {
        let logits = Tensor::from_vec(vec![1e4, -1e4, 0.0], &[1, 3]);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss.is_finite());
        assert!(out.grad.data().iter().all(|g| g.is_finite()));
    }
}
