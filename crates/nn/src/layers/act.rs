//! Activation layers.

use crate::{Layer, Mode, ParamView};
use cq_tensor::Tensor;

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Self { mask: None }
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.mask = Some(x.data().iter().map(|&v| v > 0.0).collect());
        }
        x.map(|v| v.max(0.0))
    }

    fn forward_shared(&self, x: &Tensor) -> Option<Tensor> {
        Some(x.map(|v| v.max(0.0)))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mask = self.mask.take().expect("Relu::backward without forward");
        assert_eq!(mask.len(), grad_out.numel(), "shape changed between passes");
        let mut g = grad_out.clone();
        for (v, &m) in g.data_mut().iter_mut().zip(&mask) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(ParamView<'_>)) {}

    fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clips_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-2.0, 0.0, 3.0], &[3]);
        assert_eq!(r.forward(&x, Mode::Eval).data(), &[0.0, 0.0, 3.0]);
    }

    #[test]
    fn backward_routes_through_positive_inputs_only() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[4]);
        let _ = r.forward(&x, Mode::Train);
        let g = r.backward(&Tensor::ones(&[4]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }
}
