//! Layer implementations.

mod act;
mod bn;
mod conv;
mod linear;
mod pool;

pub use act::Relu;
pub use bn::BatchNorm2d;
pub use conv::{accumulate_bias_grad, add_channel_bias, Conv2d};
pub use linear::Linear;
pub use pool::{AvgPool2d, GlobalAvgPool, MaxPool2d};
