//! 2-D batch normalization with running statistics.

use crate::{Layer, Mode, Param, ParamKind, ParamView};
use cq_tensor::Tensor;

/// BatchNorm over the channel dimension of `[B, C, H, W]` tensors.
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    /// Dummy gradient buffers so running stats can ride the parameter
    /// visitor (kind `RunningStat`) for checkpointing.
    stat_grad: Vec<f32>,
    momentum: f32,
    eps: f32,
    cache: Option<BnCache>,
}

struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
}

impl BatchNorm2d {
    /// Creates a BatchNorm layer with γ = 1, β = 0.
    ///
    /// # Panics
    ///
    /// Panics if `channels == 0`.
    pub fn new(channels: usize) -> Self {
        assert!(channels > 0, "empty batchnorm");
        Self {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            stat_grad: vec![0.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.numel()
    }

    /// Running mean (for inspection/tests).
    pub fn running_mean(&self) -> &[f32] {
        &self.running_mean
    }

    /// Running variance (for inspection/tests).
    pub fn running_var(&self) -> &[f32] {
        &self.running_var
    }

    /// The eval-mode normalization against running statistics — the one
    /// implementation used by `forward(Mode::Eval)` and `forward_shared`,
    /// so the two paths are bit-identical.
    fn eval_forward(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 4, "BatchNorm2d input must be [B,C,H,W]");
        let (b, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        assert_eq!(c, self.channels(), "channel mismatch");
        let hw = h * w;
        let mut y = Tensor::zeros(x.shape());
        for ci in 0..c {
            let inv = 1.0 / (self.running_var[ci] + self.eps).sqrt();
            let mean = self.running_mean[ci];
            let g = self.gamma.value.data()[ci];
            let be = self.beta.value.data()[ci];
            for bi in 0..b {
                let base = (bi * c + ci) * hw;
                for i in base..base + hw {
                    y.data_mut()[i] = g * (x.data()[i] - mean) * inv + be;
                }
            }
        }
        y
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.rank(), 4, "BatchNorm2d input must be [B,C,H,W]");
        let (b, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
        assert_eq!(c, self.channels(), "channel mismatch");
        let n = (b * h * w) as f32;
        let hw = h * w;
        let mut y = Tensor::zeros(x.shape());

        match mode {
            Mode::Train => {
                let mut xhat = Tensor::zeros(x.shape());
                let mut inv_std = vec![0.0f32; c];
                #[allow(clippy::needless_range_loop)] // ci also indexes x/xhat blocks
                for ci in 0..c {
                    let mut sum = 0.0f64;
                    let mut sq = 0.0f64;
                    for bi in 0..b {
                        let base = (bi * c + ci) * hw;
                        for &v in &x.data()[base..base + hw] {
                            sum += v as f64;
                            sq += (v as f64) * (v as f64);
                        }
                    }
                    let mean = (sum / n as f64) as f32;
                    let var = ((sq / n as f64) - (mean as f64) * (mean as f64)).max(0.0) as f32;
                    let inv = 1.0 / (var + self.eps).sqrt();
                    inv_std[ci] = inv;
                    self.running_mean[ci] =
                        (1.0 - self.momentum) * self.running_mean[ci] + self.momentum * mean;
                    self.running_var[ci] =
                        (1.0 - self.momentum) * self.running_var[ci] + self.momentum * var;
                    let g = self.gamma.value.data()[ci];
                    let be = self.beta.value.data()[ci];
                    for bi in 0..b {
                        let base = (bi * c + ci) * hw;
                        for i in base..base + hw {
                            let xh = (x.data()[i] - mean) * inv;
                            xhat.data_mut()[i] = xh;
                            y.data_mut()[i] = g * xh + be;
                        }
                    }
                }
                self.cache = Some(BnCache { xhat, inv_std });
            }
            Mode::Eval => {
                self.cache = None;
                return self.eval_forward(x);
            }
        }
        y
    }

    fn forward_shared(&self, x: &Tensor) -> Option<Tensor> {
        Some(self.eval_forward(x))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("BatchNorm2d::backward without forward");
        let (b, c, h, w) = (
            grad_out.dim(0),
            grad_out.dim(1),
            grad_out.dim(2),
            grad_out.dim(3),
        );
        let hw = h * w;
        let n = (b * hw) as f32;
        let mut dx = Tensor::zeros(grad_out.shape());
        for ci in 0..c {
            let mut dgamma = 0.0f64;
            let mut dbeta = 0.0f64;
            for bi in 0..b {
                let base = (bi * c + ci) * hw;
                for i in base..base + hw {
                    dgamma += (grad_out.data()[i] * cache.xhat.data()[i]) as f64;
                    dbeta += grad_out.data()[i] as f64;
                }
            }
            self.gamma.grad.data_mut()[ci] += dgamma as f32;
            self.beta.grad.data_mut()[ci] += dbeta as f32;
            let g = self.gamma.value.data()[ci];
            let inv = cache.inv_std[ci];
            let k = g * inv / n;
            for bi in 0..b {
                let base = (bi * c + ci) * hw;
                for i in base..base + hw {
                    dx.data_mut()[i] = k
                        * (n * grad_out.data()[i]
                            - dbeta as f32
                            - cache.xhat.data()[i] * dgamma as f32);
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(ParamView<'_>)) {
        self.gamma
            .visit(format!("{prefix}gamma"), ParamKind::Gamma, f);
        self.beta.visit(format!("{prefix}beta"), ParamKind::Beta, f);
        // Running statistics ride along (kind RunningStat) so checkpoints
        // capture eval-mode behaviour; optimizers leave them untouched
        // (their gradients stay zero).
        self.stat_grad.iter_mut().for_each(|g| *g = 0.0);
        f(ParamView {
            name: format!("{prefix}running_mean"),
            kind: ParamKind::RunningStat,
            value: &mut self.running_mean,
            grad: &mut self.stat_grad,
        });
        self.stat_grad.iter_mut().for_each(|g| *g = 0.0);
        f(ParamView {
            name: format!("{prefix}running_var"),
            kind: ParamKind::RunningStat,
            value: &mut self.running_var,
            grad: &mut self.stat_grad,
        });
    }

    fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_tensor::CqRng;

    #[test]
    fn train_output_is_normalized() {
        let mut rng = CqRng::new(1);
        let mut bn = BatchNorm2d::new(3);
        let x = rng.normal_tensor(&[4, 3, 5, 5], 3.0).map(|v| v + 7.0);
        let y = bn.forward(&x, Mode::Train);
        // Per channel: mean ~0, var ~1.
        let (b, c, hw) = (4, 3, 25);
        for ci in 0..c {
            let mut vals = Vec::new();
            for bi in 0..b {
                let base = (bi * c + ci) * hw;
                vals.extend_from_slice(&y.data()[base..base + hw]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 = vals.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn running_stats_converge_to_batch_stats() {
        let mut rng = CqRng::new(2);
        let mut bn = BatchNorm2d::new(1);
        let x = rng.normal_tensor(&[8, 1, 4, 4], 2.0).map(|v| v + 5.0);
        for _ in 0..200 {
            let _ = bn.forward(&x, Mode::Train);
        }
        assert!(
            (bn.running_mean()[0] - 5.0).abs() < 0.3,
            "{}",
            bn.running_mean()[0]
        );
        assert!(
            (bn.running_var()[0] - 4.0).abs() < 0.6,
            "{}",
            bn.running_var()[0]
        );
        // Eval output now also ~normalized.
        let y = bn.forward(&x, Mode::Eval);
        assert!(y.mean().abs() < 0.2);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = CqRng::new(3);
        let mut bn = BatchNorm2d::new(2);
        // Nudge gamma/beta off their defaults.
        bn.gamma.value = Tensor::from_vec(vec![1.3, 0.7], &[2]);
        bn.beta.value = Tensor::from_vec(vec![0.2, -0.1], &[2]);
        let x = rng.normal_tensor(&[2, 2, 3, 3], 1.0);
        let pat = rng.normal_tensor(&[2, 2, 3, 3], 0.4);
        let _ = bn.forward(&x, Mode::Train);
        let dx = bn.backward(&pat);
        let eps = 1e-2;
        let loss = |bn: &mut BatchNorm2d, xx: &Tensor| {
            let y = bn.forward(xx, Mode::Train);
            bn.cache = None;
            y.mul(&pat).sum()
        };
        for i in [0usize, 7, 20, 35] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&mut bn, &xp) - loss(&mut bn, &xm)) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 2e-2,
                "dx[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
        for ci in 0..2 {
            let orig = bn.gamma.value.data()[ci];
            bn.gamma.value.data_mut()[ci] = orig + eps;
            let lp = loss(&mut bn, &x);
            bn.gamma.value.data_mut()[ci] = orig - eps;
            let lm = loss(&mut bn, &x);
            bn.gamma.value.data_mut()[ci] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - bn.gamma.grad.data()[ci]).abs() < 2e-2,
                "dgamma[{ci}]: {num} vs {}",
                bn.gamma.grad.data()[ci]
            );
        }
    }

    #[test]
    fn eval_mode_does_not_mutate_running_stats() {
        let mut rng = CqRng::new(4);
        let mut bn = BatchNorm2d::new(2);
        let x = rng.normal_tensor(&[2, 2, 4, 4], 1.0);
        let _ = bn.forward(&x, Mode::Train);
        let rm = bn.running_mean().to_vec();
        let _ = bn.forward(&x, Mode::Eval);
        assert_eq!(bn.running_mean(), rm.as_slice());
    }
}
