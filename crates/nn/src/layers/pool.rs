//! Pooling layers wrapping the `cq-tensor` pooling kernels.

use crate::{Layer, Mode, ParamView};
use cq_tensor::{
    avg_pool2d, avg_pool2d_backward, global_avg_pool, global_avg_pool_backward, max_pool2d,
    max_pool2d_backward, Tensor,
};

/// Average pooling with a square kernel.
pub struct AvgPool2d {
    kernel: usize,
    stride: usize,
    input_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "empty pool");
        Self {
            kernel,
            stride,
            input_shape: None,
        }
    }
}

impl Layer for AvgPool2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.input_shape = Some(x.shape().to_vec());
        }
        avg_pool2d(x, self.kernel, self.stride)
    }

    fn forward_shared(&self, x: &Tensor) -> Option<Tensor> {
        Some(avg_pool2d(x, self.kernel, self.stride))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .take()
            .expect("AvgPool2d::backward without forward");
        avg_pool2d_backward(grad_out, &shape, self.kernel, self.stride)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(ParamView<'_>)) {}

    fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Max pooling with a square kernel and zero padding.
pub struct MaxPool2d {
    kernel: usize,
    stride: usize,
    pad: usize,
    cache: Option<(Vec<usize>, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a max-pooling layer.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, pad: usize) -> Self {
        assert!(kernel > 0 && stride > 0, "empty pool");
        Self {
            kernel,
            stride,
            pad,
            cache: None,
        }
    }
}

impl Layer for MaxPool2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let (y, idx) = max_pool2d(x, self.kernel, self.stride, self.pad);
        if mode == Mode::Train {
            self.cache = Some((x.shape().to_vec(), idx));
        }
        y
    }

    fn forward_shared(&self, x: &Tensor) -> Option<Tensor> {
        Some(max_pool2d(x, self.kernel, self.stride, self.pad).0)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (shape, idx) = self
            .cache
            .take()
            .expect("MaxPool2d::backward without forward");
        max_pool2d_backward(grad_out, &idx, &shape)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(ParamView<'_>)) {}

    fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// Global average pooling `[B, C, H, W] → [B, C]`.
#[derive(Default)]
pub struct GlobalAvgPool {
    input_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global-average-pooling layer.
    pub fn new() -> Self {
        Self { input_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.input_shape = Some(x.shape().to_vec());
        }
        global_avg_pool(x)
    }

    fn forward_shared(&self, x: &Tensor) -> Option<Tensor> {
        Some(global_avg_pool(x))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let shape = self
            .input_shape
            .take()
            .expect("GlobalAvgPool::backward without forward");
        global_avg_pool_backward(grad_out, &shape)
    }

    fn visit_params(&mut self, _prefix: &str, _f: &mut dyn FnMut(ParamView<'_>)) {}

    fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_layer_roundtrip() {
        let mut p = AvgPool2d::new(2, 2);
        let x = Tensor::from_vec((0..16).map(|i| i as f32).collect(), &[1, 1, 4, 4]);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        let dx = p.backward(&Tensor::ones(&[1, 1, 2, 2]));
        assert_eq!(dx.shape(), x.shape());
        assert!((dx.sum() - 4.0).abs() < 1e-6);
    }

    #[test]
    fn max_pool_layer_routes_gradient() {
        let mut p = MaxPool2d::new(2, 2, 0);
        let x = Tensor::from_vec(vec![1.0, 9.0, 2.0, 3.0], &[1, 1, 2, 2]);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.data(), &[9.0]);
        let dx = p.backward(&Tensor::ones(&[1, 1, 1, 1]));
        assert_eq!(dx.data(), &[0.0, 1.0, 0.0, 0.0]);
    }

    #[test]
    fn global_pool_shapes() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::ones(&[2, 3, 4, 4]);
        let y = p.forward(&x, Mode::Train);
        assert_eq!(y.shape(), &[2, 3]);
        assert_eq!(y.data()[0], 1.0);
        let dx = p.backward(&Tensor::ones(&[2, 3]));
        assert_eq!(dx.shape(), x.shape());
    }
}
