//! Full-precision 2-D convolution layer (used for stems/baselines and as
//! the reference against which quantized layers are compared).

use crate::{kaiming_conv_init, Layer, Mode, Param, ParamKind, ParamView};
use cq_tensor::{conv2d, conv2d_backward_input, conv2d_backward_weight, CqRng, Tensor};

/// A standard full-precision convolution with optional bias.
pub struct Conv2d {
    weight: Param,
    bias: Option<Param>,
    stride: usize,
    pad: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        bias: bool,
        rng: &mut CqRng,
    ) -> Self {
        assert!(
            in_ch > 0 && out_ch > 0 && kernel > 0 && stride > 0,
            "empty conv"
        );
        let weight = kaiming_conv_init(out_ch, in_ch, kernel, rng);
        Self {
            weight: Param::new(weight),
            bias: bias.then(|| Param::new(Tensor::zeros(&[out_ch]))),
            stride,
            pad,
            cached_input: None,
        }
    }

    /// The weight tensor `[OC, Cin, K, K]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// Mutable weight access (tests, surgery).
    pub fn weight_mut(&mut self) -> &mut Tensor {
        &mut self.weight.value
    }

    /// Stride.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Padding.
    pub fn pad(&self) -> usize {
        self.pad
    }
}

/// Adds a per-output-channel bias in place to a `[B, OC, H, W]` tensor.
pub fn add_channel_bias(y: &mut Tensor, bias: &Tensor) {
    let (b, oc, h, w) = (y.dim(0), y.dim(1), y.dim(2), y.dim(3));
    let hw = h * w;
    for bi in 0..b {
        for c in 0..oc {
            let bv = bias.data()[c];
            let base = (bi * oc + c) * hw;
            for v in &mut y.data_mut()[base..base + hw] {
                *v += bv;
            }
        }
    }
}

/// Accumulates the bias gradient (sum over batch and spatial dims).
pub fn accumulate_bias_grad(grad_out: &Tensor, gbias: &mut Tensor) {
    let (b, oc, h, w) = (
        grad_out.dim(0),
        grad_out.dim(1),
        grad_out.dim(2),
        grad_out.dim(3),
    );
    let hw = h * w;
    for bi in 0..b {
        for c in 0..oc {
            let base = (bi * oc + c) * hw;
            let s: f32 = grad_out.data()[base..base + hw].iter().sum();
            gbias.data_mut()[c] += s;
        }
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let y = self.forward_shared(x).expect("Conv2d is always shareable");
        self.cached_input = (mode == Mode::Train).then(|| x.clone());
        y
    }

    fn forward_shared(&self, x: &Tensor) -> Option<Tensor> {
        let mut y = conv2d(x, &self.weight.value, self.stride, self.pad);
        if let Some(b) = &self.bias {
            add_channel_bias(&mut y, &b.value);
        }
        Some(y)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("Conv2d::backward without cached forward");
        let dw = conv2d_backward_weight(
            grad_out,
            &x,
            self.weight.value.shape(),
            self.stride,
            self.pad,
            1,
        );
        self.weight.grad.add_assign(&dw);
        if let Some(b) = &mut self.bias {
            accumulate_bias_grad(grad_out, &mut b.grad);
        }
        conv2d_backward_input(
            grad_out,
            &self.weight.value,
            x.shape(),
            self.stride,
            self.pad,
            1,
        )
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(ParamView<'_>)) {
        self.weight
            .visit(format!("{prefix}weight"), ParamKind::Weight, f);
        if let Some(b) = &mut self.bias {
            b.visit(format!("{prefix}bias"), ParamKind::Bias, f);
        }
    }

    fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = CqRng::new(1);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, true, &mut rng);
        let x = rng.normal_tensor(&[2, 3, 8, 8], 1.0);
        let y = conv.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 8, 8, 8]);
        // Setting the bias shifts the output uniformly per channel.
        let y0 = conv.forward(&x, Mode::Eval);
        conv.visit_params("", &mut |p| {
            if p.kind == ParamKind::Bias {
                p.value.iter_mut().for_each(|v| *v = 1.0);
            }
        });
        let y1 = conv.forward(&x, Mode::Eval);
        assert!(y1.sub(&y0).allclose(&Tensor::ones(y0.shape()), 1e-5));
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = CqRng::new(2);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng);
        let x = rng.normal_tensor(&[1, 2, 5, 5], 1.0);
        let pat = rng.normal_tensor(&[1, 3, 5, 5], 0.3);
        let y = conv.forward(&x, Mode::Train);
        let _ = y;
        let dx = conv.backward(&pat);

        let eps = 1e-2;
        // Check input gradient.
        for i in [0usize, 13, 49] {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let lp = conv.forward(&xp, Mode::Eval).mul(&pat).sum();
            let lm = conv.forward(&xm, Mode::Eval).mul(&pat).sum();
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - dx.data()[i]).abs() < 2e-2,
                "dx[{i}]: {num} vs {}",
                dx.data()[i]
            );
        }
        // Check weight + bias gradients via visitor.
        let mut grads: Vec<(String, Vec<f32>)> = Vec::new();
        conv.visit_params("", &mut |p| grads.push((p.name.clone(), p.grad.to_vec())));
        let wgrad = &grads.iter().find(|(n, _)| n == "weight").unwrap().1;
        for i in [0usize, 10, 30] {
            let orig = conv.weight.value.data()[i];
            conv.weight.value.data_mut()[i] = orig + eps;
            let lp = conv.forward(&x, Mode::Eval).mul(&pat).sum();
            conv.weight.value.data_mut()[i] = orig - eps;
            let lm = conv.forward(&x, Mode::Eval).mul(&pat).sum();
            conv.weight.value.data_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - wgrad[i]).abs() < 2e-2,
                "dw[{i}]: {num} vs {}",
                wgrad[i]
            );
        }
    }

    #[test]
    #[should_panic(expected = "without cached forward")]
    fn backward_without_forward_panics() {
        let mut rng = CqRng::new(3);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, false, &mut rng);
        let _ = conv.backward(&Tensor::zeros(&[1, 1, 1, 1]));
    }
}
