//! Fully-connected layer.

use crate::{Layer, Mode, Param, ParamKind, ParamView};
use cq_tensor::{matmul, matmul_a_bt, matmul_at_b, CqRng, Tensor};

/// `y = x · Wᵀ + b` over `[B, IN]` inputs.
pub struct Linear {
    weight: Param, // [OUT, IN]
    bias: Option<Param>,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a Kaiming-initialized linear layer.
    ///
    /// # Panics
    ///
    /// Panics if a dimension is zero.
    pub fn new(in_features: usize, out_features: usize, bias: bool, rng: &mut CqRng) -> Self {
        assert!(in_features > 0 && out_features > 0, "empty linear");
        let std = (2.0 / in_features as f32).sqrt();
        let weight = rng.normal_tensor(&[out_features, in_features], std);
        Self {
            weight: Param::new(weight),
            bias: bias.then(|| Param::new(Tensor::zeros(&[out_features]))),
            cached_input: None,
        }
    }

    /// The weight matrix `[OUT, IN]`.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The pure forward computation, shared by the training and the
    /// concurrent (`forward_shared`) paths.
    fn compute(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rank(), 2, "Linear input must be [B, IN]");
        let mut y = matmul_a_bt(x, &self.weight.value);
        if let Some(b) = &self.bias {
            let (bs, of) = (y.dim(0), y.dim(1));
            for bi in 0..bs {
                for o in 0..of {
                    y.data_mut()[bi * of + o] += b.value.data()[o];
                }
            }
        }
        y
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let y = self.compute(x);
        self.cached_input = (mode == Mode::Train).then(|| x.clone());
        y
    }

    fn forward_shared(&self, x: &Tensor) -> Option<Tensor> {
        Some(self.compute(x))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .cached_input
            .take()
            .expect("Linear::backward without cached forward");
        // dW[OUT, IN] = goutᵀ[OUT, B] · x[B, IN]
        let dw = matmul_at_b(grad_out, &x);
        self.weight.grad.add_assign(&dw);
        if let Some(b) = &mut self.bias {
            let (bs, of) = (grad_out.dim(0), grad_out.dim(1));
            for bi in 0..bs {
                for o in 0..of {
                    b.grad.data_mut()[o] += grad_out.data()[bi * of + o];
                }
            }
        }
        // dx[B, IN] = gout[B, OUT] · W[OUT, IN]
        matmul(grad_out, &self.weight.value)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(ParamView<'_>)) {
        self.weight
            .visit(format!("{prefix}weight"), ParamKind::Weight, f);
        if let Some(b) = &mut self.bias {
            b.visit(format!("{prefix}bias"), ParamKind::Bias, f);
        }
    }

    fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_product() {
        let mut rng = CqRng::new(1);
        let mut lin = Linear::new(2, 2, true, &mut rng);
        lin.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        if let Some(b) = &mut lin.bias {
            b.value = Tensor::from_vec(vec![10.0, 20.0], &[2]);
        }
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]);
        let y = lin.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[13.0, 27.0]);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = CqRng::new(2);
        let mut lin = Linear::new(4, 3, true, &mut rng);
        let x = rng.normal_tensor(&[2, 4], 1.0);
        let pat = rng.normal_tensor(&[2, 3], 0.5);
        let _ = lin.forward(&x, Mode::Train);
        let dx = lin.backward(&pat);
        let eps = 1e-2;
        for i in 0..8 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (lin.forward(&xp, Mode::Eval).mul(&pat).sum()
                - lin.forward(&xm, Mode::Eval).mul(&pat).sum())
                / (2.0 * eps);
            assert!((num - dx.data()[i]).abs() < 1e-2, "dx[{i}]");
        }
        for i in [0usize, 5, 11] {
            let orig = lin.weight.value.data()[i];
            lin.weight.value.data_mut()[i] = orig + eps;
            let lp = lin.forward(&x, Mode::Eval).mul(&pat).sum();
            lin.weight.value.data_mut()[i] = orig - eps;
            let lm = lin.forward(&x, Mode::Eval).mul(&pat).sum();
            lin.weight.value.data_mut()[i] = orig;
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - lin.weight.grad.data()[i]).abs() < 1e-2, "dw[{i}]");
        }
    }
}
