//! Weight initialization.

use cq_tensor::{CqRng, Tensor};

/// Kaiming-normal initialization for a conv weight `[OC, Cin, K, K]`
/// (`std = sqrt(2 / fan_in)`, `fan_in = Cin·K²`).
pub fn kaiming_conv_init(out_ch: usize, in_ch: usize, kernel: usize, rng: &mut CqRng) -> Tensor {
    let fan_in = (in_ch * kernel * kernel) as f32;
    let std = (2.0 / fan_in).sqrt();
    rng.normal_tensor(&[out_ch, in_ch, kernel, kernel], std)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_tracks_fan_in() {
        let mut rng = CqRng::new(1);
        let w = kaiming_conv_init(64, 16, 3, &mut rng);
        let var = w.sq_sum() / w.numel() as f32;
        let want = 2.0 / (16.0 * 9.0);
        assert!((var - want).abs() < want * 0.2, "var {var} vs {want}");
        assert!(w.mean().abs() < 0.01);
    }
}
