//! SGD with momentum, selective weight decay, learning-rate schedules, and
//! the positive clamp that keeps LSQ scale factors sane.

use crate::{Layer, ParamKind, ParamView};
use std::collections::HashMap;

/// Stochastic gradient descent with momentum.
///
/// Weight decay is applied to [`ParamKind::Weight`] parameters only, and
/// [`ParamKind::Scale`] (LSQ step size) parameters are clamped to a small
/// positive floor after every update — both standard practice in the QAT
/// literature.
pub struct Sgd {
    /// Current learning rate (typically driven by an [`LrSchedule`]).
    pub lr: f32,
    /// Momentum coefficient.
    pub momentum: f32,
    /// L2 weight decay on `Weight` parameters.
    pub weight_decay: f32,
    velocity: HashMap<String, Vec<f32>>,
}

impl Sgd {
    /// Creates an optimizer.
    pub fn new(lr: f32, momentum: f32, weight_decay: f32) -> Self {
        Self {
            lr,
            momentum,
            weight_decay,
            velocity: HashMap::new(),
        }
    }

    /// Applies one update step to every parameter of `model`.
    pub fn step(&mut self, model: &mut dyn Layer) {
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let velocity = &mut self.velocity;
        model.visit_params("", &mut |p: ParamView<'_>| {
            let v = velocity
                .entry(p.name.clone())
                .or_insert_with(|| vec![0.0; p.value.len()]);
            assert_eq!(v.len(), p.value.len(), "parameter {} changed size", p.name);
            let decay = if p.kind == ParamKind::Weight { wd } else { 0.0 };
            for (i, vi) in v.iter_mut().enumerate() {
                let g = p.grad[i] + decay * p.value[i];
                *vi = momentum * *vi + g;
                p.value[i] -= lr * *vi;
            }
            if p.kind == ParamKind::Scale {
                for s in p.value.iter_mut() {
                    if !s.is_finite() || *s < cq_quant::SCALE_EPS {
                        *s = cq_quant::SCALE_EPS;
                    }
                }
            }
        });
    }

    /// Drops all momentum state (used when switching QAT stages).
    pub fn reset_state(&mut self) {
        self.velocity.clear();
    }
}

/// Learning-rate schedules.
#[derive(Debug, Clone, PartialEq)]
pub enum LrSchedule {
    /// Fixed learning rate.
    Constant(f32),
    /// Half-cosine decay from `base` to ~0 over `total_epochs`.
    Cosine {
        /// Initial learning rate.
        base: f32,
        /// Number of epochs over which to decay.
        total_epochs: usize,
    },
    /// Multiply by `gamma` at each milestone epoch.
    Step {
        /// Initial learning rate.
        base: f32,
        /// Epochs at which to decay.
        milestones: Vec<usize>,
        /// Multiplicative decay factor.
        gamma: f32,
    },
}

impl LrSchedule {
    /// Learning rate at the given (0-based) epoch.
    pub fn lr_at(&self, epoch: usize) -> f32 {
        match self {
            LrSchedule::Constant(lr) => *lr,
            LrSchedule::Cosine { base, total_epochs } => {
                let t = (epoch as f32 / (*total_epochs).max(1) as f32).min(1.0);
                0.5 * base * (1.0 + (std::f32::consts::PI * t).cos())
            }
            LrSchedule::Step {
                base,
                milestones,
                gamma,
            } => {
                let k = milestones.iter().filter(|&&m| epoch >= m).count();
                base * gamma.powi(k as i32)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mode, Param};
    use cq_tensor::Tensor;

    struct Quad {
        w: Param,
        s: Param,
    }

    impl Layer for Quad {
        fn forward(&mut self, x: &Tensor, _m: Mode) -> Tensor {
            x.clone()
        }
        fn backward(&mut self, g: &Tensor) -> Tensor {
            g.clone()
        }
        fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(ParamView<'_>)) {
            self.w.visit(format!("{prefix}w"), ParamKind::Weight, f);
            self.s.visit(format!("{prefix}s"), ParamKind::Scale, f);
        }
        fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
            f(self);
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        // L = 0.5 w², dL/dw = w.
        let mut m = Quad {
            w: Param::new(Tensor::from_vec(vec![4.0], &[1])),
            s: Param::new(Tensor::from_vec(vec![1.0], &[1])),
        };
        let mut opt = Sgd::new(0.1, 0.9, 0.0);
        for _ in 0..300 {
            m.zero_grads();
            let w = m.w.value.data()[0];
            m.w.grad.data_mut()[0] = w;
            opt.step(&mut m);
        }
        assert!(
            m.w.value.data()[0].abs() < 1e-3,
            "w = {}",
            m.w.value.data()[0]
        );
    }

    #[test]
    fn weight_decay_only_hits_weights() {
        let mut m = Quad {
            w: Param::new(Tensor::from_vec(vec![1.0], &[1])),
            s: Param::new(Tensor::from_vec(vec![1.0], &[1])),
        };
        let mut opt = Sgd::new(0.1, 0.0, 0.5);
        m.zero_grads();
        opt.step(&mut m);
        assert!(m.w.value.data()[0] < 1.0, "weight decayed");
        assert_eq!(m.s.value.data()[0], 1.0, "scale not decayed");
    }

    #[test]
    fn scales_clamped_positive() {
        let mut m = Quad {
            w: Param::new(Tensor::from_vec(vec![0.0], &[1])),
            s: Param::new(Tensor::from_vec(vec![0.01], &[1])),
        };
        let mut opt = Sgd::new(1.0, 0.0, 0.0);
        m.s.grad.data_mut()[0] = 10.0; // would drive scale to -9.99
        opt.step(&mut m);
        assert_eq!(m.s.value.data()[0], cq_quant::SCALE_EPS);
    }

    #[test]
    fn schedules_behave() {
        let c = LrSchedule::Cosine {
            base: 1.0,
            total_epochs: 10,
        };
        assert!((c.lr_at(0) - 1.0).abs() < 1e-6);
        assert!(c.lr_at(5) < c.lr_at(1));
        assert!(c.lr_at(10) < 1e-6);
        let s = LrSchedule::Step {
            base: 1.0,
            milestones: vec![3, 6],
            gamma: 0.1,
        };
        assert_eq!(s.lr_at(2), 1.0);
        assert!((s.lr_at(3) - 0.1).abs() < 1e-7);
        assert!((s.lr_at(7) - 0.01).abs() < 1e-8);
        assert_eq!(LrSchedule::Constant(0.3).lr_at(99), 0.3);
    }
}
