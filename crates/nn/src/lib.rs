//! # cq-nn
//!
//! Neural-network substrate with manual reverse-mode autograd: layers
//! ([`Conv2d`], [`Linear`], [`BatchNorm2d`], [`Relu`], pooling), the
//! [`Layer`] trait and parameter-visitor protocol, softmax cross-entropy,
//! [`Sgd`] with momentum and LR schedules, and [`ResNet`]-20/18 builders
//! parameterized by a [`ConvFactory`] so `cq-core` can swap in the CIM
//! quantized convolution without touching the architecture code.
//!
//! ## Example
//!
//! ```
//! use cq_nn::{FpConvFactory, Layer, Mode, ResNet, ResNetSpec};
//! use cq_tensor::CqRng;
//!
//! let mut factory = FpConvFactory::new(0);
//! let mut net = ResNet::build(ResNetSpec::resnet8(10, 4), &mut factory, 1);
//! let x = CqRng::new(2).normal_tensor(&[1, 3, 16, 16], 1.0);
//! let logits = net.forward(&x, Mode::Eval);
//! assert_eq!(logits.shape(), &[1, 10]);
//! ```

#![warn(missing_docs)]

mod checkpoint;
mod init;
mod layers;
mod loss;
mod model;
mod optim;
mod param;

pub use checkpoint::{deserialize_params, load_params, save_params, serialize_params};
pub use init::kaiming_conv_init;
pub use layers::{
    accumulate_bias_grad, add_channel_bias, AvgPool2d, BatchNorm2d, Conv2d, GlobalAvgPool, Linear,
    MaxPool2d, Relu,
};
pub use loss::{softmax_cross_entropy, LossOutput};
pub use model::{BasicBlock, ConvFactory, ConvRole, FpConvFactory, ResNet, ResNetSpec};
pub use optim::{LrSchedule, Sgd};
pub use param::{Layer, Mode, Param, ParamKind, ParamView};
