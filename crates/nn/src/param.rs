//! Parameters, the layer trait, and the visitor protocol that connects
//! layers (including quantizer scales living inside them) to optimizers.

use cq_tensor::Tensor;

/// What a parameter is, which determines its optimizer treatment
/// (weight decay applies to `Weight` only, following standard QAT
/// practice; `Scale` parameters are clamped positive after each step).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamKind {
    /// Convolution / linear weights.
    Weight,
    /// Additive biases.
    Bias,
    /// BatchNorm scale (γ).
    Gamma,
    /// BatchNorm shift (β).
    Beta,
    /// Learnable quantizer step size (LSQ scale factor).
    Scale,
    /// Non-trainable state carried for checkpointing (e.g. BatchNorm
    /// running statistics). Optimizers must not update these; their
    /// gradients are always zero.
    RunningStat,
}

/// A borrowed view of one parameter handed to optimizers by
/// [`Layer::visit_params`].
pub struct ParamView<'a> {
    /// Unique, stable path name (e.g. `"stage2.block0.conv1.weight"`).
    pub name: String,
    /// Parameter kind.
    pub kind: ParamKind,
    /// Current values.
    pub value: &'a mut [f32],
    /// Accumulated gradient (same length as `value`).
    pub grad: &'a mut [f32],
}

/// A tensor parameter with its gradient accumulator.
#[derive(Debug, Clone)]
pub struct Param {
    /// Parameter values.
    pub value: Tensor,
    /// Gradient accumulator, same shape as `value`.
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Self { value, grad }
    }

    /// Hands a [`ParamView`] of this parameter to `f`.
    pub fn visit(&mut self, name: String, kind: ParamKind, f: &mut dyn FnMut(ParamView<'_>)) {
        f(ParamView {
            name,
            kind,
            value: self.value.data_mut(),
            grad: self.grad.data_mut(),
        });
    }

    /// Zeroes the gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// Forward/backward execution mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Caches activations for a subsequent backward pass; BatchNorm uses
    /// batch statistics and updates running averages.
    Train,
    /// No caching; BatchNorm uses running statistics.
    Eval,
}

/// A neural-network layer with explicit reverse-mode gradients.
///
/// Layers are stateful: `forward(Mode::Train)` caches whatever `backward`
/// needs; `backward` consumes that cache and returns `∂L/∂input` while
/// accumulating parameter gradients internally.
///
/// Layers are `Send + Sync` so whole models can move between (and be
/// served from) worker threads — e.g. the `cq-serve` front-end parks each
/// registered `PreparedCimModel` behind a lock that any worker may drain
/// batches into, and sharded serving runs [`Layer::forward_shared`] from
/// several workers at once through a read lock. Every layer in this
/// workspace is plain owned data (frozen CIM convolutions guard their
/// scratch pool with a mutex), so the bounds cost nothing.
pub trait Layer: std::any::Any + Send + Sync {
    /// Runs the layer on `x`.
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor;

    /// Eval-mode forward through shared state (`&self`), for **concurrent
    /// serving**: several threads may call it on one layer at once (e.g.
    /// batch-segment shards of one oversized sweep). Must be
    /// **bit-identical** to `forward(x, Mode::Eval)`.
    ///
    /// Returns `None` when this layer (or any descendant) cannot serve
    /// through shared state — the conservative default; stateless layers
    /// and frozen CIM convolutions override it.
    fn forward_shared(&self, _x: &Tensor) -> Option<Tensor> {
        None
    }

    /// Propagates `grad_out` (`∂L/∂output`) backward, returning
    /// `∂L/∂input`.
    ///
    /// # Panics
    ///
    /// Implementations panic if called without a preceding
    /// `forward(Mode::Train)`.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every parameter (weights, biases, BN affine, quantizer
    /// scales) with `prefix`-qualified stable names.
    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(ParamView<'_>));

    /// Zeroes all parameter gradients.
    fn zero_grads(&mut self) {
        self.visit_params("", &mut |p: ParamView<'_>| {
            p.grad.iter_mut().for_each(|g| *g = 0.0);
        });
    }

    /// Calls `f` on this layer and every descendant (containers override
    /// to recurse). Used to toggle quantization stages, inject variation,
    /// or collect statistics from nested layers.
    fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer));

    /// Downcast support.
    fn as_any_mut(&mut self) -> &mut dyn std::any::Any;

    /// Number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params("", &mut |p: ParamView<'_>| n += p.value.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy {
        w: Param,
    }

    impl Layer for Dummy {
        fn forward(&mut self, x: &Tensor, _m: Mode) -> Tensor {
            x.scale(self.w.value.data()[0])
        }
        fn backward(&mut self, g: &Tensor) -> Tensor {
            g.clone()
        }
        fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(ParamView<'_>)) {
            self.w.visit(format!("{prefix}w"), ParamKind::Weight, f);
        }
        fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
            f(self);
        }
        fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
            self
        }
    }

    #[test]
    fn param_visit_and_zero() {
        let mut d = Dummy {
            w: Param::new(Tensor::from_vec(vec![2.0], &[1])),
        };
        d.w.grad.data_mut()[0] = 5.0;
        let mut seen = Vec::new();
        d.visit_params("layer.", &mut |p| seen.push((p.name.clone(), p.grad[0])));
        assert_eq!(seen, vec![("layer.w".to_string(), 5.0)]);
        d.zero_grads();
        assert_eq!(d.w.grad.data()[0], 0.0);
        assert_eq!(d.param_count(), 1);
    }

    #[test]
    fn apply_reaches_layer_and_downcast_works() {
        let mut d = Dummy {
            w: Param::new(Tensor::from_vec(vec![1.5], &[1])),
        };
        let mut hits = 0;
        let layer: &mut dyn Layer = &mut d;
        layer.apply(&mut |l| {
            if l.as_any_mut().downcast_mut::<Dummy>().is_some() {
                hits += 1;
            }
        });
        assert_eq!(hits, 1);
    }
}
