//! ResNet models (He et al. [3]) assembled from a pluggable convolution
//! factory, so the same architecture code runs full-precision
//! ([`FpConvFactory`]) or through the CIM quantized convolution installed
//! by `cq-core`.

use crate::{BatchNorm2d, Conv2d, GlobalAvgPool, Layer, Linear, MaxPool2d, Mode, ParamView, Relu};
use cq_tensor::{CqRng, Tensor};

/// Where a convolution sits in the network — quantization schemes commonly
/// keep the stem (and classifier) at higher precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvRole {
    /// The first convolution of the network.
    Stem,
    /// A regular body convolution.
    Body,
    /// A 1×1 projection shortcut.
    Shortcut,
}

/// Produces the convolution layers of a model.
pub trait ConvFactory {
    /// Creates a convolution layer. `name` is the stable parameter-path
    /// prefix of the layer.
    #[allow(clippy::too_many_arguments)]
    fn conv(
        &mut self,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        role: ConvRole,
    ) -> Box<dyn Layer>;
}

/// Factory producing plain full-precision convolutions.
pub struct FpConvFactory {
    rng: CqRng,
}

impl FpConvFactory {
    /// Creates the factory with a seeded RNG for weight init.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: CqRng::new(seed),
        }
    }
}

impl ConvFactory for FpConvFactory {
    fn conv(
        &mut self,
        _name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        _role: ConvRole,
    ) -> Box<dyn Layer> {
        Box::new(Conv2d::new(
            in_ch,
            out_ch,
            kernel,
            stride,
            pad,
            false,
            &mut self.rng,
        ))
    }
}

/// Architecture description for the [`ResNet`] builder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResNetSpec {
    /// Input image channels.
    pub in_channels: usize,
    /// Classifier outputs.
    pub num_classes: usize,
    /// Stem output width.
    pub stem_width: usize,
    /// Output width of each stage.
    pub stage_widths: Vec<usize>,
    /// Basic blocks per stage.
    pub blocks_per_stage: Vec<usize>,
    /// Stride of the first block of each stage.
    pub stage_strides: Vec<usize>,
    /// `true` = ImageNet stem (7×7 stride-2 conv + 3×3 stride-2 max pool);
    /// `false` = CIFAR stem (3×3 stride-1 conv).
    pub large_stem: bool,
}

impl ResNetSpec {
    /// ResNet-20 for 32×32 inputs (the paper's CIFAR-10/100 model).
    pub fn resnet20(num_classes: usize) -> Self {
        Self {
            in_channels: 3,
            num_classes,
            stem_width: 16,
            stage_widths: vec![16, 32, 64],
            blocks_per_stage: vec![3, 3, 3],
            stage_strides: vec![1, 2, 2],
            large_stem: false,
        }
    }

    /// ResNet-18 with the ImageNet stem (the paper's ImageNet model).
    pub fn resnet18(num_classes: usize) -> Self {
        Self {
            in_channels: 3,
            num_classes,
            stem_width: 64,
            stage_widths: vec![64, 128, 256, 512],
            blocks_per_stage: vec![2, 2, 2, 2],
            stage_strides: vec![1, 2, 2, 2],
            large_stem: true,
        }
    }

    /// ResNet-18 topology with a CIFAR-style stem for small inputs.
    pub fn resnet18_small_input(num_classes: usize) -> Self {
        Self {
            large_stem: false,
            ..Self::resnet18(num_classes)
        }
    }

    /// A shallow, narrow ResNet (one block per stage) for quick
    /// experiments and CI-sized benchmarks.
    pub fn resnet8(num_classes: usize, width: usize) -> Self {
        Self {
            in_channels: 3,
            num_classes,
            stem_width: width,
            stage_widths: vec![width, 2 * width, 4 * width],
            blocks_per_stage: vec![1, 1, 1],
            stage_strides: vec![1, 2, 2],
            large_stem: false,
        }
    }

    /// Scales all widths by `num/den` (minimum 1 channel).
    pub fn scaled_width(mut self, num: usize, den: usize) -> Self {
        let f = |w: usize| (w * num / den).max(1);
        self.stem_width = f(self.stem_width);
        for w in &mut self.stage_widths {
            *w = f(*w);
        }
        self
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if stage arrays disagree or anything is zero.
    pub fn validate(&self) {
        assert!(self.in_channels > 0 && self.num_classes > 0 && self.stem_width > 0);
        assert!(!self.stage_widths.is_empty());
        assert_eq!(self.stage_widths.len(), self.blocks_per_stage.len());
        assert_eq!(self.stage_widths.len(), self.stage_strides.len());
        assert!(self.stage_widths.iter().all(|&w| w > 0));
        assert!(self.blocks_per_stage.iter().all(|&b| b > 0));
    }

    /// Total number of weighted layers (convs + fc), the "20" in
    /// ResNet-20.
    pub fn depth(&self) -> usize {
        1 + 2 * self.blocks_per_stage.iter().sum::<usize>() + 1
    }
}

/// A standard two-conv residual block with an optional projection
/// shortcut.
pub struct BasicBlock {
    conv1: Box<dyn Layer>,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Box<dyn Layer>,
    bn2: BatchNorm2d,
    shortcut: Option<(Box<dyn Layer>, BatchNorm2d)>,
    relu_out: Relu,
}

impl BasicBlock {
    /// Builds a block; a projection shortcut is inserted when the shape
    /// changes (stride ≠ 1 or channel growth).
    pub fn new(
        factory: &mut dyn ConvFactory,
        name: &str,
        in_ch: usize,
        out_ch: usize,
        stride: usize,
    ) -> Self {
        let conv1 = factory.conv(
            &format!("{name}.conv1"),
            in_ch,
            out_ch,
            3,
            stride,
            1,
            ConvRole::Body,
        );
        let conv2 = factory.conv(
            &format!("{name}.conv2"),
            out_ch,
            out_ch,
            3,
            1,
            1,
            ConvRole::Body,
        );
        let shortcut = (stride != 1 || in_ch != out_ch).then(|| {
            (
                factory.conv(
                    &format!("{name}.shortcut"),
                    in_ch,
                    out_ch,
                    1,
                    stride,
                    0,
                    ConvRole::Shortcut,
                ),
                BatchNorm2d::new(out_ch),
            )
        });
        Self {
            conv1,
            bn1: BatchNorm2d::new(out_ch),
            relu1: Relu::new(),
            conv2,
            bn2: BatchNorm2d::new(out_ch),
            shortcut,
            relu_out: Relu::new(),
        }
    }
}

impl Layer for BasicBlock {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut h = self.conv1.forward(x, mode);
        h = self.bn1.forward(&h, mode);
        h = self.relu1.forward(&h, mode);
        h = self.conv2.forward(&h, mode);
        h = self.bn2.forward(&h, mode);
        let s = match &mut self.shortcut {
            Some((conv, bn)) => {
                let t = conv.forward(x, mode);
                bn.forward(&t, mode)
            }
            None => x.clone(),
        };
        let sum = h.add(&s);
        self.relu_out.forward(&sum, mode)
    }

    fn forward_shared(&self, x: &Tensor) -> Option<Tensor> {
        let mut h = self.conv1.forward_shared(x)?;
        h = self.bn1.forward_shared(&h)?;
        h = self.relu1.forward_shared(&h)?;
        h = self.conv2.forward_shared(&h)?;
        h = self.bn2.forward_shared(&h)?;
        let s = match &self.shortcut {
            Some((conv, bn)) => bn.forward_shared(&conv.forward_shared(x)?)?,
            None => x.clone(),
        };
        self.relu_out.forward_shared(&h.add(&s))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.relu_out.backward(grad_out);
        // Main path.
        let mut gm = self.bn2.backward(&g);
        gm = self.conv2.backward(&gm);
        gm = self.relu1.backward(&gm);
        gm = self.bn1.backward(&gm);
        let mut gx = self.conv1.backward(&gm);
        // Shortcut path.
        let gs = match &mut self.shortcut {
            Some((conv, bn)) => {
                let t = bn.backward(&g);
                conv.backward(&t)
            }
            None => g,
        };
        gx.add_assign(&gs);
        gx
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(ParamView<'_>)) {
        self.conv1.visit_params(&format!("{prefix}conv1."), f);
        self.bn1.visit_params(&format!("{prefix}bn1."), f);
        self.conv2.visit_params(&format!("{prefix}conv2."), f);
        self.bn2.visit_params(&format!("{prefix}bn2."), f);
        if let Some((conv, bn)) = &mut self.shortcut {
            conv.visit_params(&format!("{prefix}shortcut."), f);
            bn.visit_params(&format!("{prefix}shortcut_bn."), f);
        }
    }

    fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
        self.conv1.apply(f);
        self.bn1.apply(f);
        self.relu1.apply(f);
        self.conv2.apply(f);
        self.bn2.apply(f);
        if let Some((conv, bn)) = &mut self.shortcut {
            conv.apply(f);
            bn.apply(f);
        }
        self.relu_out.apply(f);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

/// A ResNet classifier.
pub struct ResNet {
    spec: ResNetSpec,
    stem_conv: Box<dyn Layer>,
    stem_bn: BatchNorm2d,
    stem_relu: Relu,
    stem_pool: Option<MaxPool2d>,
    blocks: Vec<BasicBlock>,
    gap: GlobalAvgPool,
    fc: Linear,
}

impl ResNet {
    /// Builds a ResNet from a spec and a convolution factory. The
    /// classifier is always a full-precision [`Linear`] (seeded by
    /// `fc_seed`), matching the common practice of keeping the last layer
    /// unquantized.
    ///
    /// # Panics
    ///
    /// Panics if the spec is inconsistent.
    pub fn build(spec: ResNetSpec, factory: &mut dyn ConvFactory, fc_seed: u64) -> Self {
        spec.validate();
        let (stem_k, stem_s, stem_p) = if spec.large_stem {
            (7, 2, 3)
        } else {
            (3, 1, 1)
        };
        let stem_conv = factory.conv(
            "stem",
            spec.in_channels,
            spec.stem_width,
            stem_k,
            stem_s,
            stem_p,
            ConvRole::Stem,
        );
        let stem_pool = spec.large_stem.then(|| MaxPool2d::new(3, 2, 1));
        let mut blocks = Vec::new();
        let mut in_ch = spec.stem_width;
        for (si, (&width, &nblocks)) in spec
            .stage_widths
            .iter()
            .zip(&spec.blocks_per_stage)
            .enumerate()
        {
            for bi in 0..nblocks {
                let stride = if bi == 0 { spec.stage_strides[si] } else { 1 };
                let name = format!("s{si}b{bi}");
                blocks.push(BasicBlock::new(factory, &name, in_ch, width, stride));
                in_ch = width;
            }
        }
        let mut fc_rng = CqRng::new(fc_seed);
        let fc = Linear::new(in_ch, spec.num_classes, true, &mut fc_rng);
        Self {
            stem_bn: BatchNorm2d::new(spec.stem_width),
            stem_conv,
            stem_relu: Relu::new(),
            stem_pool,
            blocks,
            gap: GlobalAvgPool::new(),
            fc,
            spec,
        }
    }

    /// The architecture spec.
    pub fn spec(&self) -> &ResNetSpec {
        &self.spec
    }

    /// Number of residual blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }
}

impl Layer for ResNet {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        let mut h = self.stem_conv.forward(x, mode);
        h = self.stem_bn.forward(&h, mode);
        h = self.stem_relu.forward(&h, mode);
        if let Some(p) = &mut self.stem_pool {
            h = p.forward(&h, mode);
        }
        for b in &mut self.blocks {
            h = b.forward(&h, mode);
        }
        let pooled = self.gap.forward(&h, mode);
        self.fc.forward(&pooled, mode)
    }

    fn forward_shared(&self, x: &Tensor) -> Option<Tensor> {
        let mut h = self.stem_conv.forward_shared(x)?;
        h = self.stem_bn.forward_shared(&h)?;
        h = self.stem_relu.forward_shared(&h)?;
        if let Some(p) = &self.stem_pool {
            h = p.forward_shared(&h)?;
        }
        for b in &self.blocks {
            h = b.forward_shared(&h)?;
        }
        let pooled = self.gap.forward_shared(&h)?;
        self.fc.forward_shared(&pooled)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut g = self.fc.backward(grad_out);
        g = self.gap.backward(&g);
        for b in self.blocks.iter_mut().rev() {
            g = b.backward(&g);
        }
        if let Some(p) = &mut self.stem_pool {
            g = p.backward(&g);
        }
        g = self.stem_relu.backward(&g);
        g = self.stem_bn.backward(&g);
        self.stem_conv.backward(&g)
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(ParamView<'_>)) {
        self.stem_conv.visit_params(&format!("{prefix}stem."), f);
        self.stem_bn.visit_params(&format!("{prefix}stem_bn."), f);
        for (i, b) in self.blocks.iter_mut().enumerate() {
            b.visit_params(&format!("{prefix}block{i}."), f);
        }
        self.fc.visit_params(&format!("{prefix}fc."), f);
    }

    fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
        self.stem_conv.apply(f);
        self.stem_bn.apply(f);
        self.stem_relu.apply(f);
        if let Some(p) = &mut self.stem_pool {
            p.apply(f);
        }
        for b in &mut self.blocks {
            b.apply(f);
        }
        self.gap.apply(f);
        self.fc.apply(f);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax_cross_entropy;

    #[test]
    fn spec_depths() {
        assert_eq!(ResNetSpec::resnet20(10).depth(), 20);
        assert_eq!(ResNetSpec::resnet18(1000).depth(), 18);
        assert_eq!(ResNetSpec::resnet8(10, 8).depth(), 8);
    }

    #[test]
    fn scaled_width_floors_at_one() {
        let s = ResNetSpec::resnet20(10).scaled_width(1, 64);
        assert!(s.stage_widths.iter().all(|&w| w >= 1));
    }

    #[test]
    fn resnet20_forward_shapes() {
        let mut factory = FpConvFactory::new(1);
        let spec = ResNetSpec::resnet20(10).scaled_width(1, 4); // width 4 for speed
        let mut net = ResNet::build(spec, &mut factory, 2);
        let mut rng = CqRng::new(3);
        let x = rng.normal_tensor(&[2, 3, 32, 32], 1.0);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[2, 10]);
        assert_eq!(net.num_blocks(), 9);
    }

    #[test]
    fn resnet18_large_stem_shapes() {
        let mut factory = FpConvFactory::new(4);
        let spec = ResNetSpec::resnet18(7).scaled_width(1, 16); // width 4
        let mut net = ResNet::build(spec, &mut factory, 5);
        let mut rng = CqRng::new(6);
        let x = rng.normal_tensor(&[1, 3, 64, 64], 1.0);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 7]);
    }

    #[test]
    fn backward_produces_input_gradient_and_param_grads() {
        let mut factory = FpConvFactory::new(7);
        let spec = ResNetSpec::resnet8(5, 4);
        let mut net = ResNet::build(spec, &mut factory, 8);
        let mut rng = CqRng::new(9);
        let x = rng.normal_tensor(&[2, 3, 16, 16], 1.0);
        let y = net.forward(&x, Mode::Train);
        let out = softmax_cross_entropy(&y, &[1, 3]);
        let gx = net.backward(&out.grad);
        assert_eq!(gx.shape(), x.shape());
        assert!(gx.max_abs() > 0.0, "input gradient flows");
        let mut nonzero = 0usize;
        let mut total = 0usize;
        net.visit_params("", &mut |p| {
            if p.kind == crate::ParamKind::RunningStat {
                return; // non-trainable state, gradients always zero
            }
            total += 1;
            if p.grad.iter().any(|&g| g != 0.0) {
                nonzero += 1;
            }
        });
        assert!(total > 20, "resnet8 has many params, saw {total}");
        assert!(
            nonzero * 10 >= total * 9,
            "most parameters get gradient: {nonzero}/{total}"
        );
    }

    #[test]
    fn param_names_are_unique() {
        let mut factory = FpConvFactory::new(10);
        let mut net = ResNet::build(
            ResNetSpec::resnet20(10).scaled_width(1, 8),
            &mut factory,
            11,
        );
        let mut names = std::collections::HashSet::new();
        net.visit_params("", &mut |p| {
            assert!(names.insert(p.name.clone()), "duplicate name {}", p.name);
        });
        assert!(names.len() > 60);
    }

    #[test]
    fn tiny_resnet_overfits_noise_batch() {
        // Meaningful end-to-end check: a small ResNet + SGD must be able to
        // memorize a fixed batch of random images.
        let mut factory = FpConvFactory::new(12);
        let mut net = ResNet::build(ResNetSpec::resnet8(4, 4), &mut factory, 13);
        let mut rng = CqRng::new(14);
        let x = rng.normal_tensor(&[8, 3, 12, 12], 1.0);
        let labels: Vec<usize> = (0..8).map(|i| i % 4).collect();
        let mut opt = crate::Sgd::new(0.05, 0.9, 0.0);
        let mut first_loss = 0.0;
        let mut last_loss = 0.0;
        for it in 0..60 {
            let y = net.forward(&x, Mode::Train);
            let out = softmax_cross_entropy(&y, &labels);
            if it == 0 {
                first_loss = out.loss;
            }
            last_loss = out.loss;
            net.zero_grads();
            let _ = net.backward(&out.grad);
            opt.step(&mut net);
        }
        assert!(
            last_loss < first_loss * 0.5,
            "loss should halve: {first_loss} -> {last_loss}"
        );
    }

    #[test]
    fn apply_visits_all_nested_convs() {
        let mut factory = FpConvFactory::new(15);
        let mut net = ResNet::build(
            ResNetSpec::resnet20(10).scaled_width(1, 8),
            &mut factory,
            16,
        );
        let mut convs = 0;
        net.apply(&mut |l| {
            if l.as_any_mut().downcast_mut::<Conv2d>().is_some() {
                convs += 1;
            }
        });
        // stem + 18 body convs + 2 projection shortcuts = 21
        assert_eq!(convs, 21);
    }
}
