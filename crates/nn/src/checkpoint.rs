//! Text-based model checkpointing through the parameter visitor.
//!
//! Format (`CQNN1`): one header line, then for each parameter one metadata
//! line `name kind length` followed by one line of space-separated
//! lowercase-hex `f32::to_bits` words — an exact (bit-preserving) and
//! dependency-free round trip. BatchNorm running statistics are included
//! (they ride the visitor as [`ParamKind::RunningStat`]).

use crate::{Layer, ParamKind, ParamView};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{Error, ErrorKind, Read, Result, Write};
use std::path::Path;

const MAGIC: &str = "CQNN1";

fn kind_tag(kind: ParamKind) -> &'static str {
    match kind {
        ParamKind::Weight => "weight",
        ParamKind::Bias => "bias",
        ParamKind::Gamma => "gamma",
        ParamKind::Beta => "beta",
        ParamKind::Scale => "scale",
        ParamKind::RunningStat => "stat",
    }
}

/// Serializes every parameter of `model` into the checkpoint format.
pub fn serialize_params(model: &mut dyn Layer) -> String {
    let mut out = String::from(MAGIC);
    out.push('\n');
    model.visit_params("", &mut |p: ParamView<'_>| {
        let _ = writeln!(out, "{} {} {}", p.name, kind_tag(p.kind), p.value.len());
        let mut line = String::with_capacity(p.value.len() * 9);
        for (i, v) in p.value.iter().enumerate() {
            if i > 0 {
                line.push(' ');
            }
            let _ = write!(line, "{:08x}", v.to_bits());
        }
        out.push_str(&line);
        out.push('\n');
    });
    out
}

/// Restores parameters from checkpoint text produced by
/// [`serialize_params`]. Every parameter of the model must be present with
/// a matching length; extra entries in the checkpoint are rejected.
///
/// # Errors
///
/// Returns an error on format violations, name/length mismatches, or
/// missing/excess parameters.
pub fn deserialize_params(model: &mut dyn Layer, text: &str) -> Result<()> {
    let mut lines = text.lines();
    if lines.next() != Some(MAGIC) {
        return Err(Error::new(ErrorKind::InvalidData, "bad checkpoint magic"));
    }
    let mut table: HashMap<String, (String, Vec<f32>)> = HashMap::new();
    while let Some(meta) = lines.next() {
        if meta.trim().is_empty() {
            continue;
        }
        let mut parts = meta.split_whitespace();
        let (name, kind, len) = match (parts.next(), parts.next(), parts.next()) {
            (Some(n), Some(k), Some(l)) => (n, k, l),
            _ => {
                return Err(Error::new(
                    ErrorKind::InvalidData,
                    format!("bad meta line: {meta}"),
                ))
            }
        };
        let len: usize = len
            .parse()
            .map_err(|_| Error::new(ErrorKind::InvalidData, format!("bad length in: {meta}")))?;
        let data_line = lines.next().ok_or_else(|| {
            Error::new(ErrorKind::UnexpectedEof, format!("missing data for {name}"))
        })?;
        let mut values = Vec::with_capacity(len);
        for word in data_line.split_whitespace() {
            let bits = u32::from_str_radix(word, 16).map_err(|_| {
                Error::new(
                    ErrorKind::InvalidData,
                    format!("bad hex word '{word}' in {name}"),
                )
            })?;
            values.push(f32::from_bits(bits));
        }
        if values.len() != len {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!("{name}: expected {len} values, found {}", values.len()),
            ));
        }
        if table
            .insert(name.to_string(), (kind.to_string(), values))
            .is_some()
        {
            return Err(Error::new(
                ErrorKind::InvalidData,
                format!("duplicate entry {name}"),
            ));
        }
    }

    let mut missing = Vec::new();
    let mut mismatched = Vec::new();
    let mut wrong_kind = Vec::new();
    model.visit_params("", &mut |p: ParamView<'_>| match table.remove(&p.name) {
        // The kind tag guards against restoring data into the wrong role
        // (e.g. quantizer scales loaded into a weight): such a checkpoint
        // would restore silently but change the model's behaviour.
        Some((kind, _)) if kind != kind_tag(p.kind) => wrong_kind.push(format!(
            "{} (model expects {}, checkpoint has {})",
            p.name,
            kind_tag(p.kind),
            kind
        )),
        Some((_, values)) if values.len() == p.value.len() => p.value.copy_from_slice(&values),
        Some((_, values)) => mismatched.push(format!(
            "{} (model {}, checkpoint {})",
            p.name,
            p.value.len(),
            values.len()
        )),
        None => missing.push(p.name.clone()),
    });
    if !missing.is_empty() {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("checkpoint missing parameters: {missing:?}"),
        ));
    }
    if !wrong_kind.is_empty() {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("parameter kind mismatches: {wrong_kind:?}"),
        ));
    }
    if !mismatched.is_empty() {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("length mismatches: {mismatched:?}"),
        ));
    }
    if !table.is_empty() {
        let extra: Vec<&String> = table.keys().collect();
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("checkpoint has unknown parameters: {extra:?}"),
        ));
    }
    Ok(())
}

/// Saves a model checkpoint to a file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_params(model: &mut dyn Layer, path: impl AsRef<Path>) -> Result<()> {
    let text = serialize_params(model);
    let mut f = std::fs::File::create(path)?;
    f.write_all(text.as_bytes())
}

/// Loads a model checkpoint from a file (see [`deserialize_params`] for
/// the matching rules).
///
/// # Errors
///
/// Propagates I/O errors and format violations.
pub fn load_params(model: &mut dyn Layer, path: impl AsRef<Path>) -> Result<()> {
    let mut text = String::new();
    std::fs::File::open(path)?.read_to_string(&mut text)?;
    deserialize_params(model, &text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FpConvFactory, Mode, ResNet, ResNetSpec};
    use cq_tensor::CqRng;

    fn build(seed: u64) -> ResNet {
        let mut factory = FpConvFactory::new(seed);
        ResNet::build(ResNetSpec::resnet8(4, 4), &mut factory, seed + 1)
    }

    #[test]
    fn roundtrip_restores_outputs_exactly() {
        let mut a = build(1);
        // Give BN non-default running stats.
        let mut rng = CqRng::new(2);
        let x = rng.normal_tensor(&[4, 3, 12, 12], 1.0);
        let _ = a.forward(&x, Mode::Train);
        let ya = a.forward(&x, Mode::Eval);

        let text = serialize_params(&mut a);
        let mut b = build(999); // different init
        assert_ne!(b.forward(&x, Mode::Eval), ya);
        deserialize_params(&mut b, &text).unwrap();
        assert_eq!(b.forward(&x, Mode::Eval), ya, "bit-exact restore");
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("cq_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.cqnn");
        let mut a = build(3);
        save_params(&mut a, &path).unwrap();
        let mut b = build(4);
        load_params(&mut b, &path).unwrap();
        let x = CqRng::new(5).normal_tensor(&[1, 3, 12, 12], 1.0);
        assert_eq!(a.forward(&x, Mode::Eval), b.forward(&x, Mode::Eval));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_architecture() {
        let mut a = build(6);
        let text = serialize_params(&mut a);
        let mut factory = FpConvFactory::new(7);
        let mut wider = ResNet::build(ResNetSpec::resnet8(4, 8), &mut factory, 8);
        let err = deserialize_params(&mut wider, &text).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
    }

    /// A checkpoint whose `kind` tags disagree with the model's parameter
    /// roles (e.g. scale data under a weight entry) must be rejected, not
    /// restored silently.
    #[test]
    fn rejects_swapped_parameter_kinds() {
        let mut a = build(10);
        let text = serialize_params(&mut a);
        assert!(text.contains(" gamma "), "test needs a BatchNorm gamma");
        let tampered = text.replacen(" gamma ", " beta ", 1);
        let err = deserialize_params(&mut a, &tampered).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        let msg = err.to_string();
        assert!(
            msg.contains("kind mismatches"),
            "error should name the kind mismatch, got: {msg}"
        );
        // The untampered checkpoint still restores.
        deserialize_params(&mut a, &text).unwrap();
    }

    #[test]
    fn rejects_corrupt_text() {
        let mut a = build(9);
        assert!(deserialize_params(&mut a, "GARBAGE\n").is_err());
        let mut text = serialize_params(&mut a);
        text.push_str("phantom.param weight 2\n00000000 00000000\n");
        assert!(
            deserialize_params(&mut a, &text).is_err(),
            "extra params rejected"
        );
    }
}
