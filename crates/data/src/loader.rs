//! Mini-batch assembly with optional train-time augmentation
//! (pad-and-crop shifts plus horizontal flips, the standard CIFAR recipe).

use crate::Dataset;
use cq_tensor::{CqRng, Tensor};

/// One mini-batch.
#[derive(Debug, Clone)]
pub struct Batch {
    /// Images `[B, C, H, W]`.
    pub images: Tensor,
    /// Labels, one per image.
    pub labels: Vec<usize>,
}

/// Augmentation settings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Augment {
    /// Zero-pad by this much on every side, then crop back at a random
    /// offset (0 disables).
    pub pad_crop: usize,
    /// Random horizontal flip.
    pub hflip: bool,
}

impl Augment {
    /// The standard CIFAR recipe: pad 2 + flip (scaled-down from pad 4 for
    /// the smaller synthetic images).
    pub fn standard() -> Self {
        Self {
            pad_crop: 2,
            hflip: true,
        }
    }

    /// No augmentation.
    pub fn none() -> Self {
        Self {
            pad_crop: 0,
            hflip: false,
        }
    }
}

/// Splits a dataset into shuffled mini-batches, optionally augmented.
/// The trailing partial batch is kept (never dropped).
///
/// # Panics
///
/// Panics if `batch_size == 0` or the dataset is empty.
pub fn shuffled_batches(
    ds: &Dataset,
    batch_size: usize,
    rng: &mut CqRng,
    augment: Augment,
) -> Vec<Batch> {
    assert!(batch_size > 0, "zero batch size");
    assert!(!ds.is_empty(), "empty dataset");
    let mut order: Vec<usize> = (0..ds.len()).collect();
    rng.shuffle(&mut order);
    batches_in_order(ds, &order, batch_size, Some((rng, augment)))
}

/// Splits a dataset into sequential (unshuffled, unaugmented) batches for
/// evaluation.
///
/// # Panics
///
/// Panics if `batch_size == 0` or the dataset is empty.
pub fn eval_batches(ds: &Dataset, batch_size: usize) -> Vec<Batch> {
    assert!(batch_size > 0, "zero batch size");
    assert!(!ds.is_empty(), "empty dataset");
    let order: Vec<usize> = (0..ds.len()).collect();
    batches_in_order(ds, &order, batch_size, None)
}

fn batches_in_order(
    ds: &Dataset,
    order: &[usize],
    batch_size: usize,
    mut augment: Option<(&mut CqRng, Augment)>,
) -> Vec<Batch> {
    let shape = ds.images.shape();
    let (c, h, w) = (shape[1], shape[2], shape[3]);
    let img_len = c * h * w;
    let mut out = Vec::with_capacity(order.len().div_ceil(batch_size));
    for chunk in order.chunks(batch_size) {
        let mut images = Tensor::zeros(&[chunk.len(), c, h, w]);
        let mut labels = Vec::with_capacity(chunk.len());
        for (bi, &idx) in chunk.iter().enumerate() {
            let src = &ds.images.data()[idx * img_len..(idx + 1) * img_len];
            let dst = &mut images.data_mut()[bi * img_len..(bi + 1) * img_len];
            match &mut augment {
                Some((rng, aug)) => apply_augment(src, dst, c, h, w, rng, *aug),
                None => dst.copy_from_slice(src),
            }
            labels.push(ds.labels[idx]);
        }
        out.push(Batch { images, labels });
    }
    out
}

fn apply_augment(
    src: &[f32],
    dst: &mut [f32],
    c: usize,
    h: usize,
    w: usize,
    rng: &mut CqRng,
    augment: Augment,
) {
    let p = augment.pad_crop;
    let (dy, dx) = if p > 0 {
        (
            rng.below(2 * p + 1) as isize - p as isize,
            rng.below(2 * p + 1) as isize - p as isize,
        )
    } else {
        (0, 0)
    };
    let flip = augment.hflip && rng.coin();
    if dy == 0 && dx == 0 && !flip {
        dst.copy_from_slice(src);
        return;
    }
    for ch in 0..c {
        for y in 0..h {
            let sy = y as isize + dy;
            for x in 0..w {
                let xx = if flip { w - 1 - x } else { x };
                let sx = xx as isize + dx;
                let v = if sy < 0 || sx < 0 || sy >= h as isize || sx >= w as isize {
                    0.0 // zero padding revealed by the crop
                } else {
                    src[(ch * h + sy as usize) * w + sx as usize]
                };
                dst[(ch * h + y) * w + x] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, SyntheticSpec};

    fn tiny() -> Dataset {
        generate(&SyntheticSpec::tiny(3)).0
    }

    #[test]
    fn eval_batches_cover_everything_in_order() {
        let ds = tiny();
        let batches = eval_batches(&ds, 10);
        let total: usize = batches.iter().map(|b| b.labels.len()).sum();
        assert_eq!(total, ds.len());
        assert_eq!(batches[0].labels, ds.labels[..10].to_vec());
        // Last partial batch kept.
        assert_eq!(batches.last().unwrap().labels.len(), ds.len() % 10);
        // Unaugmented: images bit-identical to source.
        assert_eq!(
            &batches[0].images.data()[..ds.images.shape()[1..].iter().product()],
            &ds.images.data()[..ds.images.shape()[1..].iter().product()]
        );
    }

    #[test]
    fn shuffled_batches_are_a_permutation() {
        let ds = tiny();
        let mut rng = CqRng::new(5);
        let batches = shuffled_batches(&ds, 7, &mut rng, Augment::none());
        let mut label_counts = vec![0usize; 4];
        for b in &batches {
            for &l in &b.labels {
                label_counts[l] += 1;
            }
        }
        assert_eq!(label_counts, vec![16, 16, 16, 16]);
    }

    #[test]
    fn augmentation_changes_pixels_not_labels() {
        let ds = tiny();
        let mut rng = CqRng::new(6);
        let plain = eval_batches(&ds, ds.len()).remove(0);
        let aug = shuffled_batches(&ds, ds.len(), &mut rng, Augment::standard()).remove(0);
        assert_ne!(plain.images, aug.images);
        let mut a = plain.labels.clone();
        let mut b = aug.labels.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn augment_none_with_shuffle_preserves_images_exactly() {
        let ds = tiny();
        let mut rng = CqRng::new(7);
        let batches = shuffled_batches(&ds, 4, &mut rng, Augment::none());
        // Each batched image must be bit-identical to one dataset image.
        let img_len: usize = ds.images.shape()[1..].iter().product();
        let b0 = &batches[0];
        for bi in 0..b0.labels.len() {
            let img = &b0.images.data()[bi * img_len..(bi + 1) * img_len];
            let found =
                (0..ds.len()).any(|i| &ds.images.data()[i * img_len..(i + 1) * img_len] == img);
            assert!(found, "batched image {bi} not found in dataset");
        }
    }

    #[test]
    fn deterministic_given_rng_seed() {
        let ds = tiny();
        let a = shuffled_batches(&ds, 8, &mut CqRng::new(9), Augment::standard());
        let b = shuffled_batches(&ds, 8, &mut CqRng::new(9), Augment::standard());
        assert_eq!(a[0].images, b[0].images);
        assert_eq!(a[0].labels, b[0].labels);
    }
}
