//! Deterministic synthetic vision datasets.
//!
//! Real CIFAR-10/100/ImageNet are not available in this offline
//! environment, so experiments run on class-conditional synthetic images
//! (documented in `DESIGN.md` §3). Each class owns a *prototype texture*
//! (a sum of class-keyed sinusoid gratings plus a class-colored Gaussian
//! blob); samples are circular shifts, brightness jitter, optional
//! horizontal flips, and additive noise of that prototype. The task is
//! non-trivially separable, convolution-friendly, and exercises exactly
//! the code paths the paper's experiments exercise.

use cq_tensor::{CqRng, Tensor};

/// Specification of a synthetic classification dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct SyntheticSpec {
    /// Number of classes.
    pub num_classes: usize,
    /// Square image side length.
    pub image_size: usize,
    /// Image channels.
    pub channels: usize,
    /// Training images per class.
    pub train_per_class: usize,
    /// Test images per class.
    pub test_per_class: usize,
    /// Instance noise standard deviation (higher = harder task).
    pub noise: f32,
    /// Maximum circular shift applied to samples.
    pub max_shift: usize,
    /// Master seed; everything derives deterministically from it.
    pub seed: u64,
}

impl SyntheticSpec {
    /// CIFAR-10 stand-in: 10 classes of 32×32×3 images.
    pub fn cifar10_like(train_per_class: usize, test_per_class: usize, seed: u64) -> Self {
        Self {
            num_classes: 10,
            image_size: 32,
            channels: 3,
            train_per_class,
            test_per_class,
            noise: 0.35,
            max_shift: 3,
            seed,
        }
    }

    /// CIFAR-100 stand-in: 100 classes of 32×32×3 images.
    pub fn cifar100_like(train_per_class: usize, test_per_class: usize, seed: u64) -> Self {
        Self {
            num_classes: 100,
            image_size: 32,
            channels: 3,
            train_per_class,
            test_per_class,
            noise: 0.3,
            max_shift: 3,
            seed,
        }
    }

    /// ImageNet stand-in (documented substitution): many classes, larger
    /// images than the CIFAR presets. Kept at 64 classes × 40×40 so the
    /// ResNet-18 comparison runs in a CPU-only container.
    pub fn imagenet_like(train_per_class: usize, test_per_class: usize, seed: u64) -> Self {
        Self {
            num_classes: 64,
            image_size: 40,
            channels: 3,
            train_per_class,
            test_per_class,
            noise: 0.3,
            max_shift: 4,
            seed,
        }
    }

    /// A tiny preset for unit tests.
    pub fn tiny(seed: u64) -> Self {
        Self {
            num_classes: 4,
            image_size: 12,
            channels: 3,
            train_per_class: 16,
            test_per_class: 8,
            noise: 0.25,
            max_shift: 2,
            seed,
        }
    }

    /// Validates the spec.
    ///
    /// # Panics
    ///
    /// Panics on zero sizes.
    pub fn validate(&self) {
        assert!(self.num_classes > 0 && self.image_size > 0 && self.channels > 0);
        assert!(self.train_per_class > 0 && self.test_per_class > 0);
        assert!(self.noise >= 0.0);
        assert!(self.max_shift < self.image_size);
    }
}

/// A labelled image set.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images `[N, C, H, W]`, roughly zero-mean, values ~[-2.5, 2.5].
    pub images: Tensor,
    /// One label per image.
    pub labels: Vec<usize>,
}

impl Dataset {
    /// Number of images.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copies image `i` as a `[C, H, W]` tensor.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn image(&self, i: usize) -> Tensor {
        let inner: usize = self.images.shape()[1..].iter().product();
        let mut shape = self.images.shape()[1..].to_vec();
        let data = self.images.data()[i * inner..(i + 1) * inner].to_vec();
        let t = Tensor::from_vec(data, &shape);
        shape.clear();
        t
    }
}

/// Generates the train and test splits for a spec.
///
/// Entirely deterministic in `spec.seed`; the test split uses an
/// independent RNG stream so changing set sizes never aliases samples.
///
/// # Panics
///
/// Panics if the spec is invalid.
pub fn generate(spec: &SyntheticSpec) -> (Dataset, Dataset) {
    spec.validate();
    let mut master = CqRng::new(spec.seed);
    let protos: Vec<Tensor> = (0..spec.num_classes)
        .map(|c| prototype(spec, c as u64))
        .collect();
    let mut train_rng = master.fork(1);
    let mut test_rng = master.fork(2);
    let train = sample_split(spec, &protos, spec.train_per_class, &mut train_rng);
    let test = sample_split(spec, &protos, spec.test_per_class, &mut test_rng);
    (train, test)
}

/// Builds class `c`'s prototype texture.
fn prototype(spec: &SyntheticSpec, class: u64) -> Tensor {
    let s = spec.image_size;
    let mut rng = CqRng::new(spec.seed ^ class.wrapping_mul(0x9E3779B97F4A7C15) ^ 0xC1A55);
    let mut img = Tensor::zeros(&[spec.channels, s, s]);
    let two_pi = std::f32::consts::TAU;
    for ch in 0..spec.channels {
        // Two gratings per channel with class-keyed frequency and phase.
        let (fx1, fy1) = ((1 + rng.below(4)) as f32, rng.below(4) as f32);
        let (fx2, fy2) = (rng.below(3) as f32, (1 + rng.below(4)) as f32);
        let (p1, p2) = (rng.uniform() * two_pi, rng.uniform() * two_pi);
        let (a1, a2) = (rng.uniform_in(0.4, 0.9), rng.uniform_in(0.3, 0.7));
        // Class-colored blob.
        let (cx, cy) = (
            rng.uniform_in(0.2, 0.8) * s as f32,
            rng.uniform_in(0.2, 0.8) * s as f32,
        );
        let amp = rng.uniform_in(-1.2, 1.2);
        let sigma = s as f32 / 5.0;
        for y in 0..s {
            for x in 0..s {
                let xf = x as f32 / s as f32;
                let yf = y as f32 / s as f32;
                let g1 = a1 * (two_pi * (fx1 * xf + fy1 * yf) + p1).sin();
                let g2 = a2 * (two_pi * (fx2 * xf + fy2 * yf) + p2).sin();
                let d2 = (x as f32 - cx).powi(2) + (y as f32 - cy).powi(2);
                let blob = amp * (-d2 / (2.0 * sigma * sigma)).exp();
                let i = (ch * s + y) * s + x;
                img.data_mut()[i] = g1 + g2 + blob;
            }
        }
    }
    img
}

fn sample_split(
    spec: &SyntheticSpec,
    protos: &[Tensor],
    per_class: usize,
    rng: &mut CqRng,
) -> Dataset {
    let s = spec.image_size;
    let n = spec.num_classes * per_class;
    let mut images = Tensor::zeros(&[n, spec.channels, s, s]);
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    let img_len = spec.channels * s * s;
    for (slot_idx, &slot) in order.iter().enumerate() {
        let class = slot_idx % spec.num_classes;
        let proto = &protos[class];
        let dx = rng.below(2 * spec.max_shift + 1) as isize - spec.max_shift as isize;
        let dy = rng.below(2 * spec.max_shift + 1) as isize - spec.max_shift as isize;
        let flip = rng.coin();
        let bright = rng.uniform_in(0.85, 1.15);
        let dst = &mut images.data_mut()[slot * img_len..(slot + 1) * img_len];
        for ch in 0..spec.channels {
            for y in 0..s {
                for x in 0..s {
                    let sx = if flip { s - 1 - x } else { x };
                    let src_y = (y as isize - dy).rem_euclid(s as isize) as usize;
                    let src_x = (sx as isize - dx).rem_euclid(s as isize) as usize;
                    let v = proto.data()[(ch * s + src_y) * s + src_x];
                    dst[(ch * s + y) * s + x] = v * bright + spec.noise * rng.normal();
                }
            }
        }
    }
    // Labels align with storage slots, not with generation order.
    let mut labels = vec![0usize; n];
    for (slot_idx, &slot) in order.iter().enumerate() {
        labels[slot] = slot_idx % spec.num_classes;
    }
    Dataset { images, labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_generation() {
        let spec = SyntheticSpec::tiny(7);
        let (a_train, a_test) = generate(&spec);
        let (b_train, b_test) = generate(&spec);
        assert_eq!(a_train.images, b_train.images);
        assert_eq!(a_train.labels, b_train.labels);
        assert_eq!(a_test.images, b_test.images);
        let spec2 = SyntheticSpec::tiny(8);
        let (c_train, _) = generate(&spec2);
        assert_ne!(a_train.images, c_train.images, "different seeds differ");
    }

    #[test]
    fn shapes_and_balance() {
        let spec = SyntheticSpec::tiny(1);
        let (train, test) = generate(&spec);
        assert_eq!(train.len(), 64);
        assert_eq!(test.len(), 32);
        assert_eq!(train.images.shape(), &[64, 3, 12, 12]);
        for c in 0..4 {
            assert_eq!(train.labels.iter().filter(|&&l| l == c).count(), 16);
            assert_eq!(test.labels.iter().filter(|&&l| l == c).count(), 8);
        }
    }

    #[test]
    fn values_are_bounded_and_centered() {
        let spec = SyntheticSpec::cifar10_like(4, 2, 3);
        let (train, _) = generate(&spec);
        assert!(
            train.images.max_abs() < 6.0,
            "max {}",
            train.images.max_abs()
        );
        assert!(
            train.images.mean().abs() < 0.3,
            "mean {}",
            train.images.mean()
        );
    }

    /// The defining property: a trivial nearest-class-mean classifier must
    /// beat chance comfortably, or no network could learn the task.
    #[test]
    fn nearest_class_mean_beats_chance() {
        let spec = SyntheticSpec::tiny(5);
        let (train, test) = generate(&spec);
        let img_len: usize = train.images.shape()[1..].iter().product();
        let mut means = vec![vec![0.0f32; img_len]; spec.num_classes];
        let mut counts = vec![0usize; spec.num_classes];
        for i in 0..train.len() {
            let c = train.labels[i];
            counts[c] += 1;
            for (m, &v) in means[c]
                .iter_mut()
                .zip(&train.images.data()[i * img_len..(i + 1) * img_len])
            {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            m.iter_mut().for_each(|v| *v /= c as f32);
        }
        let mut correct = 0;
        for i in 0..test.len() {
            let img = &test.images.data()[i * img_len..(i + 1) * img_len];
            let mut best = 0;
            let mut bestd = f32::INFINITY;
            for (c, m) in means.iter().enumerate() {
                let d: f32 = img.iter().zip(m).map(|(a, b)| (a - b).powi(2)).sum();
                if d < bestd {
                    bestd = d;
                    best = c;
                }
            }
            if best == test.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        // Nearest-mean is a weak baseline here (circular shifts dephase the
        // gratings, blurring class means); a CNN does far better. Anything
        // clearly above chance proves separability.
        assert!(acc > 0.45, "nearest-mean accuracy {acc} (chance = 0.25)");
    }

    #[test]
    fn train_and_test_are_distinct_samples() {
        let spec = SyntheticSpec::tiny(9);
        let (train, test) = generate(&spec);
        let img_len: usize = train.images.shape()[1..].iter().product();
        // No test image should be bit-identical to any train image.
        for i in 0..test.len().min(8) {
            let ti = &test.images.data()[i * img_len..(i + 1) * img_len];
            for j in 0..train.len() {
                let tj = &train.images.data()[j * img_len..(j + 1) * img_len];
                assert_ne!(ti, tj, "test {i} duplicates train {j}");
            }
        }
    }

    #[test]
    fn image_accessor_matches_flat_layout() {
        let spec = SyntheticSpec::tiny(11);
        let (train, _) = generate(&spec);
        let img = train.image(3);
        assert_eq!(img.shape(), &[3, 12, 12]);
        assert_eq!(img.data()[0], train.images.data()[3 * 3 * 12 * 12]);
    }
}
