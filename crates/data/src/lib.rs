//! # cq-data
//!
//! Deterministic synthetic vision datasets standing in for
//! CIFAR-10 / CIFAR-100 / ImageNet (which are unavailable offline; see
//! `DESIGN.md` §3 for the substitution argument), plus mini-batch loading
//! and standard train-time augmentation.
//!
//! ## Example
//!
//! ```
//! use cq_data::{generate, SyntheticSpec};
//!
//! let (train, test) = generate(&SyntheticSpec::tiny(42));
//! assert_eq!(train.images.shape()[0], train.labels.len());
//! assert!(!test.is_empty());
//! ```

#![warn(missing_docs)]

mod loader;
mod synthetic;

pub use loader::{eval_batches, shuffled_batches, Augment, Batch};
pub use synthetic::{generate, Dataset, SyntheticSpec};
