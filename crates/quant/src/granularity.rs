//! Quantization granularity (paper Fig. 1) and the group layouts that
//! assign every tensor element to a scale-factor group.

use cq_tensor::Tensor;
use std::fmt;

/// Quantization granularity: how many elements share one scale factor.
///
/// Matches the paper's Fig. 1: (a)/(d) layer-wise, (b)/(e) array-wise,
/// (c)/(f) column-wise, for weights and partial sums respectively.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Granularity {
    /// One scale factor for the whole layer.
    Layer,
    /// One scale factor per CIM array tile.
    Array,
    /// One scale factor per array column (per logical column for weights,
    /// per physical column — i.e. per bit-split — for partial sums).
    Column,
}

impl Granularity {
    /// Short label used in experiment tables ("L", "A", "C").
    pub fn letter(self) -> &'static str {
        match self {
            Granularity::Layer => "L",
            Granularity::Array => "A",
            Granularity::Column => "C",
        }
    }

    /// All three granularities, coarse to fine.
    pub const ALL: [Granularity; 3] = [Granularity::Layer, Granularity::Array, Granularity::Column];
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Granularity::Layer => "layer",
            Granularity::Array => "array",
            Granularity::Column => "column",
        };
        f.write_str(s)
    }
}

/// Maps tensor elements to scale-factor groups.
///
/// Two layouts cover every case in this workspace:
///
/// * [`GroupLayout::Single`] — the whole tensor is one group (layer-wise).
/// * [`GroupLayout::Channelwise`] — the tensor is `[outer…, channels, inner]`
///   in row-major order and a per-channel `map` assigns groups. This covers
///   weights `[OC, Cin, K, K]` (channels = `OC·Cin`, inner = `K·K`) and
///   partial sums `[B, CH, OH, OW]` (channels = `CH`, inner = `OH·OW`,
///   batch folds into `outer`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroupLayout {
    /// Every element belongs to group 0.
    Single,
    /// Group of flat index `i` is `map[(i / inner) % channels]`.
    Channelwise {
        /// Contiguous elements per channel.
        inner: usize,
        /// Number of channels (the dimension the map indexes).
        channels: usize,
        /// Per-channel group id; `len() == channels`.
        map: Vec<u32>,
        /// Total number of groups (`max(map) + 1`).
        num_groups: usize,
    },
}

impl GroupLayout {
    /// The single-group (layer-wise) layout.
    pub fn single() -> Self {
        GroupLayout::Single
    }

    /// Builds a channel-wise layout from a per-channel group map.
    ///
    /// # Panics
    ///
    /// Panics if `map` is empty or `inner == 0`.
    pub fn channelwise(inner: usize, map: Vec<u32>) -> Self {
        assert!(inner > 0, "inner extent must be positive");
        assert!(!map.is_empty(), "empty group map");
        let num_groups = *map.iter().max().unwrap() as usize + 1;
        GroupLayout::Channelwise {
            inner,
            channels: map.len(),
            map,
            num_groups,
        }
    }

    /// Like [`GroupLayout::channelwise`] but with an explicit total group
    /// count, for layouts that address a subset of a larger scale table
    /// (e.g. one bit-split's slice of the column-wise partial-sum scales).
    ///
    /// # Panics
    ///
    /// Panics if `map` is empty, `inner == 0`, or `num_groups` is smaller
    /// than the map requires.
    pub fn channelwise_with_groups(inner: usize, map: Vec<u32>, num_groups: usize) -> Self {
        assert!(inner > 0, "inner extent must be positive");
        assert!(!map.is_empty(), "empty group map");
        let needed = *map.iter().max().unwrap() as usize + 1;
        assert!(
            num_groups >= needed,
            "num_groups {num_groups} < required {needed}"
        );
        GroupLayout::Channelwise {
            inner,
            channels: map.len(),
            map,
            num_groups,
        }
    }

    /// Group id of a channel index (for layouts where grouping is purely
    /// per channel, e.g. partial-sum columns).
    pub fn group_of_channel(&self, ch: usize) -> usize {
        match self {
            GroupLayout::Single => 0,
            GroupLayout::Channelwise { channels, map, .. } => map[ch % channels] as usize,
        }
    }

    /// Number of scale-factor groups.
    pub fn num_groups(&self) -> usize {
        match self {
            GroupLayout::Single => 1,
            GroupLayout::Channelwise { num_groups, .. } => *num_groups,
        }
    }

    /// Group id of a flat element index.
    #[inline]
    pub fn group_of(&self, flat: usize) -> usize {
        match self {
            GroupLayout::Single => 0,
            GroupLayout::Channelwise {
                inner,
                channels,
                map,
                ..
            } => map[(flat / inner) % channels] as usize,
        }
    }

    /// Checks that a tensor is compatible with this layout.
    ///
    /// # Panics
    ///
    /// Panics if the tensor's element count is not a whole number of
    /// `channels × inner` blocks.
    pub fn validate(&self, t: &Tensor) {
        if let GroupLayout::Channelwise {
            inner, channels, ..
        } = self
        {
            let block = inner * channels;
            assert!(
                block > 0 && t.numel() % block == 0,
                "tensor with {} elements incompatible with channelwise layout ({channels} ch × {inner} inner)",
                t.numel()
            );
        }
    }

    /// Element count per group for a tensor of `numel` elements.
    ///
    /// # Panics
    ///
    /// Panics if the tensor size is incompatible with the layout.
    pub fn counts(&self, numel: usize) -> Vec<usize> {
        match self {
            GroupLayout::Single => vec![numel],
            GroupLayout::Channelwise {
                inner,
                channels,
                map,
                num_groups,
            } => {
                let block = inner * channels;
                assert!(
                    numel % block == 0,
                    "numel {numel} not a multiple of {block}"
                );
                let repeats = numel / block;
                let mut counts = vec![0usize; *num_groups];
                for &g in map {
                    counts[g as usize] += inner * repeats;
                }
                counts
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn granularity_ordering_and_labels() {
        assert!(Granularity::Layer < Granularity::Array);
        assert!(Granularity::Array < Granularity::Column);
        assert_eq!(Granularity::Column.letter(), "C");
        assert_eq!(Granularity::Layer.to_string(), "layer");
    }

    #[test]
    fn single_layout_is_one_group() {
        let l = GroupLayout::single();
        assert_eq!(l.num_groups(), 1);
        assert_eq!(l.group_of(123), 0);
        assert_eq!(l.counts(10), vec![10]);
    }

    #[test]
    fn channelwise_groups_by_channel_with_batch_fold() {
        // Tensor [B=2, CH=3, inner=4]; channels 0,1 -> group 0; channel 2 -> group 1.
        let l = GroupLayout::channelwise(4, vec![0, 0, 1]);
        assert_eq!(l.num_groups(), 2);
        // flat index 0..4 -> ch 0, 4..8 -> ch1, 8..12 -> ch2, 12.. -> batch 1 ch 0 again
        assert_eq!(l.group_of(0), 0);
        assert_eq!(l.group_of(5), 0);
        assert_eq!(l.group_of(9), 1);
        assert_eq!(l.group_of(12), 0);
        assert_eq!(l.group_of(20), 1);
        assert_eq!(l.counts(24), vec![16, 8]);
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn counts_rejects_incompatible_size() {
        GroupLayout::channelwise(4, vec![0, 1]).counts(10);
    }

    #[test]
    fn channelwise_with_groups_allows_sparse_group_usage() {
        // A per-split layout addressing groups 4..8 of an 8-scale table.
        let l = GroupLayout::channelwise_with_groups(2, vec![4, 5, 6, 7], 8);
        assert_eq!(l.num_groups(), 8);
        assert_eq!(l.group_of(0), 4);
        assert_eq!(l.group_of(7), 7);
        // Unused groups get zero counts.
        let counts = l.counts(8);
        assert_eq!(&counts[..4], &[0, 0, 0, 0]);
        assert_eq!(&counts[4..], &[2, 2, 2, 2]);
    }

    #[test]
    #[should_panic(expected = "num_groups")]
    fn channelwise_with_groups_rejects_too_few() {
        let _ = GroupLayout::channelwise_with_groups(1, vec![0, 5], 3);
    }

    #[test]
    fn group_of_channel_matches_group_of() {
        let l = GroupLayout::channelwise(3, vec![2, 0, 1]);
        for ch in 0..3 {
            assert_eq!(l.group_of_channel(ch), l.group_of(ch * 3));
            // Batch folding: channel index wraps.
            assert_eq!(l.group_of_channel(ch + 3), l.group_of_channel(ch));
        }
        assert_eq!(GroupLayout::single().group_of_channel(9), 0);
    }

    #[test]
    fn validate_accepts_weight_tensor_pattern() {
        // Weight [OC=2, Cin=3, K=2, K=2]: channels = 6, inner = 4.
        let map = vec![0, 0, 0, 1, 1, 1];
        let l = GroupLayout::channelwise(4, map);
        let w = Tensor::zeros(&[2, 3, 2, 2]);
        l.validate(&w);
        assert_eq!(l.counts(w.numel()), vec![12, 12]);
    }
}
