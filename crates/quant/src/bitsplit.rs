//! Two's-complement bit-splitting of integer weights into per-cell slices
//! (paper Sec. III-C: "quantized weights break down into smaller segments,
//! bit-split weights, to fit the number of capable bits per memory cell").
//!
//! A signed `wb`-bit integer weight `w ∈ [-2^(wb-1), 2^(wb-1)-1]` is written
//! in `wb`-bit two's complement and cut into `n_split = ceil(wb/cb)` slices
//! of `cb` bits (the top slice may be narrower). Lower slices are unsigned
//! cell values in `[0, 2^cb - 1]`; the **top slice is interpreted as
//! signed** (in hardware: a differential pair or dedicated sign column), so
//! plain shift-and-add with positive powers of two reconstructs the weight
//! exactly:
//!
//! `w = t · 2^(cb·(ns−1)) + Σ_{s<ns−1} u_s · 2^(cb·s)`
//!
//! **Binary weights (`weight_bits == 1`)** are the degenerate case: the
//! codebook is the scaled-±1 set `{-1, +1}` (BWMA-style, not 1-bit two's
//! complement `{-1, 0}`), the split count is 1, and the single slice *is*
//! the weight — `split_tensor`/`split_all` take an allocation-free identity
//! fast path shared by every single-split configuration.

use cq_tensor::Tensor;

/// Bit-split geometry: weight bits and cell bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitSplit {
    weight_bits: u32,
    cell_bits: u32,
}

impl BitSplit {
    /// Creates a split spec.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ cell_bits ≤ weight_bits ≤ 16`.
    pub fn new(weight_bits: u32, cell_bits: u32) -> Self {
        assert!(
            (1..=16).contains(&weight_bits) && cell_bits >= 1 && cell_bits <= weight_bits,
            "invalid bit split: {weight_bits}b weights into {cell_bits}b cells"
        );
        Self {
            weight_bits,
            cell_bits,
        }
    }

    /// Weight bit width.
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// Bits per memory cell.
    pub fn cell_bits(&self) -> u32 {
        self.cell_bits
    }

    /// Number of slices `ceil(wb / cb)` (the paper's `n_split`).
    pub fn num_splits(&self) -> usize {
        self.weight_bits.div_ceil(self.cell_bits) as usize
    }

    /// Bit width of the (possibly narrower) top slice.
    pub fn top_bits(&self) -> u32 {
        self.weight_bits - self.cell_bits * (self.num_splits() as u32 - 1)
    }

    /// Shift-and-add weight `2^(cb·s)` of slice `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= num_splits()`.
    pub fn shift_weight(&self, s: usize) -> f32 {
        assert!(s < self.num_splits(), "slice {s} out of range");
        (1u64 << (self.cell_bits as usize * s)) as f32
    }

    /// Inclusive representable weight range `(lo, hi)`.
    ///
    /// Two's complement `[-2^(wb-1), 2^(wb-1)-1]` for multi-bit weights;
    /// the ±1 sign codebook `[-1, 1]` for binary (`weight_bits == 1`)
    /// weights.
    pub fn weight_range(&self) -> (i32, i32) {
        if self.weight_bits == 1 {
            (-1, 1)
        } else {
            (
                -(1 << (self.weight_bits - 1)),
                (1 << (self.weight_bits - 1)) - 1,
            )
        }
    }

    /// Inclusive value range `(lo, hi)` of slice `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s >= num_splits()`.
    pub fn slice_range(&self, s: usize) -> (i32, i32) {
        assert!(s < self.num_splits(), "slice {s} out of range");
        if s + 1 == self.num_splits() {
            if self.top_bits() == self.weight_bits {
                // Single slice: the whole weight.
                self.weight_range()
            } else {
                let tb = self.top_bits();
                (-(1 << (tb - 1)), (1 << (tb - 1)) - 1)
            }
        } else {
            (0, (1 << self.cell_bits) - 1)
        }
    }

    /// Value of slice `s` of a signed integer weight.
    ///
    /// # Panics
    ///
    /// Panics if `w` is outside the signed `weight_bits` range or `s` is out
    /// of range.
    pub fn split_value(&self, w: i32, s: usize) -> i32 {
        let (lo, hi) = self.weight_range();
        assert!(
            w >= lo && w <= hi,
            "weight {w} outside signed {}-bit range",
            self.weight_bits
        );
        assert!(s < self.num_splits(), "slice {s} out of range");
        if self.num_splits() == 1 {
            // Single slice (including the binary ±1 codebook): identity.
            return w;
        }
        let u = (w as i64) & ((1i64 << self.weight_bits) - 1); // two's complement bits
        let ns = self.num_splits();
        if s + 1 == ns {
            let tb = self.top_bits();
            let t = (u >> (self.cell_bits as usize * s)) & ((1i64 << tb) - 1);
            // Sign-extend the top slice.
            if t >= (1i64 << (tb - 1)) {
                (t - (1i64 << tb)) as i32
            } else {
                t as i32
            }
        } else {
            ((u >> (self.cell_bits as usize * s)) & ((1i64 << self.cell_bits) - 1)) as i32
        }
    }

    /// Reconstructs a weight from its slice values.
    ///
    /// # Panics
    ///
    /// Panics if `slices.len() != num_splits()`.
    pub fn reassemble(&self, slices: &[i32]) -> i32 {
        assert_eq!(slices.len(), self.num_splits(), "slice count");
        let mut acc = 0i64;
        for (s, &v) in slices.iter().enumerate() {
            acc += (v as i64) * (self.shift_weight(s) as i64);
        }
        acc as i32
    }

    /// Extracts slice `s` of every element of an integer-valued tensor.
    ///
    /// # Panics
    ///
    /// Panics if any element is not an integer in the signed
    /// `weight_bits` range.
    pub fn split_tensor(&self, w_int: &Tensor, s: usize) -> Tensor {
        if self.num_splits() == 1 {
            // Degenerate split (binary ±1 weights, or cb == wb): the single
            // slice is the weight itself. Skip the per-element slicing map —
            // one memcpy, no per-split intermediates.
            assert_eq!(s, 0, "slice {s} out of range");
            self.debug_validate(w_int);
            return w_int.clone();
        }
        w_int.map(|v| {
            debug_assert_eq!(v, v.round(), "bit-split input must be integral, got {v}");
            self.split_value(v as i32, s) as f32
        })
    }

    /// Extracts all slices of an integer-valued tensor, lowest slice first.
    pub fn split_all(&self, w_int: &Tensor) -> Vec<Tensor> {
        if self.num_splits() == 1 {
            self.debug_validate(w_int);
            return vec![w_int.clone()];
        }
        (0..self.num_splits())
            .map(|s| self.split_tensor(w_int, s))
            .collect()
    }

    /// Debug-build check that every element is an in-range integer.
    fn debug_validate(&self, w_int: &Tensor) {
        if cfg!(debug_assertions) {
            let (lo, hi) = self.weight_range();
            for &v in w_int.data() {
                debug_assert_eq!(v, v.round(), "bit-split input must be integral, got {v}");
                debug_assert!(
                    (v as i32) >= lo && (v as i32) <= hi,
                    "weight {v} outside signed {}-bit range",
                    self.weight_bits
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configurations() {
        // Table II: 3b/1b-cell -> 3 splits; 4b/2b -> 2; 3b/3b -> 1.
        assert_eq!(BitSplit::new(3, 1).num_splits(), 3);
        assert_eq!(BitSplit::new(4, 2).num_splits(), 2);
        assert_eq!(BitSplit::new(3, 3).num_splits(), 1);
    }

    #[test]
    fn exhaustive_roundtrip_all_configs() {
        for wb in 2..=8u32 {
            for cb in 1..=wb {
                let bs = BitSplit::new(wb, cb);
                let lo = -(1i32 << (wb - 1));
                let hi = (1i32 << (wb - 1)) - 1;
                for w in lo..=hi {
                    let slices: Vec<i32> =
                        (0..bs.num_splits()).map(|s| bs.split_value(w, s)).collect();
                    assert_eq!(
                        bs.reassemble(&slices),
                        w,
                        "roundtrip failed wb={wb} cb={cb} w={w} slices={slices:?}"
                    );
                    for (s, &v) in slices.iter().enumerate() {
                        let (rlo, rhi) = bs.slice_range(s);
                        assert!(
                            v >= rlo && v <= rhi,
                            "slice {s} value {v} outside [{rlo}, {rhi}] (wb={wb} cb={cb} w={w})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn known_values_3b_1b() {
        let bs = BitSplit::new(3, 1);
        // -3 = 0b101 in 3-bit two's complement: slices (lsb first) 1, 0, sign slice -1.
        assert_eq!(bs.split_value(-3, 0), 1);
        assert_eq!(bs.split_value(-3, 1), 0);
        assert_eq!(bs.split_value(-3, 2), -1);
        assert_eq!(bs.reassemble(&[1, 0, -1]), -3);
        // 3 = 0b011: 1, 1, 0.
        assert_eq!(bs.split_value(3, 0), 1);
        assert_eq!(bs.split_value(3, 1), 1);
        assert_eq!(bs.split_value(3, 2), 0);
    }

    #[test]
    fn known_values_4b_2b() {
        let bs = BitSplit::new(4, 2);
        // -5 = 0b1011: low slice 0b11 = 3, top slice 0b10 signed = -2.
        assert_eq!(bs.split_value(-5, 0), 3);
        assert_eq!(bs.split_value(-5, 1), -2);
        assert_eq!(bs.reassemble(&[3, -2]), -5);
        assert_eq!(bs.shift_weight(1), 4.0);
    }

    #[test]
    fn single_split_is_identity() {
        let bs = BitSplit::new(3, 3);
        for w in -4..=3 {
            assert_eq!(bs.split_value(w, 0), w);
        }
    }

    #[test]
    fn uneven_top_slice() {
        // 5 bits into 2-bit cells: 3 splits, top slice is 1 bit (sign).
        let bs = BitSplit::new(5, 2);
        assert_eq!(bs.num_splits(), 3);
        assert_eq!(bs.top_bits(), 1);
        assert_eq!(bs.slice_range(2), (-1, 0));
        for w in -16..=15 {
            let slices: Vec<i32> = (0..3).map(|s| bs.split_value(w, s)).collect();
            assert_eq!(bs.reassemble(&slices), w);
        }
    }

    #[test]
    fn tensor_splitting_matches_scalar() {
        let bs = BitSplit::new(4, 2);
        let w = Tensor::from_vec(vec![-8.0, -5.0, -1.0, 0.0, 3.0, 7.0], &[6]);
        for s in 0..bs.num_splits() {
            let t = bs.split_tensor(&w, s);
            for (i, &v) in w.data().iter().enumerate() {
                assert_eq!(t.data()[i], bs.split_value(v as i32, s) as f32);
            }
        }
        let all = bs.split_all(&w);
        assert_eq!(all.len(), 2);
    }

    #[test]
    #[should_panic(expected = "outside signed")]
    fn out_of_range_weight_panics() {
        BitSplit::new(3, 1).split_value(4, 0);
    }

    #[test]
    fn binary_weights_use_the_sign_codebook() {
        // wb == 1 is the BWMA ±1 codebook, not 1-bit two's complement.
        let bs = BitSplit::new(1, 1);
        assert_eq!(bs.num_splits(), 1);
        assert_eq!(bs.weight_range(), (-1, 1));
        assert_eq!(bs.slice_range(0), (-1, 1));
        assert_eq!(bs.shift_weight(0), 1.0);
        for w in [-1, 0, 1] {
            assert_eq!(bs.split_value(w, 0), w);
            assert_eq!(bs.reassemble(&[w]), w);
        }
    }

    #[test]
    #[should_panic(expected = "outside signed")]
    fn binary_weight_out_of_range_panics() {
        BitSplit::new(1, 1).split_value(2, 0);
    }

    #[test]
    fn weight_range_matches_two_complement_above_one_bit() {
        for wb in 2..=8u32 {
            let bs = BitSplit::new(wb, 1);
            assert_eq!(
                bs.weight_range(),
                (-(1 << (wb - 1)), (1 << (wb - 1)) - 1),
                "wb={wb}"
            );
        }
    }

    /// Property test (CqRng): the single-split tensor fast path is
    /// bit-for-bit the generic per-element `split_value` mapping, for every
    /// degenerate configuration `wb == cb` including binary.
    #[test]
    fn single_split_fast_path_matches_generic_path() {
        let mut rng = cq_tensor::CqRng::new(0xB175);
        for wb in 1..=8u32 {
            let bs = BitSplit::new(wb, wb);
            assert_eq!(bs.num_splits(), 1);
            let (lo, hi) = bs.weight_range();
            let span = (hi - lo + 1) as usize;
            for trial in 0..32 {
                let n = 1 + rng.below(64);
                let w = Tensor::from_vec(
                    (0..n)
                        .map(|_| (lo + rng.below(span) as i32) as f32)
                        .collect(),
                    &[n],
                );
                let fast = bs.split_tensor(&w, 0);
                let generic: Vec<f32> = w
                    .data()
                    .iter()
                    .map(|&v| bs.split_value(v as i32, 0) as f32)
                    .collect();
                assert_eq!(
                    fast.data(),
                    &generic[..],
                    "fast path diverged (wb={wb} trial={trial})"
                );
                let all = bs.split_all(&w);
                assert_eq!(all.len(), 1);
                assert_eq!(all[0].data(), w.data(), "split_all identity");
                for &v in w.data() {
                    assert_eq!(bs.reassemble(&[v as i32]), v as i32);
                }
            }
        }
    }
}
