//! # cq-quant
//!
//! Quantization primitives for the ColumnQuant workspace:
//!
//! * [`QuantFormat`] — integer formats (signed/unsigned/binary) with their
//!   LSQ clamping ranges.
//! * [`Granularity`] / [`GroupLayout`] — layer-, array-, and column-wise
//!   scale-factor grouping (paper Fig. 1).
//! * [`LsqQuantizer`] — Learned Step Size Quantization with per-group
//!   learnable scales and straight-through-estimator gradients (paper
//!   Sec. III-A, reference \[10\]).
//! * [`BitSplit`] — two's-complement slicing of integer weights into
//!   per-cell values with a signed top slice (paper Sec. III-C), exact
//!   under shift-and-add reassembly.
//!
//! ## Example
//!
//! ```
//! use cq_quant::{GroupLayout, LsqQuantizer, QuantFormat};
//! use cq_tensor::Tensor;
//!
//! let w = Tensor::from_vec(vec![0.4, -0.9, 1.3, -0.1], &[4]);
//! let q = LsqQuantizer::with_init_from(QuantFormat::signed(3), &w, &GroupLayout::single());
//! let w_int = q.forward_int(&w, &GroupLayout::single());
//! assert!(w_int.data().iter().all(|v| (-4.0..=3.0).contains(v)));
//! ```

#![warn(missing_docs)]

mod bitsplit;
mod granularity;
mod lsq;
mod qformat;

pub use bitsplit::BitSplit;
pub use granularity::{Granularity, GroupLayout};
pub use lsq::{LsqQuantizer, SCALE_EPS};
pub use qformat::QuantFormat;
