//! Learned Step Size Quantization (LSQ, Esser et al. ICLR 2020 — the
//! paper's reference [10]), extended to **per-group scale factors** so a
//! single quantizer can operate layer-wise, array-wise, or column-wise
//! (paper Sec. III-A: "we extend LSQ to support scale factors at varying
//! granularities").
//!
//! Forward (per element, group `g`, scale `s_g`):
//! `v_int = round(clamp(v / s_g, -Qn, Qp))`, `v̂ = v_int · s_g`.
//!
//! Backward (straight-through estimator):
//! `∂L/∂v = ∂L/∂v̂ · 1[-Qn ≤ v/s ≤ Qp]`, and the scale gradient of LSQ:
//! `∂v̂/∂s = v_int − v/s` in range, `−Qn`/`Qp` when clamped, multiplied by
//! the gradient scale `g = 1/sqrt(N_g · Qp)`.

use crate::{GroupLayout, QuantFormat};
use cq_tensor::Tensor;

/// Smallest representable scale; keeps SGD from driving scales to zero or
/// negative values.
pub const SCALE_EPS: f32 = 1e-8;

/// An LSQ quantizer with one learnable scale factor per group.
///
/// The quantizer owns its scales and their gradient accumulators; layers
/// expose them to the optimizer as parameters.
#[derive(Debug, Clone)]
pub struct LsqQuantizer {
    format: QuantFormat,
    scales: Vec<f32>,
    scale_grads: Vec<f32>,
    initialized: bool,
}

impl LsqQuantizer {
    /// Creates an uninitialized quantizer with `num_groups` scales.
    ///
    /// Scales start at 1.0 but [`LsqQuantizer::is_initialized`] is `false`
    /// until [`LsqQuantizer::init_from`] (or
    /// [`LsqQuantizer::set_scales`]) is called; quantizing before
    /// initialization panics, which catches ordering bugs in two-stage QAT.
    ///
    /// # Panics
    ///
    /// Panics if `num_groups == 0`.
    pub fn new(format: QuantFormat, num_groups: usize) -> Self {
        assert!(num_groups > 0, "quantizer needs at least one group");
        Self {
            format,
            scales: vec![1.0; num_groups],
            scale_grads: vec![0.0; num_groups],
            initialized: false,
        }
    }

    /// Creates and immediately initializes a quantizer from data statistics.
    pub fn with_init_from(format: QuantFormat, v: &Tensor, layout: &GroupLayout) -> Self {
        let mut q = Self::new(format, layout.num_groups());
        q.init_from(v, layout);
        q
    }

    /// The quantization format.
    pub fn format(&self) -> QuantFormat {
        self.format
    }

    /// Number of scale-factor groups.
    pub fn num_groups(&self) -> usize {
        self.scales.len()
    }

    /// Whether scales have been initialized.
    pub fn is_initialized(&self) -> bool {
        self.initialized
    }

    /// The per-group scales.
    pub fn scales(&self) -> &[f32] {
        &self.scales
    }

    /// Mutable access to scales (for the optimizer).
    pub fn scales_mut(&mut self) -> &mut [f32] {
        &mut self.scales
    }

    /// Accumulated scale gradients.
    pub fn scale_grads(&self) -> &[f32] {
        &self.scale_grads
    }

    /// Mutable access to scale gradients (for the optimizer).
    pub fn scale_grads_mut(&mut self) -> &mut [f32] {
        &mut self.scale_grads
    }

    /// Simultaneous mutable access to scales and their gradients (for
    /// exposing both as one optimizer parameter).
    pub fn scales_and_grads_mut(&mut self) -> (&mut [f32], &mut [f32]) {
        (&mut self.scales, &mut self.scale_grads)
    }

    /// Overwrites scales directly (PTQ calibration) and marks the quantizer
    /// initialized.
    ///
    /// # Panics
    ///
    /// Panics if the length mismatches.
    pub fn set_scales(&mut self, scales: &[f32]) {
        assert_eq!(scales.len(), self.scales.len(), "scale count mismatch");
        self.scales.copy_from_slice(scales);
        self.clamp_scales();
        self.initialized = true;
    }

    /// LSQ scale initialization `s₀ = 2·mean(|v|)/sqrt(Qp)` per group.
    /// For the binary format the MSE-optimal `s₀ = mean(|v|)` is used
    /// instead (the sign quantizer's ideal magnitude).
    ///
    /// Groups that receive no data (or all zeros) fall back to a small
    /// positive scale.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is incompatible with the layout.
    pub fn init_from(&mut self, v: &Tensor, layout: &GroupLayout) {
        assert_eq!(
            layout.num_groups(),
            self.scales.len(),
            "layout group count mismatch"
        );
        layout.validate(v);
        let mut sums = vec![0.0f64; self.scales.len()];
        let mut counts = vec![0usize; self.scales.len()];
        for (i, &x) in v.data().iter().enumerate() {
            let g = layout.group_of(i);
            sums[g] += x.abs() as f64;
            counts[g] += 1;
        }
        let factor = if self.format.is_binary() {
            1.0
        } else {
            2.0 / (self.format.qp() as f64).sqrt()
        };
        for g in 0..self.scales.len() {
            let mean = if counts[g] > 0 {
                sums[g] / counts[g] as f64
            } else {
                0.0
            };
            let s = (factor * mean) as f32;
            self.scales[g] = s.max(SCALE_EPS.max(1e-4));
        }
        self.initialized = true;
    }

    /// Quantizes to the integer grid: `round(clamp(v/s, -Qn, Qp))`.
    ///
    /// Returns a tensor of integer-valued `f32`s (exact for all supported
    /// widths). For the binary format the result is `±1`.
    ///
    /// # Panics
    ///
    /// Panics if the quantizer is uninitialized or the layout mismatches.
    pub fn forward_int(&self, v: &Tensor, layout: &GroupLayout) -> Tensor {
        let mut out = v.clone();
        self.quantize_in_place(&mut out, layout);
        out
    }

    /// Like [`LsqQuantizer::forward_int`] but writing into a reused buffer
    /// (reallocated only on shape change) — the allocation-free variant
    /// for serving loops. Bit-identical to [`LsqQuantizer::forward_int`].
    ///
    /// # Panics
    ///
    /// Panics if the quantizer is uninitialized or the layout mismatches.
    pub fn forward_int_into(&self, v: &Tensor, layout: &GroupLayout, out: &mut Tensor) {
        if out.shape() == v.shape() {
            out.data_mut().copy_from_slice(v.data());
        } else {
            *out = v.clone();
        }
        self.quantize_in_place(out, layout);
    }

    /// The single quantization body both forward variants share.
    fn quantize_in_place(&self, out: &mut Tensor, layout: &GroupLayout) {
        assert!(self.initialized, "LSQ quantizer used before initialization");
        assert_eq!(
            layout.num_groups(),
            self.scales.len(),
            "layout group count mismatch"
        );
        layout.validate(out);
        let (qn, qp) = (self.format.qn(), self.format.qp());
        let binary = self.format.is_binary();
        match layout {
            GroupLayout::Single => {
                let s = self.scales[0];
                for x in out.data_mut() {
                    *x = quantize_one(*x, s, qn, qp, binary);
                }
            }
            GroupLayout::Channelwise {
                inner,
                channels,
                map,
                ..
            } => {
                let data = out.data_mut();
                let block = inner * channels;
                for (bi, blockslice) in data.chunks_mut(block).enumerate() {
                    debug_assert!(bi < usize::MAX);
                    for (ch, chunk) in blockslice.chunks_mut(*inner).enumerate() {
                        let s = self.scales[map[ch] as usize];
                        for x in chunk {
                            *x = quantize_one(*x, s, qn, qp, binary);
                        }
                    }
                }
            }
        }
    }

    /// Multiplies integer values by their group scale: `v̂ = v_int · s_g`.
    ///
    /// # Panics
    ///
    /// Panics if the layout mismatches.
    pub fn dequantize(&self, v_int: &Tensor, layout: &GroupLayout) -> Tensor {
        assert_eq!(
            layout.num_groups(),
            self.scales.len(),
            "layout group count mismatch"
        );
        layout.validate(v_int);
        let mut out = v_int.clone();
        match layout {
            GroupLayout::Single => out.scale_in_place(self.scales[0]),
            GroupLayout::Channelwise {
                inner,
                channels,
                map,
                ..
            } => {
                let block = inner * channels;
                for blockslice in out.data_mut().chunks_mut(block) {
                    for (ch, chunk) in blockslice.chunks_mut(*inner).enumerate() {
                        let s = self.scales[map[ch] as usize];
                        for x in chunk {
                            *x *= s;
                        }
                    }
                }
            }
        }
        out
    }

    /// Divides each element by its group scale: `v / s_g`. The inverse of
    /// [`LsqQuantizer::dequantize`]; used to convert integer-domain
    /// gradients into fake-quant-domain gradients.
    ///
    /// # Panics
    ///
    /// Panics if the layout mismatches.
    pub fn divide_by_scales(&self, v: &Tensor, layout: &GroupLayout) -> Tensor {
        assert_eq!(
            layout.num_groups(),
            self.scales.len(),
            "layout group count mismatch"
        );
        layout.validate(v);
        let mut out = v.clone();
        match layout {
            // True division, not multiplication by the reciprocal: the
            // Channelwise arm divides, and the two layouts must agree
            // bit-exactly when they describe the same grouping (the repo's
            // exact-f32-agreement invariant across granularities).
            GroupLayout::Single => {
                let s = self.scales[0];
                for x in out.data_mut() {
                    *x /= s;
                }
            }
            GroupLayout::Channelwise {
                inner,
                channels,
                map,
                ..
            } => {
                let block = inner * channels;
                for blockslice in out.data_mut().chunks_mut(block) {
                    for (ch, chunk) in blockslice.chunks_mut(*inner).enumerate() {
                        let s = self.scales[map[ch] as usize];
                        for x in chunk {
                            *x /= s;
                        }
                    }
                }
            }
        }
        out
    }

    /// Fake quantization `v̂ = dequantize(forward_int(v))` in one call.
    ///
    /// # Panics
    ///
    /// Panics if the quantizer is uninitialized or the layout mismatches.
    pub fn fake_quant(&self, v: &Tensor, layout: &GroupLayout) -> Tensor {
        let vi = self.forward_int(v, layout);
        self.dequantize(&vi, layout)
    }

    /// STE backward pass. `grad_vhat` is `∂L/∂v̂`; returns `∂L/∂v` and
    /// accumulates `∂L/∂s` into the scale gradient buffer.
    ///
    /// # Panics
    ///
    /// Panics if shapes mismatch or the quantizer is uninitialized.
    pub fn backward(&mut self, v: &Tensor, grad_vhat: &Tensor, layout: &GroupLayout) -> Tensor {
        assert!(self.initialized, "LSQ backward before initialization");
        assert_eq!(v.shape(), grad_vhat.shape(), "grad shape mismatch");
        layout.validate(v);
        let (qn, qp) = (self.format.qn(), self.format.qp());
        let binary = self.format.is_binary();
        let counts = layout.counts(v.numel());
        let gscales: Vec<f32> = counts
            .iter()
            .map(|&c| {
                if c == 0 {
                    0.0
                } else {
                    1.0 / ((c as f32) * qp).sqrt()
                }
            })
            .collect();
        let mut dv = Tensor::zeros(v.shape());
        {
            let vd = v.data();
            let gd = grad_vhat.data();
            let out = dv.data_mut();
            for i in 0..vd.len() {
                let g = layout.group_of(i);
                let s = self.scales[g];
                let vs = vd[i] / s;
                let (pass, term) = lsq_terms(vs, qn, qp, binary);
                if pass {
                    out[i] = gd[i];
                }
                self.scale_grads[g] += gd[i] * term * gscales[g];
            }
        }
        dv
    }

    /// Marks the quantizer uninitialized so the next
    /// [`LsqQuantizer::init_from`] (or lazy initialization by its owner)
    /// re-fits scales from fresh statistics. Used by PTQ calibration.
    pub fn reset(&mut self) {
        self.initialized = false;
    }

    /// Marks the quantizer initialized *without* touching the scales —
    /// used after restoring trained scales from a checkpoint.
    pub fn assume_initialized(&mut self) {
        self.initialized = true;
    }

    /// Zeroes the scale-gradient accumulators.
    pub fn zero_scale_grads(&mut self) {
        self.scale_grads.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Clamps all scales to at least [`SCALE_EPS`] (call after optimizer
    /// steps).
    pub fn clamp_scales(&mut self) {
        for s in &mut self.scales {
            if !s.is_finite() || *s < SCALE_EPS {
                *s = SCALE_EPS;
            }
        }
    }
}

#[inline]
fn quantize_one(v: f32, s: f32, qn: f32, qp: f32, binary: bool) -> f32 {
    let vs = v / s;
    if binary {
        if vs >= 0.0 {
            1.0
        } else {
            -1.0
        }
    } else {
        vs.clamp(-qn, qp).round()
    }
}

/// Returns `(in_range, scale_grad_term)` for one normalized value.
#[inline]
fn lsq_terms(vs: f32, qn: f32, qp: f32, binary: bool) -> (bool, f32) {
    if binary {
        if vs < -1.0 {
            (false, -1.0)
        } else if vs > 1.0 {
            (false, 1.0)
        } else {
            let q = if vs >= 0.0 { 1.0 } else { -1.0 };
            (true, q - vs)
        }
    } else if vs <= -qn {
        (false, -qn)
    } else if vs >= qp {
        (false, qp)
    } else {
        (true, vs.round() - vs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_layout2() -> GroupLayout {
        // 2 channels of 3 elements each, one group per channel.
        GroupLayout::channelwise(3, vec![0, 1])
    }

    #[test]
    fn forward_rounds_and_clamps() {
        let mut q = LsqQuantizer::new(QuantFormat::signed(3), 1);
        q.set_scales(&[0.5]);
        let v = Tensor::from_vec(vec![0.0, 0.24, 0.26, -0.3, 10.0, -10.0], &[6]);
        let vi = q.forward_int(&v, &GroupLayout::single());
        // v/s = 0, .48, .52, -.6, 20, -20 -> 0, 0, 1, -1, 3 (clamp), -4 (clamp)
        assert_eq!(vi.data(), &[0.0, 0.0, 1.0, -1.0, 3.0, -4.0]);
        let vh = q.dequantize(&vi, &GroupLayout::single());
        assert_eq!(vh.data(), &[0.0, 0.0, 0.5, -0.5, 1.5, -2.0]);
    }

    #[test]
    fn per_group_scales_apply_independently() {
        let mut q = LsqQuantizer::new(QuantFormat::signed(4), 2);
        q.set_scales(&[1.0, 0.1]);
        let v = Tensor::from_vec(vec![1.2, 2.6, -0.4, 0.12, 0.26, -0.04], &[2, 3]);
        let layout = simple_layout2();
        let vi = q.forward_int(&v, &layout);
        assert_eq!(vi.data(), &[1.0, 3.0, 0.0, 1.0, 3.0, 0.0]);
        let vh = q.dequantize(&vi, &layout);
        assert!(vh.allclose(
            &Tensor::from_vec(vec![1.0, 3.0, 0.0, 0.1, 0.3, 0.0], &[2, 3]),
            1e-6
        ));
    }

    #[test]
    fn unsigned_format_clamps_negatives_to_zero() {
        let mut q = LsqQuantizer::new(QuantFormat::unsigned(3), 1);
        q.set_scales(&[1.0]);
        let v = Tensor::from_vec(vec![-2.0, 0.4, 6.6, 9.0], &[4]);
        let vi = q.forward_int(&v, &GroupLayout::single());
        assert_eq!(vi.data(), &[0.0, 0.0, 7.0, 7.0]);
    }

    #[test]
    fn binary_format_is_sign() {
        let mut q = LsqQuantizer::new(QuantFormat::signed(1), 1);
        q.set_scales(&[2.0]);
        let v = Tensor::from_vec(vec![-5.0, -0.1, 0.0, 0.1, 5.0], &[5]);
        let vi = q.forward_int(&v, &GroupLayout::single());
        assert_eq!(vi.data(), &[-1.0, -1.0, 1.0, 1.0, 1.0]);
        let vh = q.dequantize(&vi, &GroupLayout::single());
        assert_eq!(vh.data(), &[-2.0, -2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn init_from_uses_lsq_formula() {
        let v = Tensor::from_vec(vec![1.0, -1.0, 1.0, -1.0], &[4]);
        let q = LsqQuantizer::with_init_from(QuantFormat::signed(3), &v, &GroupLayout::single());
        // 2 * mean|v| / sqrt(Qp) = 2 / sqrt(3)
        assert!((q.scales()[0] - 2.0 / 3.0f32.sqrt()).abs() < 1e-6);
        assert!(q.is_initialized());
    }

    #[test]
    #[should_panic(expected = "before initialization")]
    fn forward_before_init_panics() {
        let q = LsqQuantizer::new(QuantFormat::signed(3), 1);
        let _ = q.forward_int(&Tensor::zeros(&[2]), &GroupLayout::single());
    }

    /// The heart of LSQ: the STE gradients must match the published
    /// formulas exactly. (Finite differences cannot be used here — the
    /// fake-quantized function is piecewise constant in `v`, which is
    /// precisely why LSQ defines a straight-through estimator.)
    #[test]
    fn gradients_match_lsq_formulas() {
        let mut q = LsqQuantizer::new(QuantFormat::signed(3), 2);
        q.set_scales(&[0.7, 0.3]);
        let layout = simple_layout2();
        // Covers in-range and both clamped regions in both groups.
        let v = Tensor::from_vec(vec![0.5, -1.4, 100.0, 0.2, -0.8, -100.0], &[2, 3]);
        let coef = Tensor::from_vec(vec![0.3, -0.2, 0.5, 0.7, 0.1, -0.4], &[2, 3]);
        let dv = q.backward(&v, &coef, &layout);

        let (qn, qp) = (q.format().qn(), q.format().qp());
        let counts = layout.counts(6);
        let mut want_ds = [0.0f32; 2];
        for i in 0..6 {
            let g = layout.group_of(i);
            let s = q.scales()[g];
            let vs = v.data()[i] / s;
            let (mask, term) = if vs <= -qn {
                (0.0, -qn)
            } else if vs >= qp {
                (0.0, qp)
            } else {
                (1.0, vs.round() - vs)
            };
            assert_eq!(dv.data()[i], coef.data()[i] * mask, "dv[{i}]");
            let gscale = 1.0 / ((counts[g] as f32) * qp).sqrt();
            want_ds[g] += coef.data()[i] * term * gscale;
        }
        for (g, want) in want_ds.iter().enumerate() {
            assert!(
                (q.scale_grads()[g] - want).abs() < 1e-6,
                "ds[{g}]: got {} want {}",
                q.scale_grads()[g],
                want
            );
        }
    }

    /// Minimizing quantization MSE by gradient descent on the scale must
    /// reduce the error — an end-to-end sanity check that the scale
    /// gradient points the right way.
    #[test]
    fn scale_gradient_descends_quantization_error() {
        let mut rngish = 1u64;
        let vals: Vec<f32> = (0..256)
            .map(|_| {
                rngish = rngish.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((rngish >> 33) as f32 / (1u64 << 31) as f32) * 4.0 - 2.0
            })
            .collect();
        let v = Tensor::from_vec(vals, &[256]);
        let mut q = LsqQuantizer::new(QuantFormat::signed(4), 1);
        // Deliberately bad initial scale.
        q.set_scales(&[3.0]);
        let mse = |qq: &LsqQuantizer| {
            let vh = qq.fake_quant(&v, &GroupLayout::single());
            vh.sub(&v).sq_sum() / 256.0
        };
        let initial = mse(&q);
        for _ in 0..200 {
            let vh = q.fake_quant(&v, &GroupLayout::single());
            // dL/dv̂ for L = mean((v̂ - v)²)
            let gvh = vh.sub(&v).scale(2.0 / 256.0);
            q.zero_scale_grads();
            let _ = q.backward(&v, &gvh, &GroupLayout::single());
            let g = q.scale_grads()[0];
            q.scales_mut()[0] -= 0.5 * g;
            q.clamp_scales();
        }
        let fin = mse(&q);
        assert!(
            fin < initial * 0.5,
            "scale learning failed: {initial} -> {fin} (scale {})",
            q.scales()[0]
        );
    }

    /// The buffer-reusing forward must match the allocating one exactly,
    /// including on a dirty reused buffer and across shape changes.
    #[test]
    fn forward_int_into_matches_allocating_path() {
        let mut q = LsqQuantizer::new(QuantFormat::signed(3), 1);
        q.set_scales(&[0.5]);
        let a = Tensor::from_vec(vec![0.0, 0.24, 0.26, -0.3, 10.0, -10.0], &[6]);
        let b = Tensor::from_vec(vec![1.0, -1.0, 0.1, 0.9], &[4]);
        let mut out = Tensor::zeros(&[2]); // wrong shape on purpose
        q.forward_int_into(&a, &GroupLayout::single(), &mut out);
        assert_eq!(out, q.forward_int(&a, &GroupLayout::single()));
        q.forward_int_into(&b, &GroupLayout::single(), &mut out); // shrink
        assert_eq!(out, q.forward_int(&b, &GroupLayout::single()));
        q.forward_int_into(&b, &GroupLayout::single(), &mut out); // reuse
        assert_eq!(out, q.forward_int(&b, &GroupLayout::single()));
    }

    /// A one-group channelwise layout and the `Single` layout describe the
    /// same grouping, so every scale-resolving op must agree **bit-exactly**
    /// between the two arms. This is a regression test for
    /// `divide_by_scales` multiplying by the reciprocal in the `Single` arm
    /// (double rounding) while truly dividing in the `Channelwise` arm.
    #[test]
    fn single_and_one_group_channelwise_agree_bitwise() {
        let n = 257usize;
        let mut state = 0x9E3779B97F4A7C15u64;
        let vals: Vec<f32> = (0..n)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f32 / (1u64 << 31) as f32) * 8.0 - 4.0
            })
            .collect();
        let v = Tensor::from_vec(vals, &[n]);
        let cw = GroupLayout::channelwise(n, vec![0]); // 1 channel == 1 group
        for &scale in &[3.0f32, 0.37, 7e-3, 49.0] {
            let mut q = LsqQuantizer::new(QuantFormat::signed(4), 1);
            q.set_scales(&[scale]);
            let div_single = q.divide_by_scales(&v, &GroupLayout::single());
            let div_cw = q.divide_by_scales(&v, &cw);
            assert_eq!(div_single, div_cw, "divide_by_scales at scale {scale}");
            let deq_single = q.dequantize(&v, &GroupLayout::single());
            let deq_cw = q.dequantize(&v, &cw);
            assert_eq!(deq_single, deq_cw, "dequantize at scale {scale}");
            let int_single = q.forward_int(&v, &GroupLayout::single());
            let int_cw = q.forward_int(&v, &cw);
            assert_eq!(int_single, int_cw, "forward_int at scale {scale}");
        }
    }

    #[test]
    fn backward_masks_out_of_range() {
        let mut q = LsqQuantizer::new(QuantFormat::signed(3), 1);
        q.set_scales(&[1.0]);
        let v = Tensor::from_vec(vec![0.2, 5.0, -7.0], &[3]);
        let g = Tensor::ones(&[3]);
        let dv = q.backward(&v, &g, &GroupLayout::single());
        assert_eq!(dv.data(), &[1.0, 0.0, 0.0]);
    }

    #[test]
    fn clamp_scales_repairs_bad_values() {
        let mut q = LsqQuantizer::new(QuantFormat::signed(3), 3);
        q.set_scales(&[1.0, 1.0, 1.0]);
        q.scales_mut()[0] = -0.5;
        q.scales_mut()[1] = f32::NAN;
        q.clamp_scales();
        assert_eq!(q.scales()[0], SCALE_EPS);
        assert_eq!(q.scales()[1], SCALE_EPS);
        assert_eq!(q.scales()[2], 1.0);
    }
}
