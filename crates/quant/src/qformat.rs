//! Integer quantization formats: bit width, signedness, and the derived
//! clamping range `[-Qn, Qp]`.

/// An integer quantization target.
///
/// * signed `b`-bit: range `[-2^(b-1), 2^(b-1) - 1]`
/// * unsigned `b`-bit: range `[0, 2^b - 1]`
/// * signed 1-bit is the special **binary** format `{-1, +1}` used for the
///   near-ADC-less partial sums of the paper's CIFAR-10 setting (Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QuantFormat {
    bits: u32,
    signed: bool,
}

impl QuantFormat {
    /// Signed format with the given bit width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16 (partial sums and weights in
    /// CIM never exceed this; wider would break exact `f32` arithmetic).
    pub fn signed(bits: u32) -> Self {
        assert!((1..=16).contains(&bits), "unsupported signed width {bits}");
        Self { bits, signed: true }
    }

    /// Unsigned format with the given bit width.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 16.
    pub fn unsigned(bits: u32) -> Self {
        assert!(
            (1..=16).contains(&bits),
            "unsupported unsigned width {bits}"
        );
        Self {
            bits,
            signed: false,
        }
    }

    /// Bit width.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Whether the format is signed.
    pub fn is_signed(&self) -> bool {
        self.signed
    }

    /// Whether this is the binary `{-1, +1}` format (signed, 1 bit).
    pub fn is_binary(&self) -> bool {
        self.signed && self.bits == 1
    }

    /// Magnitude of the most negative level (`Qn` in LSQ notation).
    pub fn qn(&self) -> f32 {
        if !self.signed {
            0.0
        } else if self.is_binary() {
            1.0
        } else {
            (1u32 << (self.bits - 1)) as f32
        }
    }

    /// Most positive level (`Qp` in LSQ notation).
    pub fn qp(&self) -> f32 {
        if !self.signed {
            ((1u64 << self.bits) - 1) as f32
        } else if self.is_binary() {
            1.0
        } else {
            ((1u32 << (self.bits - 1)) - 1) as f32
        }
    }

    /// Number of representable levels.
    pub fn levels(&self) -> usize {
        if self.is_binary() {
            2
        } else {
            (self.qp() + self.qn()) as usize + 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signed_ranges() {
        let f = QuantFormat::signed(3);
        assert_eq!(f.qn(), 4.0);
        assert_eq!(f.qp(), 3.0);
        assert_eq!(f.levels(), 8);
        let f = QuantFormat::signed(8);
        assert_eq!(f.qn(), 128.0);
        assert_eq!(f.qp(), 127.0);
        assert_eq!(f.levels(), 256);
    }

    #[test]
    fn unsigned_ranges() {
        let f = QuantFormat::unsigned(4);
        assert_eq!(f.qn(), 0.0);
        assert_eq!(f.qp(), 15.0);
        assert_eq!(f.levels(), 16);
        assert!(!f.is_binary());
    }

    #[test]
    fn binary_format() {
        let f = QuantFormat::signed(1);
        assert!(f.is_binary());
        assert_eq!(f.qn(), 1.0);
        assert_eq!(f.qp(), 1.0);
        assert_eq!(f.levels(), 2);
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn zero_bits_panics() {
        QuantFormat::signed(0);
    }
}
