//! Property-based tests for quantization primitives: range invariants,
//! grid membership, bit-split exactness, and idempotence.

use cq_quant::{BitSplit, GroupLayout, LsqQuantizer, QuantFormat};
use cq_tensor::Tensor;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Quantized values always land on the integer grid within [-Qn, Qp],
    /// and in-range values are off by at most s/2 after dequantization.
    #[test]
    fn lsq_range_and_error_bound(
        bits in 2u32..=8,
        signed in proptest::bool::ANY,
        scale in 0.05f32..2.0,
        vals in proptest::collection::vec(-10.0f32..10.0, 1..64),
    ) {
        let fmt = if signed { QuantFormat::signed(bits) } else { QuantFormat::unsigned(bits) };
        let mut q = LsqQuantizer::new(fmt, 1);
        q.set_scales(&[scale]);
        let v = Tensor::from_vec(vals.clone(), &[vals.len()]);
        let vi = q.forward_int(&v, &GroupLayout::single());
        let vh = q.dequantize(&vi, &GroupLayout::single());
        for (i, &x) in vi.data().iter().enumerate() {
            prop_assert_eq!(x, x.round(), "off grid at {}", i);
            prop_assert!(x >= -fmt.qn() && x <= fmt.qp(), "out of range at {}", i);
            let orig = vals[i];
            if orig / scale > -fmt.qn() && orig / scale < fmt.qp() {
                prop_assert!(
                    (vh.data()[i] - orig).abs() <= scale / 2.0 + 1e-5,
                    "error bound violated: {} -> {} (s = {})", orig, vh.data()[i], scale
                );
            }
        }
    }

    /// Fake quantization is idempotent: Q(Q(v)) == Q(v).
    #[test]
    fn lsq_idempotent(
        bits in 2u32..=6,
        scale in 0.1f32..1.5,
        vals in proptest::collection::vec(-5.0f32..5.0, 1..32),
    ) {
        let mut q = LsqQuantizer::new(QuantFormat::signed(bits), 1);
        q.set_scales(&[scale]);
        let n = vals.len();
        let v = Tensor::from_vec(vals, &[n]);
        let once = q.fake_quant(&v, &GroupLayout::single());
        let twice = q.fake_quant(&once, &GroupLayout::single());
        prop_assert!(once.allclose(&twice, 1e-5));
    }

    /// Bit-split reassembly is exact for random weights and configs.
    #[test]
    fn bitsplit_roundtrip(wb in 2u32..=10, cb_off in 0u32..4, w_raw in any::<i32>()) {
        let cb = (cb_off % wb) + 1;
        let bs = BitSplit::new(wb, cb);
        let half = 1i64 << (wb - 1);
        let w = ((w_raw as i64).rem_euclid(2 * half) - half) as i32;
        let slices: Vec<i32> = (0..bs.num_splits()).map(|s| bs.split_value(w, s)).collect();
        prop_assert_eq!(bs.reassemble(&slices), w);
        // Every slice respects its declared range.
        for (s, &v) in slices.iter().enumerate() {
            let (lo, hi) = bs.slice_range(s);
            prop_assert!(v >= lo && v <= hi);
        }
    }

    /// Channelwise group scales act exactly like independent per-group
    /// quantizers.
    #[test]
    fn groupwise_equals_independent(
        s0 in 0.1f32..2.0,
        s1 in 0.1f32..2.0,
        vals in proptest::collection::vec(-4.0f32..4.0, 8..=8),
    ) {
        let fmt = QuantFormat::signed(4);
        let layout = GroupLayout::channelwise(4, vec![0, 1]);
        let mut q = LsqQuantizer::new(fmt, 2);
        q.set_scales(&[s0, s1]);
        let v = Tensor::from_vec(vals.clone(), &[2, 4]);
        let got = q.fake_quant(&v, &layout);

        for (g, s) in [(0usize, s0), (1usize, s1)] {
            let mut qg = LsqQuantizer::new(fmt, 1);
            qg.set_scales(&[s]);
            let part = Tensor::from_vec(vals[g * 4..(g + 1) * 4].to_vec(), &[4]);
            let want = qg.fake_quant(&part, &GroupLayout::single());
            for i in 0..4 {
                prop_assert_eq!(got.data()[g * 4 + i], want.data()[i]);
            }
        }
    }
}
