//! # cq-train
//!
//! The QAT training harness: epoch loops with wall-clock accounting
//! ([`train`], [`train_epochs`], [`evaluate`]) and the scheme-driven
//! schedules of the paper's comparison ([`train_with_scheme`]): one-stage
//! QAT, two-stage QAT, and PTQ.
//!
//! ## Example
//!
//! ```no_run
//! use cq_cim::CimConfig;
//! use cq_core::{build_cim_resnet, QuantScheme};
//! use cq_data::{generate, SyntheticSpec};
//! use cq_nn::ResNetSpec;
//! use cq_train::{train_with_scheme, TrainConfig};
//!
//! let (train_ds, test_ds) = generate(&SyntheticSpec::tiny(0));
//! let scheme = QuantScheme::ours();
//! let mut net = build_cim_resnet(ResNetSpec::resnet8(4, 8), &CimConfig::tiny(), &scheme, 1);
//! let result = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &TrainConfig::quick(5, 2));
//! println!("top-1 = {:.2}%", 100.0 * result.best_test_acc);
//! ```

#![warn(missing_docs)]

mod qat;
mod trainer;

pub use qat::{train_with_scheme, TWO_STAGE_SPLIT};
pub use trainer::{evaluate, train, train_epochs, EpochRecord, TrainConfig, TrainResult};
