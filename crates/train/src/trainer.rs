//! The training loop: SGD epochs with augmentation, per-epoch evaluation,
//! and wall-clock accounting (Fig. 9 measures training cost in time).

use cq_data::{eval_batches, shuffled_batches, Augment, Dataset};
use cq_nn::{softmax_cross_entropy, Layer, LrSchedule, Mode, Sgd};
use cq_tensor::CqRng;
use std::time::Instant;

/// Hyper-parameters for one training run.
#[derive(Debug, Clone)]
pub struct TrainConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub lr: LrSchedule,
    /// SGD momentum.
    pub momentum: f32,
    /// Weight decay on conv/linear weights.
    pub weight_decay: f32,
    /// Train-time augmentation.
    pub augment: Augment,
    /// Seed for shuffling/augmentation.
    pub seed: u64,
}

impl TrainConfig {
    /// A sensible default for the small synthetic tasks.
    pub fn quick(epochs: usize, seed: u64) -> Self {
        Self {
            epochs,
            batch_size: 32,
            lr: LrSchedule::Cosine {
                base: 0.05,
                total_epochs: epochs,
            },
            momentum: 0.9,
            weight_decay: 5e-4,
            augment: Augment::standard(),
            seed,
        }
    }
}

/// Metrics of one epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// 0-based epoch index (monotone across QAT stages).
    pub epoch: usize,
    /// Mean training loss.
    pub train_loss: f32,
    /// Training top-1 accuracy.
    pub train_acc: f32,
    /// Test top-1 accuracy.
    pub test_acc: f32,
    /// Wall-clock seconds since the start of the (possibly multi-stage)
    /// run, measured at the end of this epoch.
    pub cumulative_seconds: f64,
}

/// Outcome of a training run.
#[derive(Debug, Clone, Default)]
pub struct TrainResult {
    /// Per-epoch records (across all stages).
    pub history: Vec<EpochRecord>,
    /// Best test accuracy seen.
    pub best_test_acc: f32,
    /// Total wall-clock seconds.
    pub total_seconds: f64,
    /// History indices at which a new QAT stage began (empty for
    /// single-stage runs).
    pub stage_boundaries: Vec<usize>,
}

impl TrainResult {
    /// Final test accuracy (last epoch), or 0 if empty.
    pub fn final_test_acc(&self) -> f32 {
        self.history.last().map(|r| r.test_acc).unwrap_or(0.0)
    }

    /// Wall-clock seconds at which `target` test accuracy was first
    /// reached, if ever (the time-to-accuracy metric of Fig. 9).
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.history
            .iter()
            .find(|r| r.test_acc >= target)
            .map(|r| r.cumulative_seconds)
    }
}

/// Top-1 accuracy of `model` on a dataset.
pub fn evaluate(model: &mut dyn Layer, ds: &Dataset, batch_size: usize) -> f32 {
    let mut correct = 0usize;
    for batch in eval_batches(ds, batch_size) {
        let logits = model.forward(&batch.images, Mode::Eval);
        for (pred, &label) in logits.argmax_rows().iter().zip(&batch.labels) {
            if *pred == label {
                correct += 1;
            }
        }
    }
    correct as f32 / ds.len() as f32
}

/// Trains `model` for `cfg.epochs`, appending records to `result` with
/// epochs and wall clock continuing from where it left off (so multi-stage
/// schedules share one timeline). `opt` carries momentum across calls
/// within a stage.
pub fn train_epochs(
    model: &mut dyn Layer,
    train_ds: &Dataset,
    test_ds: &Dataset,
    cfg: &TrainConfig,
    opt: &mut Sgd,
    result: &mut TrainResult,
) {
    let mut rng = CqRng::new(cfg.seed);
    let start = Instant::now();
    let base_seconds = result.total_seconds;
    let base_epoch = result.history.len();
    for e in 0..cfg.epochs {
        opt.lr = cfg.lr.lr_at(e);
        let mut loss_sum = 0.0f64;
        let mut correct = 0usize;
        let mut seen = 0usize;
        for batch in shuffled_batches(train_ds, cfg.batch_size, &mut rng, cfg.augment) {
            let logits = model.forward(&batch.images, Mode::Train);
            let out = softmax_cross_entropy(&logits, &batch.labels);
            model.zero_grads();
            let _ = model.backward(&out.grad);
            opt.step(model);
            loss_sum += out.loss as f64 * batch.labels.len() as f64;
            correct += out.correct;
            seen += batch.labels.len();
        }
        let test_acc = evaluate(model, test_ds, cfg.batch_size);
        let rec = EpochRecord {
            epoch: base_epoch + e,
            train_loss: (loss_sum / seen as f64) as f32,
            train_acc: correct as f32 / seen as f32,
            test_acc,
            cumulative_seconds: base_seconds + start.elapsed().as_secs_f64(),
        };
        result.best_test_acc = result.best_test_acc.max(test_acc);
        result.history.push(rec);
    }
    result.total_seconds = base_seconds + start.elapsed().as_secs_f64();
}

/// Convenience wrapper: fresh optimizer, single stage.
pub fn train(
    model: &mut dyn Layer,
    train_ds: &Dataset,
    test_ds: &Dataset,
    cfg: &TrainConfig,
) -> TrainResult {
    let mut opt = Sgd::new(cfg.lr.lr_at(0), cfg.momentum, cfg.weight_decay);
    let mut result = TrainResult::default();
    train_epochs(model, train_ds, test_ds, cfg, &mut opt, &mut result);
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_data::{generate, SyntheticSpec};
    use cq_nn::{FpConvFactory, ResNet, ResNetSpec};

    #[test]
    fn training_improves_over_chance() {
        let spec = SyntheticSpec {
            train_per_class: 48,
            ..SyntheticSpec::tiny(1)
        };
        let (train_ds, test_ds) = generate(&spec);
        let mut factory = FpConvFactory::new(2);
        let mut net = ResNet::build(ResNetSpec::resnet8(4, 6), &mut factory, 3);
        let cfg = TrainConfig::quick(8, 4);
        let result = train(&mut net, &train_ds, &test_ds, &cfg);
        assert_eq!(result.history.len(), 8);
        assert!(
            result.best_test_acc > 0.4,
            "tiny FP net should beat 0.25 chance comfortably, got {}",
            result.best_test_acc
        );
        // Loss decreased.
        assert!(result.history.last().unwrap().train_loss < result.history[0].train_loss);
        // Timeline is monotone.
        for w in result.history.windows(2) {
            assert!(w[1].cumulative_seconds >= w[0].cumulative_seconds);
            assert_eq!(w[1].epoch, w[0].epoch + 1);
        }
    }

    #[test]
    fn time_to_accuracy_lookup() {
        let mut r = TrainResult::default();
        for (i, acc) in [0.3f32, 0.5, 0.7].iter().enumerate() {
            r.history.push(EpochRecord {
                epoch: i,
                train_loss: 0.0,
                train_acc: 0.0,
                test_acc: *acc,
                cumulative_seconds: (i + 1) as f64,
            });
        }
        assert_eq!(r.time_to_accuracy(0.5), Some(2.0));
        assert_eq!(r.time_to_accuracy(0.9), None);
        assert_eq!(r.final_test_acc(), 0.7);
    }

    #[test]
    fn multi_stage_timeline_continues() {
        let (train_ds, test_ds) = generate(&SyntheticSpec::tiny(5));
        let mut factory = FpConvFactory::new(6);
        let mut net = ResNet::build(ResNetSpec::resnet8(4, 4), &mut factory, 7);
        let cfg = TrainConfig::quick(2, 8);
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let mut result = TrainResult::default();
        train_epochs(&mut net, &train_ds, &test_ds, &cfg, &mut opt, &mut result);
        result.stage_boundaries.push(result.history.len());
        train_epochs(&mut net, &train_ds, &test_ds, &cfg, &mut opt, &mut result);
        assert_eq!(result.history.len(), 4);
        assert_eq!(result.history[3].epoch, 3);
        assert!(result.history[3].cumulative_seconds > result.history[1].cumulative_seconds);
        assert_eq!(result.stage_boundaries, vec![2]);
    }
}
