//! Scheme-driven training: one-stage QAT (ours), two-stage QAT
//! (Saxena [8], [9]), and PTQ (Kim [5], Bai [6], [7]) — the "train from
//! scratch" column of Table I and the schedules compared in Fig. 9.

use crate::{evaluate, train_epochs, EpochRecord, TrainConfig, TrainResult};
use cq_core::{ptq_calibrate, set_psum_quant_enabled, set_quant_enabled, QuantScheme, TrainMethod};
use cq_data::{eval_batches, Dataset};
use cq_nn::{Layer, LrSchedule, Sgd};
use std::time::Instant;

/// Fraction of total epochs spent in stage 1 of two-stage QAT (weights
/// only, full-precision partial sums), following the related works'
/// practice of converging weights before exposing them to ADC error.
pub const TWO_STAGE_SPLIT: f64 = 0.5;

/// Trains `model` according to `scheme.method`:
///
/// * [`TrainMethod::OneStageQat`] — all quantizers on from epoch 0.
/// * [`TrainMethod::TwoStageQat`] — stage 1 with partial-sum quantization
///   off, stage 2 with it on (fresh scale init and optimizer state).
/// * [`TrainMethod::Ptq`] — full-precision training, then scale
///   calibration on a few batches, then a single evaluation record.
///
/// Returns the merged timeline across stages.
pub fn train_with_scheme(
    model: &mut dyn Layer,
    scheme: &QuantScheme,
    train_ds: &Dataset,
    test_ds: &Dataset,
    cfg: &TrainConfig,
) -> TrainResult {
    match scheme.method {
        TrainMethod::OneStageQat => {
            set_quant_enabled(model, true);
            set_psum_quant_enabled(model, true);
            let mut opt = Sgd::new(cfg.lr.lr_at(0), cfg.momentum, cfg.weight_decay);
            let mut result = TrainResult::default();
            train_epochs(model, train_ds, test_ds, cfg, &mut opt, &mut result);
            result
        }
        TrainMethod::TwoStageQat => {
            // Degenerate budgets degrade gracefully: 0 epochs trains
            // nothing, 1 epoch runs a single stage-1 epoch and no stage 2 —
            // the total history never exceeds `cfg.epochs` entries.
            let stage1 = ((cfg.epochs as f64 * TWO_STAGE_SPLIT).round() as usize)
                .clamp(cfg.epochs.min(1), cfg.epochs.saturating_sub(1).max(1))
                .min(cfg.epochs);
            let stage2 = cfg.epochs - stage1;
            set_quant_enabled(model, true);
            set_psum_quant_enabled(model, false);
            let mut result = TrainResult::default();
            if stage1 > 0 {
                let mut opt = Sgd::new(cfg.lr.lr_at(0), cfg.momentum, cfg.weight_decay);
                let cfg1 = TrainConfig {
                    epochs: stage1,
                    ..cfg.clone()
                };
                train_epochs(model, train_ds, test_ds, &cfg1, &mut opt, &mut result);
            }
            if stage2 > 0 {
                // Stage 2: enable partial-sum quantization; scales lazily
                // re-initialize on the first batch; momentum restarts.
                set_psum_quant_enabled(model, true);
                result.stage_boundaries.push(result.history.len());
                let mut opt2 = Sgd::new(cfg.lr.lr_at(0), cfg.momentum, cfg.weight_decay);
                let cfg2 = TrainConfig {
                    epochs: stage2,
                    lr: stage2_lr(&cfg.lr, stage2),
                    seed: cfg.seed.wrapping_add(1),
                    ..cfg.clone()
                };
                train_epochs(model, train_ds, test_ds, &cfg2, &mut opt2, &mut result);
            }
            result
        }
        TrainMethod::Ptq => {
            // Full-precision pre-training.
            set_quant_enabled(model, false);
            let mut opt = Sgd::new(cfg.lr.lr_at(0), cfg.momentum, cfg.weight_decay);
            let mut result = TrainResult::default();
            train_epochs(model, train_ds, test_ds, cfg, &mut opt, &mut result);
            // Calibration (no training) + final quantized evaluation.
            let t0 = Instant::now();
            let calib: Vec<_> = eval_batches(train_ds, cfg.batch_size)
                .into_iter()
                .take(2)
                .map(|b| b.images)
                .collect();
            ptq_calibrate(model, &calib);
            let test_acc = evaluate(model, test_ds, cfg.batch_size);
            result.total_seconds += t0.elapsed().as_secs_f64();
            result.stage_boundaries.push(result.history.len());
            result.history.push(EpochRecord {
                epoch: result.history.len(),
                train_loss: f32::NAN,
                train_acc: f32::NAN,
                test_acc,
                cumulative_seconds: result.total_seconds,
            });
            result.best_test_acc = test_acc; // quantized accuracy is what counts
            result
        }
    }
}

/// Stage-2 learning-rate schedule: restart the base schedule compressed to
/// the remaining epochs (common two-stage practice).
fn stage2_lr(lr: &LrSchedule, epochs: usize) -> LrSchedule {
    match lr {
        LrSchedule::Constant(v) => LrSchedule::Constant(*v),
        LrSchedule::Cosine { base, .. } => LrSchedule::Cosine {
            base: base * 0.5,
            total_epochs: epochs,
        },
        // The milestone is clamped to ≥ 1: with `epochs <= 1` a naive
        // `epochs / 2` milestone is 0, and `lr_at` counts `epoch >= m`, so
        // stage 2 would start already decayed by `gamma`.
        LrSchedule::Step { base, gamma, .. } => LrSchedule::Step {
            base: base * 0.5,
            milestones: vec![(epochs / 2).max(1)],
            gamma: *gamma,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_cim::CimConfig;
    use cq_core::{build_cim_resnet, for_each_cim_conv};
    use cq_data::{generate, SyntheticSpec};
    use cq_nn::ResNetSpec;

    fn setup(scheme: &QuantScheme, seed: u64) -> (cq_nn::ResNet, Dataset, Dataset) {
        let (train_ds, test_ds) = generate(&SyntheticSpec::tiny(seed));
        let net = build_cim_resnet(ResNetSpec::resnet8(4, 4), &CimConfig::tiny(), scheme, seed);
        (net, train_ds, test_ds)
    }

    #[test]
    fn one_stage_trains_quantized_from_epoch_zero() {
        let scheme = QuantScheme::ours();
        let (mut net, train_ds, test_ds) = setup(&scheme, 1);
        let cfg = TrainConfig::quick(2, 2);
        let r = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &cfg);
        assert_eq!(r.history.len(), 2);
        assert!(r.stage_boundaries.is_empty());
        let mut all_quant = true;
        for_each_cim_conv(&mut net, |c| {
            all_quant &= c.quant_enabled() && c.psum_quant_enabled();
            all_quant &= c.psum_quantizer().is_initialized();
        });
        assert!(all_quant);
    }

    /// BWMA rides the one-stage schedule: LSQ with a 1-bit signed format
    /// is the binary STE (rounding lands on {-1, 0, +1}), the bit-split
    /// degenerates to a single ±1 split, and scale learning still runs.
    #[test]
    fn binary_weight_scheme_trains_one_stage_with_ste() {
        let scheme = QuantScheme::bwma();
        let (mut net, train_ds, test_ds) = setup(&scheme, 11);
        let cfg = TrainConfig::quick(2, 2);
        let r = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &cfg);
        assert_eq!(r.history.len(), 2);
        assert!(
            r.history.iter().all(|e| e.train_loss.is_finite()),
            "binary STE keeps the loss finite"
        );
        let (mut binary, mut single_split, mut initialized) = (true, true, true);
        for_each_cim_conv(&mut net, |c| {
            binary &= c.weight_quantizer().format().is_binary();
            single_split &= c.plan().num_splits == 1;
            initialized &= c.weight_quantizer().is_initialized();
        });
        assert!(binary, "BWMA layers quantize weights at 1 signed bit");
        assert!(single_split, "binary weights degenerate to one bit-split");
        assert!(initialized, "weight scales trained");
    }

    /// The hybrid-ADC scheme trains end-to-end with its low-order splits
    /// carried digitally (gradient = identity through those splits).
    #[test]
    fn hybrid_scheme_trains_with_digital_low_splits() {
        let scheme = QuantScheme::hybrid_adc();
        let (mut net, train_ds, test_ds) = setup(&scheme, 13);
        let cfg = TrainConfig::quick(2, 2);
        let r = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &cfg);
        assert_eq!(r.history.len(), 2);
        assert!(r.history.iter().all(|e| e.train_loss.is_finite()));
        let mut hybrid = true;
        for_each_cim_conv(&mut net, |c| {
            hybrid &= c.digital_splits() > 0 && c.digital_splits() < c.plan().num_splits;
        });
        assert!(hybrid, "every layer carries a strict subset digitally");
    }

    #[test]
    fn two_stage_enables_psq_midway() {
        let scheme = QuantScheme::saxena9();
        let (mut net, train_ds, test_ds) = setup(&scheme, 3);
        let cfg = TrainConfig::quick(4, 4);
        let r = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &cfg);
        assert_eq!(r.history.len(), 4);
        assert_eq!(r.stage_boundaries, vec![2]);
        let mut on = true;
        for_each_cim_conv(&mut net, |c| on &= c.psum_quant_enabled());
        assert!(on, "stage 2 left psum quantization on");
    }

    /// Degenerate budgets: `epochs == 0` must train nothing (it used to
    /// panic on usize underflow) and `epochs == 1` must run exactly one
    /// stage-1 epoch with no stage 2 (it used to train 2 epochs).
    #[test]
    fn two_stage_degrades_gracefully_at_tiny_budgets() {
        let scheme = QuantScheme::saxena9();
        for epochs in [0usize, 1] {
            let (mut net, train_ds, test_ds) = setup(&scheme, 7);
            let cfg = TrainConfig::quick(epochs, 4);
            let r = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &cfg);
            assert_eq!(r.history.len(), epochs, "epochs={epochs}");
            assert!(
                r.stage_boundaries.is_empty(),
                "no stage 2 at epochs={epochs}"
            );
            let mut psq = false;
            for_each_cim_conv(&mut net, |c| psq |= c.psum_quant_enabled());
            assert!(!psq, "stage 2 never ran; psum quantization must stay off");
        }
    }

    /// Stage 2 of two-stage QAT must start at its own base LR (`base·0.5`),
    /// not pre-decayed by `gamma` — regression test for the `epochs <= 1`
    /// case where the Step milestone collapsed to epoch 0.
    #[test]
    fn stage2_step_schedule_is_not_pre_decayed() {
        let base = LrSchedule::Step {
            base: 1.0,
            milestones: vec![50, 75],
            gamma: 0.1,
        };
        for epochs in [1usize, 2, 3, 10] {
            let s2 = stage2_lr(&base, epochs);
            assert_eq!(
                s2.lr_at(0),
                0.5,
                "stage-2 epoch 0 already decayed for epochs={epochs}"
            );
        }
        // The milestone still decays later epochs when there is room.
        let s2 = stage2_lr(&base, 10);
        assert!((s2.lr_at(9) - 0.05).abs() < 1e-7);
    }

    #[test]
    fn ptq_appends_calibrated_record() {
        let scheme = QuantScheme::kim5();
        let (mut net, train_ds, test_ds) = setup(&scheme, 5);
        let cfg = TrainConfig::quick(2, 6);
        let r = train_with_scheme(&mut net, &scheme, &train_ds, &test_ds, &cfg);
        // 2 FP epochs + 1 PTQ record.
        assert_eq!(r.history.len(), 3);
        assert_eq!(r.stage_boundaries, vec![2]);
        let last = r.history.last().unwrap();
        assert!(last.train_loss.is_nan(), "PTQ record has no training loss");
        assert!(last.test_acc >= 0.0 && last.test_acc <= 1.0);
        // The quantized accuracy is the figure of merit.
        assert_eq!(r.best_test_acc, last.test_acc);
    }
}
