//! Criterion micro-benchmarks for the framework's performance claims
//! (paper Sec. III-C): the kernel-intact tiling + group convolution must
//! beat (a) a sequential per-array loop and (b) a naive split-kernel
//! im2col emulation; plus throughput benchmarks of the quantizer, the
//! bit-splitter, and the crossbar MAC.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cq_cim::{CimConfig, Crossbar, TilingPlan};
use cq_core::{CimConv2d, QuantScheme};
use cq_nn::{Layer, Mode};
use cq_quant::{BitSplit, Granularity, LsqQuantizer};
use cq_tensor::{conv2d, conv2d_grouped, CqRng, Tensor};

/// Group-convolution emulation vs sequential per-array convolutions vs the
/// full CimConv2d pipeline.
fn bench_framework_paths(c: &mut Criterion) {
    let cfg = {
        let mut c = CimConfig::cifar10();
        c.array_rows = 64;
        c.array_cols = 64;
        c
    };
    let (in_ch, out_ch, hw) = (28, 16, 12);
    let plan = TilingPlan::new(&cfg, in_ch, out_ch, 3, 3);
    let mut rng = CqRng::new(1);
    let x = rng.uniform_tensor(&[4, plan.padded_in_ch, hw, hw], 0.0, 7.0).map(f32::floor);
    // One split's grouped weight and its per-array slices.
    let wg = rng
        .uniform_tensor(&[plan.num_row_tiles * out_ch, plan.ch_per_array, 3, 3], -1.0, 2.0)
        .map(f32::floor);

    let mut group = c.benchmark_group("array_conv");
    group.bench_function("group_conv_all_arrays", |b| {
        b.iter(|| conv2d_grouped(&x, &wg, 1, 1, plan.num_row_tiles))
    });
    group.bench_function("sequential_per_array", |b| {
        b.iter(|| {
            // The baseline the paper eliminates: index arrays one by one,
            // slicing inputs and weights per array.
            let mut outs = Vec::new();
            for g in 0..plan.num_row_tiles {
                let xs = slice_channels(&x, g * plan.ch_per_array, plan.ch_per_array);
                let ws = wg.slice_outer(g * out_ch, (g + 1) * out_ch);
                outs.push(conv2d(&xs, &ws, 1, 1));
            }
            outs
        })
    });
    group.finish();
}

fn slice_channels(x: &Tensor, start: usize, len: usize) -> Tensor {
    let (b, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let mut out = Tensor::zeros(&[b, len, h, w]);
    for bi in 0..b {
        for cl in 0..len {
            let src = ((bi * c) + start + cl) * h * w;
            let dst = ((bi * len) + cl) * h * w;
            out.data_mut()[dst..dst + h * w].copy_from_slice(&x.data()[src..src + h * w]);
        }
    }
    out
}

/// Full CimConv2d forward across granularities (column-wise must not cost
/// more than layer-wise — the framework's efficiency claim).
fn bench_cim_conv_granularities(c: &mut Criterion) {
    let cfg = {
        let mut c = CimConfig::cifar10();
        c.array_rows = 64;
        c.array_cols = 64;
        c
    };
    let mut rng = CqRng::new(2);
    let x = rng.normal_tensor(&[2, 14, 12, 12], 1.0).map(|v| v.max(0.0));
    let mut group = c.benchmark_group("cim_conv_forward");
    for gran in Granularity::ALL {
        let mut layer =
            CimConv2d::new(14, 16, 3, 1, 1, cfg, gran, gran, false, &mut rng);
        let _ = layer.forward(&x, Mode::Eval); // init scales
        group.bench_with_input(BenchmarkId::from_parameter(gran), &gran, |b, _| {
            b.iter(|| layer.forward(&x, Mode::Eval))
        });
    }
    group.finish();
}

/// LSQ quantizer throughput at the three granularities.
fn bench_quantizer(c: &mut Criterion) {
    let cfg = CimConfig::cifar10();
    let plan = TilingPlan::new(&cfg, 64, 64, 3, 3);
    let mut rng = CqRng::new(3);
    let w = rng.normal_tensor(&[64, 64, 3, 3], 0.1);
    let mut group = c.benchmark_group("lsq_forward_int");
    for gran in Granularity::ALL {
        let layout = plan.weight_layout(gran);
        let q = LsqQuantizer::with_init_from(cfg.weight_format(), &w, &layout);
        group.bench_with_input(BenchmarkId::from_parameter(gran), &gran, |b, _| {
            b.iter(|| q.forward_int(&w, &layout))
        });
    }
    group.finish();
}

/// Bit-split slicing throughput.
fn bench_bitsplit(c: &mut Criterion) {
    let bs = BitSplit::new(4, 2);
    let mut rng = CqRng::new(4);
    let w = rng.uniform_tensor(&[64, 64, 3, 3], -8.0, 8.0).map(f32::floor);
    c.bench_function("bitsplit_all_slices", |b| b.iter(|| bs.split_all(&w)));
}

/// Crossbar analog MAC throughput (128×128 array).
fn bench_crossbar_mac(c: &mut Criterion) {
    let mut xb = Crossbar::new(128, 128);
    let mut rng = CqRng::new(5);
    for r in 0..128 {
        for col in 0..128 {
            xb.program(r, col, (rng.below(3) as f32) - 1.0);
        }
    }
    let input: Vec<f32> = (0..128).map(|_| rng.below(8) as f32).collect();
    c.bench_function("crossbar_mac_128x128", |b| b.iter(|| xb.mac(&input)));
}

/// End-to-end QAT step (forward+backward+update) of one CimConv2d — the
/// framework's training-cost unit.
fn bench_qat_step(c: &mut Criterion) {
    let cfg = {
        let mut c = CimConfig::cifar10();
        c.array_rows = 64;
        c.array_cols = 64;
        c
    };
    let mut rng = CqRng::new(6);
    let scheme = QuantScheme::ours();
    let mut layer = CimConv2d::new(
        14, 16, 3, 1, 1, cfg, scheme.w_gran, scheme.p_gran, false, &mut rng,
    );
    let x = rng.normal_tensor(&[2, 14, 12, 12], 1.0).map(|v| v.max(0.0));
    let mut opt = cq_nn::Sgd::new(0.01, 0.9, 0.0);
    c.bench_function("cim_conv_qat_step", |b| {
        b.iter(|| {
            let y = layer.forward(&x, Mode::Train);
            layer.zero_grads();
            let g = y.scale(1e-3);
            let _ = layer.backward(&g);
            opt.step(&mut layer);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300)).measurement_time(std::time::Duration::from_secs(2));
    targets = bench_framework_paths, bench_cim_conv_granularities, bench_quantizer, bench_bitsplit, bench_crossbar_mac, bench_qat_step
}
criterion_main!(benches);
