//! Micro-benchmarks for the framework's performance claims
//! (paper Sec. III-C): the kernel-intact tiling + group convolution must
//! beat (a) a sequential per-array loop and (b) a naive split-kernel
//! im2col emulation; plus throughput benchmarks of the quantizer, the
//! bit-splitter, and the crossbar MAC.
//!
//! This is a custom-harness bench target (no external bench framework is
//! vendored in this offline workspace): each benchmark is warmed up, then
//! timed over enough iterations to fill the measurement window, and the
//! median/mean per-iteration times are printed. Run with
//! `cargo bench -p cq-bench --bench framework`; pin `CQ_THREADS` for
//! reproducible numbers on shared runners.

use cq_cim::{CimConfig, Crossbar, TilingPlan};
use cq_core::{CimConv2d, QuantScheme};
use cq_nn::{Layer, Mode};
use cq_quant::{BitSplit, Granularity, LsqQuantizer};
use cq_tensor::{conv2d, conv2d_grouped, CqRng, Tensor};
use std::time::{Duration, Instant};

const WARMUP: Duration = Duration::from_millis(300);
const MEASURE: Duration = Duration::from_secs(2);

/// Times `f` repeatedly: warm-up window first, then per-iteration samples
/// until the measurement window closes. Prints mean and median.
fn bench_function<R>(name: &str, mut f: impl FnMut() -> R) {
    let warm_end = Instant::now() + WARMUP;
    while Instant::now() < warm_end {
        std::hint::black_box(f());
    }
    let mut samples = Vec::new();
    let end = Instant::now() + MEASURE;
    while Instant::now() < end {
        let t = Instant::now();
        std::hint::black_box(f());
        samples.push(t.elapsed());
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} median {median:>12.3?}  mean {mean:>12.3?}  ({} iters)",
        samples.len()
    );
}

/// Group-convolution emulation vs sequential per-array convolutions vs the
/// full CimConv2d pipeline.
fn bench_framework_paths() {
    let cfg = {
        let mut c = CimConfig::cifar10();
        c.array_rows = 64;
        c.array_cols = 64;
        c
    };
    let (in_ch, out_ch, hw) = (28, 16, 12);
    let plan = TilingPlan::new(&cfg, in_ch, out_ch, 3, 3);
    let mut rng = CqRng::new(1);
    let x = rng
        .uniform_tensor(&[4, plan.padded_in_ch, hw, hw], 0.0, 7.0)
        .map(f32::floor);
    // One split's grouped weight and its per-array slices.
    let wg = rng
        .uniform_tensor(
            &[plan.num_row_tiles * out_ch, plan.ch_per_array, 3, 3],
            -1.0,
            2.0,
        )
        .map(f32::floor);

    bench_function("array_conv/group_conv_all_arrays", || {
        conv2d_grouped(&x, &wg, 1, 1, plan.num_row_tiles)
    });
    bench_function("array_conv/sequential_per_array", || {
        // The baseline the paper eliminates: index arrays one by one,
        // slicing inputs and weights per array.
        let mut outs = Vec::new();
        for g in 0..plan.num_row_tiles {
            let xs = slice_channels(&x, g * plan.ch_per_array, plan.ch_per_array);
            let ws = wg.slice_outer(g * out_ch, (g + 1) * out_ch);
            outs.push(conv2d(&xs, &ws, 1, 1));
        }
        outs
    });
}

fn slice_channels(x: &Tensor, start: usize, len: usize) -> Tensor {
    let (b, c, h, w) = (x.dim(0), x.dim(1), x.dim(2), x.dim(3));
    let mut out = Tensor::zeros(&[b, len, h, w]);
    for bi in 0..b {
        for cl in 0..len {
            let src = ((bi * c) + start + cl) * h * w;
            let dst = ((bi * len) + cl) * h * w;
            out.data_mut()[dst..dst + h * w].copy_from_slice(&x.data()[src..src + h * w]);
        }
    }
    out
}

/// Full CimConv2d forward across granularities (column-wise must not cost
/// more than layer-wise — the framework's efficiency claim).
fn bench_cim_conv_granularities() {
    let cfg = {
        let mut c = CimConfig::cifar10();
        c.array_rows = 64;
        c.array_cols = 64;
        c
    };
    let mut rng = CqRng::new(2);
    let x = rng.normal_tensor(&[2, 14, 12, 12], 1.0).map(|v| v.max(0.0));
    for gran in Granularity::ALL {
        let mut layer = CimConv2d::new(14, 16, 3, 1, 1, cfg, gran, gran, false, &mut rng);
        let _ = layer.forward(&x, Mode::Eval); // init scales
        bench_function(&format!("cim_conv_forward/{gran}"), || {
            layer.forward(&x, Mode::Eval)
        });
    }
}

/// LSQ quantizer throughput at the three granularities.
fn bench_quantizer() {
    let cfg = CimConfig::cifar10();
    let plan = TilingPlan::new(&cfg, 64, 64, 3, 3);
    let mut rng = CqRng::new(3);
    let w = rng.normal_tensor(&[64, 64, 3, 3], 0.1);
    for gran in Granularity::ALL {
        let layout = plan.weight_layout(gran);
        let q = LsqQuantizer::with_init_from(cfg.weight_format(), &w, &layout);
        bench_function(&format!("lsq_forward_int/{gran}"), || {
            q.forward_int(&w, &layout)
        });
    }
}

/// Bit-split slicing throughput.
fn bench_bitsplit() {
    let bs = BitSplit::new(4, 2);
    let mut rng = CqRng::new(4);
    let w = rng
        .uniform_tensor(&[64, 64, 3, 3], -8.0, 8.0)
        .map(f32::floor);
    bench_function("bitsplit_all_slices", || bs.split_all(&w));
}

/// Crossbar analog MAC throughput (128×128 array).
fn bench_crossbar_mac() {
    let mut xb = Crossbar::new(128, 128);
    let mut rng = CqRng::new(5);
    for r in 0..128 {
        for col in 0..128 {
            xb.program(r, col, (rng.below(3) as f32) - 1.0);
        }
    }
    let input: Vec<f32> = (0..128).map(|_| rng.below(8) as f32).collect();
    bench_function("crossbar_mac_128x128", || xb.mac(&input));
}

/// End-to-end QAT step (forward+backward+update) of one CimConv2d — the
/// framework's training-cost unit.
fn bench_qat_step() {
    let cfg = {
        let mut c = CimConfig::cifar10();
        c.array_rows = 64;
        c.array_cols = 64;
        c
    };
    let mut rng = CqRng::new(6);
    let scheme = QuantScheme::ours();
    let mut layer = CimConv2d::new(
        14,
        16,
        3,
        1,
        1,
        cfg,
        scheme.w_gran,
        scheme.p_gran,
        false,
        &mut rng,
    );
    let x = rng.normal_tensor(&[2, 14, 12, 12], 1.0).map(|v| v.max(0.0));
    let mut opt = cq_nn::Sgd::new(0.01, 0.9, 0.0);
    bench_function("cim_conv_qat_step", || {
        let y = layer.forward(&x, Mode::Train);
        layer.zero_grads();
        let g = y.scale(1e-3);
        let _ = layer.backward(&g);
        opt.step(&mut layer);
    });
}

fn main() {
    // `cargo bench` passes --bench; ignore all args.
    bench_framework_paths();
    bench_cim_conv_granularities();
    bench_quantizer();
    bench_bitsplit();
    bench_crossbar_mac();
    bench_qat_step();
}
