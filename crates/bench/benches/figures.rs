//! `cargo bench -p cq-bench --bench figures` regenerates every table and
//! figure of the paper at the `CQ_SCALE` size (default `quick`). This is a
//! custom-harness bench target (not criterion): its "benchmark" *is* the
//! experiment suite, and its output is the paper-shaped markdown.

use cq_bench::{experiments, Scale};
use std::time::Instant;

type Section = (&'static str, Box<dyn Fn() -> String>);

fn main() {
    // `cargo bench` passes --bench; ignore all args.
    let scale = Scale::from_env();
    let t0 = Instant::now();
    let sections: Vec<Section> = vec![
        ("table1", Box::new(experiments::tables::table1)),
        (
            "table2",
            Box::new(move || experiments::tables::table2(scale)),
        ),
        ("fig6", Box::new(move || experiments::fig6::run(scale))),
        (
            "fig7a",
            Box::new(move || experiments::fig7::run(experiments::fig7::Variant::Cifar10, scale)),
        ),
        (
            "fig7b",
            Box::new(move || experiments::fig7::run(experiments::fig7::Variant::Cifar100, scale)),
        ),
        (
            "table3",
            Box::new(move || experiments::tables::table3(scale)),
        ),
        ("fig8", Box::new(move || experiments::fig8::run(scale))),
        ("fig9", Box::new(move || experiments::fig9::run(scale))),
        ("fig10", Box::new(move || experiments::fig10::run(scale))),
        (
            "ablations",
            Box::new(move || experiments::ablations::run(scale)),
        ),
    ];
    for (name, f) in sections {
        let t = Instant::now();
        let report = f();
        println!("{report}");
        println!(
            "[{name} regenerated in {:.1}s]\n",
            t.elapsed().as_secs_f64()
        );
    }
    println!(
        "All tables and figures regenerated in {:.1}s at {scale:?} scale.",
        t0.elapsed().as_secs_f64()
    );
}
