//! Serving-throughput benchmark: frozen `PreparedCimModel` vs the
//! unprepared per-call path. Emits `BENCH_throughput.json`.
fn main() {
    println!(
        "{}",
        cq_bench::experiments::throughput::run(cq_bench::Scale::from_env())
    );
}
