//! Regenerates the paper's Table III (ResNet-18 / ImageNet accuracy).
fn main() {
    println!(
        "{}",
        cq_bench::experiments::tables::table3(cq_bench::Scale::from_env())
    );
}
