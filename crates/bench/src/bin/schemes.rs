//! Scheme-zoo comparison: the paper's column-wise LSQ scheme vs BWMA
//! (binary ±1 weights) vs hybrid-ADC (digitally-carried low splits),
//! each run QAT → freeze → serve. Emits `BENCH_schemes.json`.
fn main() {
    println!(
        "{}",
        cq_bench::experiments::schemes::run(cq_bench::Scale::from_env())
    );
}
