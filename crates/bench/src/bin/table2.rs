//! Regenerates the paper's Table II (experimental settings).
fn main() {
    println!(
        "{}",
        cq_bench::experiments::tables::table2(cq_bench::Scale::from_env())
    );
}
