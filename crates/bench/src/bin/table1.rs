//! Regenerates the paper's Table I (related-work comparison).
fn main() {
    println!("{}", cq_bench::experiments::tables::table1());
}
