//! Runs the ablation studies (ADC resolution, array size).
fn main() {
    println!(
        "{}",
        cq_bench::experiments::ablations::run(cq_bench::Scale::from_env())
    );
}
