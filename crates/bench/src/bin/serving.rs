//! Serving SLO benchmark: open-loop Poisson-ish request streams against
//! the `cq-serve` front-end. Emits `BENCH_serving.json`.
fn main() {
    println!(
        "{}",
        cq_bench::experiments::serving::run(cq_bench::Scale::from_env())
    );
}
