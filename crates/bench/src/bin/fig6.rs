//! Regenerates the paper's Fig. 6 (partial-sum distribution analysis).
fn main() {
    println!(
        "{}",
        cq_bench::experiments::fig6::run(cq_bench::Scale::from_env())
    );
}
