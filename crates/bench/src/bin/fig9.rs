//! Regenerates the paper's Fig. 9 (QAT schedule comparison).
fn main() {
    println!(
        "{}",
        cq_bench::experiments::fig9::run(cq_bench::Scale::from_env())
    );
}
