//! Kernel micro-benchmark: integer i8/i32 psum panels vs the f32
//! grouped-conv front-end, plus the end-to-end frozen-engine comparison.
//! Emits `BENCH_kernels.json`.
fn main() {
    println!(
        "{}",
        cq_bench::experiments::kernels::run(cq_bench::Scale::from_env())
    );
}
