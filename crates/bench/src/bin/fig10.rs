//! Regenerates the paper's Fig. 10 (variation robustness).
fn main() {
    println!(
        "{}",
        cq_bench::experiments::fig10::run(cq_bench::Scale::from_env())
    );
}
