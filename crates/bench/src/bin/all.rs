//! Regenerates every table and figure of the paper in order.
use cq_bench::{experiments, Scale};
fn main() {
    let scale = Scale::from_env();
    println!("{}", experiments::tables::table1());
    println!("{}", experiments::tables::table2(scale));
    println!("{}", experiments::fig6::run(scale));
    println!(
        "{}",
        experiments::fig7::run(experiments::fig7::Variant::Cifar10, scale)
    );
    println!(
        "{}",
        experiments::fig7::run(experiments::fig7::Variant::Cifar100, scale)
    );
    println!("{}", experiments::tables::table3(scale));
    println!("{}", experiments::fig8::run(scale));
    println!("{}", experiments::fig9::run(scale));
    println!("{}", experiments::fig10::run(scale));
    println!("{}", experiments::schemes::run(scale));
}
