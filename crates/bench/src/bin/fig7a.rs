//! Regenerates the paper's Fig. 7(a) (CIFAR-10 granularity comparison).
use cq_bench::experiments::fig7;
fn main() {
    println!(
        "{}",
        fig7::run(fig7::Variant::Cifar10, cq_bench::Scale::from_env())
    );
}
