//! Regenerates the paper's Fig. 8 (accuracy vs dequantization overhead).
fn main() {
    println!(
        "{}",
        cq_bench::experiments::fig8::run(cq_bench::Scale::from_env())
    );
}
