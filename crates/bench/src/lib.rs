//! # cq-bench
//!
//! The benchmark harness that regenerates every table and figure of the
//! ColumnQuant paper. Each experiment lives in [`experiments`] and is
//! exposed both as a binary (`cargo run -p cq-bench --bin fig7a`) and
//! through the `figures` bench target (`cargo bench -p cq-bench`).
//!
//! Experiment sizes honor the `CQ_SCALE` environment variable:
//! `ci` (seconds, smoke), `quick` (default, minutes), `full`
//! (paper-shaped models and budgets; hours on a laptop).

#![warn(missing_docs)]

pub mod experiments;

use cq_cim::CimConfig;
use cq_data::{Augment, SyntheticSpec};
use cq_nn::{LrSchedule, ResNetSpec};
use cq_train::TrainConfig;

/// Experiment size selector (read from `CQ_SCALE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test size: a few seconds per experiment.
    Ci,
    /// Default size: minutes per experiment on a 2-vCPU container.
    Quick,
    /// Paper-shaped models and budgets (hours).
    Full,
}

impl Scale {
    /// Reads `CQ_SCALE` (defaults to `Quick`).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value.
    pub fn from_env() -> Scale {
        match std::env::var("CQ_SCALE").as_deref() {
            Ok("ci") => Scale::Ci,
            Ok("full") => Scale::Full,
            Ok("quick") | Err(_) => Scale::Quick,
            Ok(other) => panic!("unknown CQ_SCALE '{other}' (use ci|quick|full)"),
        }
    }
}

/// A complete experimental setting: hardware config, model, data, and
/// training budget — one column of the paper's Table II, scaled.
#[derive(Debug, Clone)]
pub struct ExperimentSetting {
    /// Human-readable name ("CIFAR-10 (synthetic)").
    pub name: String,
    /// CIM macro configuration.
    pub cim: CimConfig,
    /// Model architecture.
    pub model: ResNetSpec,
    /// Dataset specification.
    pub data: SyntheticSpec,
    /// Training budget.
    pub train: TrainConfig,
}

fn budget(
    scale: Scale,
    ci: (usize, usize),
    quick: (usize, usize),
    full: (usize, usize),
) -> (usize, usize) {
    match scale {
        Scale::Ci => ci,
        Scale::Quick => quick,
        Scale::Full => full,
    }
}

impl ExperimentSetting {
    /// Table II column 1: 3b weights (1b/cell), 3b activations, binary
    /// partial sums, ResNet-20 on CIFAR-10 (synthetic stand-in).
    pub fn cifar10(scale: Scale, seed: u64) -> Self {
        // Binary partial sums train slowly (the paper's hardest regime:
        // it uses 200 epochs on the real dataset); quick scale gets the
        // largest budget of the three settings.
        let (per_class, epochs) = budget(scale, (8, 2), (24, 40), (200, 80));
        let batch = if scale == Scale::Full { 32 } else { 16 };
        let mut cim = CimConfig::cifar10();
        let (model, data) = match scale {
            Scale::Full => (
                ResNetSpec::resnet20(10),
                SyntheticSpec::cifar10_like(per_class, per_class / 2, seed),
            ),
            _ => {
                // Shrink arrays with the model so multi-array tiling (the
                // thing granularity acts on) still occurs.
                cim.array_rows = 32;
                cim.array_cols = 32;
                (
                    ResNetSpec::resnet8(10, 6),
                    SyntheticSpec {
                        image_size: 12,
                        train_per_class: per_class,
                        test_per_class: (per_class / 2).max(4),
                        ..SyntheticSpec::cifar10_like(per_class, 8, seed)
                    },
                )
            }
        };
        Self {
            name: "CIFAR-10 (synthetic)".into(),
            cim,
            model,
            data,
            train: train_cfg(epochs, batch, seed),
        }
    }

    /// Table II column 2: 4b weights (2b/cell), 4b activations, 3b partial
    /// sums, ResNet-20 on CIFAR-100 (synthetic stand-in; class count
    /// scales down off-`full`).
    pub fn cifar100(scale: Scale, seed: u64) -> Self {
        let (per_class, epochs) = budget(scale, (8, 2), (16, 20), (100, 60));
        let batch = if scale == Scale::Full { 32 } else { 8 };
        let mut cim = CimConfig::cifar100();
        let (model, data) = match scale {
            Scale::Full => (
                ResNetSpec::resnet20(100),
                SyntheticSpec::cifar100_like(per_class, per_class / 2, seed),
            ),
            _ => {
                cim.array_rows = 32;
                cim.array_cols = 32;
                let classes = if scale == Scale::Ci { 4 } else { 16 };
                (
                    ResNetSpec::resnet8(classes, 6),
                    SyntheticSpec {
                        num_classes: classes,
                        image_size: 12,
                        train_per_class: per_class,
                        test_per_class: (per_class / 2).max(4),
                        ..SyntheticSpec::cifar100_like(per_class, 8, seed)
                    },
                )
            }
        };
        Self {
            name: "CIFAR-100 (synthetic)".into(),
            cim,
            model,
            data,
            train: train_cfg(epochs, batch, seed),
        }
    }

    /// Table II column 3: 3b weights (3b/cell), 3b activations, 2b partial
    /// sums, 256×256 arrays, ResNet-18 on ImageNet (synthetic stand-in).
    pub fn imagenet(scale: Scale, seed: u64) -> Self {
        let (per_class, epochs) = budget(scale, (6, 2), (14, 16), (60, 40));
        let batch = if scale == Scale::Full { 32 } else { 8 };
        let mut cim = CimConfig::imagenet();
        let (model, data) = match scale {
            Scale::Full => (
                ResNetSpec::resnet18_small_input(64),
                SyntheticSpec::imagenet_like(per_class, per_class / 2, seed),
            ),
            _ => {
                cim.array_rows = 32;
                cim.array_cols = 32;
                let classes = if scale == Scale::Ci { 4 } else { 8 };
                (
                    ResNetSpec::resnet18_small_input(classes).scaled_width(1, 16),
                    SyntheticSpec {
                        num_classes: classes,
                        image_size: 16,
                        train_per_class: per_class,
                        test_per_class: (per_class / 2).max(4),
                        channels: 3,
                        noise: 0.3,
                        max_shift: 2,
                        seed,
                    },
                )
            }
        };
        Self {
            name: "ImageNet (synthetic)".into(),
            cim,
            model,
            data,
            train: train_cfg(epochs, batch, seed),
        }
    }

    /// All three settings (the columns of Table II).
    pub fn all(scale: Scale, seed: u64) -> Vec<ExperimentSetting> {
        vec![
            Self::cifar10(scale, seed),
            Self::cifar100(scale, seed.wrapping_add(1)),
            Self::imagenet(scale, seed.wrapping_add(2)),
        ]
    }
}

fn train_cfg(epochs: usize, batch_size: usize, seed: u64) -> TrainConfig {
    TrainConfig {
        epochs,
        batch_size,
        lr: LrSchedule::Cosine {
            base: 0.05,
            total_epochs: epochs,
        },
        momentum: 0.9,
        weight_decay: 5e-4,
        augment: Augment::standard(),
        seed: seed.wrapping_add(77),
    }
}

/// Renders a markdown table.
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    s.push('|');
    for h in headers {
        s.push_str(&format!(" {h} |"));
    }
    s.push('\n');
    s.push('|');
    for _ in headers {
        s.push_str("---|");
    }
    s.push('\n');
    for row in rows {
        s.push('|');
        for cell in row {
            s.push_str(&format!(" {cell} |"));
        }
        s.push('\n');
    }
    s
}

/// Formats an accuracy as a percentage string.
pub fn pct(acc: f32) -> String {
    format!("{:.2}%", 100.0 * acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_mirror_table2_bit_precisions() {
        let s10 = ExperimentSetting::cifar10(Scale::Ci, 0);
        assert_eq!(
            (
                s10.cim.weight_bits,
                s10.cim.act_bits,
                s10.cim.psum_bits,
                s10.cim.cell_bits
            ),
            (3, 3, 1, 1)
        );
        let s100 = ExperimentSetting::cifar100(Scale::Ci, 0);
        assert_eq!(
            (
                s100.cim.weight_bits,
                s100.cim.act_bits,
                s100.cim.psum_bits,
                s100.cim.cell_bits
            ),
            (4, 4, 3, 2)
        );
        let sin = ExperimentSetting::imagenet(Scale::Ci, 0);
        assert_eq!(
            (
                sin.cim.weight_bits,
                sin.cim.act_bits,
                sin.cim.psum_bits,
                sin.cim.cell_bits
            ),
            (3, 3, 2, 3)
        );
    }

    #[test]
    fn full_scale_uses_paper_models() {
        let s = ExperimentSetting::cifar10(Scale::Full, 0);
        assert_eq!(s.model.depth(), 20);
        assert_eq!(s.cim.array_rows, 128);
        let i = ExperimentSetting::imagenet(Scale::Full, 0);
        assert_eq!(i.model.depth(), 18);
        assert_eq!(i.cim.array_rows, 256);
    }

    #[test]
    fn markdown_table_renders() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert_eq!(t.lines().count(), 3);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.9021), "90.21%");
    }
}
