//! **Fig. 6** — column-wise integer partial-sum distributions of an early
//! ResNet conv layer, comparing layer-wise vs column-wise weight
//! quantization. The paper's observation: column-wise weight scales give
//! the integer partial sums a larger dynamic range per column, i.e. more
//! representational headroom for the ADC.

use crate::experiments::{run_scheme, setting_data};
use crate::{markdown_table, ExperimentSetting, Scale};
use cq_core::{for_each_cim_conv, QuantScheme};
use cq_data::eval_batches;
use cq_quant::Granularity;
use cq_tensor::stats::summarize;

/// Runs the experiment and returns the markdown report.
pub fn run(scale: Scale) -> String {
    let setting = ExperimentSetting::cifar10(scale, 60);
    let mut out = String::from("## Fig. 6 — column-wise partial-sum distribution\n\n");
    out.push_str(&format!(
        "Setting: {} | {:?} scale\n\n",
        setting.name, scale
    ));

    let mut ranges = Vec::new();
    let mut per_gran_rows: Vec<Vec<String>> = Vec::new();
    for w_gran in [Granularity::Layer, Granularity::Column] {
        let scheme = QuantScheme::custom(w_gran, Granularity::Column);
        let (mut net, _result) = run_scheme(&setting, &scheme, 61);
        // Grab the integer partial sums of the layer-4-analogue conv
        // (the 4th quantized conv, matching the paper's "4th convolution
        // layer of ResNet-20").
        let (_, test_ds) = setting_data(&setting);
        let batch = eval_batches(&test_ds, 16).remove(0);

        let mut psum_columns: Vec<Vec<f32>> = Vec::new();
        let mut idx = 0usize;
        let target = 3usize;
        // First propagate the batch so the target layer sees its real
        // input; easiest is to capture inside a forward via integer_psums
        // on the layer's own input. We reconstruct the input by running
        // the net layer-by-layer is intrusive; instead use the layer's
        // psum snapshot on the batch propagated by a full forward pass
        // (activation scales are frozen after training, so running
        // integer_psums directly on the first conv input is exact for
        // layer index 0; for deeper layers we capture via a probe).
        let mut captured: Option<Vec<cq_tensor::Tensor>> = None;
        // Probe: temporarily record psums by running integer_psums on the
        // input that reaches the target layer. We get that input by
        // asking each CimConv2d to snapshot during a manual walk — the
        // simplest faithful approach is to run the full network forward
        // while a capture flag is set on the target layer.
        for_each_cim_conv(&mut net, |c| {
            if idx == target {
                c.set_psum_capture(true);
            }
            idx += 1;
        });
        let _ = cq_nn::Layer::forward(&mut net, &batch.images, cq_nn::Mode::Eval);
        idx = 0;
        for_each_cim_conv(&mut net, |c| {
            if idx == target {
                captured = c.take_captured_psums();
                c.set_psum_capture(false);
            }
            idx += 1;
        });
        let psums = captured.expect("target layer captured no psums");

        // Per physical column (split 0, row tile 0): distribution over
        // batch × spatial positions.
        let p0 = &psums[0];
        let (b, ch, oh, ow) = (p0.dim(0), p0.dim(1), p0.dim(2), p0.dim(3));
        let ncols = ch.min(40);
        for col in 0..ncols {
            let mut vals = Vec::with_capacity(b * oh * ow);
            for bi in 0..b {
                let base = (bi * ch + col) * oh * ow;
                vals.extend_from_slice(&p0.data()[base..base + oh * ow]);
            }
            psum_columns.push(vals);
        }

        let summaries: Vec<_> = psum_columns.iter().map(|v| summarize(v)).collect();
        let mean_range =
            summaries.iter().map(|s| s.range() as f64).sum::<f64>() / summaries.len() as f64;
        ranges.push(mean_range);
        for (ci, s) in summaries.iter().enumerate().take(8) {
            per_gran_rows.push(vec![
                format!("{w_gran}"),
                ci.to_string(),
                format!("{:.0}", s.min),
                format!("{:.0}", s.p25),
                format!("{:.0}", s.p50),
                format!("{:.0}", s.p75),
                format!("{:.0}", s.max),
            ]);
        }
    }

    out.push_str(&markdown_table(
        &[
            "weight gran",
            "column",
            "min",
            "p25",
            "median",
            "p75",
            "max",
        ],
        &per_gran_rows,
    ));
    out.push_str(&format!(
        "\nMean per-column integer dynamic range: layer-wise = {:.1}, column-wise = {:.1}\n",
        ranges[0], ranges[1]
    ));
    out.push_str(&format!(
        "Paper's qualitative claim (column-wise > layer-wise dynamic range): **{}**\n",
        if ranges[1] > ranges[0] {
            "reproduced"
        } else {
            "NOT reproduced at this scale"
        }
    ));
    out
}
