//! **Table I** (related-work comparison), **Table II** (experimental
//! settings), and **Table III** (ResNet-18 / ImageNet accuracy).

use crate::experiments::{run_fp, run_scheme};
use crate::{markdown_table, pct, ExperimentSetting, Scale};
use cq_core::QuantScheme;

/// Table I: the qualitative scheme comparison, generated from the same
/// scheme objects the experiments run.
pub fn table1() -> String {
    let mut out = String::from("## Table I — related works on partial-sum quantization\n\n");
    out.push_str(
        "| scheme | W gran | W from scratch | W learnable s | P gran | P from scratch | P learnable s |\n",
    );
    out.push_str("|---|---|---|---|---|---|---|\n");
    for s in QuantScheme::all_compared() {
        out.push_str(&s.table1_row());
        out.push('\n');
    }
    out
}

/// Table II: the three experimental settings at the given scale (bit
/// precisions always match the paper; model/data sizes scale).
pub fn table2(scale: Scale) -> String {
    let mut out = String::from("## Table II — experimental settings\n\n");
    let mut rows = Vec::new();
    for s in ExperimentSetting::all(scale, 42) {
        rows.push(vec![
            s.name.clone(),
            format!("ResNet-{} ({} cls)", s.model.depth(), s.model.num_classes),
            format!("{}b", s.cim.act_bits),
            format!("{}b ({}b/cell)", s.cim.weight_bits, s.cim.cell_bits),
            if s.cim.psum_bits == 1 {
                "binary".into()
            } else {
                format!("{}b", s.cim.psum_bits)
            },
            format!("{}x{}", s.cim.array_rows, s.cim.array_cols),
            format!("{} epochs from scratch", s.train.epochs),
        ]);
    }
    out.push_str(&markdown_table(
        &[
            "dataset",
            "model",
            "activation",
            "weight",
            "partial-sum",
            "array",
            "training",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\nScale: {:?} (CQ_SCALE=full restores the paper's 128x128/256x256 arrays and ResNet-20/18)\n",
        scale
    ));
    out
}

/// Table III: the five compared schemes plus the full-precision reference
/// on the ImageNet (synthetic) setting.
pub fn table3(scale: Scale) -> String {
    let setting = ExperimentSetting::imagenet(scale, 110);
    let mut out = String::from("## Table III — ResNet-18 on ImageNet (synthetic stand-in)\n\n");
    out.push_str(&format!(
        "Setting: {} | {:?} scale\n\n",
        setting.name, scale
    ));

    let fp = run_fp(&setting, 111);
    let mut rows = vec![vec![
        "Full-precision".into(),
        "-".into(),
        "-".into(),
        pct(fp.final_test_acc()),
    ]];
    let mut best_related = f32::NEG_INFINITY;
    let mut ours = 0.0f32;
    for scheme in QuantScheme::all_compared() {
        let (_, result) = run_scheme(&setting, &scheme, 112);
        let acc = result.final_test_acc();
        if scheme.label == "Ours" {
            ours = acc;
        } else {
            best_related = best_related.max(acc);
        }
        rows.push(vec![
            scheme.label.clone(),
            format!("{}/{}", scheme.w_gran.letter(), scheme.p_gran.letter()),
            format!("{}", scheme.method),
            pct(acc),
        ]);
    }
    out.push_str(&markdown_table(
        &["scheme", "gran (W/P)", "method", "top-1"],
        &rows,
    ));
    out.push_str(&format!(
        "\nOurs vs best related: {:+.2} pp (paper reports +1.01 pp on real ImageNet)\n",
        100.0 * (ours - best_related)
    ));
    out
}
