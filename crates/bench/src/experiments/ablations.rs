//! Ablations beyond the paper's figures, probing the design choices
//! DESIGN.md calls out:
//!
//! * **ADC resolution** — accuracy vs partial-sum bits under the paper's
//!   scheme, with the first-order ADC energy cost per conversion. This is
//!   the tradeoff that motivates partial-sum quantization in the first
//!   place (paper Sec. I).
//! * **Array size** — accuracy and dequantization overhead as the array
//!   shrinks and the number of row tiles (and hence column-wise scale
//!   factors) grows.

use crate::experiments::run_scheme;
use crate::{markdown_table, pct, ExperimentSetting, Scale};
use cq_cim::{AdcCostModel, TilingPlan};
use cq_core::QuantScheme;

/// Runs both ablations and returns the markdown report.
pub fn run(scale: Scale) -> String {
    let mut out = String::from("## Ablations (extensions beyond the paper's figures)\n\n");
    out.push_str(&adc_resolution(scale));
    out.push('\n');
    out.push_str(&array_size(scale));
    out
}

/// Accuracy vs ADC (partial-sum) resolution under column/column QAT.
pub fn adc_resolution(scale: Scale) -> String {
    let model = AdcCostModel::default();
    let mut rows = Vec::new();
    for bits in 1..=5u32 {
        let mut setting = ExperimentSetting::cifar100(scale, 120);
        setting.cim.psum_bits = bits;
        let (_, result) = run_scheme(&setting, &QuantScheme::ours(), 121);
        rows.push(vec![
            if bits == 1 {
                "binary".into()
            } else {
                format!("{bits}b")
            },
            pct(result.final_test_acc()),
            format!("{:.1} fJ", model.energy_fj(bits)),
        ]);
    }
    let mut s = String::from("### ADC resolution ablation (CIFAR-100 setting, ours C/C)\n\n");
    s.push_str(&markdown_table(
        &["ADC", "top-1", "energy/conversion"],
        &rows,
    ));
    s.push_str(
        "\nAccuracy climbs with ADC resolution while energy doubles per bit — \
         the tension column-wise quantization relaxes by making low-resolution \
         ADCs accurate.\n",
    );
    s
}

/// Accuracy and overhead vs array size (row tiling pressure).
pub fn array_size(scale: Scale) -> String {
    let mut rows = Vec::new();
    for rows_cols in [16usize, 32, 64] {
        let mut setting = ExperimentSetting::cifar100(scale, 130);
        setting.cim.array_rows = rows_cols;
        setting.cim.array_cols = rows_cols;
        let w = *setting.model.stage_widths.last().unwrap();
        let plan = TilingPlan::new(&setting.cim, w, w, 3, 3);
        let (_, result) = run_scheme(&setting, &QuantScheme::ours(), 131);
        rows.push(vec![
            format!("{rows_cols}x{rows_cols}"),
            plan.num_row_tiles.to_string(),
            plan.psum_group_count(cq_quant::Granularity::Column)
                .to_string(),
            cq_cim::dequant_mults(
                &plan,
                cq_quant::Granularity::Column,
                cq_quant::Granularity::Column,
            )
            .to_string(),
            pct(result.final_test_acc()),
        ]);
    }
    let mut s = String::from("### Array-size ablation (CIFAR-100 setting, ours C/C)\n\n");
    s.push_str(&markdown_table(
        &[
            "array",
            "row tiles (widest layer)",
            "psum scales",
            "dequant mults",
            "top-1",
        ],
        &rows,
    ));
    s.push_str(
        "\nSmaller arrays mean more row tiles, more independent column scales, \
         and proportionally more dequantization multiplications.\n",
    );
    s
}
