//! **Fig. 7(a)/(b)** — top-1 accuracy of every weight×psum granularity
//! combination plus the five compared schemes, on the CIFAR-10 and
//! CIFAR-100 settings, with the "without PSQ" dashed baselines and the
//! full-precision reference.

use crate::experiments::{granularity_sweep, run_fp, run_no_psq, run_scheme};
use crate::{markdown_table, pct, ExperimentSetting, Scale};
use cq_core::QuantScheme;
use cq_quant::Granularity;

/// Which dataset column of Table II to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// Fig. 7(a): CIFAR-10 setting.
    Cifar10,
    /// Fig. 7(b): CIFAR-100 setting.
    Cifar100,
}

/// Runs the experiment and returns the markdown report.
pub fn run(variant: Variant, scale: Scale) -> String {
    let (setting, title) = match variant {
        Variant::Cifar10 => (
            ExperimentSetting::cifar10(scale, 70),
            "Fig. 7(a) — CIFAR-10",
        ),
        Variant::Cifar100 => (
            ExperimentSetting::cifar100(scale, 71),
            "Fig. 7(b) — CIFAR-100",
        ),
    };
    let mut out = format!("## {title} (synthetic stand-in)\n\n");
    out.push_str(&format!(
        "Setting: {} | {:?} scale\n\n",
        setting.name, scale
    ));
    if variant == Variant::Cifar10 && scale != Scale::Full {
        out.push_str(
            "> Note: this setting's **binary** partial sums (Table II) converge \
             very slowly — the paper trains 200 epochs on 50k real images. At \
             reduced scale the absolute accuracies below are under-trained and \
             single-seed orderings are noisy; the 3b-ADC CIFAR-100 sweep \
             (Fig. 7(b)) is the converged comparison at this scale.\n\n",
        );
    }

    // Full-precision reference.
    let fp = run_fp(&setting, 72);
    out.push_str(&format!(
        "Full-precision reference: **{}**\n\n",
        pct(fp.final_test_acc())
    ));

    // Dashed lines: accuracy without partial-sum quantization per weight
    // granularity.
    let mut rows = Vec::new();
    for w in Granularity::ALL {
        let r = run_no_psq(&setting, w, 73);
        rows.push(vec![
            format!("{w}-wise weights, no PSQ"),
            pct(r.final_test_acc()),
        ]);
    }
    out.push_str("Without partial-sum quantization (dashed baselines):\n\n");
    out.push_str(&markdown_table(&["configuration", "top-1"], &rows));
    out.push('\n');

    // The nine one-stage QAT combinations.
    let sweep = granularity_sweep(&setting, 74);
    let mut rows = Vec::new();
    for r in &sweep {
        rows.push(vec![
            r.label.clone(),
            format!("{}", r.w_gran),
            format!("{}", r.p_gran),
            pct(r.acc),
        ]);
    }
    out.push_str("One-stage QAT, all granularity combinations (weight/psum):\n\n");
    out.push_str(&markdown_table(
        &["combo", "weight", "psum", "top-1"],
        &rows,
    ));
    out.push('\n');

    // The five compared schemes (methods per Table I).
    let mut rows = Vec::new();
    let mut best_related = f32::NEG_INFINITY;
    let mut ours_acc = 0.0f32;
    for scheme in QuantScheme::all_compared() {
        let (_, result) = run_scheme(&setting, &scheme, 75);
        let acc = result.final_test_acc();
        if scheme.label == "Ours" {
            ours_acc = acc;
        } else {
            best_related = best_related.max(acc);
        }
        rows.push(vec![
            scheme.label.clone(),
            format!("{}/{}", scheme.w_gran.letter(), scheme.p_gran.letter()),
            format!("{}", scheme.method),
            pct(acc),
        ]);
    }
    out.push_str("Compared schemes (training method per Table I):\n\n");
    out.push_str(&markdown_table(
        &["scheme", "gran (W/P)", "method", "top-1"],
        &rows,
    ));
    out.push_str(&format!(
        "\nOurs vs best related work: {} vs {} ({:+.2} pp; paper reports {} on the real dataset)\n",
        pct(ours_acc),
        pct(best_related),
        100.0 * (ours_acc - best_related),
        match variant {
            Variant::Cifar10 => "+0.99 pp",
            Variant::Cifar100 => "+2.69 pp",
        }
    ));
    out
}
