//! **Kernel micro-benchmark** — every execution backend on the
//! partial-sum front-end per shape: the scalar reference oracle
//! (`ScalarRef`), the blocked f32 kernels (`SimdF32`, via
//! [`PsumPipeline::grouped_psums_into`]), and the integer `i8`/`i32`
//! panel kernels (`IntPanels`, via
//! [`PsumPipeline::grouped_psums_int_into`]) — plus an end-to-end
//! frozen-engine comparison (forced f32 chain vs the auto chain's
//! integer selection) on the serving model.
//!
//! Every timed backend is first checked **bit-identical** against the
//! others — backend choice is a pure speed change, never a numerics
//! change — and results are written to `BENCH_kernels.json` (consumed by
//! CI as an artifact). The effective thread count (`CQ_THREADS` or
//! machine parallelism) is recorded in the JSON.

use crate::{markdown_table, ExperimentSetting, Scale};
use cq_cim::{CimConfig, IntPanels, PsumPipeline, ScalarRef, SimdF32, TilingPlan};
use cq_core::{build_cim_resnet, BackendSet, PreparedCimModel, QuantScheme};
use cq_nn::{Layer, Mode};
use cq_tensor::{max_threads, CqRng, Tensor};
use std::time::Instant;

/// One measured psum front-end shape.
#[derive(Debug, Clone)]
pub struct KernelPoint {
    /// Shape label.
    pub label: String,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels (logical columns per row tile).
    pub out_ch: usize,
    /// Square activation height/width.
    pub hw: usize,
    /// Batch size.
    pub batch: usize,
    /// Bit-split slice count of the config.
    pub splits: usize,
    /// Row tiles (grouped-conv groups) of the plan.
    pub row_tiles: usize,
    /// Best wall-clock of the scalar reference backend (ms).
    pub scalar_ms: f64,
    /// Best wall-clock of the f32 kernels (ms).
    pub f32_ms: f64,
    /// Best wall-clock of the integer kernels (ms).
    pub int_ms: f64,
    /// `f32_ms / int_ms`.
    pub speedup: f64,
}

/// Full result of the kernel micro-benchmark.
#[derive(Debug, Clone)]
pub struct KernelsResult {
    /// Experiment size.
    pub scale: Scale,
    /// Effective thread cap during the run.
    pub threads: usize,
    /// Per-shape front-end timings.
    pub shapes: Vec<KernelPoint>,
    /// Single-image requests in the end-to-end engine comparison.
    pub engine_requests: usize,
    /// Frozen engine throughput with kernels forced to f32 (images/sec).
    pub engine_f32_ips: f64,
    /// Frozen engine throughput under `Auto` integer selection.
    pub engine_int_ips: f64,
    /// `engine_int_ips / engine_f32_ips`.
    pub engine_speedup: f64,
    /// Frozen convs running the integer kernels under `Auto`.
    pub integer_convs: usize,
    /// Total frozen convs in the engine model.
    pub total_convs: usize,
}

impl KernelsResult {
    /// Renders the machine-readable report (hand-rolled JSON; the
    /// workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str("  \"shapes\": [\n");
        for (i, p) in self.shapes.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"label\": \"{}\", \"in_ch\": {}, \"out_ch\": {}, \"hw\": {}, \
                 \"batch\": {}, \"splits\": {}, \"row_tiles\": {}, \
                 \"backends\": {{\"scalar_ms\": {:.3}, \"simd_f32_ms\": {:.3}, \
                 \"int_panels_ms\": {:.3}}}, \"f32_ms\": {:.3}, \
                 \"int_ms\": {:.3}, \"speedup\": {:.3}}}{}\n",
                p.label,
                p.in_ch,
                p.out_ch,
                p.hw,
                p.batch,
                p.splits,
                p.row_tiles,
                p.scalar_ms,
                p.f32_ms,
                p.int_ms,
                p.f32_ms,
                p.int_ms,
                p.speedup,
                if i + 1 < self.shapes.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"engine\": {\n");
        s.push_str(&format!("    \"requests\": {},\n", self.engine_requests));
        s.push_str(&format!(
            "    \"f32_images_per_sec\": {:.3},\n",
            self.engine_f32_ips
        ));
        s.push_str(&format!(
            "    \"int_images_per_sec\": {:.3},\n",
            self.engine_int_ips
        ));
        s.push_str(&format!(
            "    \"speedup_int_vs_f32\": {:.3},\n",
            self.engine_speedup
        ));
        s.push_str(&format!(
            "    \"integer_convs\": {},\n    \"total_convs\": {}\n",
            self.integer_convs, self.total_convs
        ));
        s.push_str("  }\n}\n");
        s
    }
}

/// Best-of-`reps` wall-clock of `f`, in milliseconds.
fn measure_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best * 1e3
}

/// Times one psum front-end shape on both kernel families, asserting the
/// outputs bit-identical first.
fn bench_shape(
    cfg: &CimConfig,
    label: &str,
    in_ch: usize,
    out_ch: usize,
    hw: usize,
    batch: usize,
    reps: usize,
) -> KernelPoint {
    let plan = TilingPlan::new(cfg, in_ch, out_ch, 3, 3);
    let scales: Vec<f32> = (0..plan.num_row_tiles * out_ch)
        .map(|i| 0.02 + 0.001 * i as f32)
        .collect();
    let pl = PsumPipeline::new(plan, cfg.bit_split(), 1, 1, 0.05, scales, None);
    let p = pl.plan().clone();

    let mut rng = CqRng::new(4077);
    let w_int = rng
        .uniform_tensor(&[out_ch, in_ch, 3, 3], -4.0, 4.0)
        .map(|v| v.floor().clamp(-4.0, 3.0));
    let grouped = pl.split_grouped_weights(&w_int);
    let int_weights = pl
        .split_grouped_weights_int(&grouped, 127.0)
        .expect("unperturbed slices are integer-eligible");
    // Channel-padded integer activations (the padding lanes carry values
    // here; both kernels see the same tensor, so equality still pins).
    let a_pad = rng
        .uniform_tensor(&[batch, p.padded_in_ch, hw, hw], 0.0, 8.0)
        .map(f32::floor);

    let mut ps_s: Vec<Tensor> = Vec::new();
    let mut ps_f: Vec<Tensor> = Vec::new();
    let mut col: Vec<f32> = Vec::new();
    let mut ps_i: Vec<Tensor> = Vec::new();
    // Warm every backend once and pin bit-identity before timing.
    pl.grouped_psums_into(&ScalarRef, &a_pad, &grouped, &mut ps_s, &mut col);
    pl.grouped_psums_into(&SimdF32, &a_pad, &grouped, &mut ps_f, &mut col);
    pl.grouped_psums_int_into(
        &IntPanels,
        &a_pad,
        &int_weights,
        0..p.num_row_tiles,
        &mut ps_i,
    );
    assert_eq!(ps_s, ps_f, "{label}: scalar and f32 backends diverged");
    assert_eq!(ps_f, ps_i, "{label}: f32 and integer backends diverged");

    let scalar_ms = measure_ms(reps, || {
        pl.grouped_psums_into(&ScalarRef, &a_pad, &grouped, &mut ps_s, &mut col);
        std::hint::black_box(&ps_s);
    });
    let f32_ms = measure_ms(reps, || {
        pl.grouped_psums_into(&SimdF32, &a_pad, &grouped, &mut ps_f, &mut col);
        std::hint::black_box(&ps_f);
    });
    let int_ms = measure_ms(reps, || {
        pl.grouped_psums_int_into(
            &IntPanels,
            &a_pad,
            &int_weights,
            0..p.num_row_tiles,
            &mut ps_i,
        );
        std::hint::black_box(&ps_i);
    });
    KernelPoint {
        label: label.to_string(),
        in_ch,
        out_ch,
        hw,
        batch,
        splits: p.num_splits,
        row_tiles: p.num_row_tiles,
        scalar_ms,
        f32_ms,
        int_ms,
        speedup: f32_ms / int_ms.max(1e-9),
    }
}

/// One benchmark shape row: `(label, in_ch, out_ch, hw, batch)`.
type ShapeRow = (&'static str, usize, usize, usize, usize);

/// Measures every shape plus the end-to-end engine comparison.
pub fn measure(scale: Scale) -> KernelsResult {
    // Shape table per scale; the first row is the serving model's
    // dominant mid-stage shape, the rest stress channel width (more row
    // tiles) and spatial size (longer GEMM columns).
    let (shapes, reps, engine_requests, engine_reps): (&[ShapeRow], _, _, _) = match scale {
        Scale::Ci => (
            &[
                ("stage_8x8", 16, 16, 8, 2),
                ("wide_8x8", 32, 32, 8, 2),
                ("spatial_16x16", 16, 16, 16, 2),
            ],
            3,
            16,
            2,
        ),
        Scale::Quick => (
            &[
                ("stage_8x8", 16, 16, 8, 4),
                ("wide_8x8", 64, 64, 8, 4),
                ("spatial_16x16", 32, 32, 16, 4),
                ("deep_4x4", 128, 128, 4, 4),
            ],
            5,
            64,
            3,
        ),
        Scale::Full => (
            &[
                ("stage_8x8", 16, 16, 8, 8),
                ("wide_8x8", 64, 64, 8, 8),
                ("spatial_32x32", 32, 32, 32, 8),
                ("deep_4x4", 256, 256, 4, 8),
            ],
            7,
            192,
            3,
        ),
    };
    let cfg = CimConfig::cifar10();
    let points: Vec<KernelPoint> = shapes
        .iter()
        .map(|&(label, ic, oc, hw, b)| bench_shape(&cfg, label, ic, oc, hw, b, reps))
        .collect();

    // End-to-end: the throughput benchmark's serving model with kernels
    // forced to f32 vs `Auto` integer selection, same coalescing cap.
    let setting = ExperimentSetting::cifar10(scale, 400);
    let (c, hw) = (setting.data.channels, setting.data.image_size);
    let mut net = build_cim_resnet(
        setting.model.clone(),
        &setting.cim,
        &QuantScheme::ours(),
        401,
    );
    let warm = CqRng::new(402)
        .normal_tensor(&[2, c, hw, hw], 1.0)
        .map(|v| v.max(0.0));
    let _ = net.forward(&warm, Mode::Eval);
    let rng = &mut CqRng::new(403);
    let requests: Vec<Tensor> = (0..engine_requests)
        .map(|_| rng.normal_tensor(&[1, c, hw, hw], 1.0).map(|v| v.max(0.0)))
        .collect();
    let mut pm = PreparedCimModel::new(Box::new(net));
    pm.set_max_batch(Some(8));
    let engine_ips = |pm: &mut PreparedCimModel, backends: BackendSet| {
        pm.set_backends(backends)
            .expect("benchmark backend chain rejected");
        let mut best = f64::INFINITY;
        for _ in 0..engine_reps {
            let t0 = Instant::now();
            std::hint::black_box(pm.infer_batch(&requests));
            best = best.min(t0.elapsed().as_secs_f64());
        }
        engine_requests as f64 / best.max(1e-9)
    };
    let engine_f32_ips = engine_ips(&mut pm, BackendSet::f32());
    let engine_int_ips = engine_ips(&mut pm, BackendSet::auto());
    let (integer_convs, total_convs) = pm.count_integer_kernels();

    KernelsResult {
        scale,
        threads: max_threads(),
        shapes: points,
        engine_requests,
        engine_f32_ips,
        engine_int_ips,
        engine_speedup: engine_int_ips / engine_f32_ips.max(1e-9),
        integer_convs,
        total_convs,
    }
}

/// Runs the experiment, writes `BENCH_kernels.json`, and returns the
/// markdown report.
pub fn run(scale: Scale) -> String {
    let r = measure(scale);
    std::fs::write("BENCH_kernels.json", r.to_json()).expect("write BENCH_kernels.json");

    let rows: Vec<Vec<String>> = r
        .shapes
        .iter()
        .map(|p| {
            vec![
                p.label.clone(),
                format!("{}→{}·{}²·b{}", p.in_ch, p.out_ch, p.hw, p.batch),
                format!("{}", p.row_tiles),
                format!("{:.2}", p.scalar_ms),
                format!("{:.2}", p.f32_ms),
                format!("{:.2}", p.int_ms),
                format!("{:.2}x", p.speedup),
            ]
        })
        .collect();
    let mut out = String::from("## Psum kernels — scalar vs f32 vs integer i8/i32 backends\n\n");
    out.push_str(&format!(
        "Bit-identical outputs checked before every timing; {} threads ({:?} scale).\n\n",
        r.threads, r.scale
    ));
    out.push_str(&markdown_table(
        &[
            "shape",
            "dims",
            "row tiles",
            "scalar ms",
            "f32 ms",
            "int ms",
            "speedup",
        ],
        &rows,
    ));
    out.push_str(&format!(
        "\nEnd-to-end frozen engine ({} single-image requests, max_batch=8): \
         {:.1} → {:.1} images/sec, **{:.2}x** with the integer kernels active \
         in {}/{} convs (written to `BENCH_kernels.json`).\n",
        r.engine_requests,
        r.engine_f32_ips,
        r.engine_int_ips,
        r.engine_speedup,
        r.integer_convs,
        r.total_convs
    ));
    out
}
