//! **Scheme zoo comparison** — the paper's column-wise LSQ scheme
//! against the two extension schemes riding the same QAT → freeze →
//! serve path: **BWMA** (binary weights, ±1 codebook, single bit-split)
//! and **hybrid-ADC** (low-order bit-splits carried digitally past the
//! ADC). Per scheme: quantized accuracy after scheme-driven training,
//! ADC cost (conversions and energy per output pixel, discounted for
//! digitally-carried splits), and frozen-engine serving throughput —
//! with a frozen-vs-unfrozen bit-exactness check pinned before any
//! timing. Results go to `BENCH_schemes.json` (a CI artifact).

use crate::experiments::run_scheme;
use crate::{markdown_table, ExperimentSetting, Scale};
use cq_core::{for_each_cim_conv, PreparedCimModel, QuantScheme};
use cq_nn::{Layer, Mode};
use cq_tensor::{max_threads, CqRng, Tensor};
use std::time::Instant;

/// One scheme's measured row.
#[derive(Debug, Clone)]
pub struct SchemePoint {
    /// Scheme name ([`QuantScheme::name`]) — the registry/stats key.
    pub name: String,
    /// Human-readable scheme label.
    pub label: String,
    /// Weight bits after the scheme's config override.
    pub weight_bits: usize,
    /// Bit-splits per weight (1 for binary).
    pub splits: usize,
    /// Low-order splits carried digitally (0 = all-ADC).
    pub digital_splits: usize,
    /// Final quantized test accuracy after scheme-driven training.
    pub acc: f32,
    /// Wall-clock training seconds.
    pub train_seconds: f64,
    /// ADC conversions per output pixel, summed over layers and
    /// discounted for digitally-carried splits.
    pub adc_conversions_per_pixel: usize,
    /// ADC energy per output pixel (pJ), same discount.
    pub adc_energy_pj_per_pixel: f64,
    /// `adc_energy_pj_per_pixel / paper scheme's` (1.0 for the paper row).
    pub adc_energy_vs_paper: f64,
    /// Frozen-engine serving throughput (images/sec, best-of reps).
    pub images_per_sec: f64,
    /// `images_per_sec / paper scheme's` (1.0 for the paper row).
    pub speedup_vs_paper: f64,
    /// Frozen convs dispatching to the integer kernels under `Auto`.
    pub integer_convs: usize,
    /// Total frozen CIM convs.
    pub total_convs: usize,
}

/// Full result of the scheme-zoo comparison.
#[derive(Debug, Clone)]
pub struct SchemesResult {
    /// Experiment size.
    pub scale: Scale,
    /// Effective thread cap during the run.
    pub threads: usize,
    /// One row per scheme, paper scheme first.
    pub rows: Vec<SchemePoint>,
}

impl SchemesResult {
    /// Renders the machine-readable report (hand-rolled JSON; the
    /// workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str("  \"schemes\": [\n");
        for (i, p) in self.rows.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"name\": \"{}\", \"label\": \"{}\", \"weight_bits\": {}, \
                 \"splits\": {}, \"digital_splits\": {}, \"acc\": {:.4}, \
                 \"train_seconds\": {:.3}, \"adc_conversions_per_pixel\": {}, \
                 \"adc_energy_pj_per_pixel\": {:.3}, \"adc_energy_vs_paper\": {:.3}, \
                 \"images_per_sec\": {:.3}, \"speedup_vs_paper\": {:.3}, \
                 \"integer_convs\": {}, \"total_convs\": {}}}{}\n",
                p.name,
                p.label,
                p.weight_bits,
                p.splits,
                p.digital_splits,
                p.acc,
                p.train_seconds,
                p.adc_conversions_per_pixel,
                p.adc_energy_pj_per_pixel,
                p.adc_energy_vs_paper,
                p.images_per_sec,
                p.speedup_vs_paper,
                p.integer_convs,
                p.total_convs,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// Trains, costs, and serves one scheme end-to-end.
fn bench_scheme(
    setting: &ExperimentSetting,
    scheme: &QuantScheme,
    seed: u64,
    requests: usize,
    reps: usize,
) -> SchemePoint {
    let (mut net, result) = run_scheme(setting, scheme, seed);

    // ADC cost, with digitally-carried splits bypassing the converter:
    // `adc_conversions_per_pixel` counts every physical column, which is
    // `num_splits` per logical column — scale by the analog split share.
    let (mut conversions, mut energy) = (0usize, 0.0f64);
    let (mut weight_bits, mut splits, mut digital) = (0usize, 0usize, 0usize);
    for_each_cim_conv(&mut net, |c| {
        let cost = c.cost();
        let n = c.plan().num_splits;
        let d = c.digital_splits();
        conversions += cost.adc_conversions_per_pixel / n * (n - d);
        energy += cost.adc_energy_pj_per_pixel * (n - d) as f64 / n as f64;
        weight_bits = c.cim_config().weight_bits as usize;
        splits = n;
        digital = d;
    });

    // Freeze for serving — and pin frozen == unfrozen on this scheme
    // before timing anything (the bit-exactness contract every scheme
    // rides).
    let (c, hw) = (setting.data.channels, setting.data.image_size);
    let rng = &mut CqRng::new(seed + 90);
    let probe = rng.normal_tensor(&[1, c, hw, hw], 1.0).map(|v| v.max(0.0));
    let want = net.forward(&probe, Mode::Eval);
    let mut pm = PreparedCimModel::new(Box::new(net));
    pm.set_max_batch(Some(8));
    assert_eq!(
        pm.infer(&probe),
        want,
        "{}: frozen engine diverged from the unfrozen forward",
        scheme.name
    );

    let inputs: Vec<Tensor> = (0..requests)
        .map(|_| rng.normal_tensor(&[1, c, hw, hw], 1.0).map(|v| v.max(0.0)))
        .collect();
    std::hint::black_box(pm.infer_batch(&inputs)); // warm
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        std::hint::black_box(pm.infer_batch(&inputs));
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let (integer_convs, total_convs) = pm.count_integer_kernels();

    SchemePoint {
        name: scheme.name.clone(),
        label: scheme.label.clone(),
        weight_bits,
        splits,
        digital_splits: digital,
        acc: result.final_test_acc(),
        train_seconds: result.total_seconds,
        adc_conversions_per_pixel: conversions,
        adc_energy_pj_per_pixel: energy,
        adc_energy_vs_paper: 1.0, // filled against the paper row below
        images_per_sec: requests as f64 / best.max(1e-9),
        speedup_vs_paper: 1.0, // filled against the paper row below
        integer_convs,
        total_convs,
    }
}

/// Measures the three-scheme comparison at `scale`.
pub fn measure(scale: Scale) -> SchemesResult {
    let (requests, reps) = match scale {
        Scale::Ci => (16, 3),
        Scale::Quick => (64, 3),
        Scale::Full => (192, 5),
    };
    let setting = ExperimentSetting::cifar10(scale, 500);
    let schemes = [
        QuantScheme::ours(),
        QuantScheme::bwma(),
        QuantScheme::hybrid_adc(),
    ];
    let mut rows: Vec<SchemePoint> = schemes
        .iter()
        .enumerate()
        .map(|(i, s)| bench_scheme(&setting, s, 510 + i as u64, requests, reps))
        .collect();
    let base_energy = rows[0].adc_energy_pj_per_pixel.max(1e-9);
    let base_ips = rows[0].images_per_sec.max(1e-9);
    for row in &mut rows {
        row.adc_energy_vs_paper = row.adc_energy_pj_per_pixel / base_energy;
        row.speedup_vs_paper = row.images_per_sec / base_ips;
    }
    SchemesResult {
        scale,
        threads: max_threads(),
        rows,
    }
}

/// Runs the experiment, writes `BENCH_schemes.json`, and returns the
/// markdown report.
pub fn run(scale: Scale) -> String {
    let r = measure(scale);
    std::fs::write("BENCH_schemes.json", r.to_json()).expect("write BENCH_schemes.json");

    let rows: Vec<Vec<String>> = r
        .rows
        .iter()
        .map(|p| {
            vec![
                p.name.clone(),
                format!("{}", p.weight_bits),
                format!("{}/{}", p.splits - p.digital_splits, p.splits),
                format!("{:.1}%", 100.0 * p.acc),
                format!("{}", p.adc_conversions_per_pixel),
                format!("{:.2}x", p.adc_energy_vs_paper),
                format!("{:.1}", p.images_per_sec),
                format!("{:.2}x", p.speedup_vs_paper),
                format!("{}/{}", p.integer_convs, p.total_convs),
            ]
        })
        .collect();
    let mut out = String::from(
        "## Scheme zoo — paper LSQ vs BWMA vs hybrid-ADC, QAT \u{2192} freeze \u{2192} serve\n\n",
    );
    out.push_str(&format!(
        "Frozen engine checked bit-identical to the unfrozen forward per \
         scheme before timing; {} threads ({:?} scale).\n\n",
        r.threads, r.scale
    ));
    out.push_str(&markdown_table(
        &[
            "scheme",
            "w bits",
            "analog/total splits",
            "acc",
            "ADC conv/px",
            "ADC energy",
            "img/s",
            "speedup",
            "int convs",
        ],
        &rows,
    ));
    out.push_str(
        "\nBWMA's single \u{00b1}1 bit-split cuts ADC conversions and rides the \
         integer fast path; hybrid-ADC trades ADC energy for digital adds on \
         the low-order splits (written to `BENCH_schemes.json`).\n",
    );
    out
}
