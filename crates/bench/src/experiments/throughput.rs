//! **Serving throughput** — images/sec of the frozen, batched inference
//! engine (`cq_core::PreparedCimModel`) against the unprepared per-call
//! path, over a stream of single-image requests.
//!
//! The unprepared baseline is what a naive server would do: one
//! `forward(Mode::Eval)` per request, re-quantizing and re-splitting the
//! weights of every CIM layer each call. The prepared engine freezes the
//! weight-side work once at load and coalesces requests into micro-batch
//! sweeps (swept at several `max_batch` settings).
//!
//! Results are returned as markdown and also written to
//! `BENCH_throughput.json` (consumed by CI as an artifact). The effective
//! thread count (`CQ_THREADS` or machine parallelism) is recorded in the
//! JSON; sweep it by re-running the binary under different `CQ_THREADS`
//! values — the cap is read once per process.

use crate::{markdown_table, ExperimentSetting, Scale};
use cq_core::{build_cim_resnet, BackendKind, PreparedCimModel, QuantScheme};
use cq_nn::{Layer, Mode};
use cq_tensor::{exec, max_threads, CqRng, Tensor};
use std::time::Instant;

/// One measured serving configuration.
#[derive(Debug, Clone)]
pub struct ThroughputPoint {
    /// Coalescing cap (images per sweep).
    pub max_batch: usize,
    /// Serving rate over the whole request stream.
    pub images_per_sec: f64,
}

/// One executor configuration of the A/B comparison (fixed `max_batch`).
#[derive(Debug, Clone)]
pub struct ExecutorPoint {
    /// `spawn_per_call` (pre-executor behaviour), `pooled` (persistent
    /// pool, pipelining off), or `pooled_pipelined` (persistent pool +
    /// cross-layer wave pipelining — the serving default).
    pub mode: &'static str,
    /// Serving rate over the whole request stream.
    pub images_per_sec: f64,
    /// OS threads created during the measured sweeps (after warm-up).
    /// Asserted `0` for both pooled modes.
    pub spawned_threads: usize,
}

/// Full result of the throughput experiment.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Experiment size.
    pub scale: Scale,
    /// Effective thread cap during the run.
    pub threads: usize,
    /// Number of single-image requests served per measurement.
    pub requests: usize,
    /// Image shape `[C, H, W]`.
    pub image: [usize; 3],
    /// Unprepared per-request baseline.
    pub unprepared_ips: f64,
    /// Prepared engine at each coalescing cap.
    pub prepared: Vec<ThroughputPoint>,
    /// Executor A/B at the largest coalescing cap: spawn-per-call vs
    /// pooled vs pooled + pipelined.
    pub executor: Vec<ExecutorPoint>,
    /// Active frozen convolutions per execution backend (indexed by
    /// [`BackendKind::index`]) in the prepared engine's default chain.
    pub backend_layers: [usize; 3],
    /// Best prepared rate / unprepared rate.
    pub speedup: f64,
}

impl ThroughputResult {
    /// Renders the machine-readable report (hand-rolled JSON; the
    /// workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"requests\": {},\n", self.requests));
        s.push_str(&format!(
            "  \"image\": [{}, {}, {}],\n",
            self.image[0], self.image[1], self.image[2]
        ));
        s.push_str(&format!(
            "  \"unprepared_images_per_sec\": {:.3},\n",
            self.unprepared_ips
        ));
        s.push_str("  \"prepared\": [\n");
        for (i, p) in self.prepared.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"max_batch\": {}, \"images_per_sec\": {:.3}}}{}\n",
                p.max_batch,
                p.images_per_sec,
                if i + 1 < self.prepared.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"executor\": [\n");
        for (i, e) in self.executor.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"mode\": \"{}\", \"images_per_sec\": {:.3}, \"spawned_threads\": {}}}{}\n",
                e.mode,
                e.images_per_sec,
                e.spawned_threads,
                if i + 1 < self.executor.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"backends\": [\n");
        for (i, kind) in BackendKind::ALL.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"backend\": \"{}\", \"active_layers\": {}}}{}\n",
                kind.name(),
                self.backend_layers[kind.index()],
                if i + 1 < BackendKind::ALL.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str(&format!(
            "  \"speedup_vs_unprepared\": {:.3}\n",
            self.speedup
        ));
        s.push('}');
        s.push('\n');
        s
    }
}

/// Best-of-`reps` serving rate for `f`, which serves `images` images.
fn measure_ips(images: usize, reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    images as f64 / best.max(1e-9)
}

/// Measures throughput and returns the structured result.
pub fn measure(scale: Scale) -> ThroughputResult {
    let setting = ExperimentSetting::cifar10(scale, 400);
    let (num_requests, reps, batches): (usize, usize, &[usize]) = match scale {
        Scale::Ci => (24, 2, &[1, 4, 8]),
        Scale::Quick => (96, 3, &[1, 2, 4, 8, 16, 32]),
        Scale::Full => (256, 3, &[1, 4, 16, 64, 256]),
    };
    let (c, hw) = (setting.data.channels, setting.data.image_size);

    let mut net = build_cim_resnet(
        setting.model.clone(),
        &setting.cim,
        &QuantScheme::ours(),
        401,
    );
    // One warm-up forward initializes every lazy quantizer scale.
    let warm = CqRng::new(402)
        .normal_tensor(&[2, c, hw, hw], 1.0)
        .map(|v| v.max(0.0));
    let _ = net.forward(&warm, Mode::Eval);

    let rng = &mut CqRng::new(403);
    let requests: Vec<Tensor> = (0..num_requests)
        .map(|_| rng.normal_tensor(&[1, c, hw, hw], 1.0).map(|v| v.max(0.0)))
        .collect();

    // Unprepared baseline: one full per-call forward per request.
    let unprepared_ips = measure_ips(num_requests, reps, || {
        for r in &requests {
            std::hint::black_box(net.forward(r, Mode::Eval));
        }
    });

    // Prepared engine: weight-side work frozen once, micro-batch sweeps.
    let mut pm = PreparedCimModel::new(Box::new(net));
    let mut prepared = Vec::new();
    for &b in batches {
        pm.set_max_batch(Some(b));
        let ips = measure_ips(num_requests, reps, || {
            std::hint::black_box(pm.infer_batch(&requests));
        });
        prepared.push(ThroughputPoint {
            max_batch: b,
            images_per_sec: ips,
        });
    }
    // Executor A/B at the largest cap: the pre-pool spawn-per-call
    // reference, the persistent pool alone, and the pool with cross-layer
    // wave pipelining (the serving default). Outputs are bit-identical
    // across all three — only the schedule differs.
    pm.set_max_batch(Some(*batches.last().unwrap()));
    let mut executor = Vec::new();
    for (mode, backend, depth) in [
        ("spawn_per_call", exec::Backend::SpawnPerCall, 1usize),
        ("pooled", exec::Backend::Pooled, 1),
        ("pooled_pipelined", exec::Backend::Pooled, 2),
    ] {
        exec::set_backend(backend);
        pm.set_pipeline_depth(depth);
        // Warm-up sweep: lazily creates the global pool; the measured
        // sweeps after it must spawn nothing on the pooled backend.
        std::hint::black_box(pm.infer_batch(&requests));
        let spawned_before = exec::os_threads_spawned();
        let ips = measure_ips(num_requests, reps, || {
            std::hint::black_box(pm.infer_batch(&requests));
        });
        let spawned_threads = exec::os_threads_spawned() - spawned_before;
        assert!(
            backend == exec::Backend::SpawnPerCall || spawned_threads == 0,
            "pooled serving must spawn zero OS threads per sweep (saw {spawned_threads})"
        );
        executor.push(ExecutorPoint {
            mode,
            images_per_sec: ips,
            spawned_threads,
        });
    }
    exec::set_backend(exec::Backend::Pooled);
    pm.set_pipeline_depth(2);

    let best = prepared
        .iter()
        .map(|p| p.images_per_sec)
        .fold(0.0f64, f64::max);
    let backend_layers = pm.backend_layer_counts();
    ThroughputResult {
        scale,
        threads: max_threads(),
        requests: num_requests,
        image: [c, hw, hw],
        unprepared_ips,
        prepared,
        executor,
        backend_layers,
        speedup: best / unprepared_ips.max(1e-9),
    }
}

/// Runs the experiment, writes `BENCH_throughput.json`, and returns the
/// markdown report.
pub fn run(scale: Scale) -> String {
    let r = measure(scale);
    std::fs::write("BENCH_throughput.json", r.to_json()).expect("write BENCH_throughput.json");

    let mut rows = vec![vec![
        "unprepared (per request)".to_string(),
        format!("{:.1}", r.unprepared_ips),
        "1.00x".to_string(),
    ]];
    for p in &r.prepared {
        rows.push(vec![
            format!("prepared, max_batch={}", p.max_batch),
            format!("{:.1}", p.images_per_sec),
            format!("{:.2}x", p.images_per_sec / r.unprepared_ips.max(1e-9)),
        ]);
    }
    let mut out = String::from("## Serving throughput — frozen engine vs per-call path\n\n");
    out.push_str(&format!(
        "Stream of {} single-image requests ({}×{}×{}), {} threads ({:?} scale).\n\n",
        r.requests, r.image[0], r.image[1], r.image[2], r.threads, r.scale
    ));
    out.push_str(&markdown_table(&["path", "images/sec", "speedup"], &rows));
    out.push_str(&format!(
        "\nBest prepared throughput is **{:.2}x** the unprepared per-call path \
         (written to `BENCH_throughput.json`).\n",
        r.speedup
    ));

    let base = r.executor.first().map(|e| e.images_per_sec).unwrap_or(0.0);
    let exec_rows: Vec<Vec<String>> = r
        .executor
        .iter()
        .map(|e| {
            vec![
                e.mode.to_string(),
                format!("{:.1}", e.images_per_sec),
                format!("{:.2}x", e.images_per_sec / base.max(1e-9)),
                e.spawned_threads.to_string(),
            ]
        })
        .collect();
    out.push_str(&format!(
        "\n### Executor comparison (max_batch={})\n\n",
        r.prepared.last().map(|p| p.max_batch).unwrap_or(0)
    ));
    out.push_str(&markdown_table(
        &[
            "executor",
            "images/sec",
            "vs spawn-per-call",
            "threads spawned",
        ],
        &exec_rows,
    ));
    out.push_str(
        "\nBoth pooled rows spawn **zero** OS threads across the measured \
         sweeps (asserted at run time).\n",
    );
    out
}
