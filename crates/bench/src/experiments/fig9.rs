//! **Fig. 9** — accuracy versus cumulative training time for four QAT
//! schedules: {column/column, layer/column} × {one-stage, two-stage}.
//! The paper's finding: with aligned column-wise granularities, one-stage
//! QAT is both more accurate and substantially cheaper than its two-stage
//! counterpart, while the mismatched layer/column scheme *needs* two
//! stages to be efficient.

use crate::experiments::run_scheme;
use crate::{markdown_table, pct, ExperimentSetting, Scale};
use cq_core::{QuantScheme, TrainMethod};
use cq_quant::Granularity;
use cq_train::TrainResult;

/// Runs the experiment and returns the markdown report.
///
/// At `Full` scale this uses the paper's binary-ADC CIFAR-10 setting; at
/// reduced scales it uses the 3-bit-ADC CIFAR-100 setting, which is the
/// one that converges within a container-sized budget (the schedule
/// comparison needs all four cases in the trainable regime to be
/// interpretable — documented substitution, see EXPERIMENTS.md).
pub fn run(scale: Scale) -> String {
    let mut setting = if scale == Scale::Full {
        ExperimentSetting::cifar10(scale, 90)
    } else {
        ExperimentSetting::cifar100(scale, 90)
    };
    // Time-resolution needs a few more epochs than the accuracy sweeps.
    setting.train.epochs = (setting.train.epochs * 2).max(4);

    let mut out = String::from("## Fig. 9 — QAT schedule comparison (accuracy vs train time)\n\n");
    out.push_str(&format!(
        "Setting: {} | {:?} scale\n\n",
        setting.name, scale
    ));

    let cases: Vec<(&str, QuantScheme)> = vec![
        (
            "(i) C/C one-stage (ours)",
            QuantScheme::custom(Granularity::Column, Granularity::Column),
        ),
        (
            "(ii) L/C one-stage",
            QuantScheme::custom(Granularity::Layer, Granularity::Column),
        ),
        (
            "(iii) C/C two-stage",
            QuantScheme::custom(Granularity::Column, Granularity::Column)
                .with_method(TrainMethod::TwoStageQat),
        ),
        (
            "(iv) L/C two-stage ([9])",
            QuantScheme::custom(Granularity::Layer, Granularity::Column)
                .with_method(TrainMethod::TwoStageQat),
        ),
    ];

    // Best *quantized* accuracy: for two-stage runs only stage-2 epochs
    // count (stage 1 trains with ideal partial sums and is not a deployable
    // operating point).
    let best_quantized = |r: &TrainResult| -> f32 {
        let from = r.stage_boundaries.last().copied().unwrap_or(0);
        r.history[from..]
            .iter()
            .map(|e| e.test_acc)
            .fold(f32::NEG_INFINITY, f32::max)
    };

    let mut results: Vec<(String, TrainResult)> = Vec::new();
    let mut rows = Vec::new();
    for (label, scheme) in &cases {
        let (_, result) = run_scheme(&setting, scheme, 91);
        rows.push(vec![
            label.to_string(),
            pct(result.final_test_acc()),
            pct(best_quantized(&result)),
            format!("{:.1}s", result.total_seconds),
            if result.stage_boundaries.is_empty() {
                "-".into()
            } else {
                format!("epoch {}", result.stage_boundaries[0])
            },
        ]);
        results.push((label.to_string(), result));
    }
    out.push_str(&markdown_table(
        &[
            "case",
            "final top-1",
            "best quantized top-1",
            "train time",
            "stage-2 start",
        ],
        &rows,
    ));
    out.push('\n');

    // Time-to-accuracy savings, mirroring the paper's plus/circle/star
    // marks.
    let mut savings_rows = Vec::new();
    let pairs = [
        (
            0usize,
            2usize,
            "one-stage C/C reaches two-stage C/C best (circle marks)",
        ),
        (
            1,
            3,
            "one-stage L/C reaches two-stage L/C best (plus marks)",
        ),
        (
            0,
            1,
            "C/C one-stage reaches L/C one-stage best (star marks)",
        ),
    ];
    for (fast_i, ref_i, desc) in pairs {
        let (fast_label, fast) = &results[fast_i];
        let (ref_label, reference) = &results[ref_i];
        let target = best_quantized(reference);
        match fast.time_to_accuracy(target) {
            Some(t) => {
                let saving = 100.0 * (1.0 - t / reference.total_seconds);
                savings_rows.push(vec![
                    desc.to_string(),
                    format!("{fast_label} vs {ref_label}"),
                    pct(target),
                    format!("{saving:+.2}% time saved"),
                ]);
            }
            None => savings_rows.push(vec![
                desc.to_string(),
                format!("{fast_label} vs {ref_label}"),
                pct(target),
                "target not reached".into(),
            ]),
        }
    }
    out.push_str("Time-to-accuracy analysis (paper analogues: −34.27%, −19.62%, −8.61%):\n\n");
    out.push_str(&markdown_table(
        &["paper mark", "comparison", "target top-1", "result"],
        &savings_rows,
    ));
    out
}
