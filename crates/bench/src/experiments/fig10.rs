//! **Fig. 10** — inference accuracy under memory-cell variation
//! (`w_var = w·e^θ`, θ ~ N(0, σ), Eq. (5)) for the five compared schemes,
//! σ swept over 0…0.25. The paper's finding: the column-wise scheme keeps
//! the highest accuracy at every variation level.

use crate::experiments::{run_scheme, setting_data};
use crate::{markdown_table, pct, ExperimentSetting, Scale};
use cq_cim::FIG10_SIGMAS;
use cq_core::{set_variation, QuantScheme, VariationMode};
use cq_train::evaluate;

/// Number of noise seeds averaged per (scheme, σ) point.
fn seeds_for(scale: Scale) -> u64 {
    match scale {
        Scale::Ci => 1,
        Scale::Quick => 3,
        Scale::Full => 5,
    }
}

/// Runs the experiment and returns the markdown report.
///
/// At `Full` scale this uses the paper's binary-ADC CIFAR-10 setting; at
/// reduced scales it uses the 3-bit-ADC CIFAR-100 setting so every scheme
/// sits in the trainable regime and the robustness *curves* are
/// interpretable (documented substitution, see EXPERIMENTS.md).
pub fn run(scale: Scale) -> String {
    let setting = if scale == Scale::Full {
        ExperimentSetting::cifar10(scale, 100)
    } else {
        ExperimentSetting::cifar100(scale, 100)
    };
    let nseeds = seeds_for(scale);
    let mut out = String::from("## Fig. 10 — robustness to memory-cell variation\n\n");
    out.push_str(&format!(
        "Setting: {} | {:?} scale | {} noise seed(s) per point | per-weight log-normal (Eq. 5)\n\n",
        setting.name, scale, nseeds
    ));

    let (_, test_ds) = setting_data(&setting);
    let mut rows = Vec::new();
    let mut ours_curve = Vec::new();
    let mut best_related_curve = vec![f32::NEG_INFINITY; FIG10_SIGMAS.len()];
    for scheme in QuantScheme::all_compared() {
        let (mut net, _) = run_scheme(&setting, &scheme, 101);
        let mut row = vec![scheme.label.clone()];
        for (si, &sigma) in FIG10_SIGMAS.iter().enumerate() {
            let mut acc_sum = 0.0f32;
            for seed in 0..nseeds {
                set_variation(
                    &mut net,
                    (sigma > 0.0).then_some(sigma),
                    VariationMode::PerWeight,
                    0xF1610 + seed,
                );
                acc_sum += evaluate(&mut net, &test_ds, setting.train.batch_size);
            }
            set_variation(&mut net, None, VariationMode::PerWeight, 0);
            let acc = acc_sum / nseeds as f32;
            row.push(pct(acc));
            if scheme.label == "Ours" {
                ours_curve.push(acc);
            } else {
                best_related_curve[si] = best_related_curve[si].max(acc);
            }
        }
        rows.push(row);
    }
    let headers: Vec<String> = std::iter::once("scheme".to_string())
        .chain(FIG10_SIGMAS.iter().map(|s| format!("σ={s:.2}")))
        .collect();
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    out.push_str(&markdown_table(&headers_ref, &rows));

    let wins = ours_curve
        .iter()
        .zip(&best_related_curve)
        .filter(|(o, r)| o >= r)
        .count();
    out.push_str(&format!(
        "\nOurs leads the related works at {wins}/{} variation levels (paper: all levels).\n",
        FIG10_SIGMAS.len()
    ));
    out
}
