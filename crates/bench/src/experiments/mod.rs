//! One module per paper table/figure, plus shared run helpers.
//!
//! Every `run(scale)` returns the report as a markdown string (and the
//! binaries print it), so `EXPERIMENTS.md` can be regenerated mechanically.

pub mod ablations;
pub mod fig10;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod kernels;
pub mod schemes;
pub mod serving;
pub mod tables;
pub mod throughput;

use crate::ExperimentSetting;
use cq_core::{build_cim_resnet, set_psum_quant_enabled, QuantScheme};
use cq_data::{generate, Dataset};
use cq_nn::{Layer, Mode, ResNet};
use cq_quant::Granularity;
use cq_train::{train_with_scheme, TrainResult};

/// Result of one trained configuration.
#[derive(Debug, Clone)]
pub struct SchemeRun {
    /// Scheme label.
    pub label: String,
    /// Weight granularity.
    pub w_gran: Granularity,
    /// Partial-sum granularity.
    pub p_gran: Granularity,
    /// Final quantized test accuracy.
    pub acc: f32,
    /// Wall-clock training seconds.
    pub seconds: f64,
}

/// Generates the setting's dataset (train, test).
pub fn setting_data(setting: &ExperimentSetting) -> (Dataset, Dataset) {
    generate(&setting.data)
}

/// Trains one scheme under a setting; returns the model and its history.
pub fn run_scheme(
    setting: &ExperimentSetting,
    scheme: &QuantScheme,
    seed: u64,
) -> (ResNet, TrainResult) {
    let (train_ds, test_ds) = setting_data(setting);
    let mut net = build_cim_resnet(setting.model.clone(), &setting.cim, scheme, seed);
    let result = train_with_scheme(&mut net, scheme, &train_ds, &test_ds, &setting.train);
    (net, result)
}

/// Trains a model with the given weight granularity but **no partial-sum
/// quantization** — the dashed "without PSQ" reference lines of Fig. 7.
pub fn run_no_psq(setting: &ExperimentSetting, w_gran: Granularity, seed: u64) -> TrainResult {
    let (train_ds, test_ds) = setting_data(setting);
    let scheme = QuantScheme::custom(w_gran, Granularity::Column);
    let mut net = build_cim_resnet(setting.model.clone(), &setting.cim, &scheme, seed);
    set_psum_quant_enabled(&mut net, false);
    let mut result = TrainResult::default();
    let mut opt = cq_nn::Sgd::new(
        setting.train.lr.lr_at(0),
        setting.train.momentum,
        setting.train.weight_decay,
    );
    cq_train::train_epochs(
        &mut net,
        &train_ds,
        &test_ds,
        &setting.train,
        &mut opt,
        &mut result,
    );
    result
}

/// Trains the full-precision reference model.
pub fn run_fp(setting: &ExperimentSetting, seed: u64) -> TrainResult {
    let (train_ds, test_ds) = setting_data(setting);
    let scheme = QuantScheme::ours();
    let mut net = build_cim_resnet(setting.model.clone(), &setting.cim, &scheme, seed);
    cq_core::set_quant_enabled(&mut net, false);
    let mut result = TrainResult::default();
    let mut opt = cq_nn::Sgd::new(
        setting.train.lr.lr_at(0),
        setting.train.momentum,
        setting.train.weight_decay,
    );
    cq_train::train_epochs(
        &mut net,
        &train_ds,
        &test_ds,
        &setting.train,
        &mut opt,
        &mut result,
    );
    result
}

/// Trains all nine weight×psum granularity combinations with one-stage
/// QAT (the sweep behind Fig. 7 and Fig. 8).
pub fn granularity_sweep(setting: &ExperimentSetting, seed: u64) -> Vec<SchemeRun> {
    let mut runs = Vec::new();
    for w in Granularity::ALL {
        for p in Granularity::ALL {
            let scheme = QuantScheme::custom(w, p);
            let (_, result) = run_scheme(setting, &scheme, seed);
            runs.push(SchemeRun {
                label: scheme.label.clone(),
                w_gran: w,
                p_gran: p,
                acc: result.final_test_acc(),
                seconds: result.total_seconds,
            });
        }
    }
    runs
}

/// Evaluates a trained model's accuracy on the setting's test split.
pub fn eval_on(setting: &ExperimentSetting, model: &mut dyn Layer) -> f32 {
    let (_, test_ds) = setting_data(setting);
    cq_train::evaluate(model, &test_ds, setting.train.batch_size)
}

/// Runs one eval forward pass so lazily-initialized quantizer scales
/// exist (e.g. before exporting to the crossbar engine).
pub fn warm_up(setting: &ExperimentSetting, model: &mut dyn Layer) {
    let (_, test_ds) = setting_data(setting);
    let batch =
        cq_data::eval_batches(&test_ds, setting.train.batch_size.min(test_ds.len())).remove(0);
    let _ = model.forward(&batch.images, Mode::Eval);
}
