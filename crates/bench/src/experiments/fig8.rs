//! **Fig. 8** — top-1 accuracy versus dequantization overhead on the
//! CIFAR-100 setting (4b weights, 2b cells). The nine granularity
//! combinations fall into three overhead classes; within a class, finer
//! *weight* granularity should win — column-wise weights buy accuracy for
//! free.

use crate::experiments::granularity_sweep;
use crate::{markdown_table, pct, ExperimentSetting, Scale};
use cq_cim::{dequant_mults, overhead_class, TilingPlan};

/// Runs the experiment and returns the markdown report.
pub fn run(scale: Scale) -> String {
    let setting = ExperimentSetting::cifar100(scale, 80);
    let mut out = String::from("## Fig. 8 — accuracy vs dequantization overhead (CIFAR-100)\n\n");
    out.push_str(&format!(
        "Setting: {} | {:?} scale\n\n",
        setting.name, scale
    ));

    // A representative layer for the per-layer multiplication counts: the
    // widest stage of the model.
    let w = *setting.model.stage_widths.last().unwrap();
    let plan = TilingPlan::new(&setting.cim, w, w, 3, 3);

    let sweep = granularity_sweep(&setting, 81);
    let mut rows: Vec<(usize, Vec<String>)> = sweep
        .iter()
        .map(|r| {
            let mults = dequant_mults(&plan, r.w_gran, r.p_gran);
            (
                mults,
                vec![
                    format!("{:?}", overhead_class(r.w_gran, r.p_gran)),
                    mults.to_string(),
                    r.label.clone(),
                    pct(r.acc),
                ],
            )
        })
        .collect();
    rows.sort_by_key(|(m, row)| (*m, row[2].clone()));
    let rows: Vec<Vec<String>> = rows.into_iter().map(|(_, r)| r).collect();
    out.push_str(&markdown_table(
        &[
            "overhead class",
            "dequant mults (repr. layer)",
            "combo (W/P)",
            "top-1",
        ],
        &rows,
    ));

    // The paper's headline check: same overhead class, finer weights win.
    let acc_of = |label: &str| sweep.iter().find(|r| r.label == label).map(|r| r.acc);
    if let (Some(cc), Some(lc)) = (acc_of("C/C"), acc_of("L/C")) {
        out.push_str(&format!(
            "\nSame overhead (per-column class): C/C = {} vs L/C = {} → {}\n",
            pct(cc),
            pct(lc),
            if cc >= lc {
                "column-wise weights win at equal overhead (paper claim reproduced)"
            } else {
                "ordering NOT reproduced at this scale"
            }
        ));
    }
    out
}
