//! **Serving SLO** — open-loop latency/throughput of the `cq-serve`
//! front-end (bounded queue + SLO-aware batch scheduler + work-stealing
//! shard pool + multi-model registry) under seeded Poisson-ish request
//! streams, driven through the **owned-session client**: one replay
//! thread keeps every ticket in flight and multiplexes completions
//! through a single `CompletionSet::wait_any_timeout` loop (no
//! thread-per-ticket), with every wait bounded so a scheduler regression
//! fails CI loudly instead of hanging it.
//!
//! The experiment first calibrates closed-loop capacity (submit
//! everything at once, Block admission), then replays four open-loop
//! points against two resident models:
//!
//! * **underload** — ~60% of calibrated capacity, Block admission, mixed
//!   `Latency`/`Bulk` classes, sharding enabled;
//! * **overload-fifo** — ~130% of capacity, Reject admission, all-bulk
//!   FIFO scheduling with sharding off — the PR 3 baseline;
//! * **overload-slo** — the **same offered load** with 50% latency-class
//!   tickets (deadlines attached) and sharding enabled, so the artifact
//!   directly shows the latency-class p99 win over FIFO at equal load;
//! * **overload-aged** — the identical stream again under
//!   `SchedulerPolicy::Aging`, so the artifact also shows the bulk
//!   starvation bound working (aged promotions > 0, bulk p99 pulled back
//!   toward the FIFO level) at a small latency-class cost.
//!
//! Per point it reports p50/p99 submit→complete latency (overall and per
//! class), deadline-miss rate, achieved images/sec, shed requests, queue
//! depth, shard-pool counters, and aged promotions. Results are returned
//! as markdown and written to `BENCH_serving.json`; the sharded/SLO
//! points are also written to `BENCH_serving_sharded.json` (both
//! consumed by CI as artifacts). Arrival schedules and inputs are
//! seeded; wall-clock numbers vary with the machine, the stream replayed
//! does not.

use crate::{markdown_table, ExperimentSetting, Scale};
use cq_core::{build_cim_resnet, PreparedCimModel, QuantScheme};
use cq_nn::{Layer, Mode};
use cq_serve::{
    Admission, BackendKind, BackendStats, CimServer, CompletionSet, LatencyHistogram, ModelId,
    ModelRegistry, Request, SchedulerPolicy, ServeConfig, ServeSession, ServeStats, Slo,
    StreamSpec, SubmitError, TenantSpec,
};
use cq_tensor::{max_threads, CqRng, Tensor};
use std::time::{Duration, Instant};

/// Upper bound on any single completion wait during a replay: generous
/// against slow CI machines, but finite — a scheduler deadlock or lost
/// wakeup fails the benchmark instead of hanging the job.
const STALL_BOUND: Duration = Duration::from_secs(120);

/// Per-SLO-class measurements at one load point.
#[derive(Debug, Clone)]
pub struct ClassPoint {
    /// Class label ("latency" / "bulk").
    pub slo: &'static str,
    /// Tickets completed under this class.
    pub completed: u64,
    /// Completions after their deadline.
    pub missed: u64,
    /// Median submit→complete latency.
    pub p50_ms: f64,
    /// 99th-percentile submit→complete latency.
    pub p99_ms: f64,
}

/// One measured offered-load point.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Point label ("underload" / "overload-fifo" / "overload-slo" /
    /// "overload-aged").
    pub label: &'static str,
    /// Admission policy at this point.
    pub admission: Admission,
    /// Offered arrival rate, requests/sec (requests carry 1–6 images).
    pub offered_rps: f64,
    /// Fraction of stream requests carrying the latency class (classes
    /// are reported against the stream labels even at the FIFO point).
    pub latency_fraction: f64,
    /// `true` = PR 3 FIFO baseline (every request submitted as bulk);
    /// `false` = SLO scheduling with the stream's classes.
    pub fifo: bool,
    /// Whether batch-segment + row-tile sharding was enabled.
    pub sharded: bool,
    /// Scheduler policy label ("strict" / "aging").
    pub policy: &'static str,
    /// The aging threshold, when `policy == "aging"`.
    pub bulk_max_age_ms: Option<f64>,
    /// Requests admitted and served.
    pub completed: u64,
    /// Requests shed by Reject admission.
    pub rejected: u64,
    /// Served images over the point's makespan.
    pub images_per_sec: f64,
    /// Median submit→complete latency (all classes).
    pub p50_ms: f64,
    /// 99th-percentile submit→complete latency (all classes).
    pub p99_ms: f64,
    /// Fraction of deadline-carrying (stream-latency) requests that
    /// missed their deadline.
    pub deadline_miss_rate: f64,
    /// Mean queue depth (sampled at each admission).
    pub mean_queue_depth: f64,
    /// Peak queue depth.
    pub peak_queue_depth: usize,
    /// Sweeps split across the work-stealing shard pool.
    pub sharded_sweeps: u64,
    /// Shard tasks executed across all workers.
    pub shards_executed: u64,
    /// Bulk sweeps served ahead of pending latency work by the aging
    /// policy.
    pub aged_promotions: u64,
    /// Per-execution-backend counters (indexed by
    /// [`BackendKind::index`]).
    pub backends: [BackendStats; 3],
    /// Per-class breakdown (present for classes that saw traffic).
    pub classes: Vec<ClassPoint>,
}

/// Per-tenant measurements at the churn point (from
/// [`TenantStats`](cq_serve::TenantStats), histogram collapsed to
/// count/p50/p99).
#[derive(Debug, Clone)]
pub struct TenantPoint {
    /// Tenant name.
    pub name: String,
    /// Weighted-fair scheduling weight.
    pub weight: f32,
    /// Requests served for this tenant.
    pub served: u64,
    /// Images served for this tenant (the unit WFQ balances).
    pub rows: u64,
    /// Submissions turned away at a quota.
    pub quota_rejected: u64,
    /// Observations in the tenant's latency histogram.
    pub hist_count: u64,
    /// Histogram p50 (bucket upper bound), microseconds.
    pub hist_p50_us: u64,
    /// Histogram p99 (bucket upper bound), microseconds.
    pub hist_p99_us: u64,
}

/// The long-running hot-swap churn point: tenant-tagged traffic against
/// an autoscaling pool while resident models are evicted and replaced
/// mid-stream. `lost_tickets == 0` is asserted at run time — every
/// admitted ticket resolved even across the swaps and pool resizes.
#[derive(Debug, Clone)]
pub struct ChurnPoint {
    /// Offered arrival rate, requests/sec.
    pub offered_rps: f64,
    /// Requests replayed.
    pub requests: usize,
    /// Mid-stream evict+register cycles performed.
    pub swaps: u64,
    /// `ServeStats::hot_registered` after the run.
    pub hot_registered: u64,
    /// `ServeStats::evictions` after the run.
    pub evictions: u64,
    /// Evict tickets that resolved with their reclaimed model.
    pub reclaimed: u64,
    /// Admitted tickets that never resolved — asserted `0` at run time.
    pub lost_tickets: u64,
    /// Requests served.
    pub completed: u64,
    /// Served images over the point's makespan.
    pub images_per_sec: f64,
    /// Median submit→complete latency.
    pub p50_ms: f64,
    /// 99th-percentile submit→complete latency.
    pub p99_ms: f64,
    /// Autoscaler grow+shrink events.
    pub worker_resizes: u64,
    /// Configured pool floor.
    pub workers_min: usize,
    /// Configured pool ceiling.
    pub workers_max: usize,
    /// Most workers ever live at once.
    pub workers_peak: usize,
    /// Observations in the merged (latency + bulk) histogram.
    pub hist_count: u64,
    /// Merged-histogram p50 (bucket upper bound), microseconds.
    pub hist_p50_us: u64,
    /// Merged-histogram p99 (bucket upper bound), microseconds.
    pub hist_p99_us: u64,
    /// Per-tenant breakdown.
    pub tenants: Vec<TenantPoint>,
}

/// Full result of the serving experiment.
#[derive(Debug, Clone)]
pub struct ServingResult {
    /// Experiment size.
    pub scale: Scale,
    /// Effective kernel thread cap during the run.
    pub threads: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Resident models.
    pub models: usize,
    /// Requests per load point.
    pub requests: usize,
    /// Image shape `[C, H, W]`.
    pub image: [usize; 3],
    /// Max rows per batch-segment shard at sharded points.
    pub shard_rows: usize,
    /// Row-tile shards per frozen conv at sharded points.
    pub row_tile_shards: usize,
    /// Closed-loop capacity the load points are scaled from.
    pub calibrated_ips: f64,
    /// The measured offered-load points.
    pub points: Vec<LoadPoint>,
    /// The hot-swap churn point (tenants + autoscaling + mid-stream
    /// model swaps).
    pub churn: ChurnPoint,
}

fn point_json(p: &LoadPoint) -> String {
    let classes = p
        .classes
        .iter()
        .map(|c| {
            format!(
                "{{\"slo\": \"{}\", \"completed\": {}, \"missed\": {}, \
                 \"p50_latency_ms\": {:.3}, \"p99_latency_ms\": {:.3}}}",
                c.slo, c.completed, c.missed, c.p50_ms, c.p99_ms
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    let backends = BackendKind::ALL
        .iter()
        .map(|kind| {
            let b = &p.backends[kind.index()];
            format!(
                "{{\"backend\": \"{}\", \"sweeps\": {}, \"shards\": {}, \
                 \"images\": {}, \"active_layers\": {}}}",
                kind.name(),
                b.sweeps,
                b.shards,
                b.images,
                b.active_layers
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "    {{\"label\": \"{}\", \"admission\": \"{}\", \"offered_rps\": {:.3}, \
         \"latency_fraction\": {:.2}, \"scheduling\": \"{}\", \"sharded\": {}, \
         \"policy\": \"{}\", \"bulk_max_age_ms\": {}, \
         \"completed\": {}, \"rejected\": {}, \"images_per_sec\": {:.3}, \
         \"p50_latency_ms\": {:.3}, \"p99_latency_ms\": {:.3}, \
         \"deadline_miss_rate\": {:.4}, \
         \"mean_queue_depth\": {:.3}, \"peak_queue_depth\": {}, \
         \"sharded_sweeps\": {}, \"shards_executed\": {}, \
         \"aged_promotions\": {}, \
         \"backends\": [{}], \
         \"classes\": [{}]}}",
        p.label,
        match p.admission {
            Admission::Block => "block",
            Admission::Reject => "reject",
        },
        p.offered_rps,
        p.latency_fraction,
        if p.fifo { "fifo" } else { "slo" },
        p.sharded,
        p.policy,
        p.bulk_max_age_ms
            .map_or("null".to_string(), |ms| format!("{ms:.3}")),
        p.completed,
        p.rejected,
        p.images_per_sec,
        p.p50_ms,
        p.p99_ms,
        p.deadline_miss_rate,
        p.mean_queue_depth,
        p.peak_queue_depth,
        p.sharded_sweeps,
        p.shards_executed,
        p.aged_promotions,
        backends,
        classes
    )
}

fn churn_json(c: &ChurnPoint) -> String {
    let tenants = c
        .tenants
        .iter()
        .map(|t| {
            format!(
                "{{\"tenant\": \"{}\", \"weight\": {:.2}, \"served\": {}, \
                 \"rows\": {}, \"quota_rejected\": {}, \
                 \"histogram\": {{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}}}}}",
                t.name,
                t.weight,
                t.served,
                t.rows,
                t.quota_rejected,
                t.hist_count,
                t.hist_p50_us,
                t.hist_p99_us
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!(
        "  \"churn\": {{\"offered_rps\": {:.3}, \"requests\": {}, \"swaps\": {}, \
         \"hot_registered\": {}, \"evictions\": {}, \"reclaimed\": {}, \
         \"lost_tickets\": {}, \"completed\": {}, \"images_per_sec\": {:.3}, \
         \"p50_latency_ms\": {:.3}, \"p99_latency_ms\": {:.3}, \
         \"worker_resizes\": {}, \"workers_min\": {}, \"workers_max\": {}, \
         \"workers_peak\": {}, \
         \"histogram\": {{\"count\": {}, \"p50_us\": {}, \"p99_us\": {}}}, \
         \"tenants\": [{}]}}",
        c.offered_rps,
        c.requests,
        c.swaps,
        c.hot_registered,
        c.evictions,
        c.reclaimed,
        c.lost_tickets,
        c.completed,
        c.images_per_sec,
        c.p50_ms,
        c.p99_ms,
        c.worker_resizes,
        c.workers_min,
        c.workers_max,
        c.workers_peak,
        c.hist_count,
        c.hist_p50_us,
        c.hist_p99_us,
        tenants
    )
}

impl ServingResult {
    /// Renders the machine-readable report (hand-rolled JSON; the
    /// workspace is dependency-free). `points` selects a subset by label
    /// (`None` = all).
    fn json_for(&self, points: Option<&[&str]>) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!("  \"models\": {},\n", self.models));
        s.push_str(&format!("  \"requests_per_point\": {},\n", self.requests));
        s.push_str(&format!(
            "  \"image\": [{}, {}, {}],\n",
            self.image[0], self.image[1], self.image[2]
        ));
        s.push_str(&format!("  \"shard_rows\": {},\n", self.shard_rows));
        s.push_str(&format!(
            "  \"row_tile_shards\": {},\n",
            self.row_tile_shards
        ));
        s.push_str(&format!(
            "  \"calibrated_images_per_sec\": {:.3},\n",
            self.calibrated_ips
        ));
        s.push_str("  \"points\": [\n");
        let selected: Vec<&LoadPoint> = self
            .points
            .iter()
            .filter(|p| points.map_or(true, |ls| ls.contains(&p.label)))
            .collect();
        for (i, p) in selected.iter().enumerate() {
            s.push_str(&point_json(p));
            s.push_str(if i + 1 < selected.len() { ",\n" } else { "\n" });
        }
        s.push_str("  ],\n");
        s.push_str(&churn_json(&self.churn));
        s.push_str("\n}\n");
        s
    }

    /// The full machine-readable report.
    pub fn to_json(&self) -> String {
        self.json_for(None)
    }
}

/// `q`-quantile (0..=1) of unsorted latency samples, in milliseconds.
fn percentile_ms(samples: &mut [Duration], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx].as_secs_f64() * 1e3
}

/// Builds one frozen model for the setting (deterministic per seed).
fn build_model(setting: &ExperimentSetting, seed: u64) -> PreparedCimModel {
    let (c, hw) = (setting.data.channels, setting.data.image_size);
    let mut net = build_cim_resnet(
        setting.model.clone(),
        &setting.cim,
        &QuantScheme::ours(),
        seed,
    );
    let warm = CqRng::new(seed + 1)
        .normal_tensor(&[2, c, hw, hw], 1.0)
        .map(|v| v.max(0.0));
    let _ = net.forward(&warm, Mode::Eval);
    PreparedCimModel::new(Box::new(net))
}

/// One replayed ticket outcome.
struct Outcome {
    slo: Slo,
    missed: bool,
    latency: Duration,
}

/// Replays `stream` (paired with pre-generated inputs) against an owned
/// session: submits each request at its arrival offset through the
/// `Request` builder, keeps every admitted ticket in flight in one
/// `CompletionSet`, then drains them through bounded
/// `wait_any_timeout` calls — one thread multiplexing the entire
/// in-flight window, and a hang-proof failure mode.
///
/// With `fifo` set, every request is submitted as [`Slo::Bulk`] — the
/// PR 3 FIFO baseline — but outcomes still carry the request's *stream*
/// class, so the would-be-latency subset is directly comparable between
/// the FIFO and SLO schedules over identical requests. Stream-latency
/// requests carry `deadline` in both modes (deadline accounting is
/// orthogonal to scheduling class).
fn replay(
    session: &ServeSession,
    ids: &[ModelId],
    stream: &[cq_serve::StreamRequest],
    inputs: &[Tensor],
    deadline: Option<Duration>,
    fifo: bool,
) -> (Vec<Outcome>, Duration) {
    let t0 = Instant::now();
    let mut inflight = CompletionSet::new();
    // Stream class per inserted ticket, indexed by the set's dense keys.
    let mut stream_slo: Vec<Slo> = Vec::with_capacity(stream.len());
    for (r, x) in stream.iter().zip(inputs) {
        let target = t0 + r.at;
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let submit_slo = if fifo { Slo::Bulk } else { r.slo };
        let mut req = Request::to_id(ids[r.model])
            .batch(x.clone())
            .slo(submit_slo);
        if r.slo == Slo::Latency {
            if let Some(d) = deadline {
                req = req.deadline(d);
            }
        }
        match session.submit(req) {
            Ok(t) => {
                inflight.insert(t);
                stream_slo.push(r.slo);
            }
            Err(SubmitError::QueueFull(_)) => {} // shed; counted in stats
            Err(e) => panic!("unexpected submit error: {e:?}"),
        }
    }
    let mut outcomes = Vec::with_capacity(inflight.len());
    while !inflight.is_empty() {
        match inflight.wait_any_timeout(STALL_BOUND) {
            Some((key, c)) => outcomes.push(Outcome {
                slo: stream_slo[key.index()],
                missed: c.missed,
                latency: c.latency,
            }),
            None => panic!(
                "serving stalled: {} tickets unresolved after {STALL_BOUND:?} \
                 (scheduler regression?)",
                inflight.len()
            ),
        }
    }
    (outcomes, t0.elapsed())
}

/// Measures the serving SLO experiment and returns the structured result.
pub fn measure(scale: Scale) -> ServingResult {
    let setting = ExperimentSetting::cifar10(scale, 500);
    let (c, hw) = (setting.data.channels, setting.data.image_size);
    let requests = match scale {
        Scale::Ci => 24,
        Scale::Quick => 64,
        Scale::Full => 192,
    };
    let workers = 2;
    let (shard_rows, row_tile_shards) = (4usize, 2usize);

    let mut registry = ModelRegistry::new();
    let ids = vec![
        registry.register("resnet-a", build_model(&setting, 501)),
        registry.register("resnet-b", build_model(&setting, 503)),
    ];
    let cfg = |admission: Admission, sharded: bool, policy: SchedulerPolicy| {
        ServeConfig::builder()
            .queue_capacity(32)
            .admission(admission)
            .max_batch(Some(8))
            .max_wait(Duration::from_micros(500))
            .workers(workers)
            .shard_rows(sharded.then_some(shard_rows))
            .row_tile_shards(sharded.then_some(row_tile_shards))
            .policy(policy)
            .build()
            .expect("valid serve config")
    };

    // Closed-loop calibration: everything arrives at t=0, Block admission —
    // the server runs flat out, giving the capacity the open-loop points
    // are scaled from. Each point runs one owned session; between points
    // the models round-trip through `shutdown` → `from_models`.
    let cal_stream = StreamSpec {
        rate_rps: 1e9,
        requests,
        models: 2,
        batch_choices: vec![1],
        latency_fraction: 0.0,
        seed: 510,
        tenants: vec![],
    }
    .generate();
    let rng = &mut CqRng::new(511);
    let cal_inputs: Vec<Tensor> = cal_stream
        .iter()
        .map(|_| rng.normal_tensor(&[1, c, hw, hw], 1.0).map(|v| v.max(0.0)))
        .collect();
    let session = CimServer::new(
        registry,
        cfg(Admission::Block, false, SchedulerPolicy::Strict),
    )
    .start();
    let (_, cal_span) = replay(&session, &ids, &cal_stream, &cal_inputs, None, true);
    let (cal_stats, mut models): (ServeStats, _) = session.shutdown();
    let calibrated_ips = cal_stats.rows_swept as f64 / cal_span.as_secs_f64().max(1e-9);
    // Latency deadline: a generous multiple of the mean per-image service
    // time, so misses mean real queueing, not noise.
    let deadline = Duration::from_secs_f64(20.0 / calibrated_ips.max(1.0));
    // Aging threshold for the overload-aged point: well above the latency
    // deadline (latency keeps near-absolute priority at burst scale) but
    // far below the replay makespan, so promotions actually fire.
    let bulk_max_age = 2 * deadline;

    let mut points = Vec::new();
    for (label, factor, admission, fifo, sharded, policy, seed) in [
        (
            "underload",
            0.6,
            Admission::Block,
            false,
            true,
            SchedulerPolicy::Strict,
            520u64,
        ),
        // The PR 3 baseline, the SLO/sharded run, and the aged run replay
        // the IDENTICAL request stream (same seed, same arrivals, same
        // batch sizes, same would-be classes) at the same offered load —
        // only the scheduling differs — so the latency-class p99 (and the
        // bulk starvation bound) are directly comparable against FIFO.
        (
            "overload-fifo",
            1.3,
            Admission::Reject,
            true,
            false,
            SchedulerPolicy::Strict,
            530,
        ),
        (
            "overload-slo",
            1.3,
            Admission::Reject,
            false,
            true,
            SchedulerPolicy::Strict,
            530,
        ),
        (
            "overload-aged",
            1.3,
            Admission::Reject,
            false,
            true,
            SchedulerPolicy::Aging { bulk_max_age },
            530,
        ),
    ] {
        let latency_fraction = 0.5;
        let offered_rps = (calibrated_ips * factor).max(1.0);
        // Mostly single-image requests with an occasional 6-image burst:
        // the bursts create the head-of-line blocking that priority
        // scheduling exists to cut through, and (at > shard_rows rows)
        // exercise the work-stealing shard pool.
        let stream = StreamSpec {
            rate_rps: offered_rps,
            requests,
            models: 2,
            batch_choices: vec![1, 1, 1, 6],
            latency_fraction,
            seed,
            tenants: vec![],
        }
        .generate();
        let rng = &mut CqRng::new(seed + 1);
        let inputs: Vec<Tensor> = stream
            .iter()
            .map(|r| {
                rng.normal_tensor(&[r.batch, c, hw, hw], 1.0)
                    .map(|v| v.max(0.0))
            })
            .collect();
        let session = CimServer::new(
            ModelRegistry::from_models(models),
            cfg(admission, sharded, policy),
        )
        .start();
        let (outcomes, span) = replay(&session, &ids, &stream, &inputs, Some(deadline), fifo);
        let (stats, returned) = session.shutdown();
        models = returned;
        let mut all: Vec<Duration> = outcomes.iter().map(|o| o.latency).collect();
        let mut classes = Vec::new();
        for (slo, name) in [(Slo::Latency, "latency"), (Slo::Bulk, "bulk")] {
            let mut lats: Vec<Duration> = outcomes
                .iter()
                .filter(|o| o.slo == slo)
                .map(|o| o.latency)
                .collect();
            if lats.is_empty() {
                continue;
            }
            classes.push(ClassPoint {
                slo: name,
                completed: lats.len() as u64,
                missed: outcomes.iter().filter(|o| o.slo == slo && o.missed).count() as u64,
                p50_ms: percentile_ms(&mut lats, 0.50),
                p99_ms: percentile_ms(&mut lats, 0.99),
            });
        }
        // Only stream-latency requests carry deadlines, so they are the
        // miss-rate denominator — bulk traffic must not dilute it.
        let with_deadline = outcomes.iter().filter(|o| o.slo == Slo::Latency).count();
        let missed = outcomes.iter().filter(|o| o.missed).count();
        points.push(LoadPoint {
            label,
            admission,
            offered_rps,
            latency_fraction,
            fifo,
            sharded,
            policy: match policy {
                SchedulerPolicy::Strict => "strict",
                SchedulerPolicy::Aging { .. } => "aging",
            },
            bulk_max_age_ms: policy.bulk_max_age().map(|d| d.as_secs_f64() * 1e3),
            completed: stats.served,
            rejected: stats.rejected,
            images_per_sec: stats.rows_swept as f64 / span.as_secs_f64().max(1e-9),
            p50_ms: percentile_ms(&mut all, 0.50),
            p99_ms: percentile_ms(&mut all, 0.99),
            deadline_miss_rate: if with_deadline == 0 {
                0.0
            } else {
                missed as f64 / with_deadline as f64
            },
            mean_queue_depth: stats.mean_queue_depth,
            peak_queue_depth: stats.peak_queue_depth,
            sharded_sweeps: stats.sharded_sweeps,
            shards_executed: stats.shards_executed,
            aged_promotions: stats.aged_promotions,
            backends: stats.backends,
            classes,
        });
    }

    let churn = measure_churn(&setting, models, requests, calibrated_ips, deadline);

    ServingResult {
        scale,
        threads: max_threads(),
        workers,
        models: 2,
        requests,
        image: [c, hw, hw],
        shard_rows,
        row_tile_shards,
        calibrated_ips,
        points,
        churn,
    }
}

/// The hot-swap churn point: tenant-tagged traffic (acme at weight 2,
/// beta at weight 1) against an autoscaling `1..=3` worker pool, with two
/// mid-stream swap cycles — evict a live model, register a freshly built
/// replacement under the **same name** — performed from the submit thread
/// so every by-name submission atomically routes to whichever version is
/// live. Block admission means every generated request is admitted, so
/// `lost_tickets` (admitted minus resolved) is exact — and asserted zero.
fn measure_churn(
    setting: &ExperimentSetting,
    models: Vec<(String, PreparedCimModel)>,
    requests: usize,
    calibrated_ips: f64,
    deadline: Duration,
) -> ChurnPoint {
    let (c, hw) = (setting.data.channels, setting.data.image_size);
    let names = ["resnet-a", "resnet-b"];
    let tenant_names = ["acme", "beta"];
    let offered_rps = (calibrated_ips * 0.9).max(1.0);
    let stream = StreamSpec {
        rate_rps: offered_rps,
        requests,
        models: 2,
        batch_choices: vec![1, 2],
        latency_fraction: 0.25,
        seed: 540,
        tenants: tenant_names.iter().map(|s| s.to_string()).collect(),
    }
    .generate();
    let rng = &mut CqRng::new(541);
    let inputs: Vec<Tensor> = stream
        .iter()
        .map(|r| {
            rng.normal_tensor(&[r.batch, c, hw, hw], 1.0)
                .map(|v| v.max(0.0))
        })
        .collect();
    let cfg = ServeConfig::builder()
        .queue_capacity(32)
        .admission(Admission::Block)
        .max_batch(Some(8))
        .max_wait(Duration::from_micros(500))
        .autoscale(1, 3)
        .scale_up_after(Duration::from_millis(1))
        .scale_down_idle(Duration::from_millis(25))
        .tenant(TenantSpec::new("acme").weight(2.0))
        .tenant(TenantSpec::new("beta"))
        .build()
        .expect("valid churn config");
    let session = CimServer::new(ModelRegistry::from_models(models), cfg).start();
    // Replacements are built before the replay so the swap itself is
    // cheap; each fires once, at 1/3 and 2/3 of the stream.
    let mut swaps = [
        (requests / 3, names[0], Some(build_model(setting, 505))),
        (2 * requests / 3, names[1], Some(build_model(setting, 507))),
    ];
    let t0 = Instant::now();
    let mut inflight = CompletionSet::new();
    let mut evict_tickets = Vec::new();
    for (i, (r, x)) in stream.iter().zip(&inputs).enumerate() {
        for (at, name, replacement) in &mut swaps {
            if i == *at {
                evict_tickets.push(session.evict(name).expect("evict a live model"));
                session
                    .register(*name, replacement.take().expect("swap fires once"))
                    .expect("register the replacement");
            }
        }
        let target = t0 + r.at;
        let now = Instant::now();
        if target > now {
            std::thread::sleep(target - now);
        }
        let mut req = Request::to(names[r.model])
            .batch(x.clone())
            .slo(r.slo)
            .tenant(tenant_names[r.tenant.expect("tenant-tagged stream")]);
        if r.slo == Slo::Latency {
            req = req.deadline(deadline);
        }
        inflight.insert(
            session
                .submit(req)
                .expect("Block admission admits every churn request"),
        );
    }
    let mut latencies: Vec<Duration> = Vec::with_capacity(inflight.len());
    while !inflight.is_empty() {
        match inflight.wait_any_timeout(STALL_BOUND) {
            Some((_, done)) => latencies.push(done.latency),
            None => panic!(
                "churn point stalled: {} tickets unresolved after {STALL_BOUND:?}",
                inflight.len()
            ),
        }
    }
    let span = t0.elapsed();
    let mut reclaimed = 0u64;
    for t in evict_tickets {
        match t.wait_timeout(STALL_BOUND) {
            Ok(model) => {
                drop(model);
                reclaimed += 1;
            }
            Err(_) => panic!("evict ticket resolves once its drain completes"),
        }
    }
    let (stats, _swapped) = session.shutdown();
    let lost_tickets = requests as u64 - latencies.len() as u64;
    assert_eq!(lost_tickets, 0, "hot-swap churn lost tickets");
    assert_eq!(stats.hot_registered, 2, "both swap registrations counted");
    assert_eq!(stats.evictions, 2, "both evictions counted");
    let mut hist = stats.latency_hist.clone();
    hist.merge(&stats.bulk_hist);
    let q_us = |h: &LatencyHistogram, q: f64| {
        h.quantile(q)
            .map_or(0, |d| d.as_micros().min(u64::MAX as u128) as u64)
    };
    ChurnPoint {
        offered_rps,
        requests,
        swaps: 2,
        hot_registered: stats.hot_registered,
        evictions: stats.evictions,
        reclaimed,
        lost_tickets,
        completed: stats.served,
        images_per_sec: stats.rows_swept as f64 / span.as_secs_f64().max(1e-9),
        p50_ms: percentile_ms(&mut latencies, 0.50),
        p99_ms: percentile_ms(&mut latencies, 0.99),
        worker_resizes: stats.workers.resizes,
        workers_min: stats.workers.min,
        workers_max: stats.workers.max,
        workers_peak: stats.workers.peak,
        hist_count: hist.count(),
        hist_p50_us: q_us(&hist, 0.50),
        hist_p99_us: q_us(&hist, 0.99),
        tenants: stats
            .tenants
            .iter()
            .map(|t| TenantPoint {
                name: t.name.clone(),
                weight: t.weight,
                served: t.served,
                rows: t.rows,
                quota_rejected: t.quota_rejected,
                hist_count: t.histogram.count(),
                hist_p50_us: q_us(&t.histogram, 0.50),
                hist_p99_us: q_us(&t.histogram, 0.99),
            })
            .collect(),
    }
}

/// Runs the experiment, writes `BENCH_serving.json` and
/// `BENCH_serving_sharded.json`, and returns the markdown report.
pub fn run(scale: Scale) -> String {
    let r = measure(scale);
    std::fs::write("BENCH_serving.json", r.to_json()).expect("write BENCH_serving.json");
    // The sharded/SLO points as their own artifact, uploaded next to the
    // full report so the shard-enabled runs are directly diffable.
    std::fs::write(
        "BENCH_serving_sharded.json",
        r.json_for(Some(&["underload", "overload-slo", "overload-aged"])),
    )
    .expect("write BENCH_serving_sharded.json");

    let class_cell = |p: &LoadPoint, name: &str| {
        p.classes
            .iter()
            .find(|c| c.slo == name)
            .map_or("-".to_string(), |c| {
                format!("{:.2}/{:.2}", c.p50_ms, c.p99_ms)
            })
    };
    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                format!("{:?}", p.admission),
                p.policy.to_string(),
                format!("{:.1}", p.offered_rps),
                format!("{:.1}", p.images_per_sec),
                format!("{}", p.completed),
                format!("{}", p.rejected),
                class_cell(p, "latency"),
                class_cell(p, "bulk"),
                format!("{:.1}%", p.deadline_miss_rate * 100.0),
                format!("{}/{}", p.sharded_sweeps, p.shards_executed),
                format!("{}", p.aged_promotions),
                format!("{:.1} / {}", p.mean_queue_depth, p.peak_queue_depth),
            ]
        })
        .collect();
    let mut out = String::from(
        "## Serving SLO — open-loop load against the cq-serve front-end \
         (priority classes + aging + sharding, multiplexed session client)\n\n",
    );
    out.push_str(&format!(
        "{} requests per point over {} resident models ({}×{}×{} images), \
         {} workers, {} kernel threads, closed-loop capacity {:.1} images/sec; \
         sharded points split sweeps into ≤{}-row segments with {} row-tile \
         shards per conv ({:?} scale). One client thread replays each point \
         through an owned `ServeSession`, multiplexing every in-flight ticket \
         with `CompletionSet::wait_any` (all waits bounded). The three \
         `overload-*` points replay the same offered load, so the \
         latency-class p99 (SLO vs FIFO) and the bulk starvation bound \
         (aged vs strict) are directly comparable.\n\n",
        r.requests,
        r.models,
        r.image[0],
        r.image[1],
        r.image[2],
        r.workers,
        r.threads,
        r.calibrated_ips,
        r.shard_rows,
        r.row_tile_shards,
        r.scale
    ));
    out.push_str(&markdown_table(
        &[
            "point",
            "admission",
            "policy",
            "offered req/s",
            "images/sec",
            "completed",
            "shed",
            "latency p50/p99 ms",
            "bulk p50/p99 ms",
            "miss rate",
            "sharded sweeps/shards",
            "aged",
            "queue depth (mean/peak)",
        ],
        &rows,
    ));
    let ch = &r.churn;
    out.push_str(&format!(
        "\nChurn point: {} tenant-tagged requests at {:.1} req/s (acme at \
         weight 2, beta at weight 1) against an autoscaling {}..={} worker \
         pool, with {} mid-stream hot swaps (evict + re-register under the \
         same name): {} completed, {} lost tickets (asserted 0 at run \
         time), {} evict tickets reclaimed, {} worker resizes (peak {} \
         workers), merged-histogram p50/p99 {}/{} µs.\n",
        ch.requests,
        ch.offered_rps,
        ch.workers_min,
        ch.workers_max,
        ch.swaps,
        ch.completed,
        ch.lost_tickets,
        ch.reclaimed,
        ch.worker_resizes,
        ch.workers_peak,
        ch.hist_p50_us,
        ch.hist_p99_us,
    ));
    out.push_str(
        "\nEvery served output — including sharded sweeps, hot-swapped \
         models, and every ticket resolution path — is bit-identical to \
         the direct `PreparedCimModel::infer` result (pinned by `cq-serve` \
         tests and the `sharded_equivalence` matrix); the numbers above are \
         written to `BENCH_serving.json` and `BENCH_serving_sharded.json`.\n",
    );
    out
}
