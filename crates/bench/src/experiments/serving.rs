//! **Serving SLO** — open-loop latency/throughput of the `cq-serve`
//! front-end (bounded queue + batch scheduler + multi-model registry)
//! under seeded Poisson-ish request streams.
//!
//! The experiment first calibrates closed-loop capacity (submit
//! everything at once, Block admission), then replays two open-loop
//! points against two resident models:
//!
//! * **underload** — ~60% of calibrated capacity, Block admission;
//! * **overload** — ~130% of calibrated capacity, Reject admission, so
//!   the bounded queue sheds load instead of building unbounded latency.
//!
//! Per point it reports p50/p99 submit→complete latency, achieved
//! images/sec, shed requests, and queue depth. Results are returned as
//! markdown and written to `BENCH_serving.json` (consumed by CI as an
//! artifact). Arrival schedules and inputs are seeded; wall-clock numbers
//! vary with the machine, the stream replayed does not.

use crate::{markdown_table, ExperimentSetting, Scale};
use cq_core::{build_cim_resnet, PreparedCimModel, QuantScheme};
use cq_nn::{Layer, Mode};
use cq_serve::{
    Admission, CimServer, ModelId, ModelRegistry, ServeConfig, StreamSpec, SubmitError, Ticket,
};
use cq_tensor::{max_threads, CqRng, Tensor};
use std::time::{Duration, Instant};

/// One measured offered-load point.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Point label ("underload" / "overload").
    pub label: &'static str,
    /// Admission policy at this point.
    pub admission: Admission,
    /// Offered arrival rate (requests/sec; every request is one image).
    pub offered_rps: f64,
    /// Requests admitted and served.
    pub completed: u64,
    /// Requests shed by Reject admission.
    pub rejected: u64,
    /// Served images over the point's makespan.
    pub images_per_sec: f64,
    /// Median submit→complete latency.
    pub p50_ms: f64,
    /// 99th-percentile submit→complete latency.
    pub p99_ms: f64,
    /// Mean queue depth (sampled at each admission).
    pub mean_queue_depth: f64,
    /// Peak queue depth.
    pub peak_queue_depth: usize,
}

/// Full result of the serving experiment.
#[derive(Debug, Clone)]
pub struct ServingResult {
    /// Experiment size.
    pub scale: Scale,
    /// Effective kernel thread cap during the run.
    pub threads: usize,
    /// Server worker threads.
    pub workers: usize,
    /// Resident models.
    pub models: usize,
    /// Requests per load point.
    pub requests: usize,
    /// Image shape `[C, H, W]`.
    pub image: [usize; 3],
    /// Closed-loop capacity the load points are scaled from.
    pub calibrated_ips: f64,
    /// The measured offered-load points.
    pub points: Vec<LoadPoint>,
}

impl ServingResult {
    /// Renders the machine-readable report (hand-rolled JSON; the
    /// workspace is dependency-free).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"scale\": \"{:?}\",\n", self.scale));
        s.push_str(&format!("  \"threads\": {},\n", self.threads));
        s.push_str(&format!("  \"workers\": {},\n", self.workers));
        s.push_str(&format!("  \"models\": {},\n", self.models));
        s.push_str(&format!("  \"requests_per_point\": {},\n", self.requests));
        s.push_str(&format!(
            "  \"image\": [{}, {}, {}],\n",
            self.image[0], self.image[1], self.image[2]
        ));
        s.push_str(&format!(
            "  \"calibrated_images_per_sec\": {:.3},\n",
            self.calibrated_ips
        ));
        s.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"label\": \"{}\", \"admission\": \"{}\", \"offered_rps\": {:.3}, \
                 \"completed\": {}, \"rejected\": {}, \"images_per_sec\": {:.3}, \
                 \"p50_latency_ms\": {:.3}, \"p99_latency_ms\": {:.3}, \
                 \"mean_queue_depth\": {:.3}, \"peak_queue_depth\": {}}}{}\n",
                p.label,
                match p.admission {
                    Admission::Block => "block",
                    Admission::Reject => "reject",
                },
                p.offered_rps,
                p.completed,
                p.rejected,
                p.images_per_sec,
                p.p50_ms,
                p.p99_ms,
                p.mean_queue_depth,
                p.peak_queue_depth,
                if i + 1 < self.points.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

/// `q`-quantile (0..=1) of unsorted latency samples, in milliseconds.
fn percentile_ms(samples: &mut [Duration], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx].as_secs_f64() * 1e3
}

/// Builds one frozen model for the setting (deterministic per seed).
fn build_model(setting: &ExperimentSetting, seed: u64) -> PreparedCimModel {
    let (c, hw) = (setting.data.channels, setting.data.image_size);
    let mut net = build_cim_resnet(
        setting.model.clone(),
        &setting.cim,
        &QuantScheme::ours(),
        seed,
    );
    let warm = CqRng::new(seed + 1)
        .normal_tensor(&[2, c, hw, hw], 1.0)
        .map(|v| v.max(0.0));
    let _ = net.forward(&warm, Mode::Eval);
    PreparedCimModel::new(Box::new(net))
}

/// Replays `stream` (paired with pre-generated inputs) against `server`:
/// submits each request at its arrival offset, waits every admitted
/// ticket, and returns (latencies, makespan, stats).
fn replay(
    server: &CimServer,
    ids: &[ModelId],
    stream: &[cq_serve::StreamRequest],
    inputs: &[Tensor],
) -> (Vec<Duration>, Duration, cq_serve::ServeStats) {
    let t0 = Instant::now();
    let (latencies, stats) = {
        let (lats, stats) = server.serve(|h| {
            let mut tickets: Vec<Ticket> = Vec::with_capacity(stream.len());
            for (r, x) in stream.iter().zip(inputs) {
                let target = t0 + r.at;
                let now = Instant::now();
                if target > now {
                    std::thread::sleep(target - now);
                }
                match h.submit_to(ids[r.model], x.clone()) {
                    Ok(t) => tickets.push(t),
                    Err(SubmitError::QueueFull(_)) => {} // shed; counted in stats
                    Err(e) => panic!("unexpected submit error: {e:?}"),
                }
            }
            tickets
                .into_iter()
                .map(|t| t.wait().latency)
                .collect::<Vec<_>>()
        });
        (lats, stats)
    };
    (latencies, t0.elapsed(), stats)
}

/// Measures the serving SLO experiment and returns the structured result.
pub fn measure(scale: Scale) -> ServingResult {
    let setting = ExperimentSetting::cifar10(scale, 500);
    let (c, hw) = (setting.data.channels, setting.data.image_size);
    let requests = match scale {
        Scale::Ci => 24,
        Scale::Quick => 64,
        Scale::Full => 192,
    };
    let workers = 2;

    let mut registry = ModelRegistry::new();
    let ids = vec![
        registry.register("resnet-a", build_model(&setting, 501)),
        registry.register("resnet-b", build_model(&setting, 503)),
    ];
    let cfg = |admission: Admission| ServeConfig {
        queue_capacity: 32,
        admission,
        max_batch: Some(8),
        max_wait: Duration::from_micros(500),
        workers,
    };
    let mut server = CimServer::new(registry, cfg(Admission::Block));

    // Closed-loop calibration: everything arrives at t=0, Block admission —
    // the server runs flat out, giving the capacity the open-loop points
    // are scaled from.
    let cal_stream = StreamSpec {
        rate_rps: 1e9,
        requests,
        models: 2,
        batch_choices: vec![1],
        seed: 510,
    }
    .generate();
    let rng = &mut CqRng::new(511);
    let cal_inputs: Vec<Tensor> = cal_stream
        .iter()
        .map(|_| rng.normal_tensor(&[1, c, hw, hw], 1.0).map(|v| v.max(0.0)))
        .collect();
    let (_, cal_span, cal_stats) = replay(&server, &ids, &cal_stream, &cal_inputs);
    let calibrated_ips = cal_stats.rows_swept as f64 / cal_span.as_secs_f64().max(1e-9);

    let mut points = Vec::new();
    for (label, factor, admission, seed) in [
        ("underload", 0.6, Admission::Block, 520u64),
        ("overload", 1.3, Admission::Reject, 530),
    ] {
        server.set_config(cfg(admission));
        let offered_rps = (calibrated_ips * factor).max(1.0);
        let stream = StreamSpec {
            rate_rps: offered_rps,
            requests,
            models: 2,
            batch_choices: vec![1],
            seed,
        }
        .generate();
        let rng = &mut CqRng::new(seed + 1);
        let inputs: Vec<Tensor> = stream
            .iter()
            .map(|_| rng.normal_tensor(&[1, c, hw, hw], 1.0).map(|v| v.max(0.0)))
            .collect();
        let (mut latencies, span, stats) = replay(&server, &ids, &stream, &inputs);
        points.push(LoadPoint {
            label,
            admission,
            offered_rps,
            completed: stats.served,
            rejected: stats.rejected,
            images_per_sec: stats.rows_swept as f64 / span.as_secs_f64().max(1e-9),
            p50_ms: percentile_ms(&mut latencies, 0.50),
            p99_ms: percentile_ms(&mut latencies, 0.99),
            mean_queue_depth: stats.mean_queue_depth,
            peak_queue_depth: stats.peak_queue_depth,
        });
    }

    ServingResult {
        scale,
        threads: max_threads(),
        workers,
        models: 2,
        requests,
        image: [c, hw, hw],
        calibrated_ips,
        points,
    }
}

/// Runs the experiment, writes `BENCH_serving.json`, and returns the
/// markdown report.
pub fn run(scale: Scale) -> String {
    let r = measure(scale);
    std::fs::write("BENCH_serving.json", r.to_json()).expect("write BENCH_serving.json");

    let rows: Vec<Vec<String>> = r
        .points
        .iter()
        .map(|p| {
            vec![
                p.label.to_string(),
                format!("{:?}", p.admission),
                format!("{:.1}", p.offered_rps),
                format!("{:.1}", p.images_per_sec),
                format!("{}", p.completed),
                format!("{}", p.rejected),
                format!("{:.2}", p.p50_ms),
                format!("{:.2}", p.p99_ms),
                format!("{:.1} / {}", p.mean_queue_depth, p.peak_queue_depth),
            ]
        })
        .collect();
    let mut out =
        String::from("## Serving SLO — open-loop load against the cq-serve front-end\n\n");
    out.push_str(&format!(
        "{} requests per point over {} resident models ({}×{}×{} images), \
         {} workers, {} kernel threads, closed-loop capacity {:.1} images/sec \
         ({:?} scale).\n\n",
        r.requests,
        r.models,
        r.image[0],
        r.image[1],
        r.image[2],
        r.workers,
        r.threads,
        r.calibrated_ips,
        r.scale
    ));
    out.push_str(&markdown_table(
        &[
            "point",
            "admission",
            "offered req/s",
            "images/sec",
            "completed",
            "shed",
            "p50 ms",
            "p99 ms",
            "queue depth (mean/peak)",
        ],
        &rows,
    ));
    out.push_str(
        "\nEvery served output is bit-identical to the direct \
         `PreparedCimModel::infer` result (pinned by `cq-serve` tests); \
         the numbers above are written to `BENCH_serving.json`.\n",
    );
    out
}
