//! # cq-scheme
//!
//! The **quantization-scheme zoo**: a [`QuantScheme`] bundles everything a
//! scheme needs to ride the whole stack — QAT through freeze-time kernel
//! selection to per-model serving attribution:
//!
//! * a **weight quantizer** ([`WeightQuant`]): the paper's LSQ at any
//!   granularity, or BWMA-style **binary weights** (scaled ±1 codebooks,
//!   arXiv 2508.21524) whose bit-split degenerates to a single split and is
//!   always `IntPanels`-eligible;
//! * a **digitization strategy** ([`Digitization`]): the classic per-column
//!   ADC, or HCiM-style **ADC-less hybrid** digitization (arXiv 2403.13577)
//!   that carries the low-order bit-splits digitally and converts only the
//!   high-order splits;
//! * the Table-I axes inherited from the paper comparison: granularities,
//!   training method, learnable scales.
//!
//! Schemes are identified by a stable kebab-case [`QuantScheme::name`]
//! (the serving registry's per-model scheme key); [`QuantScheme::zoo`]
//! lists the three end-to-end wired schemes and [`QuantScheme::by_name`]
//! resolves any preset.
//!
//! ```
//! use cq_scheme::QuantScheme;
//!
//! let bwma = QuantScheme::by_name("bwma").unwrap();
//! assert!(bwma.is_binary_weight());
//! let cfg = bwma.apply_to_config(&cq_cim::CimConfig::tiny());
//! assert_eq!((cfg.weight_bits, cfg.cell_bits), (1, 1));
//! assert_eq!(cfg.bit_split().num_splits(), 1);
//! ```

#![warn(missing_docs)]

use cq_cim::CimConfig;
use cq_quant::Granularity;
use std::fmt;

/// How a scheme is trained (Table I's "train from scratch" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainMethod {
    /// Single QAT run from scratch with all quantizers active — the
    /// paper's method (enabled by granularity alignment, Sec. III-D).
    OneStageQat,
    /// Stage 1 trains with full-precision partial sums; stage 2 enables
    /// partial-sum quantization (Saxena et al. \[8\], \[9\]).
    TwoStageQat,
    /// Train full precision, then calibrate quantizer scales post hoc
    /// without further training (Kim \[5\], Bai \[6\], \[7\]).
    Ptq,
}

impl fmt::Display for TrainMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrainMethod::OneStageQat => "one-stage QAT",
            TrainMethod::TwoStageQat => "two-stage QAT",
            TrainMethod::Ptq => "PTQ",
        };
        f.write_str(s)
    }
}

/// The weight-quantizer family of a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightQuant {
    /// Learned Step Size Quantization at the scheme's weight granularity —
    /// the paper's quantizer at any bit width.
    Lsq,
    /// BWMA-style binary weights: a scaled ±1 codebook per scale group
    /// (LSQ with the binary format and a sign-STE), whose bit-split is the
    /// degenerate single split and strength-reduces to the ±1 add/sub
    /// integer fast path at freeze time.
    Binary,
}

impl fmt::Display for WeightQuant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            WeightQuant::Lsq => "LSQ",
            WeightQuant::Binary => "binary ±1",
        })
    }
}

/// The partial-sum digitization strategy of a scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Digitization {
    /// Every physical column's partial sum goes through the ADC model —
    /// the paper's path (or the ideal bypass when psum quantization is
    /// disabled).
    Adc,
    /// HCiM-style ADC-less hybrid digitization: the `digital_splits`
    /// low-order bit-splits are carried digitally (bit-exact, no
    /// conversion), only the high-order splits see the ADC. The effective
    /// count is clamped so at least one split stays analog — see
    /// [`QuantScheme::digital_splits_for`].
    Hybrid {
        /// Requested number of low-order splits carried digitally.
        digital_splits: usize,
    },
}

impl fmt::Display for Digitization {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Digitization::Adc => f.write_str("ADC"),
            Digitization::Hybrid { digital_splits } => {
                write!(f, "hybrid (low {digital_splits} digital)")
            }
        }
    }
}

/// A complete quantization scheme: weight quantizer, digitization
/// strategy, granularities, training method, and which scale factors are
/// learnable (the Table-I axes plus the zoo extensions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantScheme {
    /// Stable kebab-case identifier — the registry key serving stats are
    /// attributed under ("paper-lsq-column", "bwma", "hybrid-adc", …).
    pub name: String,
    /// Display label ("Ours", "Kim \[5\]", "BWMA", …).
    pub label: String,
    /// Weight quantizer family.
    pub weight_quant: WeightQuant,
    /// Partial-sum digitization strategy.
    pub digitization: Digitization,
    /// Weight quantization granularity.
    pub w_gran: Granularity,
    /// Partial-sum quantization granularity.
    pub p_gran: Granularity,
    /// Training method.
    pub method: TrainMethod,
    /// Whether weight scale factors are learned during training.
    pub learnable_w_scale: bool,
    /// Whether partial-sum scale factors are learned during training.
    pub learnable_p_scale: bool,
}

impl QuantScheme {
    /// The paper's scheme: column-wise weights **and** partial sums,
    /// one-stage QAT, both scale factors learnable.
    pub fn ours() -> Self {
        Self {
            name: "paper-lsq-column".into(),
            label: "Ours".into(),
            weight_quant: WeightQuant::Lsq,
            digitization: Digitization::Adc,
            w_gran: Granularity::Column,
            p_gran: Granularity::Column,
            method: TrainMethod::OneStageQat,
            learnable_w_scale: true,
            learnable_p_scale: true,
        }
    }

    /// BWMA: **binary weights** (scaled ±1 codebook, column-wise scales),
    /// multi-bit activations, one-stage QAT. The bit-split degenerates to
    /// one split, so the frozen kernels run a single ±1 panel sweep —
    /// much cheaper than the paper scheme's `num_splits` sweeps.
    pub fn bwma() -> Self {
        Self {
            name: "bwma".into(),
            label: "BWMA".into(),
            weight_quant: WeightQuant::Binary,
            digitization: Digitization::Adc,
            w_gran: Granularity::Column,
            p_gran: Granularity::Column,
            method: TrainMethod::OneStageQat,
            learnable_w_scale: true,
            learnable_p_scale: true,
        }
    }

    /// ADC-less hybrid digitization (HCiM-style): the paper's column-wise
    /// LSQ weights, but the low-order bit-splits bypass the ADC and are
    /// accumulated digitally — fewer conversions per pixel at unchanged
    /// weight precision.
    pub fn hybrid_adc() -> Self {
        Self {
            name: "hybrid-adc".into(),
            label: "Hybrid-ADC".into(),
            weight_quant: WeightQuant::Lsq,
            digitization: Digitization::Hybrid { digital_splits: 2 },
            w_gran: Granularity::Column,
            p_gran: Granularity::Column,
            method: TrainMethod::OneStageQat,
            learnable_w_scale: true,
            learnable_p_scale: true,
        }
    }

    /// Kim et al. \[5\]: layer-wise weights and partial sums, PTQ.
    pub fn kim5() -> Self {
        Self {
            name: "kim5".into(),
            label: "Kim [5]".into(),
            weight_quant: WeightQuant::Lsq,
            digitization: Digitization::Adc,
            w_gran: Granularity::Layer,
            p_gran: Granularity::Layer,
            method: TrainMethod::Ptq,
            learnable_w_scale: false,
            learnable_p_scale: true,
        }
    }

    /// Bai et al. \[6\], \[7\]: array-wise weights and partial sums, PTQ.
    pub fn bai67() -> Self {
        Self {
            name: "bai67".into(),
            label: "Bai [6], [7]".into(),
            weight_quant: WeightQuant::Lsq,
            digitization: Digitization::Adc,
            w_gran: Granularity::Array,
            p_gran: Granularity::Array,
            method: TrainMethod::Ptq,
            learnable_w_scale: false,
            learnable_p_scale: true,
        }
    }

    /// Saxena et al. \[8\]: layer-wise weights (QAT from scratch),
    /// array-wise partial sums (second-stage QAT).
    pub fn saxena8() -> Self {
        Self {
            name: "saxena8".into(),
            label: "Saxena [8]".into(),
            weight_quant: WeightQuant::Lsq,
            digitization: Digitization::Adc,
            w_gran: Granularity::Layer,
            p_gran: Granularity::Array,
            method: TrainMethod::TwoStageQat,
            learnable_w_scale: false,
            learnable_p_scale: true,
        }
    }

    /// Saxena & Roy \[9\]: layer-wise weights (QAT from scratch),
    /// column-wise partial sums (second-stage QAT) — the strongest prior.
    pub fn saxena9() -> Self {
        Self {
            name: "saxena9".into(),
            label: "Saxena [9]".into(),
            weight_quant: WeightQuant::Lsq,
            digitization: Digitization::Adc,
            w_gran: Granularity::Layer,
            p_gran: Granularity::Column,
            method: TrainMethod::TwoStageQat,
            learnable_w_scale: true,
            learnable_p_scale: true,
        }
    }

    /// An ad-hoc one-stage QAT scheme with the given granularities (used
    /// for the 9-combination sweeps of Fig. 7/8).
    pub fn custom(w_gran: Granularity, p_gran: Granularity) -> Self {
        Self {
            name: "custom".into(),
            label: format!("{}/{}", w_gran.letter(), p_gran.letter()),
            weight_quant: WeightQuant::Lsq,
            digitization: Digitization::Adc,
            w_gran,
            p_gran,
            method: TrainMethod::OneStageQat,
            learnable_w_scale: true,
            learnable_p_scale: true,
        }
    }

    /// Variant of this scheme with a different training method (Fig. 9
    /// compares one- vs two-stage on fixed granularities).
    pub fn with_method(mut self, method: TrainMethod) -> Self {
        self.method = method;
        self
    }

    /// Whether weights are the binary ±1 codebook.
    pub fn is_binary_weight(&self) -> bool {
        self.weight_quant == WeightQuant::Binary
    }

    /// Applies the scheme's weight-quantizer family to a CIM macro
    /// configuration: binary weights force `weight_bits = cell_bits = 1`
    /// (the degenerate single-split layout); LSQ schemes keep the macro's
    /// configured precisions.
    pub fn apply_to_config(&self, cfg: &CimConfig) -> CimConfig {
        let mut cfg = *cfg;
        if self.is_binary_weight() {
            cfg.weight_bits = 1;
            cfg.cell_bits = 1;
        }
        cfg.validate();
        cfg
    }

    /// The effective number of low-order bit-splits carried digitally for
    /// a layer with `num_splits` splits: `0` for pure-ADC schemes, and the
    /// requested hybrid count clamped to `num_splits − 1` so at least one
    /// split always stays on the converter.
    pub fn digital_splits_for(&self, num_splits: usize) -> usize {
        match self.digitization {
            Digitization::Adc => 0,
            Digitization::Hybrid { digital_splits } => {
                digital_splits.min(num_splits.saturating_sub(1))
            }
        }
    }

    /// The three schemes wired end-to-end (QAT → freeze → serve): the
    /// paper's LSQ column-wise scheme, BWMA, and ADC-less hybrid
    /// digitization — the `schemes` bench comparison set.
    pub fn zoo() -> Vec<QuantScheme> {
        vec![Self::ours(), Self::bwma(), Self::hybrid_adc()]
    }

    /// Resolves a preset by its stable [`QuantScheme::name`].
    pub fn by_name(name: &str) -> Option<QuantScheme> {
        match name {
            "paper-lsq-column" => Some(Self::ours()),
            "bwma" => Some(Self::bwma()),
            "hybrid-adc" => Some(Self::hybrid_adc()),
            "kim5" => Some(Self::kim5()),
            "bai67" => Some(Self::bai67()),
            "saxena8" => Some(Self::saxena8()),
            "saxena9" => Some(Self::saxena9()),
            _ => None,
        }
    }

    /// The paper's five compared schemes, related works first, ours last —
    /// the legend order of Fig. 7/10 and Table III.
    pub fn all_compared() -> Vec<QuantScheme> {
        vec![
            Self::kim5(),
            Self::bai67(),
            Self::saxena8(),
            Self::saxena9(),
            Self::ours(),
        ]
    }

    /// One markdown row of Table I.
    pub fn table1_row(&self) -> String {
        let scratch = |yes: bool, m: TrainMethod| match (yes, m) {
            (true, _) => "yes".to_string(),
            (false, TrainMethod::Ptq) => "no (PTQ)".to_string(),
            (false, _) => "no (2-stage QAT)".to_string(),
        };
        let w_scratch =
            self.method == TrainMethod::OneStageQat || self.method == TrainMethod::TwoStageQat;
        let p_scratch = self.method == TrainMethod::OneStageQat;
        format!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            self.label,
            self.w_gran,
            scratch(w_scratch, self.method),
            if self.learnable_w_scale { "yes" } else { "no" },
            self.p_gran,
            scratch(p_scratch, self.method),
            if self.learnable_p_scale { "yes" } else { "no" },
        )
    }

    /// One markdown row of the zoo table (README "Schemes" section).
    pub fn zoo_row(&self) -> String {
        format!(
            "| `{}` | {} | {} | {} | {}/{} | {} |",
            self.name,
            self.label,
            self.weight_quant,
            self.digitization,
            self.w_gran,
            self.p_gran,
            self.method,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_aligns_granularities_column_wise() {
        let s = QuantScheme::ours();
        assert_eq!(s.w_gran, Granularity::Column);
        assert_eq!(s.p_gran, Granularity::Column);
        assert_eq!(s.method, TrainMethod::OneStageQat);
        assert!(s.learnable_w_scale && s.learnable_p_scale);
        assert_eq!(s.weight_quant, WeightQuant::Lsq);
        assert_eq!(s.digitization, Digitization::Adc);
    }

    #[test]
    fn related_works_match_table1() {
        let all = QuantScheme::all_compared();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].label, "Kim [5]");
        assert_eq!(all[0].w_gran, Granularity::Layer);
        assert_eq!(all[1].w_gran, Granularity::Array);
        assert_eq!(all[1].p_gran, Granularity::Array);
        assert_eq!(all[2].p_gran, Granularity::Array);
        assert_eq!(all[3].p_gran, Granularity::Column);
        assert_eq!(all[3].w_gran, Granularity::Layer);
        assert_eq!(all[4].label, "Ours");
        // Only ours trains one-stage; only [5]-[7] are PTQ.
        assert_eq!(
            all.iter()
                .filter(|s| s.method == TrainMethod::OneStageQat)
                .count(),
            1
        );
        assert_eq!(
            all.iter().filter(|s| s.method == TrainMethod::Ptq).count(),
            2
        );
    }

    #[test]
    fn custom_label_uses_letters() {
        let s = QuantScheme::custom(Granularity::Array, Granularity::Column);
        assert_eq!(s.label, "A/C");
    }

    #[test]
    fn table1_rows_render() {
        for s in QuantScheme::all_compared() {
            let row = s.table1_row();
            assert!(row.starts_with('|') && row.ends_with('|'));
            assert_eq!(row.matches('|').count(), 8);
        }
    }

    #[test]
    fn zoo_names_resolve_round_trip() {
        let zoo = QuantScheme::zoo();
        assert_eq!(zoo.len(), 3);
        for s in &zoo {
            let resolved = QuantScheme::by_name(&s.name).expect("zoo name resolves");
            assert_eq!(&resolved, s, "{} round-trips", s.name);
        }
        assert!(QuantScheme::by_name("no-such-scheme").is_none());
        let names: Vec<&str> = zoo.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["paper-lsq-column", "bwma", "hybrid-adc"]);
    }

    #[test]
    fn bwma_forces_binary_single_split_config() {
        let s = QuantScheme::bwma();
        assert!(s.is_binary_weight());
        let cfg = s.apply_to_config(&CimConfig::tiny());
        assert_eq!((cfg.weight_bits, cfg.cell_bits), (1, 1));
        assert_eq!(cfg.bit_split().num_splits(), 1);
        // LSQ schemes leave the macro untouched.
        let same = QuantScheme::ours().apply_to_config(&CimConfig::tiny());
        assert_eq!(same, CimConfig::tiny());
    }

    #[test]
    fn hybrid_digital_splits_clamp_keeps_one_adc_split() {
        let s = QuantScheme::hybrid_adc();
        assert_eq!(s.digital_splits_for(3), 2);
        assert_eq!(s.digital_splits_for(2), 1);
        assert_eq!(s.digital_splits_for(1), 0, "single split stays analog");
        assert_eq!(QuantScheme::ours().digital_splits_for(3), 0);
        assert_eq!(QuantScheme::bwma().digital_splits_for(1), 0);
    }

    #[test]
    fn zoo_rows_render() {
        for s in QuantScheme::zoo() {
            let row = s.zoo_row();
            assert!(row.contains(&s.name) && row.contains(&s.label));
            assert_eq!(row.matches('|').count(), 7);
        }
    }
}
