//! A fully-connected layer executed on the CIM pipeline.
//!
//! The paper keeps the classifier full-precision (as does this repo's
//! default ResNet), but a CIM library needs a quantized FC for models that
//! map *every* matrix multiply to crossbars. A linear layer is exactly a
//! 1×1 convolution over a 1×1 "image", so [`CimLinear`] wraps
//! [`CimConv2d`] — inheriting column-wise quantization, bit-splitting,
//! tiling, and the crossbar-engine export for free.

use crate::{CimConv2d, VariationCfg};
use cq_cim::CimConfig;
use cq_nn::{Layer, Mode, ParamView};
use cq_quant::Granularity;
use cq_tensor::{CqRng, Tensor};

/// Quantized fully-connected layer over `[B, IN]` inputs.
pub struct CimLinear {
    conv: CimConv2d,
    in_features: usize,
    out_features: usize,
}

impl CimLinear {
    /// Creates a CIM linear layer (`bias` always enabled, matching the
    /// usual classifier head).
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot tile a 1×1 kernel (never happens
    /// for non-degenerate configs).
    pub fn new(
        in_features: usize,
        out_features: usize,
        cfg: CimConfig,
        w_gran: Granularity,
        p_gran: Granularity,
        rng: &mut CqRng,
    ) -> Self {
        let conv = CimConv2d::new(
            in_features,
            out_features,
            1,
            1,
            0,
            cfg,
            w_gran,
            p_gran,
            true,
            rng,
        );
        Self {
            conv,
            in_features,
            out_features,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.out_features
    }

    /// The underlying CIM convolution (tiling plan, quantizers, export).
    pub fn inner(&self) -> &CimConv2d {
        &self.conv
    }

    /// Mutable access to the underlying CIM convolution.
    pub fn inner_mut(&mut self) -> &mut CimConv2d {
        &mut self.conv
    }

    /// Sets inference-time device variation on the underlying layer.
    pub fn set_variation(&mut self, v: Option<VariationCfg>) {
        self.conv.set_variation(v);
    }

    /// Freezes the underlying convolution for serving (see
    /// [`CimConv2d::freeze`]).
    ///
    /// # Panics
    ///
    /// Panics if quantization is disabled or scales are uninitialized.
    pub fn freeze(&mut self) {
        self.conv.freeze();
    }

    /// Drops the frozen serving state.
    pub fn unfreeze(&mut self) {
        self.conv.unfreeze();
    }
}

impl Layer for CimLinear {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.rank(), 2, "CimLinear input must be [B, IN]");
        assert_eq!(x.dim(1), self.in_features, "input features");
        let b = x.dim(0);
        let x4 = x.reshape(&[b, self.in_features, 1, 1]);
        let y4 = self.conv.forward(&x4, mode);
        y4.reshape(&[b, self.out_features])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        assert_eq!(grad_out.rank(), 2, "CimLinear grad must be [B, OUT]");
        let b = grad_out.dim(0);
        let g4 = grad_out.reshape(&[b, self.out_features, 1, 1]);
        let dx4 = self.conv.backward(&g4);
        dx4.reshape(&[b, self.in_features])
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(ParamView<'_>)) {
        self.conv.visit_params(prefix, f);
    }

    fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
        self.conv.apply(f);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_nn::Sgd;

    fn make(rng_seed: u64) -> CimLinear {
        let mut rng = CqRng::new(rng_seed);
        CimLinear::new(
            12,
            5,
            CimConfig::tiny(),
            Granularity::Column,
            Granularity::Column,
            &mut rng,
        )
    }

    fn relu_batch(seed: u64, b: usize, f: usize) -> Tensor {
        CqRng::new(seed)
            .normal_tensor(&[b, f], 1.0)
            .map(|v| v.max(0.0))
    }

    #[test]
    fn forward_shape_and_tiling() {
        let mut lin = make(1);
        // 12 features on 32-row arrays with 1x1 kernels: one row tile.
        assert_eq!(lin.inner().plan().num_row_tiles, 1);
        let x = relu_batch(2, 3, 12);
        let y = lin.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[3, 5]);
    }

    #[test]
    fn multi_tile_when_features_exceed_rows() {
        let mut rng = CqRng::new(3);
        let lin = CimLinear::new(
            80,
            4,
            CimConfig::tiny(), // 32 rows
            Granularity::Column,
            Granularity::Column,
            &mut rng,
        );
        assert_eq!(lin.inner().plan().num_row_tiles, 3); // ceil(80/32)
    }

    #[test]
    fn gradient_flows_and_loss_decreases() {
        let mut lin = make(5);
        let x = relu_batch(6, 8, 12);
        let target = CqRng::new(7).normal_tensor(&[8, 5], 0.5);
        let mut opt = Sgd::new(0.05, 0.9, 0.0);
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..25 {
            let y = lin.forward(&x, Mode::Train);
            let diff = y.sub(&target);
            let loss = diff.sq_sum() / diff.numel() as f32;
            if it == 0 {
                first = loss;
            }
            last = loss;
            lin.zero_grads();
            let _ = lin.backward(&diff.scale(2.0 / diff.numel() as f32));
            opt.step(&mut lin);
        }
        assert!(last < first * 0.8, "loss {first} -> {last}");
    }

    #[test]
    fn crossbar_export_is_bit_exact() {
        let mut lin = make(9);
        let x = relu_batch(10, 2, 12);
        let fast = lin.forward(&x, Mode::Eval);
        let engine = cq_cim::CrossbarLayer::new(lin.inner_mut().to_quantized_conv());
        let b = x.dim(0);
        let a_int = lin.inner().quantize_activations(&x.reshape(&[b, 12, 1, 1]));
        let slow = engine.forward(&a_int).reshape(&[b, 5]);
        assert_eq!(fast, slow);
    }
}
