//! # cq-core
//!
//! The ColumnQuant framework itself — a Rust implementation of
//! *"Column-wise Quantization of Weights and Partial Sums for Accurate and
//! Efficient Compute-In-Memory Accelerators"* (DATE 2025):
//!
//! * [`CimConv2d`] — the CIM-oriented convolution layer: LSQ quantization
//!   of weights and partial sums at layer/array/**column** granularity,
//!   bit-split duplication, kernel-intact tiling realized as group
//!   convolution, shift-and-add, and merged `s_w · s_p` dequantization,
//!   with full straight-through-estimator gradients for one-stage QAT.
//! * [`QuantScheme`] (re-exported from `cq-scheme`) — the scheme zoo:
//!   the paper's method, the five compared related works (Table I), and
//!   the BWMA / hybrid-ADC extensions.
//! * [`CimConvFactory`] / [`build_cim_resnet`] — model construction.
//! * [`PreparedCimModel`] — the frozen, batched serving engine: weights
//!   quantized/bit-split/grouped once at load, micro-batch coalescing,
//!   bit-identical to the per-call path.
//! * Whole-model surgery: stage toggles for two-stage QAT, PTQ
//!   calibration, device-variation injection, dequantization-overhead
//!   accounting.
//!
//! ## Example
//!
//! ```
//! use cq_cim::CimConfig;
//! use cq_core::{build_cim_resnet, QuantScheme};
//! use cq_nn::{Layer, Mode, ResNetSpec};
//! use cq_tensor::CqRng;
//!
//! let mut net = build_cim_resnet(
//!     ResNetSpec::resnet8(10, 4),
//!     &CimConfig::tiny(),
//!     &QuantScheme::ours(),
//!     0,
//! );
//! let x = CqRng::new(1).normal_tensor(&[1, 3, 16, 16], 1.0);
//! let logits = net.forward(&x, Mode::Eval);
//! assert_eq!(logits.shape(), &[1, 10]);
//! ```

#![warn(missing_docs)]

mod cim_conv;
mod cim_linear;
mod model;
mod prepared;

pub use cim_conv::{CimConv2d, VariationCfg, VariationMode};
pub use cim_linear::CimLinear;
// The shared execution layer both conv paths drive (lives in `cq-cim`;
// re-exported here because it is the framework's central abstraction).
pub use cq_cim::{
    backend_instance, AdcDigitizer, BackendError, BackendKind, BackendSet, ColumnDigitizer,
    ConvProfile, ExecBackend, IdealDigitizer, PerturbedDigitizer, PsumKernel, PsumPipeline,
    ShardPlan,
};
pub use model::{
    accelerator_report, build_cim_resnet, count_cim_convs, for_each_cim_conv, load_cim_checkpoint,
    model_dequant_mults, ptq_calibrate, save_cim_checkpoint, set_psum_quant_enabled,
    set_quant_enabled, set_variation, CimConvFactory,
};
pub use prepared::{freeze_model, unfreeze_model, PreparedCimModel};
// The scheme zoo lives in `cq-scheme`; re-exported here because model
// construction and training consume it everywhere.
pub use cq_scheme::{Digitization, QuantScheme, TrainMethod, WeightQuant};
