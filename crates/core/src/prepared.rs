//! The **frozen, batched inference engine**: a whole trained CIM model
//! prepared for serving.
//!
//! [`PreparedCimModel`] freezes every [`CimConv2d`](crate::CimConv2d) in
//! the network once at load — weights quantized, bit-split, and grouped
//! into the crossbar layout, device variation baked in — so repeated
//! `infer`/`infer_batch` calls do none of the training-time weight-side
//! work. Outputs are **bit-identical** to the unprepared per-call path
//! (`prepared_inference` integration tests pin the full psq × granularity
//! × digitizer matrix).
//!
//! [`PreparedCimModel::infer_batch`] additionally **coalesces micro
//! batches**: many small requests are concatenated into one batch and
//! swept through the network in a single `batch × row-tile` parallel pass,
//! then split back per request. Every layer in this workspace processes
//! batch elements independently with a fixed f32 operation order, so
//! coalescing is also bit-exact per sample.
//!
//! Sweeps are additionally **cross-layer pipelined** (see
//! [`PreparedCimModel::set_pipeline_depth`]): a sweep's batch rows are
//! split into contiguous waves that travel the network concurrently as
//! tasks on the shared [`cq_tensor::exec`] pool, so one wave's late
//! layers (digitize/shift-add/reduce) overlap the next wave's early
//! layers (im2col/pack/GEMM). Because the waves are exactly the
//! chunked-sweep decomposition, outputs stay bit-identical at every
//! depth and pool width — pipelining reschedules work, never arithmetic.

use crate::{for_each_cim_conv, load_cim_checkpoint};
use cq_cim::{BackendError, BackendKind, BackendSet, PsumKernel};
use cq_nn::{Layer, Mode};
use cq_tensor::{exec, Tensor};
use std::ops::Range;
use std::path::Path;

/// Freezes every CIM convolution in `model` for serving (see
/// [`CimConv2d::freeze`](crate::CimConv2d::freeze)).
///
/// # Panics
///
/// Panics if any CIM layer has quantization disabled or uninitialized
/// scales (run one eval forward, or restore a trained checkpoint, first).
pub fn freeze_model(model: &mut dyn Layer) {
    for_each_cim_conv(model, |c| c.freeze());
}

/// Drops the frozen serving state of every CIM convolution in `model`.
pub fn unfreeze_model(model: &mut dyn Layer) {
    for_each_cim_conv(model, |c| c.unfreeze());
}

/// A trained model frozen for batched serving (see module docs).
pub struct PreparedCimModel {
    model: Box<dyn Layer>,
    /// Upper bound on coalesced rows per forward sweep (`None` = merge
    /// everything into one sweep).
    max_batch: Option<usize>,
    /// Number of concurrent waves a multi-row sweep is split into (see
    /// [`PreparedCimModel::set_pipeline_depth`]); `1` disables pipelining.
    pipeline_depth: usize,
}

impl PreparedCimModel {
    /// Prepares a trained model: every CIM convolution is frozen once.
    ///
    /// # Panics
    ///
    /// Panics if any CIM layer has quantization disabled or uninitialized
    /// scales.
    pub fn new(mut model: Box<dyn Layer>) -> Self {
        freeze_model(model.as_mut());
        Self {
            model,
            max_batch: None,
            pipeline_depth: 2,
        }
    }

    /// Restores a trained checkpoint into `model` (which supplies the
    /// architecture) and prepares it — the load-once entry point of the
    /// serving flow.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors and checkpoint-format violations.
    pub fn restore(mut model: Box<dyn Layer>, path: impl AsRef<Path>) -> std::io::Result<Self> {
        load_cim_checkpoint(model.as_mut(), path)?;
        Ok(Self::new(model))
    }

    /// Caps how many images one coalesced forward sweep may carry
    /// (`None` = unbounded). Chunking changes wall-clock behaviour only —
    /// per-sample outputs stay bit-identical.
    pub fn set_max_batch(&mut self, max_batch: Option<usize>) {
        assert!(max_batch != Some(0), "max_batch must be positive");
        self.max_batch = max_batch;
    }

    /// The active sweep cap (`None` = unbounded) — the introspection
    /// counterpart of [`set_max_batch`](PreparedCimModel::set_max_batch).
    /// Note the `cq-serve` front-end installs its own `ServeConfig`
    /// cap on every resident model, so after a serving round-trip this
    /// reflects the last server's policy, not the pre-registration value.
    pub fn max_batch(&self) -> Option<usize> {
        self.max_batch
    }

    /// Sets how many concurrent **waves** a multi-row sweep is split into
    /// (default `2`, the two-stage software pipeline; `1` disables
    /// pipelining). Waves are contiguous row chunks that travel the whole
    /// network concurrently as shared-eval tasks on the
    /// [`cq_tensor::exec`] pool, so one wave's reduce overlaps the next
    /// wave's im2col/pack. Waves are exactly the chunked-sweep
    /// decomposition every layer already guarantees bit-exact, so outputs
    /// are bit-identical at every depth and pool width.
    ///
    /// # Panics
    ///
    /// Panics on depth `0`.
    pub fn set_pipeline_depth(&mut self, depth: usize) {
        assert!(depth >= 1, "pipeline depth must be positive");
        self.pipeline_depth = depth;
    }

    /// The active wave count — the introspection counterpart of
    /// [`set_pipeline_depth`](PreparedCimModel::set_pipeline_depth).
    pub fn pipeline_depth(&self) -> usize {
        self.pipeline_depth
    }

    /// Serves one already-batched tensor `[B, C, H, W]`, cross-layer
    /// pipelined per [`set_pipeline_depth`](Self::set_pipeline_depth).
    pub fn infer(&mut self, images: &Tensor) -> Tensor {
        if self.pipeline_depth > 1 && images.dim(0) > 1 {
            self.infer_shared(images)
        } else {
            self.model.forward(images, Mode::Eval)
        }
    }

    /// Serves one batch through **shared state** (`&self`): several
    /// threads may call this concurrently on one prepared model — the
    /// execution path behind batch-segment sharding, where serve workers
    /// cooperate on disjoint row segments of a single oversized sweep.
    /// Multi-row batches are cross-layer pipelined per
    /// [`set_pipeline_depth`](Self::set_pipeline_depth). Bit-identical to
    /// [`PreparedCimModel::infer`] (pinned by tests); note it does **not**
    /// apply `max_batch` chunking — callers shard rows themselves.
    ///
    /// # Panics
    ///
    /// Panics if any layer cannot serve through shared state (cannot
    /// happen for models built by this workspace: every CIM conv is
    /// frozen at preparation and every other layer is stateless in eval).
    pub fn infer_shared(&self, images: &Tensor) -> Tensor {
        let b = images.dim(0);
        let depth = self.pipeline_depth.min(b).max(1);
        if depth <= 1 {
            return self
                .model
                .forward_shared(images)
                .expect("prepared model has a layer without shared-eval support");
        }
        // Contiguous waves; wave w+1's early layers overlap wave w's late
        // layers on the pool. Rejoined by concatenation in row order, so
        // this is exactly the (bit-exact) chunked-sweep decomposition.
        let per = b.div_ceil(depth);
        let mut outs: Vec<Option<Tensor>> = (0..depth).map(|_| None).collect();
        exec::scope(|sc| {
            for (wi, out) in outs.iter_mut().enumerate() {
                let (lo, hi) = (wi * per, ((wi + 1) * per).min(b));
                if lo >= hi {
                    continue;
                }
                let model = self.model.as_ref();
                sc.spawn(move || {
                    let wave = images.slice_outer(lo, hi);
                    *out = Some(
                        model
                            .forward_shared(&wave)
                            .expect("prepared model has a layer without shared-eval support"),
                    );
                });
            }
        });
        let parts: Vec<Tensor> = outs.into_iter().flatten().collect();
        if parts.len() == 1 {
            parts.into_iter().next().unwrap()
        } else {
            Tensor::concat_outer(&parts.iter().collect::<Vec<_>>())
        }
    }

    /// Sets the row-tile shard count of every frozen CIM convolution (see
    /// [`crate::CimConv2d::set_row_tile_shards`]): the grouped-conv
    /// front-end of each layer then executes as that many independent
    /// row-tile shards, rejoined bit-exactly before the canonical reduce.
    /// `None` disables sharding. Outputs are bit-identical either way.
    pub fn set_row_tile_shards(&mut self, shards: Option<usize>) {
        for_each_cim_conv(self.model.as_mut(), |c| c.set_row_tile_shards(shards));
    }

    /// Selects the execution-backend chain of every frozen CIM
    /// convolution (see [`crate::CimConv2d::set_backends`]): each layer
    /// resolves the first chain entry whose capability probe accepts it
    /// (e.g. [`BackendSet::auto`] runs the repacked `i8×i8→i32` panel
    /// kernels when a layer's frozen slices are integer-exact and the f32
    /// kernels otherwise). Outputs are bit-identical on every backend —
    /// the choice is pure speed.
    ///
    /// # Errors
    ///
    /// The first [`BackendError`] encountered when a layer rejects the
    /// chain (e.g. [`BackendSet::int`] with variation-perturbed slices).
    /// Layers visited before the failing one keep the new chain; callers
    /// treating the error as fatal should re-apply a known-good chain.
    pub fn set_backends(&mut self, backends: BackendSet) -> Result<(), BackendError> {
        let mut err = None;
        for_each_cim_conv(self.model.as_mut(), |c| {
            if let Err(e) = c.set_backends(backends.clone()) {
                err.get_or_insert(e);
            }
        });
        match err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Compat selector for the legacy kernel-family enum: equivalent to
    /// `set_backends(kernel.into())`.
    ///
    /// # Errors
    ///
    /// See [`PreparedCimModel::set_backends`].
    pub fn set_psum_kernel(&mut self, kernel: PsumKernel) -> Result<(), BackendError> {
        self.set_backends(kernel.into())
    }

    /// The quantization-scheme name of the model's CIM layers: the first
    /// layer's recorded scheme ([`crate::CimConv2d::scheme_name`]), or
    /// `"custom"` when no layer records one (models built straight from
    /// granularities). The serving registry attributes per-model images
    /// under this key.
    pub fn scheme(&mut self) -> String {
        let mut found: Option<String> = None;
        for_each_cim_conv(self.model.as_mut(), |c| {
            if found.is_none() {
                if let Some(s) = c.scheme_name() {
                    found = Some(s.to_string());
                }
            }
        });
        found.unwrap_or_else(|| "custom".into())
    }

    /// Counts `(layers dispatching to the integer kernels, total CIM
    /// layers)` — the observability hook tests and benchmarks use to
    /// assert which kernel actually ran.
    pub fn count_integer_kernels(&mut self) -> (usize, usize) {
        let (mut active, mut total) = (0usize, 0usize);
        for_each_cim_conv(self.model.as_mut(), |c| {
            total += 1;
            active += c.integer_kernel_active() as usize;
        });
        (active, total)
    }

    /// Counts frozen CIM layers by resolved backend, indexed by
    /// [`BackendKind::index`] — the per-backend observability hook behind
    /// `ServeStats` and the serving benches. Unfrozen layers count
    /// nowhere.
    pub fn backend_layer_counts(&mut self) -> [usize; 3] {
        let mut counts = [0usize; 3];
        for_each_cim_conv(self.model.as_mut(), |c| {
            if let Some(kind) = c.active_backend() {
                counts[kind.index()] += 1;
            }
        });
        counts
    }

    /// The backend serving the most frozen layers (`None` when no layer
    /// is frozen); ties prefer `IntPanels`, then `SimdF32`, then
    /// `Scalar` — the order of increasing generality.
    pub fn primary_backend(&mut self) -> Option<BackendKind> {
        let counts = self.backend_layer_counts();
        // `max_by_key` keeps the last of equally-maximal entries, so
        // iterating in increasing preference implements the tie-break.
        [
            BackendKind::Scalar,
            BackendKind::SimdF32,
            BackendKind::IntPanels,
        ]
        .into_iter()
        .filter(|k| counts[k.index()] > 0)
        .max_by_key(|k| counts[k.index()])
    }

    /// Serves many independent requests (each `[b_i, C, H, W]`, typically
    /// `b_i = 1`): requests are coalesced into sweeps of at most
    /// `max_batch` images, each sweep runs one parallel forward, and the
    /// outputs are split back per request. A single request **larger** than
    /// `max_batch` is chunked into ≤ cap sweeps and its output slices are
    /// concatenated, so the cap bounds every sweep regardless of request
    /// sizes. Every layer processes batch elements independently with a
    /// fixed f32 operation order, so both coalescing and chunking are
    /// bit-exact per sample.
    ///
    /// # Panics
    ///
    /// Panics if requests disagree on the non-batch dimensions.
    pub fn infer_batch(&mut self, requests: &[Tensor]) -> Vec<Tensor> {
        let cap = self.max_batch.unwrap_or(usize::MAX);
        // One (request, row-range) segment per sweep contribution; an
        // oversized request spans several sweeps.
        let mut sweep: Vec<(usize, Range<usize>)> = Vec::new();
        let mut rows = 0usize;
        let mut parts: Vec<Vec<Tensor>> = (0..requests.len()).map(|_| Vec::new()).collect();
        for (i, req) in requests.iter().enumerate() {
            assert_eq!(req.rank(), 4, "request must be [B,C,H,W]");
            let b = req.dim(0);
            if b == 0 {
                // An empty request still yields a (batch-0) output tensor.
                sweep.push((i, 0..0));
                continue;
            }
            let mut start = 0;
            while start < b {
                if rows == cap {
                    self.run_sweep(requests, &mut sweep, &mut parts);
                    rows = 0;
                }
                let take = (b - start).min(cap - rows);
                sweep.push((i, start..start + take));
                rows += take;
                start += take;
            }
        }
        self.run_sweep(requests, &mut sweep, &mut parts);
        parts
            .into_iter()
            .map(|mut p| {
                if p.len() == 1 {
                    p.pop().unwrap()
                } else {
                    Tensor::concat_outer(&p.iter().collect::<Vec<_>>())
                }
            })
            .collect()
    }

    /// Runs one coalesced forward over the `sweep` segments and appends
    /// each segment's output slice to its request's parts; drains `sweep`.
    fn run_sweep(
        &mut self,
        requests: &[Tensor],
        sweep: &mut Vec<(usize, Range<usize>)>,
        parts: &mut [Vec<Tensor>],
    ) {
        if sweep.is_empty() {
            return;
        }
        // Whole-request segments borrow the request; partial (chunked)
        // segments need an owned slice to concatenate.
        let owned: Vec<Option<Tensor>> = sweep
            .iter()
            .map(|(i, r)| {
                let req = &requests[*i];
                if *r == (0..req.dim(0)) {
                    None
                } else {
                    Some(req.slice_outer(r.start, r.end))
                }
            })
            .collect();
        let inputs: Vec<&Tensor> = sweep
            .iter()
            .zip(&owned)
            .map(|((i, _), o)| o.as_ref().unwrap_or(&requests[*i]))
            .collect();
        let merged = if inputs.len() == 1 {
            self.infer(inputs[0])
        } else {
            let coalesced = Tensor::concat_outer(&inputs);
            self.infer(&coalesced)
        };
        let mut start = 0;
        for (i, r) in sweep.iter() {
            let b = r.end - r.start;
            parts[*i].push(merged.slice_outer(start, start + b));
            start += b;
        }
        sweep.clear();
    }

    /// Mutable access to the underlying model (e.g. for re-freezing after
    /// a variation sweep).
    pub fn model_mut(&mut self) -> &mut dyn Layer {
        self.model.as_mut()
    }

    /// Unfreezes and returns the underlying model.
    pub fn into_inner(mut self) -> Box<dyn Layer> {
        unfreeze_model(self.model.as_mut());
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{build_cim_resnet, save_cim_checkpoint, QuantScheme};
    use cq_cim::CimConfig;
    use cq_nn::{ResNet, ResNetSpec};
    use cq_tensor::CqRng;

    /// A small CIM ResNet with all lazy scales initialized.
    fn warmed_net(seed: u64) -> ResNet {
        let mut net = build_cim_resnet(
            ResNetSpec::resnet8(4, 4),
            &CimConfig::tiny(),
            &QuantScheme::ours(),
            seed,
        );
        let x = CqRng::new(seed + 100).normal_tensor(&[2, 3, 12, 12], 1.0);
        let _ = net.forward(&x, Mode::Eval);
        net
    }

    #[test]
    fn prepared_model_matches_unprepared_bitwise() {
        let mut net = warmed_net(1);
        let x = CqRng::new(2).normal_tensor(&[3, 3, 12, 12], 1.0);
        let want = net.forward(&x, Mode::Eval);
        let mut pm = PreparedCimModel::new(Box::new(net));
        assert_eq!(pm.infer(&x), want, "prepared forward diverged");
        assert_eq!(pm.infer(&x), want, "second prepared forward diverged");
    }

    #[test]
    fn coalescing_and_chunking_are_bit_exact_per_request() {
        let mut net = warmed_net(3);
        let rng = &mut CqRng::new(4);
        let requests: Vec<Tensor> = (0..5)
            .map(|_| rng.normal_tensor(&[1, 3, 12, 12], 1.0))
            .collect();
        let want: Vec<Tensor> = requests
            .iter()
            .map(|r| net.forward(r, Mode::Eval))
            .collect();
        let mut pm = PreparedCimModel::new(Box::new(net));
        for max_batch in [None, Some(1), Some(2), Some(64)] {
            pm.set_max_batch(max_batch);
            let got = pm.infer_batch(&requests);
            assert_eq!(got, want, "max_batch={max_batch:?}");
        }
        assert!(pm.infer_batch(&[]).is_empty());
    }

    /// Regression: a single request larger than `max_batch` must still be
    /// served in ≤ cap sweeps, and the rejoined output must equal the
    /// uncapped path bit-for-bit.
    #[test]
    fn oversized_request_is_chunked_bit_exactly() {
        let mut net = warmed_net(9);
        let big = CqRng::new(10).normal_tensor(&[7, 3, 12, 12], 1.0);
        let want = net.forward(&big, Mode::Eval);
        let mut pm = PreparedCimModel::new(Box::new(net));
        for cap in [1usize, 2, 3, 5, 7, 8] {
            pm.set_max_batch(Some(cap));
            let got = pm.infer_batch(std::slice::from_ref(&big));
            assert_eq!(got.len(), 1);
            assert_eq!(got[0], want, "max_batch={cap}");
        }
        // Mixed stream: oversized requests interleaved with small ones.
        let reqs = [
            CqRng::new(11).normal_tensor(&[3, 3, 12, 12], 1.0),
            big.clone(),
            CqRng::new(12).normal_tensor(&[1, 3, 12, 12], 1.0),
        ];
        pm.set_max_batch(None);
        let want: Vec<Tensor> = pm.infer_batch(&reqs);
        pm.set_max_batch(Some(2));
        assert_eq!(pm.infer_batch(&reqs), want, "mixed stream diverged");
    }

    /// Cross-layer pipelined waves must be bit-identical to the plain
    /// (depth-1) forward at every pipeline depth — including depths above
    /// the batch — and every executor pool width.
    #[test]
    fn pipelined_waves_are_bit_exact_across_pool_widths() {
        let mut net = warmed_net(13);
        let x = CqRng::new(14).normal_tensor(&[5, 3, 12, 12], 1.0);
        let want = net.forward(&x, Mode::Eval);
        let mut pm = PreparedCimModel::new(Box::new(net));
        for width in [1usize, 2, 4] {
            let pool = cq_tensor::exec::ExecPool::with_threads(width);
            pool.install(|| {
                for depth in [1usize, 2, 3, 8] {
                    pm.set_pipeline_depth(depth);
                    assert_eq!(pm.pipeline_depth(), depth);
                    assert_eq!(pm.infer(&x), want, "width={width} depth={depth}");
                    assert_eq!(
                        pm.infer_shared(&x),
                        want,
                        "shared width={width} depth={depth}"
                    );
                }
            });
        }
    }

    /// The shared (`&self`) path must equal the exclusive path bit-for-bit,
    /// including under concurrent callers.
    #[test]
    fn shared_inference_matches_exclusive_path() {
        let mut net = warmed_net(11);
        let x = CqRng::new(12).normal_tensor(&[3, 3, 12, 12], 1.0);
        let want = net.forward(&x, Mode::Eval);
        let mut pm = PreparedCimModel::new(Box::new(net));
        assert_eq!(pm.infer(&x), want);
        let pm = &pm;
        std::thread::scope(|sc| {
            for _ in 0..3 {
                sc.spawn(|| assert_eq!(pm.infer_shared(&x), want, "shared path diverged"));
            }
        });
    }

    #[test]
    fn restore_prepares_a_checkpointed_model() {
        let mut a = warmed_net(5);
        let x = CqRng::new(6).normal_tensor(&[1, 3, 12, 12], 1.0);
        let want = a.forward(&x, Mode::Eval);
        let dir = std::env::temp_dir().join("cq_prepared_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.cqnn");
        save_cim_checkpoint(&mut a, &path).unwrap();

        let fresh = build_cim_resnet(
            ResNetSpec::resnet8(4, 4),
            &CimConfig::tiny(),
            &QuantScheme::ours(),
            999,
        );
        let mut pm = PreparedCimModel::restore(Box::new(fresh), &path).unwrap();
        assert_eq!(pm.infer(&x), want, "restored prepared model diverged");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn into_inner_unfreezes() {
        let net = warmed_net(7);
        let pm = PreparedCimModel::new(Box::new(net));
        let mut model = pm.into_inner();
        let mut any_frozen = false;
        for_each_cim_conv(model.as_mut(), |c| any_frozen |= c.is_frozen());
        assert!(!any_frozen, "into_inner must unfreeze");
    }

    #[test]
    #[should_panic(expected = "max_batch must be positive")]
    fn zero_max_batch_rejected() {
        let net = warmed_net(8);
        let mut pm = PreparedCimModel::new(Box::new(net));
        pm.set_max_batch(Some(0));
    }
}
