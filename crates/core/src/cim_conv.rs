//! `CimConv2d` — the paper's CIM-oriented convolution layer
//! (Sec. III-A…III-C, Fig. 3 and Fig. 5).
//!
//! Pipeline per forward pass:
//!
//! 1. **Activation quantization** (LSQ, layer-wise unsigned) to the integer
//!    grid — `A_q` in Eq. (1).
//! 2. **Weight quantization** (LSQ at layer/array/column granularity) —
//!    `⌊W_i/s_wi⌉` in Eq. (1), with one scale per logical column in the
//!    column-wise scheme.
//! 3. **Bit-splitting** of the integer weights into per-cell slices
//!    (duplicated processing per split, Fig. 5 step #1).
//! 4. **Kernel-intact tiling realized as group convolution**: each CIM
//!    array is one group; the grouped conv output holds every array's
//!    partial sums as separate channels (Fig. 5 steps #2–#3), removing the
//!    sequential array indexing of the im2col approach.
//! 5. **Partial-sum quantization** (LSQ at layer/array/column granularity;
//!    column-wise means one scale per *physical* column, i.e. per
//!    (split, array, output channel)) — Eq. (2).
//! 6. **Shift-and-add & merged dequantization** — each column's partial
//!    sum is multiplied by its merged `s_w · s_p` factor and the splits'
//!    power-of-two shifts, then accumulated across arrays — Eq. (3).
//!
//! The backward pass propagates straight-through-estimator gradients
//! through all three quantizers (one-stage QAT, Sec. III-D) and hands the
//! LSQ scale gradients to the optimizer.
//!
//! Steps 3–6 run on the **shared** [`cq_cim::PsumPipeline`] execution
//! layer: this layer's front-end produces per-split partial sums by group
//! convolution, the crossbar engine's front-end produces the same tensors
//! from programmed arrays, and both share one digitize → shift-add →
//! merged-dequant implementation. At zero device variation the fast
//! emulation is therefore **bit-exact** against the explicit crossbar
//! engine (`cq_cim::CrossbarLayer`); integration tests enforce equality.

use std::collections::HashMap;

use cq_cim::{
    dequant_mults, Adc, AdcDigitizer, BackendError, BackendKind, BackendSet, CimConfig,
    HybridDigitizer, IdealDigitizer, PreparedConv, PsumKernel, PsumPipeline, QuantizedConv,
    ShardPlan, TilingPlan,
};
use cq_nn::{
    accumulate_bias_grad, add_channel_bias, kaiming_conv_init, Layer, Mode, Param, ParamKind,
    ParamView,
};
use cq_quant::{BitSplit, Granularity, GroupLayout, LsqQuantizer};
use cq_scheme::QuantScheme;
use cq_tensor::{conv2d, conv2d_backward_input, conv2d_backward_weight, CqRng, Tensor};

/// How device variation is injected at inference (paper Eq. (5)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VariationMode {
    /// One log-normal factor per weight, shared by all of its cells —
    /// the paper's `w_var = w · e^θ` exactly.
    PerWeight,
    /// Independent factors per cell (per bit-split slice) — the
    /// finer-grained hardware reality.
    PerCell,
}

/// Variation settings applied during [`Mode::Eval`] forward passes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationCfg {
    /// Injection granularity.
    pub mode: VariationMode,
    /// Log-normal σ.
    pub sigma: f32,
    /// Noise seed (deterministic per layer).
    pub seed: u64,
}

/// Frozen serving state: the prepared executor. Present only between
/// [`CimConv2d::freeze`] and the next invalidating mutation (training
/// forward, stage toggle, scale reset, variation change, checkpoint
/// restore).
///
/// Per-call intermediates come from the executing worker's
/// [`cq_tensor::arena`], so concurrent calls from the shared eval path
/// never contend on buffers and steady-state serving allocates only
/// outputs — without this struct carrying a scratch pool per layer.
struct FrozenConv {
    prepared: PreparedConv,
}

impl FrozenConv {
    fn new(prepared: PreparedConv) -> Self {
        Self { prepared }
    }

    /// Serves one call (concurrency-safe).
    fn infer(&self, x: &Tensor) -> Tensor {
        self.prepared.infer(x)
    }
}

struct FwdCache {
    x: Tensor,
    a_pad: Tensor,
    psums: Vec<Tensor>,
    grouped_weights: Vec<Tensor>,
    dw_int_template: Tensor,
    sw_table: Vec<f32>,
    psum_quant_used: bool,
}

/// The CIM-oriented quantized convolution layer (see module docs).
pub struct CimConv2d {
    cfg: CimConfig,
    plan: TilingPlan,
    bit_split: BitSplit,
    w_gran: Granularity,
    p_gran: Granularity,
    stride: usize,
    pad: usize,
    /// Low-order bit-splits carried digitally instead of through the ADC
    /// (ADC-less hybrid digitization); `0` = classic all-ADC.
    digital_splits: usize,
    /// Scheme this layer was built from ([`CimConv2d::with_scheme`]) —
    /// the serving registry's attribution key. `None` when constructed
    /// directly from granularities.
    scheme_name: Option<String>,

    weight: Param,
    bias: Option<Param>,

    w_quant: LsqQuantizer,
    w_layout: GroupLayout,
    a_quant: LsqQuantizer,
    p_quant: LsqQuantizer,

    quant_enabled: bool,
    psum_quant_enabled: bool,
    variation: Option<VariationCfg>,
    psum_capture: bool,
    captured_psums: Option<Vec<Tensor>>,

    cache: Option<FwdCache>,
    fp_cache: Option<Tensor>,
    p_layout_cache: HashMap<usize, Vec<GroupLayout>>,
    frozen: Option<FrozenConv>,
    /// Row-tile shard count applied to the frozen executor (kept across
    /// re-freezes). `None` = unsharded.
    row_tile_shards: Option<usize>,
    /// Execution-backend chain applied to the frozen executor (kept
    /// across re-freezes).
    backends: BackendSet,
}

impl CimConv2d {
    /// Creates a CIM convolution with Kaiming-initialized weights.
    ///
    /// Weight scales initialize immediately from the weights; activation
    /// and partial-sum scales initialize lazily from the first batch they
    /// observe (partial-sum scales at the first batch with partial-sum
    /// quantization *enabled*, which is what makes two-stage QAT work).
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the configured array
    /// (see [`TilingPlan::new`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        cfg: CimConfig,
        w_gran: Granularity,
        p_gran: Granularity,
        bias: bool,
        rng: &mut CqRng,
    ) -> Self {
        cfg.validate();
        let plan = TilingPlan::new(&cfg, in_ch, out_ch, kernel, kernel);
        let weight = kaiming_conv_init(out_ch, in_ch, kernel, rng);
        let w_layout = plan.weight_layout(w_gran);
        let w_quant = LsqQuantizer::with_init_from(cfg.weight_format(), &weight, &w_layout);
        let a_quant = LsqQuantizer::new(cfg.act_format(), 1);
        let p_quant = LsqQuantizer::new(cfg.psum_format(), plan.psum_group_count(p_gran));
        Self {
            bit_split: cfg.bit_split(),
            plan,
            w_gran,
            p_gran,
            stride,
            pad,
            digital_splits: 0,
            scheme_name: None,
            weight: Param::new(weight),
            bias: bias.then(|| Param::new(Tensor::zeros(&[out_ch]))),
            w_quant,
            w_layout,
            a_quant,
            p_quant,
            quant_enabled: true,
            psum_quant_enabled: true,
            variation: None,
            psum_capture: false,
            captured_psums: None,
            cache: None,
            fp_cache: None,
            p_layout_cache: HashMap::new(),
            frozen: None,
            row_tile_shards: None,
            backends: BackendSet::standard(),
            cfg,
        }
    }

    /// Creates a CIM convolution from a [`QuantScheme`]: the scheme's
    /// granularities, its weight-quantizer family applied to the macro
    /// config (binary weights force the degenerate 1-bit single-split
    /// layout — see [`QuantScheme::apply_to_config`]), its digitization
    /// strategy resolved against the layer's split count, and its name
    /// recorded for serving attribution.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit the configured array
    /// (see [`TilingPlan::new`]).
    #[allow(clippy::too_many_arguments)]
    pub fn with_scheme(
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        cfg: CimConfig,
        scheme: &QuantScheme,
        bias: bool,
        rng: &mut CqRng,
    ) -> Self {
        let cfg = scheme.apply_to_config(&cfg);
        let mut layer = Self::new(
            in_ch,
            out_ch,
            kernel,
            stride,
            pad,
            cfg,
            scheme.w_gran,
            scheme.p_gran,
            bias,
            rng,
        );
        layer.digital_splits = scheme.digital_splits_for(layer.plan.num_splits);
        layer.scheme_name = Some(scheme.name.clone());
        layer
    }

    /// Number of low-order bit-splits carried digitally (0 = all-ADC).
    pub fn digital_splits(&self) -> usize {
        self.digital_splits
    }

    /// The scheme name recorded at construction
    /// ([`CimConv2d::with_scheme`]), if any.
    pub fn scheme_name(&self) -> Option<&str> {
        self.scheme_name.as_deref()
    }

    /// When enabled, the next quantized forward pass stores a copy of the
    /// integer partial sums of every split (Fig. 6 probing).
    pub fn set_psum_capture(&mut self, on: bool) {
        self.psum_capture = on;
        if !on {
            self.captured_psums = None;
        }
    }

    /// Takes the partial sums captured by the last forward pass.
    pub fn take_captured_psums(&mut self) -> Option<Vec<Tensor>> {
        self.captured_psums.take()
    }

    /// The tiling plan.
    pub fn plan(&self) -> &TilingPlan {
        &self.plan
    }

    /// The CIM configuration.
    pub fn cim_config(&self) -> &CimConfig {
        &self.cfg
    }

    /// Weight granularity.
    pub fn weight_granularity(&self) -> Granularity {
        self.w_gran
    }

    /// Partial-sum granularity.
    pub fn psum_granularity(&self) -> Granularity {
        self.p_gran
    }

    /// Enables/disables all quantization (full-precision passthrough when
    /// disabled — the starting point for PTQ schemes).
    pub fn set_quant_enabled(&mut self, enabled: bool) {
        self.quant_enabled = enabled;
        self.frozen = None;
    }

    /// Whether quantization is active.
    pub fn quant_enabled(&self) -> bool {
        self.quant_enabled
    }

    /// Enables/disables partial-sum quantization (stage toggle for
    /// two-stage QAT; scales initialize at the first enabled batch).
    pub fn set_psum_quant_enabled(&mut self, enabled: bool) {
        self.psum_quant_enabled = enabled;
        self.frozen = None;
    }

    /// Whether partial-sum quantization is active.
    pub fn psum_quant_enabled(&self) -> bool {
        self.psum_quant_enabled
    }

    /// Sets (or clears) inference-time device variation. Invalidates any
    /// frozen state (re-[`freeze`](CimConv2d::freeze) to bake the new
    /// variation into the prepared weights).
    pub fn set_variation(&mut self, v: Option<VariationCfg>) {
        self.variation = v;
        self.frozen = None;
    }

    /// Dequantization multiplications of this layer (paper Fig. 8 model).
    pub fn dequant_mults(&self) -> usize {
        dequant_mults(&self.plan, self.w_gran, self.p_gran)
    }

    /// Hardware cost summary of this layer on its CIM macro.
    pub fn cost(&self) -> cq_cim::LayerCost {
        cq_cim::layer_cost(&self.plan, &self.cfg, self.w_gran, self.p_gran)
    }

    /// Re-fits weight scales from the current weights (PTQ calibration
    /// after full-precision training).
    pub fn reinit_weight_scales(&mut self) {
        self.w_quant.init_from(&self.weight.value, &self.w_layout);
        self.frozen = None;
    }

    /// Resets activation and partial-sum scales so the next forward pass
    /// re-initializes them from live statistics (PTQ calibration).
    pub fn reset_data_scales(&mut self) {
        self.a_quant.reset();
        self.p_quant.reset();
        self.frozen = None;
    }

    /// Marks all three quantizers initialized without touching their
    /// scales — call after restoring a trained checkpoint, so lazy
    /// initialization does not overwrite the loaded scale factors.
    pub fn mark_scales_initialized(&mut self) {
        self.w_quant.assume_initialized();
        self.a_quant.assume_initialized();
        self.p_quant.assume_initialized();
        // Called after checkpoint restores overwrite weights and scales:
        // any previously prepared state is stale.
        self.frozen = None;
    }

    /// Direct access to the master (full-precision) weights.
    pub fn weight(&self) -> &Tensor {
        &self.weight.value
    }

    /// The weight quantizer (scales are per the weight granularity).
    pub fn weight_quantizer(&self) -> &LsqQuantizer {
        &self.w_quant
    }

    /// The activation quantizer.
    pub fn act_quantizer(&self) -> &LsqQuantizer {
        &self.a_quant
    }

    /// The partial-sum quantizer (scales per the psum granularity).
    pub fn psum_quantizer(&self) -> &LsqQuantizer {
        &self.p_quant
    }

    fn psum_layouts(&mut self, inner: usize) -> Vec<GroupLayout> {
        if let Some(l) = self.p_layout_cache.get(&inner) {
            return l.clone();
        }
        let layouts: Vec<GroupLayout> = (0..self.plan.num_splits)
            .map(|s| self.plan.psum_layout(self.p_gran, s, inner))
            .collect();
        self.p_layout_cache.insert(inner, layouts.clone());
        layouts
    }

    /// Weight scale per partial-sum channel `(g · OC + oc)`, resolved from
    /// the weight granularity.
    fn sw_table(&self) -> Vec<f32> {
        let (g_tiles, oc) = (self.plan.num_row_tiles, self.plan.out_ch);
        let mut table = Vec::with_capacity(g_tiles * oc);
        for g in 0..g_tiles {
            for o in 0..oc {
                let s = match self.w_gran {
                    Granularity::Layer => self.w_quant.scales()[0],
                    Granularity::Array => {
                        let t = self.plan.col_tile_of_output(o);
                        self.w_quant.scales()[g * self.plan.num_col_tiles + t]
                    }
                    Granularity::Column => self.w_quant.scales()[g * oc + o],
                };
                table.push(s);
            }
        }
        table
    }

    /// Zero-pads input channels up to `padded_in_ch` (one shared
    /// implementation on [`TilingPlan`], also used by the prepared path).
    fn pad_channels(&self, a: &Tensor) -> Tensor {
        if self.plan.padded_in_ch == a.dim(1) {
            return a.clone();
        }
        let mut out = Tensor::zeros(&[0]);
        self.plan.pad_channels_into(a, &mut out);
        out
    }

    /// Strips the channel padding from a gradient tensor.
    fn unpad_channels(&self, g: &Tensor, real_ch: usize) -> Tensor {
        let (b, pc, h, w) = (g.dim(0), g.dim(1), g.dim(2), g.dim(3));
        if pc == real_ch {
            return g.clone();
        }
        let mut out = Tensor::zeros(&[b, real_ch, h, w]);
        let chw = real_ch * h * w;
        let pchw = pc * h * w;
        for bi in 0..b {
            out.data_mut()[bi * chw..(bi + 1) * chw]
                .copy_from_slice(&g.data()[bi * pchw..bi * pchw + chw]);
        }
        out
    }

    /// Builds the shared execution pipeline for the current scales and
    /// bias. Requires the activation scale to be initialized (the callers
    /// initialize it lazily first).
    fn pipeline(&self) -> PsumPipeline {
        PsumPipeline::new(
            self.plan.clone(),
            self.bit_split,
            self.stride,
            self.pad,
            self.a_quant.scales()[0],
            self.sw_table(),
            self.bias.as_ref().map(|b| b.value.data().to_vec()),
        )
    }

    /// Partial-sum scale per physical column, indexed
    /// `[(s · G + g) · OC + oc]`, resolved from the psum granularity
    /// (shared scales are repeated into the dense table).
    fn dense_psum_scales(&self) -> Vec<f32> {
        let p = &self.plan;
        let mut table = Vec::with_capacity(p.num_splits * p.num_row_tiles * p.out_ch);
        for s in 0..p.num_splits {
            let layout = p.psum_layout(self.p_gran, s, 1);
            for ch in 0..p.num_row_tiles * p.out_ch {
                table.push(self.p_quant.scales()[layout.group_of_channel(ch)]);
            }
        }
        table
    }

    /// Scatters a grouped weight gradient back to `[OC, Cin, K, K]`,
    /// scaling by `1/shift` (the STE through bit-splitting; padding
    /// channels are dropped).
    fn scatter_grouped_grad(&self, dwg: &Tensor, inv_shift: f32, dw_int: &mut Tensor) {
        let p = &self.plan;
        let (oc, kk) = (p.out_ch, p.kh * p.kw);
        for g in 0..p.num_row_tiles {
            for o in 0..oc {
                for (c_local, cin) in p.channels_of_row_tile(g).enumerate() {
                    let src = ((g * oc + o) * p.ch_per_array + c_local) * kk;
                    let dst = (o * p.in_ch + cin) * kk;
                    for i in 0..kk {
                        dw_int.data_mut()[dst + i] += dwg.data()[src + i] * inv_shift;
                    }
                }
            }
        }
    }

    /// Initializes partial-sum scales from observed integer partial sums
    /// across all splits (LSQ formula per group).
    fn init_psum_scales(&mut self, psums: &[Tensor], layouts: &[GroupLayout]) {
        let n = self.p_quant.num_groups();
        let mut sums = vec![0.0f64; n];
        let mut counts = vec![0usize; n];
        for (p, layout) in psums.iter().zip(layouts) {
            for (i, &v) in p.data().iter().enumerate() {
                let g = layout.group_of(i);
                sums[g] += v.abs() as f64;
                counts[g] += 1;
            }
        }
        // Binary ADCs use the sign quantizer's MSE-optimal magnitude
        // s₀ = mean|P|; multi-bit ADCs use the LSQ formula.
        let factor = if self.p_quant.format().is_binary() {
            1.0
        } else {
            2.0 / (self.p_quant.format().qp() as f64).sqrt()
        };
        let scales: Vec<f32> = (0..n)
            .map(|g| {
                let mean = if counts[g] > 0 {
                    sums[g] / counts[g] as f64
                } else {
                    0.0
                };
                ((factor * mean) as f32).max(1e-4)
            })
            .collect();
        self.p_quant.set_scales(&scales);
    }

    /// Deterministic per-element variation factors.
    fn variation_factors(shape: &[usize], sigma: f32, seed: u64) -> Tensor {
        let mut rng = CqRng::new(seed);
        let n: usize = shape.iter().product();
        let data = (0..n).map(|_| rng.lognormal_factor(sigma)).collect();
        Tensor::from_vec(data, shape)
    }

    /// The `PerWeight` factor tensor shared by all bit-splits, if that
    /// variation mode is configured.
    fn per_weight_factors(var: Option<VariationCfg>, w_shape: &[usize]) -> Option<Tensor> {
        var.and_then(|v| {
            (v.mode == VariationMode::PerWeight)
                .then(|| Self::variation_factors(w_shape, v.sigma, v.seed))
        })
    }

    /// Applies the configured device variation (Eq. (5)) to one bit-split
    /// weight slice, exactly where cells would be programmed. The per-call
    /// and frozen paths both bake variation through this one function —
    /// the single implementation that keeps them bit-identical.
    fn apply_variation_to_slice(
        var: Option<VariationCfg>,
        weight_factors: Option<&Tensor>,
        s: usize,
        slice: Tensor,
    ) -> Tensor {
        if let Some(f) = weight_factors {
            return slice.mul(f);
        }
        if let Some(v) = var {
            if v.mode == VariationMode::PerCell {
                let f = Self::variation_factors(
                    slice.shape(),
                    v.sigma,
                    v.seed.wrapping_add(1 + s as u64),
                );
                return slice.mul(&f);
            }
        }
        slice
    }

    /// Computes the integer partial sums of every split for input `x`
    /// (paper Fig. 6 analysis). No state is cached or mutated besides lazy
    /// scale initialization.
    pub fn integer_psums(&mut self, x: &Tensor) -> Vec<Tensor> {
        if !self.a_quant.is_initialized() {
            self.a_quant.init_from(x, &GroupLayout::single());
        }
        let a_int = self.a_quant.forward_int(x, &GroupLayout::single());
        let a_pad = self.pad_channels(&a_int);
        let w_int = self.w_quant.forward_int(&self.weight.value, &self.w_layout);
        let pipeline = self.pipeline();
        pipeline.grouped_psums(&a_pad, &pipeline.split_grouped_weights(&w_int))
    }

    /// Exports the layer as a dense [`QuantizedConv`] description for the
    /// explicit crossbar engine.
    ///
    /// # Panics
    ///
    /// Panics if the activation (or, with psum quantization enabled, the
    /// partial-sum) scales have not been initialized by a forward pass.
    pub fn to_quantized_conv(&mut self) -> QuantizedConv {
        assert!(
            self.a_quant.is_initialized(),
            "run a forward pass before exporting (activation scale uninitialized)"
        );
        let w_int = self.w_quant.forward_int(&self.weight.value, &self.w_layout);
        let p = &self.plan;
        let psum_scales = if self.psum_quant_enabled {
            assert!(
                self.p_quant.is_initialized(),
                "psum scales uninitialized; run a forward pass with psum quantization enabled"
            );
            self.dense_psum_scales()
        } else {
            Vec::new()
        };
        QuantizedConv {
            w_int,
            bit_split: self.bit_split,
            plan: p.clone(),
            stride: self.stride,
            pad: self.pad,
            act_scale: self.a_quant.scales()[0],
            act_format: self.a_quant.format(),
            weight_scales: self.sw_table(),
            psum_scales,
            psum_format: self.p_quant.format(),
            psum_quant: self.psum_quant_enabled,
            digital_splits: self.digital_splits,
            bias: self.bias.as_ref().map(|b| b.value.data().to_vec()),
        }
    }

    /// Freezes the layer for serving: quantizes the weights, splits them
    /// into per-split grouped bit-plane tensors (baking in any configured
    /// device variation), and builds the prepared executor **once**.
    /// Subsequent `Mode::Eval` forwards reuse it — bit-identical to the
    /// unfrozen path — with per-call scratch buffers instead of redoing
    /// the weight-side work every call.
    ///
    /// The frozen state invalidates automatically on anything that could
    /// change it: a `Mode::Train` forward, stage toggles, scale resets,
    /// variation changes, or a checkpoint restore. Direct mutation of
    /// `weight()`/quantizer internals between freezes requires an explicit
    /// [`CimConv2d::unfreeze`].
    ///
    /// # Panics
    ///
    /// Panics if quantization is disabled or the activation (or enabled
    /// partial-sum) scales are uninitialized (see
    /// [`CimConv2d::to_quantized_conv`]).
    pub fn freeze(&mut self) {
        assert!(
            self.quant_enabled,
            "freeze requires quantization enabled (full-precision layers have nothing to prepare)"
        );
        let desc = self.to_quantized_conv();
        let var = self.variation;
        let weight_factors = Self::per_weight_factors(var, desc.w_int.shape());
        let mut prepared = PreparedConv::with_slice_transform(desc, move |s, slice| {
            Self::apply_variation_to_slice(var, weight_factors.as_ref(), s, slice)
        });
        // Kernel hint: a single-split ±1 layer (binary weights) always
        // packs into the integer panels when no variation perturbs the
        // programmed cells off the integer grid.
        if self.bit_split.num_splits() == 1 && var.is_none() {
            debug_assert!(
                prepared.profile().integer_eligible,
                "binary-weight layer must be IntPanels-eligible"
            );
        }
        prepared.set_row_tile_shards(self.row_tile_shards);
        prepared
            .set_backends(self.backends.clone())
            .expect("configured backend chain cannot execute the frozen layer");
        self.frozen = Some(FrozenConv::new(prepared));
    }

    /// Sets the row-tile shard count of the frozen executor (see
    /// [`PreparedConv::set_row_tile_shards`] — bit-identical to unsharded
    /// execution for every count). Applies to the current frozen state, if
    /// any, and persists across re-freezes. `None` disables sharding.
    ///
    /// # Panics
    ///
    /// Panics if `shards == Some(0)`.
    pub fn set_row_tile_shards(&mut self, shards: Option<usize>) {
        assert!(shards != Some(0), "shard count must be positive");
        self.row_tile_shards = shards;
        if let Some(fr) = &mut self.frozen {
            fr.prepared.set_row_tile_shards(shards);
        }
    }

    /// Installs an explicit — optionally placement-aware — row-tile shard
    /// plan on the **current** frozen executor (see
    /// [`PreparedConv::set_shard_plan`]); a no-op when unfrozen, and not
    /// persisted across re-freezes (plans are geometry-specific; use
    /// [`set_row_tile_shards`](CimConv2d::set_row_tile_shards) for a
    /// persistent count).
    ///
    /// # Errors
    ///
    /// [`BackendError::Unsupported`] when a placed backend's capability
    /// probe rejects this layer; the previous shard state is left
    /// untouched.
    pub fn set_shard_plan(&mut self, plan: Option<ShardPlan>) -> Result<(), BackendError> {
        match &mut self.frozen {
            Some(fr) => fr.prepared.set_shard_plan(plan),
            None => Ok(()),
        }
    }

    /// Selects the execution-backend chain of the frozen executor (see
    /// [`PreparedConv::set_backends`] — bit-identical outputs on every
    /// backend; the choice is a pure speed change). Applies to the
    /// current frozen state, if any, and persists across re-freezes. The
    /// unfrozen per-call path always runs the f32 kernels.
    ///
    /// # Errors
    ///
    /// [`BackendError::NoBackend`] when the layer is frozen and no chain
    /// entry supports it (e.g. [`BackendSet::int`] under device
    /// variation); the previous configuration is left untouched.
    pub fn set_backends(&mut self, backends: BackendSet) -> Result<(), BackendError> {
        if let Some(fr) = &mut self.frozen {
            fr.prepared.set_backends(backends.clone())?;
        }
        self.backends = backends;
        Ok(())
    }

    /// The configured execution-backend chain.
    pub fn backends(&self) -> &BackendSet {
        &self.backends
    }

    /// Compat selector for the legacy kernel-family enum: equivalent to
    /// `set_backends(kernel.into())`.
    ///
    /// # Errors
    ///
    /// [`BackendError::NoBackend`] on [`PsumKernel::Int`] when the layer
    /// is frozen and its slices are not integer-eligible (e.g. under
    /// device variation).
    pub fn set_psum_kernel(&mut self, kernel: PsumKernel) -> Result<(), BackendError> {
        self.set_backends(kernel.into())
    }

    /// The legacy [`PsumKernel`] view of the configured chain.
    pub fn psum_kernel(&self) -> PsumKernel {
        self.backends.as_psum_kernel()
    }

    /// The backend the frozen executor resolved (`None` when unfrozen).
    pub fn active_backend(&self) -> Option<BackendKind> {
        self.frozen.as_ref().map(|fr| fr.prepared.active_backend())
    }

    /// Whether the frozen executor currently dispatches to the integer
    /// kernels (`false` when unfrozen, when f32 is forced, or when the
    /// frozen slices were not integer-eligible — see
    /// [`PreparedConv::integer_kernel_active`]).
    pub fn integer_kernel_active(&self) -> bool {
        self.frozen
            .as_ref()
            .is_some_and(|fr| fr.prepared.integer_kernel_active())
    }

    /// Drops the frozen serving state (the next eval forward runs the full
    /// per-call path again).
    pub fn unfreeze(&mut self) {
        self.frozen = None;
    }

    /// Whether the layer currently holds prepared serving state.
    pub fn is_frozen(&self) -> bool {
        self.frozen.is_some()
    }

    /// Quantizes `x` on this layer's activation grid (for driving the
    /// crossbar engine with identical inputs).
    ///
    /// # Panics
    ///
    /// Panics if the activation scale is uninitialized.
    pub fn quantize_activations(&self, x: &Tensor) -> Tensor {
        self.a_quant.forward_int(x, &GroupLayout::single())
    }

    fn forward_fp(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            self.frozen = None; // FP training updates weights too
        }
        let mut y = conv2d(x, &self.weight.value, self.stride, self.pad);
        if let Some(b) = &self.bias {
            add_channel_bias(&mut y, &b.value);
        }
        self.fp_cache = (mode == Mode::Train).then(|| x.clone());
        self.cache = None;
        y
    }

    fn backward_fp(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self
            .fp_cache
            .take()
            .expect("CimConv2d::backward without forward");
        let dw = conv2d_backward_weight(
            grad_out,
            &x,
            self.weight.value.shape(),
            self.stride,
            self.pad,
            1,
        );
        self.weight.grad.add_assign(&dw);
        if let Some(b) = &mut self.bias {
            accumulate_bias_grad(grad_out, &mut b.grad);
        }
        conv2d_backward_input(
            grad_out,
            &self.weight.value,
            x.shape(),
            self.stride,
            self.pad,
            1,
        )
    }

    fn forward_quant(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        if mode == Mode::Train {
            // Training updates weights and scales; prepared state is stale.
            self.frozen = None;
        } else if !self.psum_capture {
            // Prepared serving path: all weight-side work was done at
            // freeze time; only activation quantization, the grouped conv
            // sweep, and the shared reduce run per call (bit-identical to
            // the full path below).
            if let Some(fr) = &self.frozen {
                let y = fr.infer(x);
                self.fp_cache = None;
                self.cache = None;
                return y;
            }
        }
        let p = self.plan.clone();
        if !self.a_quant.is_initialized() {
            self.a_quant.init_from(x, &GroupLayout::single());
        }
        let a_int = self.a_quant.forward_int(x, &GroupLayout::single());
        let a_pad = self.pad_channels(&a_int);
        let w_int = self.w_quant.forward_int(&self.weight.value, &self.w_layout);

        // Device variation (eval only): multiplicative factors on the
        // programmed cell values, Eq. (5).
        let var = if mode == Mode::Eval {
            self.variation
        } else {
            None
        };
        let weight_factors = Self::per_weight_factors(var, w_int.shape());

        // Tile → bit-split front-end (variation is applied to the slices
        // before grouping, exactly where cells would be programmed).
        let pipeline = self.pipeline();
        let mut grouped_weights = Vec::with_capacity(p.num_splits);
        for s in 0..p.num_splits {
            let slice = Self::apply_variation_to_slice(
                var,
                weight_factors.as_ref(),
                s,
                self.bit_split.split_tensor(&w_int, s),
            );
            grouped_weights.push(pipeline.group_weight_slice(&slice));
        }
        let psums = pipeline.grouped_psums(&a_pad, &grouped_weights);

        if self.psum_capture {
            self.captured_psums = Some(psums.clone());
        }
        let inner = psums[0].dim(2) * psums[0].dim(3);
        let layouts = self.psum_layouts(inner);
        let psum_quant_used = self.psum_quant_enabled;
        if psum_quant_used && !self.p_quant.is_initialized() {
            self.init_psum_scales(&psums, &layouts);
        }

        // Shared back-end: digitize → shift-add → merged dequant. The ADC
        // digitizer reproduces the LSQ psum quantizer bit-exactly (same
        // clamp-then-round grid, same dense scale resolution).
        let y = if psum_quant_used {
            let table = self.dense_psum_scales();
            let dig = AdcDigitizer::new(Adc::new(self.p_quant.format()), &table, &p);
            if self.digital_splits > 0 {
                pipeline.reduce(&psums, &HybridDigitizer::new(dig, self.digital_splits))
            } else {
                pipeline.reduce(&psums, &dig)
            }
        } else {
            pipeline.reduce(&psums, &IdealDigitizer)
        };

        let sw_table = self.sw_table();
        self.fp_cache = None;
        self.cache = (mode == Mode::Train).then(|| FwdCache {
            x: x.clone(),
            a_pad,
            psums,
            grouped_weights,
            dw_int_template: Tensor::zeros(self.weight.value.shape()),
            sw_table,
            psum_quant_used,
        });
        y
    }

    fn backward_quant(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self
            .cache
            .take()
            .expect("CimConv2d::backward without forward");
        let p = self.plan.clone();
        let batch = grad_out.dim(0);
        let (oh, ow) = (grad_out.dim(2), grad_out.dim(3));
        let inner = oh * ow;
        let layouts = self.psum_layouts(inner);
        let sa = self.a_quant.scales()[0];

        let mut d_a_pad = Tensor::zeros(cache.a_pad.shape());
        let mut dw_int = cache.dw_int_template.clone();
        let gchannels = p.num_row_tiles * p.out_ch;

        for (s, layout) in layouts.iter().enumerate() {
            let shift = self.bit_split.shift_weight(s);
            // ∂L/∂p̂ per partial-sum channel.
            let mut grad_phat = Tensor::zeros(&[batch, gchannels, oh, ow]);
            for bi in 0..batch {
                for g in 0..p.num_row_tiles {
                    for o in 0..p.out_ch {
                        let f = (sa * shift) * cache.sw_table[g * p.out_ch + o];
                        let src = (bi * p.out_ch + o) * inner;
                        let dst = ((bi * p.num_row_tiles + g) * p.out_ch + o) * inner;
                        let (gp, go) = (
                            &mut grad_phat.data_mut()[dst..dst + inner],
                            &grad_out.data()[src..src + inner],
                        );
                        for (a, &b) in gp.iter_mut().zip(go) {
                            *a = b * f;
                        }
                    }
                }
            }
            // Digitally-carried low-order splits bypass the ADC, so their
            // gradient bypasses the psum quantizer too (pure identity).
            let d_psum = if cache.psum_quant_used && s >= self.digital_splits {
                self.p_quant.backward(&cache.psums[s], &grad_phat, layout)
            } else {
                grad_phat
            };
            let da = conv2d_backward_input(
                &d_psum,
                &cache.grouped_weights[s],
                cache.a_pad.shape(),
                self.stride,
                self.pad,
                p.num_row_tiles,
            );
            d_a_pad.add_assign(&da);
            let dwg = conv2d_backward_weight(
                &d_psum,
                &cache.a_pad,
                cache.grouped_weights[s].shape(),
                self.stride,
                self.pad,
                p.num_row_tiles,
            );
            self.scatter_grouped_grad(&dwg, 1.0 / shift, &mut dw_int);
        }

        // Weight quantizer STE (+ scale gradients).
        let grad_what = self.w_quant.divide_by_scales(&dw_int, &self.w_layout);
        let dw = self
            .w_quant
            .backward(&self.weight.value, &grad_what, &self.w_layout);
        self.weight.grad.add_assign(&dw);
        if let Some(b) = &mut self.bias {
            accumulate_bias_grad(grad_out, &mut b.grad);
        }

        // Activation quantizer STE (+ scale gradient).
        let d_a_int = self.unpad_channels(&d_a_pad, cache.x.dim(1));
        let grad_ahat = d_a_int.scale(1.0 / sa);
        self.a_quant
            .backward(&cache.x, &grad_ahat, &GroupLayout::single())
    }
}

impl Layer for CimConv2d {
    fn forward(&mut self, x: &Tensor, mode: Mode) -> Tensor {
        assert_eq!(x.rank(), 4, "CimConv2d input must be [B,C,H,W]");
        assert_eq!(x.dim(1), self.plan.in_ch, "input channels vs plan");
        if self.quant_enabled {
            self.forward_quant(x, mode)
        } else {
            self.forward_fp(x, mode)
        }
    }

    fn forward_shared(&self, x: &Tensor) -> Option<Tensor> {
        assert_eq!(x.rank(), 4, "CimConv2d input must be [B,C,H,W]");
        assert_eq!(x.dim(1), self.plan.in_ch, "input channels vs plan");
        if !self.quant_enabled {
            // Full-precision passthrough is pure in eval mode.
            let mut y = conv2d(x, &self.weight.value, self.stride, self.pad);
            if let Some(b) = &self.bias {
                add_channel_bias(&mut y, &b.value);
            }
            return Some(y);
        }
        // Quantized concurrent serving requires the frozen executor (the
        // per-call path mutates lazy scales and caches); psum capture also
        // needs the stateful path.
        if self.psum_capture {
            return None;
        }
        self.frozen.as_ref().map(|fr| fr.infer(x))
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        if self.cache.is_some() {
            self.backward_quant(grad_out)
        } else {
            self.backward_fp(grad_out)
        }
    }

    fn visit_params(&mut self, prefix: &str, f: &mut dyn FnMut(ParamView<'_>)) {
        self.weight
            .visit(format!("{prefix}weight"), ParamKind::Weight, f);
        if let Some(b) = &mut self.bias {
            b.visit(format!("{prefix}bias"), ParamKind::Bias, f);
        }
        let (v, g) = self.w_quant.scales_and_grads_mut();
        f(ParamView {
            name: format!("{prefix}w_scale"),
            kind: ParamKind::Scale,
            value: v,
            grad: g,
        });
        let (v, g) = self.a_quant.scales_and_grads_mut();
        f(ParamView {
            name: format!("{prefix}a_scale"),
            kind: ParamKind::Scale,
            value: v,
            grad: g,
        });
        let (v, g) = self.p_quant.scales_and_grads_mut();
        f(ParamView {
            name: format!("{prefix}p_scale"),
            kind: ParamKind::Scale,
            value: v,
            grad: g,
        });
    }

    fn apply(&mut self, f: &mut dyn FnMut(&mut dyn Layer)) {
        f(self);
    }

    fn as_any_mut(&mut self) -> &mut dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cq_quant::QuantFormat;

    fn tiny_cfg() -> CimConfig {
        CimConfig::tiny() // 32×32, w3/1b-cell (3 splits), a3, p3
    }

    fn make_layer(w_gran: Granularity, p_gran: Granularity, rng_seed: u64) -> CimConv2d {
        let mut rng = CqRng::new(rng_seed);
        CimConv2d::new(7, 5, 3, 1, 1, tiny_cfg(), w_gran, p_gran, false, &mut rng)
    }

    fn relu_input(seed: u64, shape: &[usize]) -> Tensor {
        CqRng::new(seed)
            .normal_tensor(shape, 1.0)
            .map(|v| v.max(0.0))
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let mut layer = make_layer(Granularity::Column, Granularity::Column, 1);
        let x = relu_input(2, &[2, 7, 8, 8]);
        let y1 = layer.forward(&x, Mode::Eval);
        let y2 = layer.forward(&x, Mode::Eval);
        assert_eq!(y1.shape(), &[2, 5, 8, 8]);
        assert_eq!(y1, y2, "eval forward is deterministic");
    }

    /// With psum quantization off, the pipeline must exactly equal the
    /// fake-quantized convolution conv(Q(w), Q(a)) — the bit-split and
    /// group-conv decomposition is exact.
    #[test]
    fn no_psq_equals_fake_quant_conv() {
        for gran in Granularity::ALL {
            let mut layer = make_layer(gran, Granularity::Column, 3);
            layer.set_psum_quant_enabled(false);
            let x = relu_input(4, &[1, 7, 6, 6]);
            let y = layer.forward(&x, Mode::Eval);
            let w_hat = layer
                .w_quant
                .fake_quant(&layer.weight.value.clone(), &layer.w_layout.clone());
            let a_hat = layer.a_quant.fake_quant(&x, &GroupLayout::single());
            let want = conv2d(&a_hat, &w_hat, 1, 1);
            assert!(
                y.allclose(&want, 2e-3),
                "gran {gran}: max diff {}",
                y.max_abs_diff(&want)
            );
        }
    }

    #[test]
    fn psum_quantization_changes_output_but_preserves_direction() {
        let mut layer = make_layer(Granularity::Column, Granularity::Column, 5);
        let x = relu_input(6, &[1, 7, 6, 6]);
        let yq = layer.forward(&x, Mode::Eval);
        layer.set_psum_quant_enabled(false);
        let yf = layer.forward(&x, Mode::Eval);
        assert_ne!(yq, yf, "3-bit ADC must introduce error");
        // Even at LSQ-init (no training yet) the quantized output must be
        // strongly correlated with the ideal output.
        let cos = yq.mul(&yf).sum() / (yq.sq_sum().sqrt() * yf.sq_sum().sqrt()).max(1e-9);
        assert!(cos > 0.5, "cosine similarity too low: {cos}");
    }

    /// The paper's core mechanism (Fig. 6): when columns have heterogeneous
    /// magnitudes, *learned* per-column scale factors capture the weights
    /// far more accurately than one shared layer scale. (At heuristic init
    /// the granularities can tie; the win comes from heterogeneity plus
    /// scale learning, which is exactly the paper's setting.)
    #[test]
    fn learned_column_scales_quantize_heterogeneous_columns_more_accurately() {
        let mut err = Vec::new();
        for gran in Granularity::ALL {
            let mut layer = make_layer(gran, Granularity::Column, 7);
            // Give each output channel (→ logical column) a very different
            // magnitude, as real trained layers do.
            let (oc, icks) = (5usize, 7 * 3 * 3);
            for o in 0..oc {
                let boost = 0.2 + 1.5 * o as f32;
                for i in 0..icks {
                    layer.weight.value.data_mut()[o * icks + i] *= boost;
                }
            }
            layer.reinit_weight_scales();
            let w = layer.weight.value.clone();
            let layout = layer.w_layout.clone();
            let n = w.numel() as f32;
            // Learn the scales by descending quantization MSE (LSQ).
            let q = &mut layer.w_quant;
            for _ in 0..400 {
                let what = q.fake_quant(&w, &layout);
                let gvh = what.sub(&w).scale(2.0 / n);
                q.zero_scale_grads();
                let _ = q.backward(&w, &gvh, &layout);
                for g in 0..q.num_groups() {
                    let step = q.scale_grads()[g];
                    q.scales_mut()[g] -= 0.5 * step;
                }
                q.clamp_scales();
            }
            let what = q.fake_quant(&w, &layout);
            err.push(what.sub(&w).sq_sum());
        }
        assert!(
            err[2] < err[0] * 0.95,
            "learned column-wise should beat layer-wise: {err:?}"
        );
        assert!(
            err[2] <= err[1] * 1.05,
            "column-wise should not lose to array-wise: {err:?}"
        );
    }

    #[test]
    fn lazy_psum_init_happens_on_first_enabled_forward() {
        let mut layer = make_layer(Granularity::Column, Granularity::Column, 9);
        layer.set_psum_quant_enabled(false);
        let x = relu_input(10, &[1, 7, 6, 6]);
        let _ = layer.forward(&x, Mode::Train);
        assert!(
            !layer.p_quant.is_initialized(),
            "stage 1 must not touch psum scales"
        );
        layer.set_psum_quant_enabled(true);
        let _ = layer.forward(&x, Mode::Train);
        assert!(
            layer.p_quant.is_initialized(),
            "stage 2 initializes psum scales"
        );
    }

    #[test]
    fn backward_produces_all_gradients() {
        let mut layer = make_layer(Granularity::Column, Granularity::Column, 11);
        let x = relu_input(12, &[2, 7, 6, 6]);
        let y = layer.forward(&x, Mode::Train);
        let gy = CqRng::new(13).normal_tensor(y.shape(), 0.1);
        let dx = layer.backward(&gy);
        assert_eq!(dx.shape(), x.shape());
        assert!(dx.max_abs() > 0.0, "input gradient flows");
        assert!(layer.weight.grad.max_abs() > 0.0, "weight gradient flows");
        assert!(
            layer.w_quant.scale_grads().iter().any(|&g| g != 0.0),
            "weight scale gradient flows"
        );
        assert!(
            layer.a_quant.scale_grads().iter().any(|&g| g != 0.0),
            "act scale gradient flows"
        );
        assert!(
            layer.p_quant.scale_grads().iter().any(|&g| g != 0.0),
            "psum scale gradient flows"
        );
    }

    /// With quantization disabled entirely, the layer is a plain conv and
    /// its gradient matches the plain conv gradient.
    #[test]
    fn fp_passthrough_matches_plain_conv() {
        let mut layer = make_layer(Granularity::Column, Granularity::Column, 15);
        layer.set_quant_enabled(false);
        let x = relu_input(16, &[1, 7, 6, 6]);
        let y = layer.forward(&x, Mode::Train);
        let want = conv2d(&x, &layer.weight.value, 1, 1);
        assert_eq!(y, want);
        let gy = Tensor::ones(y.shape());
        let dx = layer.backward(&gy);
        let want_dx = conv2d_backward_input(&gy, &layer.weight.value, x.shape(), 1, 1, 1);
        assert_eq!(dx, want_dx);
    }

    /// QAT sanity: minimizing ||y - target||² through the full quantized
    /// pipeline must reduce the loss.
    #[test]
    fn qat_reduces_loss_end_to_end() {
        let mut layer = make_layer(Granularity::Column, Granularity::Column, 17);
        let x = relu_input(18, &[2, 7, 6, 6]);
        let target = CqRng::new(19).normal_tensor(&[2, 5, 6, 6], 0.5);
        let mut opt = cq_nn::Sgd::new(0.02, 0.9, 0.0);
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..30 {
            let y = layer.forward(&x, Mode::Train);
            let diff = y.sub(&target);
            let loss = diff.sq_sum() / diff.numel() as f32;
            if it == 0 {
                first = loss;
            }
            last = loss;
            layer.zero_grads();
            let gy = diff.scale(2.0 / diff.numel() as f32);
            let _ = layer.backward(&gy);
            opt.step(&mut layer);
        }
        assert!(last < first * 0.8, "QAT loss {first} -> {last}");
    }

    #[test]
    fn variation_perturbs_eval_output_only() {
        let mut layer = make_layer(Granularity::Column, Granularity::Column, 21);
        let x = relu_input(22, &[1, 7, 6, 6]);
        let clean = layer.forward(&x, Mode::Eval);
        layer.set_variation(Some(VariationCfg {
            mode: VariationMode::PerWeight,
            sigma: 0.2,
            seed: 99,
        }));
        let noisy = layer.forward(&x, Mode::Eval);
        assert_ne!(clean, noisy, "variation must perturb eval output");
        // σ = 0 is exactly clean.
        layer.set_variation(Some(VariationCfg {
            mode: VariationMode::PerWeight,
            sigma: 0.0,
            seed: 99,
        }));
        assert_eq!(layer.forward(&x, Mode::Eval), clean);
        // Per-cell mode also works.
        layer.set_variation(Some(VariationCfg {
            mode: VariationMode::PerCell,
            sigma: 0.2,
            seed: 99,
        }));
        assert_ne!(layer.forward(&x, Mode::Eval), clean);
        layer.set_variation(None);
        assert_eq!(layer.forward(&x, Mode::Eval), clean);
    }

    #[test]
    fn dequant_mults_match_overhead_model() {
        let layer = make_layer(Granularity::Column, Granularity::Column, 23);
        // tiny cfg: 7 ch, 3 ch/array -> 3 row tiles; 3 splits; 5 oc.
        assert_eq!(layer.dequant_mults(), 3 * 3 * 5);
        let layer = make_layer(Granularity::Layer, Granularity::Layer, 23);
        assert_eq!(layer.dequant_mults(), 1);
    }

    #[test]
    fn integer_psums_are_integral_and_bounded() {
        let mut layer = make_layer(Granularity::Column, Granularity::Column, 25);
        let x = relu_input(26, &[1, 7, 6, 6]);
        let psums = layer.integer_psums(&x);
        assert_eq!(psums.len(), 3);
        let bound = 1.0 /* 1b cell values in {-1,0,1} */ * 7.0 * (3.0 * 9.0);
        for p in &psums {
            for &v in p.data() {
                assert_eq!(v, v.round(), "psum {v} not integral");
                assert!(v.abs() <= bound, "psum {v} out of bound {bound}");
            }
        }
    }

    #[test]
    fn hybrid_scheme_carries_low_splits_digitally() {
        let scheme = cq_scheme::QuantScheme::hybrid_adc();
        let mut rng = CqRng::new(31);
        let mut hybrid =
            CimConv2d::with_scheme(7, 5, 3, 1, 1, tiny_cfg(), &scheme, false, &mut rng);
        // tiny cfg: 3 splits; requested 2 digital splits fit unclamped.
        assert_eq!(hybrid.digital_splits(), 2);
        assert_eq!(hybrid.scheme_name(), Some("hybrid-adc"));
        let mut all_adc = make_layer(Granularity::Column, Granularity::Column, 31);
        let x = relu_input(32, &[1, 7, 6, 6]);
        let yh = hybrid.forward(&x, Mode::Eval);
        let ya = all_adc.forward(&x, Mode::Eval);
        assert_ne!(yh, ya, "bypassing low-split ADCs must change the output");
        all_adc.set_psum_quant_enabled(false);
        let yf = all_adc.forward(&x, Mode::Eval);
        assert_ne!(yh, yf, "one split still digitizes through the ADC");
        // The hybrid output is closer to ideal than the all-ADC one (two of
        // three splits carry no conversion error).
        assert!(
            yh.max_abs_diff(&yf) <= ya.max_abs_diff(&yf),
            "hybrid should not be further from ideal than all-ADC"
        );
        // QAT through the hybrid path: gradients flow everywhere, and the
        // analog split still feeds the psum-scale gradient.
        let y = hybrid.forward(&x, Mode::Train);
        let gy = CqRng::new(33).normal_tensor(y.shape(), 0.1);
        let dx = hybrid.backward(&gy);
        assert!(dx.max_abs() > 0.0, "input gradient flows");
        assert!(hybrid.weight.grad.max_abs() > 0.0, "weight gradient flows");
        assert!(
            hybrid.p_quant.scale_grads().iter().any(|&g| g != 0.0),
            "psum scale gradient flows through the analog split"
        );
    }

    #[test]
    fn binary_scheme_runs_single_split_integer_fast_path() {
        let scheme = cq_scheme::QuantScheme::bwma();
        let mut rng = CqRng::new(41);
        let mut layer = CimConv2d::with_scheme(7, 5, 3, 1, 1, tiny_cfg(), &scheme, false, &mut rng);
        assert_eq!(layer.scheme_name(), Some("bwma"));
        assert_eq!(layer.cim_config().weight_bits, 1);
        assert_eq!(layer.plan().num_splits, 1, "binary weights = one split");
        assert_eq!(layer.digital_splits(), 0, "the single split stays analog");
        let x = relu_input(42, &[1, 7, 6, 6]);
        let y = layer.forward(&x, Mode::Eval);
        // Quantized weights are the scaled codebook {-1, 0, +1}.
        let w_int = layer
            .w_quant
            .forward_int(&layer.weight.value.clone(), &layer.w_layout.clone());
        assert!(w_int
            .data()
            .iter()
            .all(|&v| v == -1.0 || v == 0.0 || v == 1.0));
        // Freeze: always IntPanels-eligible, bit-exact vs the per-call path.
        layer.freeze();
        assert!(
            layer.integer_kernel_active() || layer.active_backend() != Some(BackendKind::IntPanels),
            "binary layer rejected by the integer backend"
        );
        assert_eq!(layer.forward(&x, Mode::Eval), y, "frozen == unfrozen");
        layer.set_backends(BackendSet::int()).unwrap();
        assert!(
            layer.integer_kernel_active(),
            "forced IntPanels must engage"
        );
        assert_eq!(layer.forward(&x, Mode::Eval), y, "int backend bit-exact");
        // QAT smoke through the sign STE.
        layer.set_backends(BackendSet::standard()).unwrap();
        let y = layer.forward(&x, Mode::Train);
        let gy = CqRng::new(43).normal_tensor(y.shape(), 0.1);
        let dx = layer.backward(&gy);
        assert!(dx.max_abs() > 0.0 && layer.weight.grad.max_abs() > 0.0);
    }

    #[test]
    fn export_format_matches_config() {
        let mut layer = make_layer(Granularity::Column, Granularity::Column, 27);
        let x = relu_input(28, &[1, 7, 6, 6]);
        let _ = layer.forward(&x, Mode::Eval);
        let qc = layer.to_quantized_conv();
        qc.validate();
        assert_eq!(qc.psum_format, QuantFormat::signed(3));
        assert_eq!(qc.weight_scales.len(), 3 * 5);
        assert_eq!(qc.psum_scales.len(), 3 * 3 * 5);
    }
}
