//! Quantization schemes: the paper's method and the five related works it
//! compares against (Table I).

use cq_quant::Granularity;
use std::fmt;

/// How a scheme is trained (Table I's "train from scratch" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrainMethod {
    /// Single QAT run from scratch with all quantizers active — the
    /// paper's method (enabled by granularity alignment, Sec. III-D).
    OneStageQat,
    /// Stage 1 trains with full-precision partial sums; stage 2 enables
    /// partial-sum quantization (Saxena et al. \[8\], \[9\]).
    TwoStageQat,
    /// Train full precision, then calibrate quantizer scales post hoc
    /// without further training (Kim \[5\], Bai \[6\], \[7\]).
    Ptq,
}

impl fmt::Display for TrainMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrainMethod::OneStageQat => "one-stage QAT",
            TrainMethod::TwoStageQat => "two-stage QAT",
            TrainMethod::Ptq => "PTQ",
        };
        f.write_str(s)
    }
}

/// A complete quantization scheme: granularities, training method, and
/// which scale factors are learnable (the three axes of Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantScheme {
    /// Display label ("Ours", "Kim \[5\]", …).
    pub label: String,
    /// Weight quantization granularity.
    pub w_gran: Granularity,
    /// Partial-sum quantization granularity.
    pub p_gran: Granularity,
    /// Training method.
    pub method: TrainMethod,
    /// Whether weight scale factors are learned during training.
    pub learnable_w_scale: bool,
    /// Whether partial-sum scale factors are learned during training.
    pub learnable_p_scale: bool,
}

impl QuantScheme {
    /// The paper's scheme: column-wise weights **and** partial sums,
    /// one-stage QAT, both scale factors learnable.
    pub fn ours() -> Self {
        Self {
            label: "Ours".into(),
            w_gran: Granularity::Column,
            p_gran: Granularity::Column,
            method: TrainMethod::OneStageQat,
            learnable_w_scale: true,
            learnable_p_scale: true,
        }
    }

    /// Kim et al. \[5\]: layer-wise weights and partial sums, PTQ.
    pub fn kim5() -> Self {
        Self {
            label: "Kim [5]".into(),
            w_gran: Granularity::Layer,
            p_gran: Granularity::Layer,
            method: TrainMethod::Ptq,
            learnable_w_scale: false,
            learnable_p_scale: true,
        }
    }

    /// Bai et al. \[6\], \[7\]: array-wise weights and partial sums, PTQ.
    pub fn bai67() -> Self {
        Self {
            label: "Bai [6], [7]".into(),
            w_gran: Granularity::Array,
            p_gran: Granularity::Array,
            method: TrainMethod::Ptq,
            learnable_w_scale: false,
            learnable_p_scale: true,
        }
    }

    /// Saxena et al. \[8\]: layer-wise weights (QAT from scratch),
    /// array-wise partial sums (second-stage QAT).
    pub fn saxena8() -> Self {
        Self {
            label: "Saxena [8]".into(),
            w_gran: Granularity::Layer,
            p_gran: Granularity::Array,
            method: TrainMethod::TwoStageQat,
            learnable_w_scale: false,
            learnable_p_scale: true,
        }
    }

    /// Saxena & Roy \[9\]: layer-wise weights (QAT from scratch),
    /// column-wise partial sums (second-stage QAT) — the strongest prior.
    pub fn saxena9() -> Self {
        Self {
            label: "Saxena [9]".into(),
            w_gran: Granularity::Layer,
            p_gran: Granularity::Column,
            method: TrainMethod::TwoStageQat,
            learnable_w_scale: true,
            learnable_p_scale: true,
        }
    }

    /// An ad-hoc one-stage QAT scheme with the given granularities (used
    /// for the 9-combination sweeps of Fig. 7/8).
    pub fn custom(w_gran: Granularity, p_gran: Granularity) -> Self {
        Self {
            label: format!("{}/{}", w_gran.letter(), p_gran.letter()),
            w_gran,
            p_gran,
            method: TrainMethod::OneStageQat,
            learnable_w_scale: true,
            learnable_p_scale: true,
        }
    }

    /// Variant of this scheme with a different training method (Fig. 9
    /// compares one- vs two-stage on fixed granularities).
    pub fn with_method(mut self, method: TrainMethod) -> Self {
        self.method = method;
        self
    }

    /// The paper's five compared schemes, related works first, ours last —
    /// the legend order of Fig. 7/10 and Table III.
    pub fn all_compared() -> Vec<QuantScheme> {
        vec![
            Self::kim5(),
            Self::bai67(),
            Self::saxena8(),
            Self::saxena9(),
            Self::ours(),
        ]
    }

    /// One markdown row of Table I.
    pub fn table1_row(&self) -> String {
        let scratch = |yes: bool, m: TrainMethod| match (yes, m) {
            (true, _) => "yes".to_string(),
            (false, TrainMethod::Ptq) => "no (PTQ)".to_string(),
            (false, _) => "no (2-stage QAT)".to_string(),
        };
        let w_scratch =
            self.method == TrainMethod::OneStageQat || self.method == TrainMethod::TwoStageQat;
        let p_scratch = self.method == TrainMethod::OneStageQat;
        format!(
            "| {} | {} | {} | {} | {} | {} | {} |",
            self.label,
            self.w_gran,
            scratch(w_scratch, self.method),
            if self.learnable_w_scale { "yes" } else { "no" },
            self.p_gran,
            scratch(p_scratch, self.method),
            if self.learnable_p_scale { "yes" } else { "no" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ours_aligns_granularities_column_wise() {
        let s = QuantScheme::ours();
        assert_eq!(s.w_gran, Granularity::Column);
        assert_eq!(s.p_gran, Granularity::Column);
        assert_eq!(s.method, TrainMethod::OneStageQat);
        assert!(s.learnable_w_scale && s.learnable_p_scale);
    }

    #[test]
    fn related_works_match_table1() {
        let all = QuantScheme::all_compared();
        assert_eq!(all.len(), 5);
        assert_eq!(all[0].label, "Kim [5]");
        assert_eq!(all[0].w_gran, Granularity::Layer);
        assert_eq!(all[1].w_gran, Granularity::Array);
        assert_eq!(all[1].p_gran, Granularity::Array);
        assert_eq!(all[2].p_gran, Granularity::Array);
        assert_eq!(all[3].p_gran, Granularity::Column);
        assert_eq!(all[3].w_gran, Granularity::Layer);
        assert_eq!(all[4].label, "Ours");
        // Only ours trains one-stage; only [5]-[7] are PTQ.
        assert_eq!(
            all.iter()
                .filter(|s| s.method == TrainMethod::OneStageQat)
                .count(),
            1
        );
        assert_eq!(
            all.iter().filter(|s| s.method == TrainMethod::Ptq).count(),
            2
        );
    }

    #[test]
    fn custom_label_uses_letters() {
        let s = QuantScheme::custom(Granularity::Array, Granularity::Column);
        assert_eq!(s.label, "A/C");
    }

    #[test]
    fn table1_rows_render() {
        for s in QuantScheme::all_compared() {
            let row = s.table1_row();
            assert!(row.starts_with('|') && row.ends_with('|'));
            assert_eq!(row.matches('|').count(), 8);
        }
    }
}
