//! Model construction and surgery: a [`ConvFactory`] that installs
//! [`CimConv2d`] layers per a [`QuantScheme`], plus whole-model helpers
//! for stage toggling, variation injection, calibration, and overhead
//! accounting.

use crate::{CimConv2d, QuantScheme, VariationCfg, VariationMode};
use cq_cim::CimConfig;
use cq_nn::{Conv2d, ConvFactory, ConvRole, Layer, Mode, ResNet, ResNetSpec};
use cq_tensor::{CqRng, Tensor};

/// Builds [`CimConv2d`] body convolutions (and optionally shortcuts) at
/// the scheme's granularities; the stem stays full precision by default,
/// following common practice in the partial-sum quantization literature.
pub struct CimConvFactory {
    cfg: CimConfig,
    scheme: QuantScheme,
    /// Quantize the stem convolution too (default false).
    pub quantize_stem: bool,
    /// Quantize 1×1 projection shortcuts (default true).
    pub quantize_shortcut: bool,
    rng: CqRng,
}

impl CimConvFactory {
    /// Creates a factory for the given hardware config and scheme. The
    /// scheme's weight-quantizer family is applied to the macro config per
    /// layer (binary weights force the 1-bit single-split layout), its
    /// digitization strategy is resolved against each layer's split
    /// count, and its name is recorded on every CIM layer for serving
    /// attribution.
    pub fn new(cfg: CimConfig, scheme: &QuantScheme, seed: u64) -> Self {
        Self {
            cfg,
            scheme: scheme.clone(),
            quantize_stem: false,
            quantize_shortcut: true,
            rng: CqRng::new(seed),
        }
    }
}

impl ConvFactory for CimConvFactory {
    fn conv(
        &mut self,
        _name: &str,
        in_ch: usize,
        out_ch: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        role: ConvRole,
    ) -> Box<dyn Layer> {
        let quantize = match role {
            ConvRole::Stem => self.quantize_stem,
            ConvRole::Shortcut => self.quantize_shortcut,
            ConvRole::Body => true,
        };
        if quantize {
            Box::new(CimConv2d::with_scheme(
                in_ch,
                out_ch,
                kernel,
                stride,
                pad,
                self.cfg,
                &self.scheme,
                false,
                &mut self.rng,
            ))
        } else {
            Box::new(Conv2d::new(
                in_ch,
                out_ch,
                kernel,
                stride,
                pad,
                false,
                &mut self.rng,
            ))
        }
    }
}

/// Builds a ResNet whose body convolutions run through the CIM pipeline
/// configured by `scheme`.
pub fn build_cim_resnet(
    spec: ResNetSpec,
    cfg: &CimConfig,
    scheme: &QuantScheme,
    seed: u64,
) -> ResNet {
    let mut factory = CimConvFactory::new(*cfg, scheme, seed);
    ResNet::build(spec, &mut factory, seed.wrapping_add(0x5EED))
}

/// Calls `f` on every [`CimConv2d`] in the model (depth-first order).
pub fn for_each_cim_conv(model: &mut dyn Layer, mut f: impl FnMut(&mut CimConv2d)) {
    model.apply(&mut |l| {
        if let Some(conv) = l.as_any_mut().downcast_mut::<CimConv2d>() {
            f(conv);
        }
    });
}

/// Number of CIM convolution layers in the model.
pub fn count_cim_convs(model: &mut dyn Layer) -> usize {
    let mut n = 0;
    for_each_cim_conv(model, |_| n += 1);
    n
}

/// Enables/disables weight+activation quantization on every CIM layer
/// (disabled = full-precision passthrough, the PTQ pre-training phase).
pub fn set_quant_enabled(model: &mut dyn Layer, enabled: bool) {
    for_each_cim_conv(model, |c| c.set_quant_enabled(enabled));
}

/// Enables/disables partial-sum quantization on every CIM layer (the
/// two-stage QAT toggle).
pub fn set_psum_quant_enabled(model: &mut dyn Layer, enabled: bool) {
    for_each_cim_conv(model, |c| c.set_psum_quant_enabled(enabled));
}

/// Installs inference-time device variation with per-layer derived seeds
/// (`None` σ clears it).
pub fn set_variation(model: &mut dyn Layer, sigma: Option<f32>, mode: VariationMode, seed: u64) {
    let mut idx = 0u64;
    for_each_cim_conv(model, |c| {
        c.set_variation(sigma.map(|s| VariationCfg {
            mode,
            sigma: s,
            seed: seed.wrapping_add(idx.wrapping_mul(0x9E3779B97F4A7C15)),
        }));
        idx += 1;
    });
}

/// Total dequantization multiplications across all CIM layers (the model
/// row of the paper's Fig. 8 analysis).
pub fn model_dequant_mults(model: &mut dyn Layer) -> usize {
    let mut total = 0;
    for_each_cim_conv(model, |c| total += c.dequant_mults());
    total
}

/// Markdown report of how a model maps onto its CIM macros: per-layer
/// arrays, programmed-cell capacity, ADC conversions per output pixel,
/// dequantization multiplications, and row utilization of the
/// kernel-intact tiling, with totals.
pub fn accelerator_report(model: &mut dyn Layer) -> String {
    let mut rows = Vec::new();
    let mut totals = (0usize, 0usize, 0usize, 0usize);
    let mut idx = 0usize;
    for_each_cim_conv(model, |c| {
        let cost = c.cost();
        let p = c.plan();
        rows.push(format!(
            "| {} | {}→{} {}x{} | {} | {} | {} | {} | {:.0}% |",
            idx,
            p.in_ch,
            p.out_ch,
            p.kh,
            p.kw,
            cost.arrays,
            cost.cells,
            cost.adc_conversions_per_pixel,
            cost.dequant_mults,
            100.0 * cost.row_utilization,
        ));
        totals.0 += cost.arrays;
        totals.1 += cost.cells;
        totals.2 += cost.adc_conversions_per_pixel;
        totals.3 += cost.dequant_mults;
        idx += 1;
    });
    let mut out = String::from(
        "| layer | conv | arrays | cells | ADC conv/pixel | dequant mults | row util |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for r in rows {
        out.push_str(&r);
        out.push('\n');
    }
    out.push_str(&format!(
        "| **total** | {idx} CIM layers | {} | {} | {} | {} | |\n",
        totals.0, totals.1, totals.2, totals.3
    ));
    out
}

/// Saves a CIM model checkpoint (parameters, quantizer scales, BatchNorm
/// running statistics) to a file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn save_cim_checkpoint(
    model: &mut dyn Layer,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    cq_nn::save_params(model, path)
}

/// Loads a CIM model checkpoint saved by [`save_cim_checkpoint`] and marks
/// every quantizer initialized, so lazy scale initialization does not
/// overwrite the restored scale factors on the next forward pass.
///
/// Intended for fully-trained models (the normal use: train once, then
/// reuse for variation sweeps and crossbar export).
///
/// # Errors
///
/// Propagates I/O errors and checkpoint-format violations.
pub fn load_cim_checkpoint(
    model: &mut dyn Layer,
    path: impl AsRef<std::path::Path>,
) -> std::io::Result<()> {
    cq_nn::load_params(model, path)?;
    for_each_cim_conv(model, |c| c.mark_scales_initialized());
    Ok(())
}

/// PTQ calibration (Kim \[5\] / Bai \[6\],\[7\] flow): re-fits weight scales
/// from the trained weights, resets activation/partial-sum scales, then
/// runs the calibration batches in eval mode so the lazy initializers fit
/// them from live statistics. No parameter is trained.
pub fn ptq_calibrate(model: &mut dyn Layer, calib_inputs: &[Tensor]) {
    assert!(
        !calib_inputs.is_empty(),
        "need at least one calibration batch"
    );
    for_each_cim_conv(model, |c| {
        c.set_quant_enabled(true);
        c.reinit_weight_scales();
        c.reset_data_scales();
    });
    for x in calib_inputs {
        let _ = model.forward(x, Mode::Eval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> CimConfig {
        CimConfig::tiny()
    }

    fn small_spec() -> ResNetSpec {
        ResNetSpec::resnet8(4, 4)
    }

    #[test]
    fn build_counts_cim_layers() {
        let mut net = build_cim_resnet(small_spec(), &small_cfg(), &QuantScheme::ours(), 1);
        // resnet8: 3 blocks × 2 convs + 2 shortcuts = 8 quantized convs
        // (stem stays FP).
        assert_eq!(count_cim_convs(&mut net), 8);
        let x = CqRng::new(2).normal_tensor(&[1, 3, 16, 16], 1.0);
        let y = net.forward(&x, Mode::Eval);
        assert_eq!(y.shape(), &[1, 4]);
    }

    #[test]
    fn quantize_stem_option() {
        let mut factory = CimConvFactory::new(small_cfg(), &QuantScheme::ours(), 3);
        factory.quantize_stem = true;
        let mut net = ResNet::build(small_spec(), &mut factory, 4);
        assert_eq!(count_cim_convs(&mut net), 9);
    }

    #[test]
    fn stage_toggles_reach_every_layer() {
        let mut net = build_cim_resnet(small_spec(), &small_cfg(), &QuantScheme::saxena9(), 5);
        set_psum_quant_enabled(&mut net, false);
        let mut all_off = true;
        for_each_cim_conv(&mut net, |c| all_off &= !c.psum_quant_enabled());
        assert!(all_off);
        set_psum_quant_enabled(&mut net, true);
        let mut all_on = true;
        for_each_cim_conv(&mut net, |c| all_on &= c.psum_quant_enabled());
        assert!(all_on);
    }

    #[test]
    fn variation_changes_eval_logits_and_clears() {
        let mut net = build_cim_resnet(small_spec(), &small_cfg(), &QuantScheme::ours(), 7);
        let x = CqRng::new(8).normal_tensor(&[1, 3, 16, 16], 1.0);
        let clean = net.forward(&x, Mode::Eval);
        set_variation(&mut net, Some(0.25), VariationMode::PerWeight, 42);
        let noisy = net.forward(&x, Mode::Eval);
        assert_ne!(clean, noisy);
        set_variation(&mut net, None, VariationMode::PerWeight, 42);
        assert_eq!(net.forward(&x, Mode::Eval), clean);
    }

    #[test]
    fn model_overhead_respects_scheme() {
        let mut ours = build_cim_resnet(small_spec(), &small_cfg(), &QuantScheme::ours(), 9);
        let mut saxena9 = build_cim_resnet(small_spec(), &small_cfg(), &QuantScheme::saxena9(), 9);
        let mut kim = build_cim_resnet(small_spec(), &small_cfg(), &QuantScheme::kim5(), 9);
        // The paper's claim: ours (C/C) has the same overhead as [9] (L/C).
        assert_eq!(
            model_dequant_mults(&mut ours),
            model_dequant_mults(&mut saxena9)
        );
        // And L/L is enormously cheaper (1 per layer).
        assert_eq!(model_dequant_mults(&mut kim), count_cim_convs(&mut kim));
    }

    #[test]
    fn checkpoint_roundtrip_preserves_quantized_behaviour() {
        use cq_nn::Mode;
        let mut a = build_cim_resnet(small_spec(), &small_cfg(), &QuantScheme::ours(), 30);
        let x = CqRng::new(31).normal_tensor(&[2, 3, 16, 16], 1.0);
        // Initialize all lazy scales and nudge weights via one train step.
        let _ = a.forward(&x, Mode::Train);
        let ya = a.forward(&x, Mode::Eval);

        let dir = std::env::temp_dir().join("cq_core_ckpt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("cim.cqnn");
        save_cim_checkpoint(&mut a, &path).unwrap();

        let mut b = build_cim_resnet(small_spec(), &small_cfg(), &QuantScheme::ours(), 777);
        load_cim_checkpoint(&mut b, &path).unwrap();
        // The loaded model must produce identical quantized outputs WITHOUT
        // any warm-up forward (scales must not lazily re-initialize).
        let yb = b.forward(&x, Mode::Eval);
        assert_eq!(ya, yb, "checkpoint restore must be bit-exact");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn ptq_calibration_initializes_all_scales() {
        let mut net = build_cim_resnet(small_spec(), &small_cfg(), &QuantScheme::kim5(), 11);
        set_quant_enabled(&mut net, false); // FP "pre-training" state
        let x = CqRng::new(12).normal_tensor(&[2, 3, 16, 16], 1.0);
        let _ = net.forward(&x, Mode::Eval);
        ptq_calibrate(&mut net, std::slice::from_ref(&x));
        let mut ok = true;
        for_each_cim_conv(&mut net, |c| {
            ok &= c.act_quantizer().is_initialized();
            ok &= c.psum_quantizer().is_initialized();
            ok &= c.quant_enabled();
        });
        assert!(ok, "all quantizers calibrated");
        // Calibrated model still produces finite logits.
        let y = net.forward(&x, Mode::Eval);
        assert!(y.data().iter().all(|v| v.is_finite()));
    }
}
