//! The prepared serving path must be **bit-identical** to the per-call
//! engine over the full scheme matrix — partial-sum quantization {off, on}
//! × weight granularity × psum granularity × digitizer {ideal ADC bypass,
//! behavioural ADC, weight-side device variation} — and idempotent across
//! repeated `infer_batch` calls on one `PreparedCimModel`.

use cq_cim::CimConfig;
use cq_core::{
    build_cim_resnet, for_each_cim_conv, CimConv2d, PreparedCimModel, QuantScheme, VariationCfg,
    VariationMode,
};
use cq_nn::{Layer, Mode};
use cq_quant::Granularity;
use cq_tensor::{CqRng, Tensor};

fn relu_input(seed: u64, shape: &[usize]) -> Tensor {
    CqRng::new(seed)
        .normal_tensor(shape, 1.0)
        .map(|v| v.max(0.0))
}

/// One digitizer regime of the equivalence matrix.
#[derive(Clone, Copy, Debug)]
enum Digitizer {
    /// Partial-sum quantization off (ideal infinite-precision converter).
    Ideal,
    /// Behavioural ADC on the trained psum scales.
    Adc,
    /// ADC plus weight-side log-normal device variation.
    Variation(VariationMode),
}

fn check_cell(w_gran: Granularity, p_gran: Granularity, dig: Digitizer, seed: u64) {
    let mut rng = CqRng::new(seed);
    let mut layer = CimConv2d::new(
        7,
        5,
        3,
        1,
        1,
        CimConfig::tiny(),
        w_gran,
        p_gran,
        true,
        &mut rng,
    );
    match dig {
        Digitizer::Ideal => layer.set_psum_quant_enabled(false),
        Digitizer::Adc => {}
        Digitizer::Variation(mode) => layer.set_variation(Some(VariationCfg {
            mode,
            sigma: 0.15,
            seed: 77,
        })),
    }
    let x = relu_input(seed + 1, &[2, 7, 6, 6]);
    // Unprepared per-call path (also initializes lazy scales).
    let want = layer.forward(&x, Mode::Eval);
    // Frozen path: weight quantization/splitting/grouping (and variation
    // baking) done once, then served twice to also check idempotence.
    layer.freeze();
    assert!(layer.is_frozen());
    let got1 = layer.forward(&x, Mode::Eval);
    let got2 = layer.forward(&x, Mode::Eval);
    assert_eq!(
        want, got1,
        "prepared mismatch at w={w_gran} p={p_gran} dig={dig:?}"
    );
    assert_eq!(
        got1, got2,
        "not idempotent at w={w_gran} p={p_gran} dig={dig:?}"
    );
    // Unfreezing returns to the identical per-call result.
    layer.unfreeze();
    assert_eq!(want, layer.forward(&x, Mode::Eval));
}

/// Builds one frozen matrix cell and serves it once (deterministic:
/// layer init, scale warm-up, variation baking are all seeded).
fn frozen_cell_output(
    w_gran: Granularity,
    p_gran: Granularity,
    dig: Digitizer,
    seed: u64,
) -> Tensor {
    let mut rng = CqRng::new(seed);
    let mut layer = CimConv2d::new(
        7,
        5,
        3,
        1,
        1,
        CimConfig::tiny(),
        w_gran,
        p_gran,
        true,
        &mut rng,
    );
    match dig {
        Digitizer::Ideal => layer.set_psum_quant_enabled(false),
        Digitizer::Adc => {}
        Digitizer::Variation(mode) => layer.set_variation(Some(VariationCfg {
            mode,
            sigma: 0.15,
            seed: 77,
        })),
    }
    let x = relu_input(seed + 1, &[2, 7, 6, 6]);
    let _ = layer.forward(&x, Mode::Eval);
    layer.freeze();
    layer.forward(&x, Mode::Eval)
}

/// The pooled executor must be bit-identical to spawn-per-call scoped
/// threads (the pre-pool execution shape) over the full scheme matrix,
/// at pool widths 1, 2, and the machine's parallelism.
#[test]
fn pooled_executor_matches_spawn_per_call_across_widths() {
    use cq_tensor::exec::{self, Backend, ExecPool};
    let mut cells = Vec::new();
    let mut seed = 900;
    for w_gran in Granularity::ALL {
        for p_gran in Granularity::ALL {
            for dig in [
                Digitizer::Ideal,
                Digitizer::Adc,
                Digitizer::Variation(VariationMode::PerWeight),
                Digitizer::Variation(VariationMode::PerCell),
            ] {
                cells.push((w_gran, p_gran, dig, seed));
                seed += 10;
            }
        }
    }
    // Reference: every scope spawns OS threads, as the kernels did before
    // the persistent pool. (Backend choice never changes arithmetic, so
    // flipping the global here is benign for concurrently running tests.)
    exec::set_backend(Backend::SpawnPerCall);
    let want: Vec<Tensor> = cells
        .iter()
        .map(|&(w, p, d, s)| frozen_cell_output(w, p, d, s))
        .collect();
    exec::set_backend(Backend::Pooled);
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    for width in [1, 2, ncpu] {
        let pool = ExecPool::with_threads(width);
        pool.install(|| {
            for (&(w, p, d, s), want) in cells.iter().zip(&want) {
                assert_eq!(
                    &frozen_cell_output(w, p, d, s),
                    want,
                    "pool width {width} diverged at w={w} p={p} dig={d:?}"
                );
            }
        });
    }
}

/// psq {off,on} × weight granularity × psum granularity × digitizer.
#[test]
fn prepared_equivalence_full_matrix() {
    let mut seed = 100;
    for w_gran in Granularity::ALL {
        for p_gran in Granularity::ALL {
            for dig in [
                Digitizer::Ideal,
                Digitizer::Adc,
                Digitizer::Variation(VariationMode::PerWeight),
                Digitizer::Variation(VariationMode::PerCell),
            ] {
                check_cell(w_gran, p_gran, dig, seed);
                seed += 10;
            }
        }
    }
}

/// A `Mode::Train` forward invalidates the frozen state, and the next
/// freeze picks up the updated weights (no stale serving).
#[test]
fn training_invalidates_frozen_state() {
    let mut rng = CqRng::new(5);
    let mut layer = CimConv2d::new(
        7,
        5,
        3,
        1,
        1,
        CimConfig::tiny(),
        Granularity::Column,
        Granularity::Column,
        false,
        &mut rng,
    );
    let x = relu_input(6, &[1, 7, 6, 6]);
    let _ = layer.forward(&x, Mode::Eval);
    layer.freeze();
    assert!(layer.is_frozen());
    let y = layer.forward(&x, Mode::Train);
    assert!(!layer.is_frozen(), "Train forward must drop frozen state");
    // Nudge the weights as an optimizer step would, then compare a fresh
    // freeze against the per-call path.
    let _ = layer.backward(&y.scale(1e-2));
    let mut opt = cq_nn::Sgd::new(0.05, 0.9, 0.0);
    opt.step(&mut layer);
    let want = layer.forward(&x, Mode::Eval);
    layer.freeze();
    assert_eq!(want, layer.forward(&x, Mode::Eval), "stale weights served");
}

/// Whole-model serving: two `infer_batch` calls on one `PreparedCimModel`
/// agree bit-for-bit, and coalesced micro-batches match per-request
/// unprepared forwards exactly.
#[test]
fn prepared_model_idempotent_and_coalescing_exact() {
    let mut net = build_cim_resnet(
        cq_nn::ResNetSpec::resnet8(4, 4),
        &CimConfig::tiny(),
        &QuantScheme::ours(),
        11,
    );
    let warm = relu_input(12, &[2, 3, 12, 12]);
    let _ = net.forward(&warm, Mode::Eval);

    let rng = &mut CqRng::new(13);
    let requests: Vec<Tensor> = (0..6)
        .map(|i| rng.normal_tensor(&[1 + (i % 2), 3, 12, 12], 1.0))
        .collect();
    let want: Vec<Tensor> = requests
        .iter()
        .map(|r| net.forward(r, Mode::Eval))
        .collect();

    let mut pm = PreparedCimModel::new(Box::new(net));
    let mut frozen_layers = 0;
    for_each_cim_conv(pm.model_mut(), |c| {
        if c.is_frozen() {
            frozen_layers += 1;
        }
    });
    assert_eq!(frozen_layers, 8, "every CIM conv frozen");

    let first = pm.infer_batch(&requests);
    let second = pm.infer_batch(&requests);
    assert_eq!(first, second, "infer_batch not idempotent");
    assert_eq!(first, want, "coalesced serving diverged from per-call path");

    // Chunked coalescing (micro-batch cap) is equally exact.
    pm.set_max_batch(Some(3));
    assert_eq!(pm.infer_batch(&requests), want, "chunked sweep diverged");
}
