//! Bit-exactness matrix for **sharded execution**: row-tile sharded
//! inference (and the shared `&self` path behind batch-segment sharding)
//! must equal the unsharded `PreparedCimModel::infer_batch` bit-for-bit
//! across psq mode × granularity × digitizer × shard counts {1, 2, 7} —
//! including a shard count larger than any layer's number of row tiles —
//! on **every backend chain**: every cell runs the forced f32 oracle,
//! the `auto` chain (integer i8/i32 panels where the frozen slices are
//! integer-eligible, simd-f32 fallback under variation), and the scalar
//! loop-nest reference. A mixed-placement test additionally pins one
//! sweep whose row-tile shards execute on *different* backends and must
//! still rejoin bit-exactly.
//!
//! Digitizer regimes map onto the pipeline as in `prepared_inference`:
//! with psum quantization off the ideal (infinite-precision) converter
//! runs; with it on the behavioural ADC runs; `Variation` additionally
//! bakes per-cell log-normal device variation into the frozen weights.

use cq_cim::CimConfig;
use cq_core::{
    build_cim_resnet, for_each_cim_conv, set_psum_quant_enabled, set_variation, BackendKind,
    BackendSet, PreparedCimModel, PsumKernel, QuantScheme, ShardPlan, VariationMode,
};
use cq_nn::{Layer, Mode, ResNetSpec};
use cq_quant::Granularity;
use cq_tensor::{CqRng, Tensor};

/// One digitizer regime of the matrix.
#[derive(Clone, Copy, Debug)]
enum Digitizer {
    /// No device variation: ideal converter (psq off) or plain ADC (psq on).
    Clean,
    /// Per-cell log-normal variation baked into the frozen weights.
    Variation,
}

fn prepared_model(psq: bool, gran: Granularity, dig: Digitizer, seed: u64) -> PreparedCimModel {
    let mut net = build_cim_resnet(
        ResNetSpec::resnet8(4, 4),
        &CimConfig::tiny(),
        &QuantScheme::custom(gran, gran),
        seed,
    );
    if !psq {
        set_psum_quant_enabled(&mut net, false);
    }
    if let Digitizer::Variation = dig {
        set_variation(&mut net, Some(0.15), VariationMode::PerCell, 77);
    }
    // Initialize every lazy scale before freezing.
    let warm = CqRng::new(seed + 1000).normal_tensor(&[2, 3, 12, 12], 1.0);
    let _ = net.forward(&warm, Mode::Eval);
    PreparedCimModel::new(Box::new(net))
}

fn check_cell(psq: bool, gran: Granularity, dig: Digitizer, seed: u64) {
    let ctx = format!("psq={psq} gran={gran} dig={dig:?}");
    let rng = &mut CqRng::new(seed + 2000);
    // A small and an oversized request: with max_batch = 3 the second is
    // chunked, so sharding composes with the coalescing/chunking path.
    let requests = [
        rng.normal_tensor(&[1, 3, 12, 12], 1.0),
        rng.normal_tensor(&[7, 3, 12, 12], 1.0),
    ];
    let mut pm = prepared_model(psq, gran, dig, seed);
    pm.set_max_batch(Some(3));
    // The forced f32 kernels are the oracle the whole cell pins against.
    pm.set_psum_kernel(PsumKernel::F32).unwrap();
    let want = pm.infer_batch(&requests);

    for backends in [BackendSet::f32(), BackendSet::auto(), BackendSet::scalar()] {
        let ctx = format!("{ctx} chain={backends:?}");
        pm.set_backends(backends.clone()).unwrap();
        // Under the `auto` chain, Clean cells run the integer panels in
        // every frozen conv (tiny-config slices are always
        // integer-eligible) while Variation cells fall back to simd-f32
        // in every conv (the baked per-cell perturbation pushes slices
        // off-integer). The forced chains never activate the panels.
        let (active, total) = pm.count_integer_kernels();
        assert!(total > 0, "{ctx}: no frozen convs counted");
        let expect_active = match (backends.as_psum_kernel(), dig) {
            (PsumKernel::Auto, Digitizer::Clean) => total,
            _ => 0,
        };
        assert_eq!(
            active, expect_active,
            "{ctx}: integer-kernel activation count"
        );
        for shards in [1usize, 2, 7] {
            // 7 exceeds every layer's row-tile count in this tiny config —
            // the plan must clamp, never produce empty shards.
            pm.set_row_tile_shards(Some(shards));
            let got = pm.infer_batch(&requests);
            assert_eq!(got, want, "{ctx} shards={shards}: infer_batch diverged");
            // The shared (`&self`) path — what serve workers run on their
            // batch-segment shards — under the same row-tile sharding.
            for (req, w) in requests.iter().zip(&want) {
                assert_eq!(
                    &pm.infer_shared(req),
                    w,
                    "{ctx} shards={shards}: infer_shared diverged"
                );
            }
        }
        pm.set_row_tile_shards(None);
        assert_eq!(pm.infer_batch(&requests), want, "{ctx}: disable diverged");
    }
}

/// psq {off, on} × granularity × digitizer × shard counts {1, 2, 7}.
#[test]
fn sharded_equivalence_full_matrix() {
    let mut seed = 9000;
    for psq in [false, true] {
        for gran in Granularity::ALL {
            for dig in [Digitizer::Clean, Digitizer::Variation] {
                check_cell(psq, gran, dig, seed);
                seed += 100;
            }
        }
    }
}

/// Placement-aware sharding: one sweep whose row-tile shards are pinned
/// to *different* backends — integer panels, the scalar reference, and
/// simd-f32 cycling across every frozen conv's shards — must rejoin
/// bit-exactly with the unplaced f32 oracle, on both the batched and the
/// shared (`&self`) path, and clearing the plans must restore baseline.
#[test]
fn mixed_backend_placed_shards_rejoin_bit_exactly() {
    let requests = {
        let rng = &mut CqRng::new(5152);
        [
            rng.normal_tensor(&[1, 3, 12, 12], 1.0),
            rng.normal_tensor(&[7, 3, 12, 12], 1.0),
        ]
    };
    let mut pm = prepared_model(true, Granularity::Column, Digitizer::Clean, 5151);
    pm.set_max_batch(Some(3));
    pm.set_psum_kernel(PsumKernel::F32).unwrap();
    let want = pm.infer_batch(&requests);

    pm.set_backends(BackendSet::auto()).unwrap();
    let kinds = [
        BackendKind::IntPanels,
        BackendKind::Scalar,
        BackendKind::SimdF32,
    ];
    let (mut placed, mut mixed) = (0usize, 0usize);
    for_each_cim_conv(pm.model_mut(), |c| {
        let tiles = c.plan().num_row_tiles;
        let plan = ShardPlan::split(tiles, tiles.min(kinds.len()));
        let placement: Vec<BackendKind> = (0..plan.num_shards())
            .map(|i| kinds[i % kinds.len()])
            .collect();
        if placement.len() > 1 {
            mixed += 1;
        }
        c.set_shard_plan(Some(plan.with_placement(placement)))
            .unwrap();
        placed += 1;
    });
    assert!(placed > 0, "no frozen convs to place");
    assert!(
        mixed > 0,
        "no layer had more than one row-tile shard — mixed placement unexercised"
    );
    assert_eq!(
        pm.infer_batch(&requests),
        want,
        "mixed-backend placed shards diverged on the batched path"
    );
    for (req, w) in requests.iter().zip(&want) {
        assert_eq!(
            &pm.infer_shared(req),
            w,
            "mixed-backend placed shards diverged on the shared path"
        );
    }

    // Clearing the plans hands execution back to the chain's primary
    // backend — same bits.
    for_each_cim_conv(pm.model_mut(), |c| c.set_shard_plan(None).unwrap());
    assert_eq!(
        pm.infer_batch(&requests),
        want,
        "clearing placed plans diverged"
    );
}

/// A representative sharded cell must be bit-identical across executor
/// pool widths 1, 2, and the machine parallelism — row-tile shard tasks
/// and pipeline waves reschedule with the pool, the bits never move.
#[test]
fn sharded_cell_is_bit_exact_at_every_pool_width() {
    let requests = {
        let rng = &mut CqRng::new(31416);
        [
            rng.normal_tensor(&[1, 3, 12, 12], 1.0),
            rng.normal_tensor(&[7, 3, 12, 12], 1.0),
        ]
    };
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut outputs: Vec<(usize, Vec<Tensor>)> = Vec::new();
    for width in [1, 2, ncpu] {
        let pool = cq_tensor::exec::ExecPool::with_threads(width);
        let got = pool.install(|| {
            // Rebuilt per width: construction is deterministic per seed.
            let mut pm = prepared_model(true, Granularity::Column, Digitizer::Clean, 31415);
            pm.set_max_batch(Some(3));
            pm.set_row_tile_shards(Some(2));
            let got = pm.infer_batch(&requests);
            assert_eq!(
                got,
                pm.infer_batch(&requests),
                "width {width}: not idempotent"
            );
            got
        });
        outputs.push((width, got));
    }
    let (w0, base) = &outputs[0];
    for (w, got) in &outputs[1..] {
        assert_eq!(got, base, "pool width {w} diverged from width {w0}");
    }
}

/// Batch-segment sharding (the serve-layer decomposition): slicing an
/// oversized request into row segments, running each through the shared
/// path concurrently, and concatenating the slices must reproduce the
/// unsharded sweep bit-for-bit.
#[test]
fn batch_segment_sharding_rejoins_bit_exactly() {
    let mut pm = prepared_model(true, Granularity::Column, Digitizer::Clean, 4242);
    let big = CqRng::new(4243).normal_tensor(&[9, 3, 12, 12], 1.0);
    let want = pm.infer_batch(std::slice::from_ref(&big)).pop().unwrap();
    let pm = &pm;
    for max_rows in [2usize, 4, 9, 16] {
        let plan = cq_cim::ShardPlan::split_max(big.dim(0), max_rows);
        let mut parts: Vec<Option<Tensor>> = vec![None; plan.num_shards()];
        std::thread::scope(|sc| {
            for (seg, out) in plan.iter().zip(parts.iter_mut()) {
                let big = &big;
                sc.spawn(move || {
                    *out = Some(pm.infer_shared(&big.slice_outer(seg.start, seg.end)));
                });
            }
        });
        let parts: Vec<Tensor> = parts.into_iter().map(Option::unwrap).collect();
        let got = Tensor::concat_outer(&parts.iter().collect::<Vec<_>>());
        assert_eq!(got, want, "max_rows={max_rows}");
    }
}

/// **Mixed-scheme multi-model serving**: one resident model per scheme
/// (paper LSQ column-wise, BWMA, hybrid-ADC) in a single session with
/// batch-segment *and* row-tile sharding on. Every request — small and
/// oversized — must come back bit-identical to the standalone
/// whole-model forward of the scheme that served it, and the final stats
/// must attribute images to all three schemes.
#[test]
fn mixed_scheme_multi_model_serve_matches_whole_model() {
    use cq_serve::{CimServer, ModelRegistry, Request, ServeConfig};

    let schemes = [
        QuantScheme::ours(),
        QuantScheme::bwma(),
        QuantScheme::hybrid_adc(),
    ];
    let build = |scheme: &QuantScheme, seed: u64| {
        let mut net = build_cim_resnet(ResNetSpec::resnet8(4, 4), &CimConfig::tiny(), scheme, seed);
        let warm = CqRng::new(seed + 1000).normal_tensor(&[2, 3, 12, 12], 1.0);
        let _ = net.forward(&warm, Mode::Eval);
        net
    };
    let mut refs = Vec::new();
    let mut registry = ModelRegistry::new();
    for (i, scheme) in schemes.iter().enumerate() {
        let seed = 6100 + 10 * i as u64;
        // Construction is deterministic per seed: the reference net and
        // the served twin are bit-identical models.
        refs.push(build(scheme, seed));
        registry.register(
            scheme.name.clone(),
            PreparedCimModel::new(Box::new(build(scheme, seed))),
        );
    }
    let session = CimServer::new(
        registry,
        ServeConfig::builder()
            .workers(2)
            .max_batch(Some(3))
            .shard_rows(Some(2))
            .row_tile_shards(Some(2))
            .build()
            .unwrap(),
    )
    .start();

    let rng = &mut CqRng::new(6200);
    let mut tickets = Vec::new();
    for batch in [1usize, 7] {
        for (i, scheme) in schemes.iter().enumerate() {
            let x = rng.normal_tensor(&[batch, 3, 12, 12], 1.0);
            let t = session
                .submit(Request::to(scheme.name.as_str()).batch(x.clone()))
                .unwrap();
            tickets.push((i, x, t));
        }
    }
    for (i, x, t) in tickets {
        let want = refs[i].forward(&x, Mode::Eval);
        assert_eq!(
            t.wait().output,
            want,
            "scheme '{}' diverged from its whole-model forward under \
             mixed-scheme sharded serving",
            schemes[i].name
        );
    }

    let (stats, _models) = session.shutdown();
    let by_scheme = stats.images_by_scheme();
    for scheme in &schemes {
        let images = by_scheme
            .iter()
            .find(|(s, _)| s == &scheme.name)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        assert_eq!(images, 8, "scheme '{}' image attribution", scheme.name);
    }
}
