//! The load-bearing cross-check of the whole reproduction: the fast
//! group-convolution emulation (`cq_core::CimConv2d`), the explicit
//! column-by-column crossbar engine (`cq_cim::CrossbarLayer`), and the
//! **prepared serving path** (`cq_cim::PreparedConv` and the frozen
//! `CimConv2d`) must produce **identical** outputs at zero device
//! variation, for every granularity combination, with and without
//! partial-sum quantization — on **all three execution backends**
//! (`ScalarRef` loop-nest oracle, `SimdF32`, `IntPanels`).

use cq_cim::{BackendKind, BackendSet, CimConfig, CrossbarLayer, PreparedConv, PsumKernel};
use cq_core::CimConv2d;
use cq_nn::{Layer, Mode};
use cq_quant::Granularity;
use cq_tensor::{CqRng, Tensor};

fn relu_input(seed: u64, shape: &[usize]) -> Tensor {
    CqRng::new(seed)
        .normal_tensor(shape, 1.0)
        .map(|v| v.max(0.0))
}

fn check_equivalence(cfg: CimConfig, in_ch: usize, out_ch: usize, stride: usize, psq: bool) {
    for w_gran in Granularity::ALL {
        for p_gran in Granularity::ALL {
            let mut rng = CqRng::new(7 + in_ch as u64 + out_ch as u64);
            let mut layer = CimConv2d::new(
                in_ch, out_ch, 3, stride, 1, cfg, w_gran, p_gran, true, &mut rng,
            );
            layer.set_psum_quant_enabled(psq);
            // Give the layer a nonzero bias to exercise that path too.
            layer.visit_params("", &mut |p| {
                if p.kind == cq_nn::ParamKind::Bias {
                    for (i, v) in p.value.iter_mut().enumerate() {
                        *v = 0.01 * i as f32 - 0.02;
                    }
                }
            });
            let x = relu_input(11, &[2, in_ch, 6, 6]);
            let fast = layer.forward(&x, Mode::Eval);

            let desc = layer.to_quantized_conv();
            let engine = CrossbarLayer::new(desc);
            let a_int = layer.quantize_activations(&x);
            let slow = engine.forward(&a_int);

            assert_eq!(
                fast,
                slow,
                "mismatch at w={w_gran} p={p_gran} psq={psq} in={in_ch} out={out_ch} \
                 (max diff {})",
                fast.max_abs_diff(&slow)
            );

            // Prepared path #1: a standalone PreparedConv built from the
            // exported description serves raw activations bit-identically —
            // on **all three** backends. Every cell of this matrix has
            // integer-exact slices, so forcing the integer backend must
            // succeed and match the f32 oracle bit-for-bit, and both fast
            // backends must match the scalar loop-nest reference.
            let mut prepared = PreparedConv::new(layer.to_quantized_conv());
            prepared.set_psum_kernel(PsumKernel::F32).unwrap();
            assert!(!prepared.integer_kernel_active());
            assert_eq!(prepared.active_backend(), BackendKind::SimdF32);
            let served_f32 = prepared.infer(&x);
            assert_eq!(
                fast, served_f32,
                "PreparedConv f32 mismatch at w={w_gran} p={p_gran} psq={psq}"
            );
            prepared.set_psum_kernel(PsumKernel::Int).unwrap();
            assert!(prepared.integer_kernel_active());
            assert_eq!(prepared.active_backend(), BackendKind::IntPanels);
            let served_int = prepared.infer(&x);
            assert_eq!(
                fast, served_int,
                "PreparedConv integer-kernel mismatch at w={w_gran} p={p_gran} psq={psq}"
            );
            prepared.set_backends(BackendSet::scalar()).unwrap();
            assert!(!prepared.integer_kernel_active());
            assert_eq!(prepared.active_backend(), BackendKind::Scalar);
            // The compat view reports the scalar chain as the f32 family.
            assert_eq!(prepared.psum_kernel(), PsumKernel::F32);
            let served_scalar = prepared.infer(&x);
            assert_eq!(
                fast, served_scalar,
                "PreparedConv scalar-reference mismatch at w={w_gran} p={p_gran} psq={psq}"
            );

            // Prepared path #2: the frozen layer itself (weight-side work
            // done once) must stay bit-identical across repeated serves,
            // again on every backend chain.
            for (backends, kind) in [
                (BackendSet::f32(), BackendKind::SimdF32),
                (BackendSet::int(), BackendKind::IntPanels),
                (BackendSet::scalar(), BackendKind::Scalar),
            ] {
                layer.set_backends(backends).unwrap();
                layer.freeze();
                assert_eq!(
                    layer.active_backend(),
                    Some(kind),
                    "backend selection did not reach the frozen executor"
                );
                assert_eq!(
                    layer.integer_kernel_active(),
                    kind == BackendKind::IntPanels,
                    "integer-kernel compat flag disagrees with the active backend"
                );
                let frozen1 = layer.forward(&x, Mode::Eval);
                let frozen2 = layer.forward(&x, Mode::Eval);
                assert_eq!(
                    fast, frozen1,
                    "frozen forward mismatch at w={w_gran} p={p_gran} psq={psq} {kind:?}"
                );
                assert_eq!(frozen1, frozen2, "frozen forward not idempotent");
            }
        }
    }
}

#[test]
fn bit_exact_with_psum_quantization() {
    // tiny cfg: 32-row arrays, 3 splits, multi row tiles for 7 channels.
    check_equivalence(CimConfig::tiny(), 7, 5, 1, true);
}

#[test]
fn bit_exact_without_psum_quantization() {
    check_equivalence(CimConfig::tiny(), 7, 5, 1, false);
}

#[test]
fn bit_exact_strided_conv() {
    check_equivalence(CimConfig::tiny(), 6, 4, 2, true);
}

#[test]
fn bit_exact_single_array_layer() {
    // 3 channels fit one array; exercises the no-tiling corner.
    check_equivalence(CimConfig::tiny(), 3, 4, 1, true);
}

#[test]
fn bit_exact_multi_col_tile() {
    // Force column tiling: tiny cfg has 32 cols, 3 splits -> 10 oc per
    // tile; 12 output channels need 2 column tiles.
    check_equivalence(CimConfig::tiny(), 5, 12, 1, true);
}

#[test]
fn bit_exact_cifar100_style_two_splits() {
    // 4b weights on 2b cells (2 splits), 3b psums, bigger arrays.
    let mut cfg = CimConfig::cifar100();
    cfg.array_rows = 64; // shrink so multiple row tiles appear at 9 channels
    cfg.array_cols = 64;
    check_equivalence(cfg, 9, 6, 1, true);
}

#[test]
fn bit_exact_single_split_imagenet_style() {
    // 3b weights in 3b cells: one split only.
    let mut cfg = CimConfig::imagenet();
    cfg.array_rows = 32;
    cfg.array_cols = 32;
    check_equivalence(cfg, 7, 5, 1, true);
}

#[test]
fn binary_psum_bit_exact() {
    // CIFAR-10 style binary ADC.
    let mut cfg = CimConfig::cifar10();
    cfg.array_rows = 32;
    cfg.array_cols = 32;
    check_equivalence(cfg, 7, 5, 1, true);
}

/// The full scheme matrix the paper ablates, pinned in one sweep:
/// psum quantization {off, on} × weight granularity {layer, array, column}
/// × psum granularity {layer, array, column} (inside `check_equivalence`)
/// × row-wise tiling shape {single array, multi row tile, multi col tile,
/// multi row+col tile}. Every cell must agree **bit-exactly** between the
/// fast grouped-conv emulation and the explicit crossbar engine — the
/// refactored shared `PsumPipeline` is exercised on every scheme.
#[test]
fn full_matrix_psq_granularity_tiling() {
    // tiny cfg (32×32, 3 splits): ch_per_array = 3, oc_per_col_tile = 10.
    let shapes = [
        (3usize, 4usize, "single array"),
        (7, 5, "multi row tile"),
        (5, 12, "multi col tile"),
        (8, 12, "multi row+col tile"),
    ];
    for psq in [false, true] {
        for (in_ch, out_ch, label) in shapes {
            eprintln!("matrix cell: psq={psq} tiling={label}");
            check_equivalence(CimConfig::tiny(), in_ch, out_ch, 1, psq);
        }
    }
}

/// The engine equivalence matrix must hold on executor pools of width 1,
/// 2, and the machine parallelism, and a representative output must be
/// bit-identical **across** those widths — pool size schedules work, it
/// never changes the bits.
#[test]
fn engine_matrix_holds_at_every_pool_width() {
    let ncpu = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut outputs: Vec<(usize, Tensor)> = Vec::new();
    for width in [1, 2, ncpu] {
        let pool = cq_tensor::exec::ExecPool::with_threads(width);
        let y = pool.install(|| {
            for psq in [false, true] {
                check_equivalence(CimConfig::tiny(), 7, 5, 1, psq);
            }
            // Representative multi-row-tile forward for the cross-width pin
            // (construction and input are deterministic per seed).
            let mut rng = CqRng::new(99);
            let mut layer = CimConv2d::new(
                7,
                5,
                3,
                1,
                1,
                CimConfig::tiny(),
                Granularity::Column,
                Granularity::Column,
                true,
                &mut rng,
            );
            let x = relu_input(100, &[2, 7, 6, 6]);
            layer.forward(&x, Mode::Eval)
        });
        outputs.push((width, y));
    }
    let (w0, base) = &outputs[0];
    for (w, y) in &outputs[1..] {
        assert_eq!(y, base, "pool width {w} diverged from width {w0}");
    }
}

/// The **scheme axis** of the matrix: paper LSQ column-wise, BWMA
/// (binary ±1 weights, degenerate single bit-split), and hybrid-ADC
/// (low-order splits carried digitally past the ADC) must all agree
/// bit-exactly between the fast emulation, the explicit crossbar engine,
/// the standalone `PreparedConv` on **forced** scalar and int-panels
/// chains, and the frozen layer on every backend chain.
#[test]
fn scheme_axis_bit_exact_across_engines_and_backends() {
    use cq_core::QuantScheme;
    for scheme in [
        QuantScheme::ours(),
        QuantScheme::bwma(),
        QuantScheme::hybrid_adc(),
    ] {
        let name = scheme.name.as_str();
        let mut rng = CqRng::new(31);
        let mut layer =
            CimConv2d::with_scheme(7, 5, 3, 1, 1, CimConfig::tiny(), &scheme, true, &mut rng);
        layer.visit_params("", &mut |p| {
            if p.kind == cq_nn::ParamKind::Bias {
                for (i, v) in p.value.iter_mut().enumerate() {
                    *v = 0.01 * i as f32 - 0.02;
                }
            }
        });
        if scheme.is_binary_weight() {
            assert_eq!(layer.plan().num_splits, 1, "{name}: binary = one split");
        }
        if name == "hybrid-adc" {
            assert!(
                layer.digital_splits() > 0,
                "{name}: low-order splits must bypass the ADC"
            );
        }
        let x = relu_input(32, &[2, 7, 6, 6]);
        let fast = layer.forward(&x, Mode::Eval);

        let engine = CrossbarLayer::new(layer.to_quantized_conv());
        let slow = engine.forward(&layer.quantize_activations(&x));
        assert_eq!(
            fast,
            slow,
            "{name}: crossbar engine diverged (max diff {})",
            fast.max_abs_diff(&slow)
        );

        // Forced-scalar and forced-int-panels serving legs, with the
        // active backend pinned — never trust the chain silently.
        let mut prepared = PreparedConv::new(layer.to_quantized_conv());
        prepared.set_backends(BackendSet::scalar()).unwrap();
        assert_eq!(prepared.active_backend(), BackendKind::Scalar);
        assert!(!prepared.integer_kernel_active());
        assert_eq!(fast, prepared.infer(&x), "{name}: scalar leg diverged");
        prepared.set_backends(BackendSet::int()).unwrap();
        assert_eq!(prepared.active_backend(), BackendKind::IntPanels);
        assert!(
            prepared.integer_kernel_active(),
            "{name}: every scheme cell here is integer-eligible"
        );
        assert_eq!(fast, prepared.infer(&x), "{name}: int-panels leg diverged");

        for (backends, kind) in [
            (BackendSet::f32(), BackendKind::SimdF32),
            (BackendSet::int(), BackendKind::IntPanels),
            (BackendSet::scalar(), BackendKind::Scalar),
        ] {
            layer.set_backends(backends).unwrap();
            layer.freeze();
            assert_eq!(layer.active_backend(), Some(kind), "{name}: {kind:?}");
            let frozen = layer.forward(&x, Mode::Eval);
            assert_eq!(fast, frozen, "{name}: frozen {kind:?} diverged");
        }
    }
}
