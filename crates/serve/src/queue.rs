//! The bounded request queue, admission control, SLO-aware batch
//! scheduler, and work-stealing shard pool of the serving front-end.
//!
//! Clients [`submit`](crate::ServeSession::submit) requests into one
//! shared [`RequestQueue`]; each request carries an [`Slo`] class, an
//! optional deadline, and an aging weight. Worker threads each drive a
//! [`BatchScheduler`] that pops runs of same-model, same-class requests
//! and coalesces them into sweeps under the `max_batch` / `max_wait`
//! policy, with class priority: [`Slo::Latency`] work schedules before
//! [`Slo::Bulk`] work and **preempts** bulk batch formation (a lingering
//! bulk sweep closes the moment a latency request lands). Under
//! [`SchedulerPolicy::Aging`](crate::SchedulerPolicy), a bulk head whose
//! weighted queue age reaches `bulk_max_age` outranks new latency
//! arrivals — the starvation bound. Admission is enforced at the queue:
//! when it is full, a submission either blocks until a worker frees space
//! or is rejected immediately with the input handed back.
//!
//! The queue also carries the **shard pool**: when a worker decides to
//! split one oversized sweep into batch-segment shards, the shard tasks
//! go here and every worker — including the coordinator while it waits —
//! steals and executes them, so the whole worker set cooperates on a
//! single request. Shards inherit their request's class and schedule
//! ahead of new sweeps *within* it (finishing an in-flight request beats
//! starting a new one), but a sharded bulk request never jumps ahead of
//! latency work.
//!
//! On the client side, a [`Ticket`] is a **pollable** completion handle:
//! blocking [`wait`](Ticket::wait), non-blocking
//! [`try_wait`](Ticket::try_wait), bounded
//! [`wait_timeout`](Ticket::wait_timeout), and — through
//! [`CompletionSet`](crate::CompletionSet) — a condvar-backed
//! wait-on-any over hundreds of in-flight tickets. Every path hands over
//! the same moved output tensor, so resolution style never affects the
//! served bits.

use crate::completion::ReadyList;
use crate::config::{SchedulerPolicy, TenantSpec};
use crate::metrics::{
    DepthSample, DepthSeries, LatencyHistogram, ModelStats, TenantStats, WorkerStats,
};
use cq_core::BackendKind;
use cq_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Service-level-objective class of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slo {
    /// Latency-sensitive: schedules before any bulk work and preempts
    /// bulk batch formation.
    Latency,
    /// Throughput-oriented: serves in FIFO order whenever no latency work
    /// is pending (or when aged past the
    /// [`SchedulerPolicy::Aging`](crate::SchedulerPolicy) threshold). The
    /// default class.
    Bulk,
}

/// What a submission does when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Block the submitting thread until a worker frees space.
    Block,
    /// Reject immediately, handing the input back to the caller.
    Reject,
}

/// Why a submission was not admitted.
#[derive(Debug)]
pub enum SubmitError {
    /// The queue was full under [`Admission::Reject`]; the input is handed
    /// back so the caller can retry or shed the request.
    QueueFull(Tensor),
    /// No **live** model with this id is registered (never registered, or
    /// evicted from the running session).
    UnknownModel(String),
    /// The request's tenant is at one of its admission quotas
    /// (`max_queued` or `max_in_flight`); the input is handed back.
    /// Quota rejection is always immediate — it never blocks, even under
    /// [`Admission::Block`] — because a quota is a policy limit, not
    /// transient backpressure.
    QuotaExceeded {
        /// The tenant whose quota was hit.
        tenant: String,
        /// The input, handed back for retry or shedding.
        input: Tensor,
    },
    /// The [`Request`](crate::Request) was built without
    /// [`batch`](crate::Request::batch) — there is nothing to run.
    MissingInput,
    /// The server is shutting down; the input is handed back.
    Closed(Tensor),
}

/// A fulfilled request: the model output plus end-to-end latency
/// (submission call to worker fulfilment, including any admission
/// blocking and queueing time) and the SLO outcome.
#[derive(Debug)]
pub struct Completed {
    /// The model output for this request (`[b, ...]`, matching the
    /// request's batch dimension).
    pub output: Tensor,
    /// Submission-to-fulfilment latency.
    pub latency: Duration,
    /// The class the request was submitted under.
    pub slo: Slo,
    /// `true` when the request had a deadline and fulfilment happened
    /// after it. Deadline-expired requests are still served (outputs stay
    /// bit-exact and every admitted ticket resolves) — `missed` records
    /// the SLO violation.
    pub missed: bool,
}

/// Where a worker parks one request's output; the client side waits on it
/// through a [`Ticket`].
pub(crate) struct ResponseSlot {
    state: Mutex<SlotState>,
    ready: Condvar,
}

struct SlotState {
    result: Option<SlotResult>,
    /// One-shot notification target registered by
    /// [`CompletionSet::insert`](crate::CompletionSet::insert); fired
    /// exactly once, by whichever of fulfil/abandon resolves the slot (or
    /// by registration itself when already resolved).
    watcher: Option<(Arc<ReadyList>, usize)>,
}

enum SlotResult {
    Done(Tensor, Instant),
    /// The worker holding this request panicked before fulfilling it;
    /// every `Ticket` resolution path propagates the failure instead of
    /// hanging.
    Abandoned,
}

impl ResponseSlot {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(SlotState {
                result: None,
                watcher: None,
            }),
            ready: Condvar::new(),
        }
    }

    /// Parks `output`, wakes the waiting client, and fires the watcher (if
    /// any), returning the stamped completion instant (the same instant
    /// every `Ticket` resolution path will see, so queue-side and
    /// client-side deadline accounting agree).
    pub(crate) fn fulfill(&self, output: Tensor) -> Instant {
        let at = Instant::now();
        let mut st = self.state.lock().unwrap();
        debug_assert!(st.result.is_none(), "slot fulfilled twice");
        st.result = Some(SlotResult::Done(output, at));
        let watcher = st.watcher.take();
        drop(st);
        self.ready.notify_all();
        if let Some((list, key)) = watcher {
            list.push(key);
        }
        at
    }

    /// Marks the slot abandoned *unless already fulfilled* — called while
    /// a worker unwinds so waiting clients fail loudly instead of hanging.
    pub(crate) fn abandon(&self) {
        let mut st = self.state.lock().unwrap();
        if st.result.is_none() {
            st.result = Some(SlotResult::Abandoned);
            let watcher = st.watcher.take();
            drop(st);
            self.ready.notify_all();
            if let Some((list, key)) = watcher {
                list.push(key);
            }
        }
    }

    /// Registers the one-shot watcher; fires it immediately when the slot
    /// already resolved (so a late insertion is never missed).
    fn watch(&self, list: Arc<ReadyList>, key: usize) {
        let mut st = self.state.lock().unwrap();
        if st.result.is_some() {
            drop(st);
            list.push(key);
        } else {
            debug_assert!(st.watcher.is_none(), "slot watched twice");
            st.watcher = Some((list, key));
        }
    }

    fn is_ready(&self) -> bool {
        self.state.lock().unwrap().result.is_some()
    }

    fn take(st: &mut SlotState) -> Option<(Tensor, Instant)> {
        match st.result.take() {
            Some(SlotResult::Done(output, at)) => Some((output, at)),
            Some(SlotResult::Abandoned) => {
                panic!("serving worker panicked before fulfilling this request")
            }
            None => None,
        }
    }

    fn wait(&self) -> (Tensor, Instant) {
        let mut st = self.state.lock().unwrap();
        loop {
            match Self::take(&mut st) {
                Some(done) => return done,
                None => st = self.ready.wait(st).unwrap(),
            }
        }
    }

    fn try_take(&self) -> Option<(Tensor, Instant)> {
        Self::take(&mut self.state.lock().unwrap())
    }

    fn take_timeout(&self, timeout: Duration) -> Option<(Tensor, Instant)> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap();
        loop {
            if let Some(done) = Self::take(&mut st) {
                return Some(done);
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            st = self.ready.wait_timeout(st, deadline - now).unwrap().0;
        }
    }
}

/// Pollable handle to one in-flight request, returned by a successful
/// submission.
///
/// Resolution paths — all returning the **same** [`Completed`] (the
/// output tensor is moved, never recomputed):
///
/// * [`wait`](Ticket::wait) — block until fulfilled (consumes the
///   ticket);
/// * [`try_wait`](Ticket::try_wait) — non-blocking poll; hands the ticket
///   back when still in flight;
/// * [`wait_timeout`](Ticket::wait_timeout) — bounded block; hands the
///   ticket back on timeout;
/// * [`CompletionSet`](crate::CompletionSet) — multiplex many tickets
///   through one condvar-backed wait-on-any.
///
/// Tickets outlive their session: a ticket resolved before
/// [`ServeSession::shutdown`](crate::ServeSession::shutdown) can still be
/// waited afterwards (shutdown resolves every admitted ticket first).
pub struct Ticket {
    slot: Arc<ResponseSlot>,
    submitted_at: Instant,
    slo: Slo,
    deadline: Option<Instant>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket")
            .field("slo", &self.slo)
            .field("deadline", &self.deadline)
            .field("ready", &self.is_ready())
            .finish_non_exhaustive()
    }
}

impl Ticket {
    /// Stamps the submission instant; created **before** admission so the
    /// measured latency includes any [`Admission::Block`] backpressure.
    pub(crate) fn new(slot: Arc<ResponseSlot>, slo: Slo, deadline: Option<Duration>) -> Self {
        let submitted_at = Instant::now();
        Self {
            slot,
            submitted_at,
            slo,
            deadline: deadline.map(|d| submitted_at + d),
        }
    }

    /// The absolute deadline, if one was set at submission.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// The [`Slo`] class this request was submitted under.
    pub fn slo(&self) -> Slo {
        self.slo
    }

    /// The instant the submission call was made (before any admission
    /// blocking) — the zero point of [`Completed::latency`].
    pub fn submitted_at(&self) -> Instant {
        self.submitted_at
    }

    /// Whether the request has resolved — a following
    /// [`try_wait`](Ticket::try_wait) will not block. Note that an
    /// **abandoned** ticket (its worker panicked) also reads ready: the
    /// resolution call is what propagates the panic.
    pub fn is_ready(&self) -> bool {
        self.slot.is_ready()
    }

    /// Blocks until a worker fulfils the request.
    ///
    /// # Panics
    ///
    /// Panics if the worker serving this request panicked (e.g. the input
    /// shape did not match the model) — the failure propagates to the
    /// waiting client instead of hanging it.
    pub fn wait(self) -> Completed {
        let (output, at) = self.slot.wait();
        self.complete(output, at)
    }

    /// Non-blocking poll: `Ok(done)` when the request has resolved,
    /// `Err(self)` — the ticket handed back, still valid — when it is
    /// still in flight.
    ///
    /// # Panics
    ///
    /// Panics if the worker serving this request panicked (see
    /// [`wait`](Ticket::wait)).
    pub fn try_wait(self) -> Result<Completed, Ticket> {
        match self.slot.try_take() {
            Some((output, at)) => Ok(self.complete(output, at)),
            None => Err(self),
        }
    }

    /// Blocks for at most `timeout`: `Ok(done)` when the request resolved
    /// in time, `Err(self)` — the ticket handed back, still valid — on
    /// timeout. `Duration::ZERO` behaves like
    /// [`try_wait`](Ticket::try_wait).
    ///
    /// # Panics
    ///
    /// Panics if the worker serving this request panicked (see
    /// [`wait`](Ticket::wait)).
    pub fn wait_timeout(self, timeout: Duration) -> Result<Completed, Ticket> {
        match self.slot.take_timeout(timeout) {
            Some((output, at)) => Ok(self.complete(output, at)),
            None => Err(self),
        }
    }

    /// Registers this ticket with a [`CompletionSet`](crate::CompletionSet)
    /// ready-list under `key`.
    pub(crate) fn watch(&self, list: Arc<ReadyList>, key: usize) {
        self.slot.watch(list, key);
    }

    /// The single completion constructor every resolution path funnels
    /// through — one latency formula, one `missed` rule, one moved output.
    fn complete(self, output: Tensor, at: Instant) -> Completed {
        Completed {
            output,
            latency: at.saturating_duration_since(self.submitted_at),
            slo: self.slo,
            missed: self.deadline.is_some_and(|d| at > d),
        }
    }
}

/// One admitted request waiting in the queue.
pub(crate) struct QueuedRequest {
    /// Registry index of the target model.
    pub model: usize,
    /// The input `[b, C, H, W]`.
    pub input: Tensor,
    /// Where the output goes.
    pub slot: Arc<ResponseSlot>,
    /// Priority class.
    pub slo: Slo,
    /// Absolute completion deadline, if any.
    pub deadline: Option<Instant>,
    /// When the request was submitted (before admission blocking) — the
    /// zero point of its aging clock.
    pub submitted_at: Instant,
    /// Aging-rate multiplier (weighted age = elapsed × weight).
    pub weight: f32,
    /// Queue-side tenant index (0 = the default tenant, for untagged
    /// requests).
    pub tenant: usize,
}

impl QueuedRequest {
    /// The request's weighted queue age at `now`.
    fn weighted_age(&self, now: Instant) -> Duration {
        now.saturating_duration_since(self.submitted_at)
            .mul_f64(self.weight as f64)
    }
}

/// Synchronization point of one sharded sweep: the coordinator waits here
/// while every worker (itself included) steals segments from the shard
/// pool and deposits outputs.
pub(crate) struct ShardJoin {
    state: Mutex<JoinState>,
    done: Condvar,
}

struct JoinState {
    outputs: Vec<Option<Tensor>>,
    remaining: usize,
    failed: bool,
}

impl ShardJoin {
    pub(crate) fn new(shards: usize) -> Self {
        Self {
            state: Mutex::new(JoinState {
                outputs: (0..shards).map(|_| None).collect(),
                remaining: shards,
                failed: false,
            }),
            done: Condvar::new(),
        }
    }

    /// Deposits shard `index`'s output and wakes the coordinator when it
    /// was the last one.
    pub(crate) fn complete(&self, index: usize, output: Tensor) {
        let mut st = self.state.lock().unwrap();
        debug_assert!(st.outputs[index].is_none(), "shard completed twice");
        st.outputs[index] = Some(output);
        st.remaining -= 1;
        let last = st.remaining == 0;
        drop(st);
        if last {
            self.done.notify_all();
        }
    }

    /// Marks the sweep failed (a shard executor panicked) and wakes the
    /// coordinator, which propagates the panic to the waiting clients.
    pub(crate) fn fail(&self) {
        let mut st = self.state.lock().unwrap();
        st.failed = true;
        drop(st);
        self.done.notify_all();
    }

    /// Blocks until every shard completed, returning the ordered outputs.
    ///
    /// # Panics
    ///
    /// Panics if any shard executor panicked.
    pub(crate) fn wait(&self) -> Vec<Tensor> {
        let mut st = self.state.lock().unwrap();
        loop {
            assert!(!st.failed, "a sharded serving worker panicked");
            if st.remaining == 0 {
                return st.outputs.iter_mut().map(|o| o.take().unwrap()).collect();
            }
            st = self.done.wait(st).unwrap();
        }
    }

    /// Non-blocking progress check: `Some(true)` = all shards done,
    /// `Some(false)` = still in flight, panicking if a shard failed.
    pub(crate) fn is_done(&self) -> bool {
        let st = self.state.lock().unwrap();
        assert!(!st.failed, "a sharded serving worker panicked");
        st.remaining == 0
    }
}

/// One batch-segment shard of an oversized sweep, executed by whichever
/// worker steals it first.
pub(crate) struct ShardTask {
    /// Registry index of the target model.
    pub model: usize,
    /// The `[b, C, H, W]` row segment to run.
    pub segment: Tensor,
    /// Position of this segment in the sweep (for ordered rejoin).
    pub index: usize,
    /// Class of the originating sweep: shards inherit their request's
    /// priority, so a sharded **bulk** request never commandeers workers
    /// ahead of latency sweeps.
    pub slo: Slo,
    /// Where the segment output goes.
    pub join: Arc<ShardJoin>,
}

/// Per-[`Slo`]-class counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassStats {
    /// Requests admitted into the queue under this class.
    pub submitted: u64,
    /// Requests fulfilled (every admitted request is fulfilled before the
    /// session shuts down).
    pub served: u64,
    /// Fulfilments that carried a deadline.
    pub with_deadline: u64,
    /// Fulfilments that happened after the request's deadline.
    pub missed: u64,
}

/// Per-execution-backend serving counters (one slot per
/// [`BackendKind`], indexed by [`BackendKind::index`] in
/// [`ServeStats::backends`]). Sweeps and shards are attributed to the
/// target model's **primary** backend — the backend most of its active
/// frozen convolutions resolved to — while `active_layers` counts
/// layers exactly, so mixed-placement models show up in both columns.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BackendStats {
    /// Coalesced sweeps served by models primarily on this backend.
    pub sweeps: u64,
    /// Batch-segment shard tasks executed against such models.
    pub shards: u64,
    /// Images (batch rows) swept through such models.
    pub images: u64,
    /// Active frozen convolutions resolved onto this backend across the
    /// resident model set (a session-start snapshot, not a counter).
    pub active_layers: usize,
}

/// Aggregate serving counters, snapshotted live via
/// [`ServeSession::stats`](crate::ServeSession::stats) and finally by
/// [`ServeSession::shutdown`](crate::ServeSession::shutdown).
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests turned away by [`Admission::Reject`].
    pub rejected: u64,
    /// Requests handed to a model sweep (every admitted request is served
    /// before the session shuts down).
    pub served: u64,
    /// Coalesced sweeps formed by the schedulers.
    pub batches: u64,
    /// Total images across all sweeps.
    pub rows_swept: u64,
    /// Largest single sweep handed to a model (may exceed `max_batch`
    /// when one oversized request is swept alone — the model chunks it
    /// internally, or the shard pool splits it across workers).
    pub max_sweep_rows: usize,
    /// Deepest the queue ever got (sampled after each admission).
    pub peak_queue_depth: usize,
    /// Mean queue depth over those samples.
    pub mean_queue_depth: f64,
    /// Counters for [`Slo::Latency`] requests.
    pub latency: ClassStats,
    /// Counters for [`Slo::Bulk`] requests.
    pub bulk: ClassStats,
    /// Sweeps split into batch-segment shards.
    pub sharded_sweeps: u64,
    /// Shard tasks executed across all workers.
    pub shards_executed: u64,
    /// Bulk sweeps served **ahead of pending latency work** because their
    /// head crossed the [`SchedulerPolicy::Aging`](crate::SchedulerPolicy)
    /// threshold — the starvation-bound mechanism firing.
    pub aged_promotions: u64,
    /// Per-backend counters, indexed by [`BackendKind::index`]
    /// (`scalar`, `simd-f32`, `int-panels`).
    pub backends: [BackendStats; 3],
    /// Submissions turned away because a tenant quota was at its limit
    /// (counted separately from capacity [`rejected`](ServeStats::rejected)).
    pub quota_rejected: u64,
    /// Models registered onto the **live** session
    /// ([`ServeSession::register`](crate::ServeSession::register)) —
    /// models resident at `start()` are not counted.
    pub hot_registered: u64,
    /// Models evicted from the live session
    /// ([`ServeSession::evict`](crate::ServeSession::evict)).
    pub evictions: u64,
    /// Log-bucketed submission-to-fulfilment latency histogram of
    /// [`Slo::Latency`] fulfilments.
    pub latency_hist: LatencyHistogram,
    /// Log-bucketed latency histogram of [`Slo::Bulk`] fulfilments.
    pub bulk_hist: LatencyHistogram,
    /// Bounded queue-depth time series (sampled after admissions,
    /// decimated to stay O(1) over long sessions); offsets are relative
    /// to the first admission.
    pub queue_depth_series: Vec<DepthSample>,
    /// Per-tenant counters and histograms, index 0 = the default tenant.
    pub tenants: Vec<TenantStats>,
    /// Per-model counters in registry slot order (evicted models keep
    /// their row). Names and eviction flags are filled by the session
    /// snapshot; a raw queue snapshot carries empty names.
    pub models: Vec<ModelStats>,
    /// Worker-pool gauges (filled by the session snapshot).
    pub workers: WorkerStats,
}

impl ServeStats {
    /// Fraction of deadline-carrying fulfilments that missed (`0.0` when
    /// no fulfilment carried a deadline) — deadline-less traffic does not
    /// dilute the rate.
    pub fn deadline_miss_rate(&self) -> f64 {
        let with_deadline = self.latency.with_deadline + self.bulk.with_deadline;
        if with_deadline == 0 {
            0.0
        } else {
            (self.latency.missed + self.bulk.missed) as f64 / with_deadline as f64
        }
    }

    /// Images swept per quantization scheme, aggregated over
    /// [`models`](ServeStats::models) in first-seen (slot) order — the
    /// per-scheme attribution the scheme zoo's A/B serving runs read.
    /// Evicted models keep contributing to their scheme's total. Empty on
    /// a raw queue snapshot (scheme names are overlaid by the session,
    /// like model names).
    pub fn images_by_scheme(&self) -> Vec<(String, u64)> {
        let mut totals: Vec<(String, u64)> = Vec::new();
        for m in &self.models {
            if m.scheme.is_empty() {
                continue;
            }
            match totals.iter_mut().find(|(s, _)| *s == m.scheme) {
                Some((_, n)) => *n += m.images,
                None => totals.push((m.scheme.clone(), m.images)),
            }
        }
        totals
    }
}

/// One tenant's queue-side state: its own per-class FIFO deques, its
/// weighted-fair virtual clock, its admission quotas, and its counters.
struct TenantState {
    name: String,
    weight: f32,
    max_queued: Option<usize>,
    max_in_flight: Option<usize>,
    latency: VecDeque<QueuedRequest>,
    bulk: VecDeque<QueuedRequest>,
    /// Weighted-fair virtual time: advanced by `rows / weight` per sweep
    /// served, so at saturation each tenant's served-row share converges
    /// to its weight share. Bumped to the queue's virtual floor on
    /// (re)activation so idle time never banks scheduling credit.
    vtime: f64,
    /// Admitted-but-not-yet-fulfilled requests (the `max_in_flight`
    /// quota's meter).
    in_flight: usize,
    peak_in_flight: usize,
    submitted: u64,
    served: u64,
    rows: u64,
    quota_rejected: u64,
    histogram: LatencyHistogram,
}

impl TenantState {
    fn new(spec: &TenantSpec, vtime: f64) -> Self {
        Self {
            name: spec.name.clone(),
            weight: spec.weight,
            max_queued: spec.max_queued,
            max_in_flight: spec.max_in_flight,
            latency: VecDeque::new(),
            bulk: VecDeque::new(),
            vtime,
            in_flight: 0,
            peak_in_flight: 0,
            submitted: 0,
            served: 0,
            rows: 0,
            quota_rejected: 0,
            histogram: LatencyHistogram::new(),
        }
    }

    fn queued(&self) -> usize {
        self.latency.len() + self.bulk.len()
    }

    fn class_queue(&mut self, class: Slo) -> &mut VecDeque<QueuedRequest> {
        match class {
            Slo::Latency => &mut self.latency,
            Slo::Bulk => &mut self.bulk,
        }
    }

    fn class_len(&self, class: Slo) -> usize {
        match class {
            Slo::Latency => self.latency.len(),
            Slo::Bulk => self.bulk.len(),
        }
    }
}

/// Per-model-slot counters (names/eviction flags live in the registry and
/// are overlaid by the session snapshot).
#[derive(Default, Clone, Copy)]
struct ModelCounters {
    served: u64,
    sweeps: u64,
    shards: u64,
    images: u64,
}

#[derive(Default)]
struct QueueState {
    /// Index 0 is always the default tenant (untagged requests); further
    /// tenants come from the config or are created on first submission.
    tenants: Vec<TenantState>,
    latency_shards: VecDeque<ShardTask>,
    bulk_shards: VecDeque<ShardTask>,
    closed: bool,
    /// Cached queued-request counts (depth checks and class-priority
    /// decisions are O(1), not O(tenants)).
    latency_queued: usize,
    bulk_queued: usize,
    /// Virtual-time floor: the highest virtual time any sweep was picked
    /// at. A tenant (re)activating bumps its clock at least here.
    vfloor: f64,
    submitted: u64,
    rejected: u64,
    quota_rejected: u64,
    served: u64,
    batches: u64,
    rows_swept: u64,
    max_sweep_rows: usize,
    peak_depth: usize,
    depth_sum: u64,
    depth_samples: u64,
    latency_stats: ClassStats,
    bulk_stats: ClassStats,
    latency_hist: LatencyHistogram,
    bulk_hist: LatencyHistogram,
    depth_series: DepthSeries,
    started: Option<Instant>,
    sharded_sweeps: u64,
    shards_executed: u64,
    aged_promotions: u64,
    backend_stats: [BackendStats; 3],
    models: Vec<ModelCounters>,
    hot_registered: u64,
    evictions: u64,
}

impl QueueState {
    fn depth(&self) -> usize {
        self.latency_queued + self.bulk_queued
    }

    fn class_stats_mut(&mut self, slo: Slo) -> &mut ClassStats {
        match slo {
            Slo::Latency => &mut self.latency_stats,
            Slo::Bulk => &mut self.bulk_stats,
        }
    }

    fn class_hist_mut(&mut self, slo: Slo) -> &mut LatencyHistogram {
        match slo {
            Slo::Latency => &mut self.latency_hist,
            Slo::Bulk => &mut self.bulk_hist,
        }
    }

    fn model_mut(&mut self, model: usize) -> &mut ModelCounters {
        if self.models.len() <= model {
            self.models.resize(model + 1, ModelCounters::default());
        }
        &mut self.models[model]
    }

    /// The tenant with the lowest virtual time among those with `class`
    /// work queued (ties break to the lowest index — the default tenant,
    /// then configuration order). Caller guarantees the class is
    /// non-empty. Advances the virtual floor to the winning clock.
    fn wfq_pick(&mut self, class: Slo) -> usize {
        let mut best: Option<(usize, f64)> = None;
        for (i, t) in self.tenants.iter().enumerate() {
            if t.class_len(class) == 0 {
                continue;
            }
            if best.map_or(true, |(_, v)| t.vtime < v) {
                best = Some((i, t.vtime));
            }
        }
        let (idx, vtime) = best.expect("wfq_pick on an empty class");
        if vtime > self.vfloor {
            self.vfloor = vtime;
        }
        idx
    }
}

/// The bounded multi-producer queue shared by clients and workers.
pub(crate) struct RequestQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl RequestQueue {
    /// A queue with only the built-in default tenant (the unit-test
    /// shorthand; sessions use [`with_tenants`](RequestQueue::with_tenants)).
    #[cfg(test)]
    pub(crate) fn new(capacity: usize) -> Self {
        Self::with_tenants(capacity, &[])
    }

    /// A queue with the default tenant (index 0, weight 1, no quotas —
    /// untagged requests land here) plus one [`TenantState`] per
    /// configured [`TenantSpec`], in configuration order.
    pub(crate) fn with_tenants(capacity: usize, specs: &[TenantSpec]) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        let mut state = QueueState::default();
        state
            .tenants
            .push(TenantState::new(&TenantSpec::new("default"), 0.0));
        for spec in specs {
            state.tenants.push(TenantState::new(spec, 0.0));
        }
        Self {
            capacity,
            state: Mutex::new(state),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Resolves a tenant name to its queue-side index, creating an
    /// unconfigured tenant (weight 1, no quotas) on first sight.
    pub(crate) fn resolve_tenant(&self, name: &str) -> usize {
        let mut st = self.state.lock().unwrap();
        if let Some(i) = st.tenants.iter().position(|t| t.name == name) {
            return i;
        }
        let vtime = st.vfloor;
        st.tenants
            .push(TenantState::new(&TenantSpec::new(name), vtime));
        st.tenants.len() - 1
    }

    /// Admits `req` under `admission` (see [`Admission`]). The capacity
    /// bound covers both classes together; shard tasks (derived from
    /// already-admitted requests) do not count against it. Tenant quotas
    /// are checked first and reject immediately — a quota-capped
    /// submission never parks on a full queue.
    pub(crate) fn submit(
        &self,
        req: QueuedRequest,
        admission: Admission,
    ) -> Result<(), SubmitError> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.closed {
                return Err(SubmitError::Closed(req.input));
            }
            let tenant = &mut st.tenants[req.tenant];
            let quota_hit = tenant.max_queued.is_some_and(|q| tenant.queued() >= q)
                || tenant.max_in_flight.is_some_and(|q| tenant.in_flight >= q);
            if quota_hit {
                tenant.quota_rejected += 1;
                let name = tenant.name.clone();
                st.quota_rejected += 1;
                return Err(SubmitError::QuotaExceeded {
                    tenant: name,
                    input: req.input,
                });
            }
            if st.depth() < self.capacity {
                break;
            }
            match admission {
                Admission::Reject => {
                    st.rejected += 1;
                    return Err(SubmitError::QueueFull(req.input));
                }
                Admission::Block => st = self.not_full.wait(st).unwrap(),
            }
        }
        st.submitted += 1;
        st.class_stats_mut(req.slo).submitted += 1;
        match req.slo {
            Slo::Latency => st.latency_queued += 1,
            Slo::Bulk => st.bulk_queued += 1,
        }
        let vfloor = st.vfloor;
        let tenant = &mut st.tenants[req.tenant];
        // (Re)activation bump: an idle tenant rejoins at the virtual
        // floor, so idle time never banks scheduling credit.
        if tenant.queued() == 0 && tenant.vtime < vfloor {
            tenant.vtime = vfloor;
        }
        tenant.submitted += 1;
        tenant.in_flight += 1;
        tenant.peak_in_flight = tenant.peak_in_flight.max(tenant.in_flight);
        tenant.class_queue(req.slo).push_back(req);
        let depth = st.depth();
        st.peak_depth = st.peak_depth.max(depth);
        st.depth_sum += depth as u64;
        st.depth_samples += 1;
        let now = Instant::now();
        let started = *st.started.get_or_insert(now);
        st.depth_series
            .record(now.saturating_duration_since(started), depth);
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Publishes shard tasks of one sweep to the work-stealing pool
    /// (tasks land in their class's shard deque) and wakes every worker.
    pub(crate) fn push_shards(&self, tasks: impl IntoIterator<Item = ShardTask>) {
        let mut st = self.state.lock().unwrap();
        let mut added = 0usize;
        for task in tasks {
            match task.slo {
                Slo::Latency => st.latency_shards.push_back(task),
                Slo::Bulk => st.bulk_shards.push_back(task),
            }
            added += 1;
        }
        st.sharded_sweeps += 1;
        drop(st);
        if added > 0 {
            self.not_empty.notify_all();
        }
    }

    /// Steals the next shard task — latency-origin first — if any (never
    /// blocks).
    pub(crate) fn try_pop_shard(&self) -> Option<ShardTask> {
        let mut st = self.state.lock().unwrap();
        let task = st
            .latency_shards
            .pop_front()
            .or_else(|| st.bulk_shards.pop_front());
        if task.is_some() {
            st.shards_executed += 1;
        }
        task
    }

    /// Records one fulfilment: per-class accounting, the class and tenant
    /// latency histograms, and the tenant's in-flight meter.
    pub(crate) fn note_served(
        &self,
        slo: Slo,
        tenant: usize,
        had_deadline: bool,
        missed: bool,
        latency: Duration,
    ) {
        let mut st = self.state.lock().unwrap();
        let cs = st.class_stats_mut(slo);
        cs.served += 1;
        cs.with_deadline += u64::from(had_deadline);
        cs.missed += u64::from(missed);
        st.class_hist_mut(slo).record(latency);
        let t = &mut st.tenants[tenant];
        t.served += 1;
        t.in_flight = t.in_flight.saturating_sub(1);
        t.histogram.record(latency);
        drop(st);
        // In-flight quota space freed: a blocked submitter never waits on
        // this (quotas reject immediately), but wake capacity waiters in
        // case a fulfilment races a capacity pop notification.
        self.not_full.notify_all();
    }

    /// Attributes one executed sweep of `images` rows to `kind`.
    pub(crate) fn note_backend_sweep(&self, kind: BackendKind, images: u64) {
        let mut st = self.state.lock().unwrap();
        let bs = &mut st.backend_stats[kind.index()];
        bs.sweeps += 1;
        bs.images += images;
    }

    /// Attributes one executed shard task to `kind` and to its model.
    pub(crate) fn note_backend_shard(&self, kind: BackendKind, model: usize) {
        let mut st = self.state.lock().unwrap();
        st.backend_stats[kind.index()].shards += 1;
        st.model_mut(model).shards += 1;
    }

    /// Current queued-request depth (both classes) — the autoscaler's
    /// load signal.
    pub(crate) fn depth(&self) -> usize {
        self.state.lock().unwrap().depth()
    }

    /// Counts one model registered onto the live session.
    pub(crate) fn note_hot_register(&self) {
        self.state.lock().unwrap().hot_registered += 1;
    }

    /// Counts one model evicted from the live session.
    pub(crate) fn note_evicted(&self) {
        self.state.lock().unwrap().evictions += 1;
    }

    /// Installs the session-start snapshot of active frozen-layer counts
    /// per backend (see [`BackendStats::active_layers`]).
    pub(crate) fn set_backend_layers(&self, layers: [usize; 3]) {
        let mut st = self.state.lock().unwrap();
        for (bs, n) in st.backend_stats.iter_mut().zip(layers) {
            bs.active_layers = n;
        }
    }

    /// Marks the queue closed: workers drain what is left and exit, and
    /// further submissions fail with [`SubmitError::Closed`].
    pub(crate) fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Snapshot of the counters. Model names/eviction flags and worker
    /// gauges are not known at the queue — the session snapshot overlays
    /// them.
    pub(crate) fn stats(&self) -> ServeStats {
        let st = self.state.lock().unwrap();
        ServeStats {
            submitted: st.submitted,
            rejected: st.rejected,
            served: st.served,
            batches: st.batches,
            rows_swept: st.rows_swept,
            max_sweep_rows: st.max_sweep_rows,
            peak_queue_depth: st.peak_depth,
            mean_queue_depth: if st.depth_samples == 0 {
                0.0
            } else {
                st.depth_sum as f64 / st.depth_samples as f64
            },
            latency: st.latency_stats,
            bulk: st.bulk_stats,
            sharded_sweeps: st.sharded_sweeps,
            shards_executed: st.shards_executed,
            aged_promotions: st.aged_promotions,
            backends: st.backend_stats,
            quota_rejected: st.quota_rejected,
            hot_registered: st.hot_registered,
            evictions: st.evictions,
            latency_hist: st.latency_hist.clone(),
            bulk_hist: st.bulk_hist.clone(),
            queue_depth_series: st.depth_series.snapshot(),
            tenants: st
                .tenants
                .iter()
                .map(|t| TenantStats {
                    name: t.name.clone(),
                    weight: t.weight,
                    submitted: t.submitted,
                    served: t.served,
                    rows: t.rows,
                    quota_rejected: t.quota_rejected,
                    peak_in_flight: t.peak_in_flight,
                    histogram: t.histogram.clone(),
                })
                .collect(),
            models: st
                .models
                .iter()
                .map(|m| ModelStats {
                    name: String::new(),
                    scheme: String::new(),
                    served: m.served,
                    sweeps: m.sweeps,
                    shards: m.shards,
                    images: m.images,
                    evicted: false,
                })
                .collect(),
            workers: WorkerStats::default(),
        }
    }
}

/// One unit of worker work.
pub(crate) enum Work {
    /// A coalesced sweep of whole requests (one model, one class).
    Sweep(Vec<QueuedRequest>),
    /// A stolen batch segment of someone else's oversized sweep.
    Shard(ShardTask),
}

/// Outcome of a bounded scheduler poll
/// ([`BatchScheduler::poll_work`]).
pub(crate) enum WorkPoll {
    /// A unit of work to execute.
    Ready(Work),
    /// Nothing arrived within the idle bound — the autoscaler's
    /// retirement signal.
    Idle,
    /// The queue is closed and fully drained.
    Closed,
}

/// Forms coalesced sweeps from the shared queue under the
/// `max_batch` / `max_wait` policy with [`Slo`] priority (strict, or
/// strict-with-aging). Each worker thread owns one.
pub(crate) struct BatchScheduler<'q> {
    queue: &'q RequestQueue,
    max_batch: Option<usize>,
    max_wait: Duration,
    policy: SchedulerPolicy,
}

impl<'q> BatchScheduler<'q> {
    pub(crate) fn new(
        queue: &'q RequestQueue,
        max_batch: Option<usize>,
        max_wait: Duration,
        policy: SchedulerPolicy,
    ) -> Self {
        assert!(max_batch != Some(0), "max_batch must be positive");
        Self {
            queue,
            max_batch,
            max_wait,
            policy,
        }
    }

    /// The tenant holding the **stalest** queued bulk request — the one
    /// with the highest weighted age at or past the aging threshold —
    /// or `None` when nothing is stale (always `None` under
    /// [`SchedulerPolicy::Strict`](crate::SchedulerPolicy)). Scanning
    /// every deque — not just the heads — keeps the starvation bound
    /// per-request even with heterogeneous weights: a weight-1.0 request
    /// queued behind a slow-aging weight-0.1 head still trips the
    /// promotion on its own clock (its tenant's bulk then drains FIFO
    /// from the head, so it is reached within the requests ahead of it —
    /// bounded by the queue capacity). The scan is O(queue depth) under
    /// the lock, and the depth is bounded by `queue_capacity`.
    fn stale_bulk_tenant(&self, st: &QueueState) -> Option<usize> {
        let limit = self.policy.bulk_max_age()?;
        let now = Instant::now();
        let mut stalest: Option<(usize, Duration)> = None;
        for (i, t) in st.tenants.iter().enumerate() {
            for r in &t.bulk {
                let age = r.weighted_age(now);
                if age >= limit && stalest.map_or(true, |(_, a)| age > a) {
                    stalest = Some((i, age));
                }
            }
        }
        stalest.map(|(i, _)| i)
    }

    /// Blocks for the next unit of work, in priority order:
    ///
    /// 1. **Latency-origin shard tasks** — finishing an in-flight sharded
    ///    latency request beats starting anything new.
    /// 2. **Aged bulk sweeps** (only under
    ///    [`SchedulerPolicy::Aging`](crate::SchedulerPolicy)) — when any
    ///    queued bulk request's weighted age has reached `bulk_max_age`,
    ///    the bulk class outranks new latency arrivals (served FIFO from
    ///    its head). This is the starvation bound: under a sustained
    ///    latency flood, every admitted bulk request is picked up within
    ///    `bulk_max_age / weight` of submission, plus the sweep a worker
    ///    already has in flight and the (capacity-bounded) bulk requests
    ///    queued ahead of it.
    /// 3. **Latency sweeps** — a maximal FIFO run of same-model,
    ///    same-shape [`Slo::Latency`] requests under `max_batch`. Latency
    ///    sweeps never linger: they coalesce only what is already queued.
    /// 4. **Bulk-origin shard tasks** — shards inherit their request's
    ///    class, so one sharded bulk request cooperates across *idle*
    ///    workers but never commandeers the pool ahead of latency work
    ///    (its coordinator keeps draining the pool itself regardless, so
    ///    deprioritized bulk shards still complete).
    /// 5. **Bulk sweeps** — as before, lingering up to `max_wait` for more
    ///    same-model arrivals while unfilled, but the linger (and sweep
    ///    growth) aborts the moment latency or shard work arrives — that
    ///    is the preemption of bulk batch formation.
    ///
    /// A single request larger than the cap is swept alone — the model
    /// chunks it internally (or the shard pool splits it). Returns `None`
    /// once the queue is closed and drained. (Unit-test shorthand; the
    /// worker loop polls [`poll_work`](BatchScheduler::poll_work).)
    #[cfg(test)]
    pub(crate) fn next_work(&self) -> Option<Work> {
        match self.poll_work(None) {
            WorkPoll::Ready(work) => Some(work),
            WorkPoll::Closed => None,
            WorkPoll::Idle => unreachable!("unbounded poll never idles out"),
        }
    }

    /// [`next_work`](BatchScheduler::next_work) with an optional idle
    /// bound: when no work arrives within `idle_after` of the call, the
    /// poll returns [`WorkPoll::Idle`] instead of blocking forever — the
    /// hook the autoscaler uses to retire surplus workers.
    pub(crate) fn poll_work(&self, idle_after: Option<Duration>) -> WorkPoll {
        let cap = self.max_batch.unwrap_or(usize::MAX);
        let idle_deadline = idle_after.map(|d| Instant::now() + d);
        let mut st = self.queue.state.lock().unwrap();
        loop {
            if let Some(task) = st.latency_shards.pop_front() {
                st.shards_executed += 1;
                return WorkPoll::Ready(Work::Shard(task));
            }
            // Aged bulk outranks *pending* latency work; when no latency
            // work is queued, the normal order below serves bulk anyway
            // (and the promotion counter only counts real overtakes). The
            // promoted sweep comes from the tenant holding the stalest
            // request — the starvation bound is per-request, so weighted
            // fairness yields to it.
            if st.latency_queued > 0 {
                if let Some(tenant) = self.stale_bulk_tenant(&st) {
                    st.aged_promotions += 1;
                    return WorkPoll::Ready(Work::Sweep(self.form_sweep(
                        st,
                        Slo::Bulk,
                        tenant,
                        cap,
                    )));
                }
                let tenant = st.wfq_pick(Slo::Latency);
                return WorkPoll::Ready(Work::Sweep(self.form_sweep(
                    st,
                    Slo::Latency,
                    tenant,
                    cap,
                )));
            }
            if let Some(task) = st.bulk_shards.pop_front() {
                st.shards_executed += 1;
                return WorkPoll::Ready(Work::Shard(task));
            }
            if st.bulk_queued > 0 {
                let tenant = st.wfq_pick(Slo::Bulk);
                return WorkPoll::Ready(Work::Sweep(self.form_sweep(st, Slo::Bulk, tenant, cap)));
            }
            if st.closed {
                return WorkPoll::Closed;
            }
            match idle_deadline {
                None => st = self.queue.not_empty.wait(st).unwrap(),
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return WorkPoll::Idle;
                    }
                    st = self
                        .queue
                        .not_empty
                        .wait_timeout(st, deadline - now)
                        .unwrap()
                        .0;
                }
            }
        }
    }

    /// Pops the head of `tenant`'s `class` deque and coalesces the
    /// following same-model, same-shape run under `cap` (strict FIFO
    /// within the tenant's class: never serves around the head; sweeps
    /// never mix tenants, so per-tenant row accounting stays exact). Only
    /// bulk sweeps linger, and a linger also breaks when **another**
    /// tenant has bulk queued — one tenant's quiet period must not stall
    /// the others.
    fn form_sweep(
        &self,
        mut st: std::sync::MutexGuard<'_, QueueState>,
        class: Slo,
        tenant: usize,
        cap: usize,
    ) -> Vec<QueuedRequest> {
        fn pop(st: &mut QueueState, class: Slo, tenant: usize) -> Option<QueuedRequest> {
            let q = st.tenants[tenant].class_queue(class).pop_front()?;
            match class {
                Slo::Latency => st.latency_queued -= 1,
                Slo::Bulk => st.bulk_queued -= 1,
            }
            st.tenants[tenant].rows += q.input.dim(0) as u64;
            Some(q)
        }
        let first = pop(&mut st, class, tenant).expect("form_sweep on an empty class");
        // Every pop frees capacity *now* — wake blocked submitters before
        // lingering, or they would stall a full `max_wait` behind us.
        self.queue.not_full.notify_all();
        let model = first.model;
        let inner: Vec<usize> = first.input.shape()[1..].to_vec();
        let mut rows = first.input.dim(0);
        let mut batch = vec![first];
        let deadline = Instant::now() + self.max_wait;
        while rows < cap {
            match st.tenants[tenant].class_queue(class).front() {
                Some(next)
                    if next.model == model
                        && next.input.shape()[1..] == inner[..]
                        && rows + next.input.dim(0) <= cap =>
                {
                    let q = pop(&mut st, class, tenant).unwrap();
                    rows += q.input.dim(0);
                    batch.push(q);
                    self.queue.not_full.notify_all();
                }
                // A different model/shape or an overflowing request ends
                // the sweep (strict FIFO: never serve around the head).
                Some(_) => break,
                None => {
                    // Latency sweeps never linger; bulk linger aborts the
                    // moment higher-priority work shows up — or another
                    // tenant queues bulk work of its own.
                    let other_bulk = st.bulk_queued > st.tenants[tenant].bulk.len();
                    if class == Slo::Latency
                        || st.closed
                        || st.latency_queued > 0
                        || !st.latency_shards.is_empty()
                        || !st.bulk_shards.is_empty()
                        || other_bulk
                    {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    st = self
                        .queue
                        .not_empty
                        .wait_timeout(st, deadline - now)
                        .unwrap()
                        .0;
                }
            }
        }
        st.batches += 1;
        st.rows_swept += rows as u64;
        st.max_sweep_rows = st.max_sweep_rows.max(rows);
        st.served += batch.len() as u64;
        // Advance the serving tenant's weighted-fair clock by the rows it
        // just consumed, normalized by its weight.
        let t = &mut st.tenants[tenant];
        t.vtime += rows as f64 / f64::from(t.weight.max(f32::EPSILON));
        let m = st.model_mut(model);
        m.sweeps += 1;
        m.images += rows as u64;
        m.served += batch.len() as u64;
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CompletionSet;

    fn req(model: usize, rows: usize) -> QueuedRequest {
        class_req(model, rows, Slo::Bulk)
    }

    fn class_req(model: usize, rows: usize, slo: Slo) -> QueuedRequest {
        QueuedRequest {
            model,
            input: Tensor::zeros(&[rows, 1, 1, 1]),
            slot: Arc::new(ResponseSlot::new()),
            slo,
            deadline: None,
            submitted_at: Instant::now(),
            weight: 1.0,
            tenant: 0,
        }
    }

    fn strict(
        queue: &RequestQueue,
        max_batch: Option<usize>,
        max_wait: Duration,
    ) -> BatchScheduler<'_> {
        BatchScheduler::new(queue, max_batch, max_wait, SchedulerPolicy::Strict)
    }

    fn next_batch(sched: &BatchScheduler<'_>) -> Option<Vec<QueuedRequest>> {
        sched.next_work().map(|w| match w {
            Work::Sweep(b) => b,
            Work::Shard(_) => panic!("unexpected shard task"),
        })
    }

    /// Reject admission must turn requests away exactly when the queue is
    /// full, handing the input back.
    #[test]
    fn reject_admission_bounds_the_queue() {
        let q = RequestQueue::new(2);
        q.submit(req(0, 1), Admission::Reject).unwrap();
        q.submit(class_req(0, 1, Slo::Latency), Admission::Reject)
            .unwrap();
        match q.submit(req(0, 3), Admission::Reject) {
            Err(SubmitError::QueueFull(t)) => assert_eq!(t.dim(0), 3, "input handed back"),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        let s = q.stats();
        assert_eq!((s.submitted, s.rejected), (2, 1));
        assert_eq!(s.peak_queue_depth, 2, "both classes share the bound");
        assert_eq!(s.latency.submitted, 1);
        assert_eq!(s.bulk.submitted, 1);
    }

    /// Block admission must wait for space instead of rejecting.
    #[test]
    fn block_admission_waits_for_space() {
        let q = Arc::new(RequestQueue::new(1));
        q.submit(req(0, 1), Admission::Block).unwrap();
        let q2 = q.clone();
        let drainer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let sched = strict(&q2, Some(4), Duration::ZERO);
            next_batch(&sched).unwrap().len()
        });
        // Blocks until the drainer frees the single slot.
        q.submit(req(0, 1), Admission::Block).unwrap();
        assert_eq!(drainer.join().unwrap(), 1);
        let s = q.stats();
        assert_eq!((s.submitted, s.rejected), (2, 0));
    }

    /// The scheduler coalesces FIFO runs of one model under the cap,
    /// breaks on model switches, and sweeps oversized requests alone.
    #[test]
    fn scheduler_batches_under_cap_and_model() {
        let q = RequestQueue::new(16);
        for (m, b) in [(0, 2), (0, 2), (0, 1), (1, 1), (0, 7), (0, 1)] {
            q.submit(req(m, b), Admission::Block).unwrap();
        }
        q.close();
        let sched = strict(&q, Some(4), Duration::ZERO);
        let sizes: Vec<(usize, usize)> = std::iter::from_fn(|| next_batch(&sched))
            .map(|b| {
                let rows: usize = b.iter().map(|r| r.input.dim(0)).sum();
                (b[0].model, rows)
            })
            .collect();
        // [2+2] (cap), [1] (model switch), [1], [7] (oversized, alone), [1].
        assert_eq!(sizes, vec![(0, 4), (0, 1), (1, 1), (0, 7), (0, 1)]);
        let s = q.stats();
        assert_eq!(s.batches, 5);
        assert_eq!(s.rows_swept, 14);
        assert_eq!(s.max_sweep_rows, 7);
        assert_eq!(s.served, 6);
    }

    /// Latency-class work always schedules before bulk work, even when the
    /// bulk requests were submitted first, and the two classes never ride
    /// one sweep.
    #[test]
    fn latency_class_schedules_before_earlier_bulk() {
        let q = RequestQueue::new(16);
        q.submit(class_req(0, 1, Slo::Bulk), Admission::Block)
            .unwrap();
        q.submit(class_req(0, 1, Slo::Bulk), Admission::Block)
            .unwrap();
        q.submit(class_req(0, 1, Slo::Latency), Admission::Block)
            .unwrap();
        q.submit(class_req(0, 1, Slo::Latency), Admission::Block)
            .unwrap();
        q.close();
        let sched = strict(&q, Some(8), Duration::ZERO);
        let classes: Vec<Vec<Slo>> = std::iter::from_fn(|| next_batch(&sched))
            .map(|b| b.iter().map(|r| r.slo).collect())
            .collect();
        assert_eq!(
            classes,
            vec![vec![Slo::Latency, Slo::Latency], vec![Slo::Bulk, Slo::Bulk],]
        );
    }

    /// Under the aging policy, a bulk head older than `bulk_max_age`
    /// outranks latency work that arrived after it — and the promotion is
    /// counted. Fresh bulk still yields to latency.
    #[test]
    fn aged_bulk_head_outranks_pending_latency() {
        let q = RequestQueue::new(16);
        let mut stale = class_req(0, 1, Slo::Bulk);
        // Backdate the bulk head far past the threshold (no sleeping).
        stale.submitted_at = Instant::now() - Duration::from_secs(60);
        q.submit(stale, Admission::Block).unwrap();
        q.submit(class_req(0, 1, Slo::Latency), Admission::Block)
            .unwrap();
        q.submit(class_req(0, 1, Slo::Bulk), Admission::Block)
            .unwrap();
        q.close();
        let sched = BatchScheduler::new(
            &q,
            Some(1),
            Duration::ZERO,
            SchedulerPolicy::Aging {
                bulk_max_age: Duration::from_secs(30),
            },
        );
        let classes: Vec<Slo> = std::iter::from_fn(|| next_batch(&sched))
            .map(|b| b[0].slo)
            .collect();
        // Stale bulk first (promoted), then latency, then the fresh bulk.
        assert_eq!(classes, vec![Slo::Bulk, Slo::Latency, Slo::Bulk]);
        assert_eq!(q.stats().aged_promotions, 1, "exactly one real overtake");
    }

    /// The stale scan covers the whole bulk deque, not just its head: a
    /// fast-aging request queued behind a slow-aging head trips the
    /// promotion on its own clock, and bulk then drains FIFO from the
    /// head — no per-request starvation behind a low-weight head.
    #[test]
    fn stale_bulk_behind_slow_aging_head_still_promotes() {
        let q = RequestQueue::new(16);
        let mut slow_head = class_req(0, 1, Slo::Bulk);
        // Head: 40 s old but weight 0.1 → weighted age 4 s, not stale.
        slow_head.submitted_at = Instant::now() - Duration::from_secs(40);
        slow_head.weight = 0.1;
        q.submit(slow_head, Admission::Block).unwrap();
        let mut fast_second = class_req(0, 1, Slo::Bulk);
        // Behind it: 35 s old at weight 1.0 → stale past the 30 s limit.
        fast_second.submitted_at = Instant::now() - Duration::from_secs(35);
        q.submit(fast_second, Admission::Block).unwrap();
        q.submit(class_req(0, 1, Slo::Latency), Admission::Block)
            .unwrap();
        q.close();
        let sched = BatchScheduler::new(
            &q,
            Some(1),
            Duration::ZERO,
            SchedulerPolicy::Aging {
                bulk_max_age: Duration::from_secs(30),
            },
        );
        let classes: Vec<Slo> = std::iter::from_fn(|| next_batch(&sched))
            .map(|b| b[0].slo)
            .collect();
        // Both bulk sweeps outrank the latency arrival (FIFO within the
        // class: the slow head rides the first promoted sweep).
        assert_eq!(classes, vec![Slo::Bulk, Slo::Bulk, Slo::Latency]);
        assert_eq!(q.stats().aged_promotions, 2);
    }

    /// Per-request weights scale the aging clock: at equal queue age, a
    /// heavy bulk head crosses the threshold while a weight-1 head does
    /// not.
    #[test]
    fn aging_weight_scales_the_clock() {
        let age = Duration::from_secs(10);
        let policy = SchedulerPolicy::Aging {
            bulk_max_age: Duration::from_secs(30),
        };
        for (weight, promoted) in [(1.0f32, false), (4.0, true)] {
            let q = RequestQueue::new(16);
            let mut head = class_req(0, 1, Slo::Bulk);
            head.submitted_at = Instant::now() - age;
            head.weight = weight;
            q.submit(head, Admission::Block).unwrap();
            q.submit(class_req(0, 1, Slo::Latency), Admission::Block)
                .unwrap();
            q.close();
            let sched = BatchScheduler::new(&q, Some(1), Duration::ZERO, policy);
            let first = next_batch(&sched).unwrap();
            let want = if promoted { Slo::Bulk } else { Slo::Latency };
            assert_eq!(
                first[0].slo, want,
                "weight {weight} at age {age:?} promoted={promoted}"
            );
            assert_eq!(q.stats().aged_promotions, u64::from(promoted));
        }
    }

    /// A latency arrival preempts bulk batch formation: the lingering bulk
    /// sweep stops immediately instead of waiting out `max_wait`.
    #[test]
    fn latency_arrival_preempts_bulk_linger() {
        let q = Arc::new(RequestQueue::new(16));
        q.submit(class_req(0, 1, Slo::Bulk), Admission::Block)
            .unwrap();
        let q2 = q.clone();
        let poker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            q2.submit(class_req(0, 1, Slo::Latency), Admission::Block)
                .unwrap();
        });
        // A very generous linger: without preemption this would block for
        // 10 s; with it, the sweep closes as soon as the latency request
        // lands.
        let sched = strict(&q, Some(4), Duration::from_secs(10));
        let t0 = Instant::now();
        let first = next_batch(&sched).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "bulk linger was not preempted"
        );
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].slo, Slo::Bulk);
        let second = next_batch(&sched).unwrap();
        assert_eq!(second[0].slo, Slo::Latency);
        poker.join().unwrap();
    }

    /// Shard tasks schedule by their origin class: latency-origin shards
    /// before latency sweeps, bulk-origin shards after latency sweeps but
    /// before bulk sweeps — a sharded bulk request never commandeers
    /// workers ahead of latency traffic.
    #[test]
    fn shards_schedule_by_origin_class() {
        let q = RequestQueue::new(4);
        q.submit(class_req(0, 1, Slo::Latency), Admission::Block)
            .unwrap();
        q.submit(class_req(0, 1, Slo::Bulk), Admission::Block)
            .unwrap();
        let shard = |slo: Slo, join: &Arc<ShardJoin>| ShardTask {
            model: 0,
            segment: Tensor::zeros(&[1, 1, 1, 1]),
            index: 0,
            slo,
            join: join.clone(),
        };
        let bulk_join = Arc::new(ShardJoin::new(1));
        let latency_join = Arc::new(ShardJoin::new(1));
        q.push_shards([shard(Slo::Bulk, &bulk_join)]);
        q.push_shards([shard(Slo::Latency, &latency_join)]);
        let sched = strict(&q, None, Duration::ZERO);
        let order: Vec<&'static str> = std::iter::from_fn(|| {
            let w = sched.next_work()?;
            Some(match w {
                Work::Shard(t) => {
                    t.join.complete(t.index, Tensor::zeros(&[1, 1, 1, 1]));
                    match t.slo {
                        Slo::Latency => "latency-shard",
                        Slo::Bulk => "bulk-shard",
                    }
                }
                Work::Sweep(b) => match b[0].slo {
                    Slo::Latency => "latency-sweep",
                    Slo::Bulk => "bulk-sweep",
                },
            })
        })
        .take(4)
        .collect();
        assert_eq!(
            order,
            vec!["latency-shard", "latency-sweep", "bulk-shard", "bulk-sweep"]
        );
        assert!(latency_join.is_done() && bulk_join.is_done());
        let s = q.stats();
        assert_eq!(s.sharded_sweeps, 2);
        assert_eq!(s.shards_executed, 2);
    }

    /// A failed shard join panics the waiting coordinator.
    #[test]
    fn failed_shard_join_panics_waiter() {
        let join = ShardJoin::new(2);
        join.complete(1, Tensor::zeros(&[1]));
        join.fail();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| join.wait()));
        assert!(err.is_err(), "waiting on a failed join must panic");
    }

    /// Requests with mismatched `[C, H, W]` must never ride one sweep —
    /// they cannot be concatenated — even when the model id matches.
    #[test]
    fn scheduler_never_mixes_shapes_in_a_sweep() {
        let q = RequestQueue::new(8);
        let wide = QueuedRequest {
            model: 0,
            input: Tensor::zeros(&[1, 2, 3, 3]),
            slot: Arc::new(ResponseSlot::new()),
            slo: Slo::Bulk,
            deadline: None,
            submitted_at: Instant::now(),
            weight: 1.0,
            tenant: 0,
        };
        q.submit(req(0, 1), Admission::Block).unwrap();
        q.submit(wide, Admission::Block).unwrap();
        q.submit(req(0, 1), Admission::Block).unwrap();
        q.close();
        let sched = strict(&q, Some(8), Duration::ZERO);
        let shapes: Vec<Vec<Vec<usize>>> = std::iter::from_fn(|| next_batch(&sched))
            .map(|b| b.iter().map(|r| r.input.shape().to_vec()).collect())
            .collect();
        assert_eq!(
            shapes,
            vec![
                vec![vec![1, 1, 1, 1]],
                vec![vec![1, 2, 3, 3]],
                vec![vec![1, 1, 1, 1]],
            ]
        );
    }

    /// Abandoning a slot makes its waiter panic instead of hanging;
    /// abandoning after fulfilment is a no-op.
    #[test]
    fn abandoned_slot_fails_loudly_fulfilled_slot_ignores_abandon() {
        let slot = Arc::new(ResponseSlot::new());
        slot.fulfill(Tensor::zeros(&[1]));
        slot.abandon(); // no-op: already fulfilled
        let ticket = Ticket::new(slot, Slo::Bulk, None);
        assert_eq!(ticket.wait().output, Tensor::zeros(&[1]));

        let slot = Arc::new(ResponseSlot::new());
        let ticket = Ticket::new(slot.clone(), Slo::Latency, None);
        slot.abandon();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.wait()));
        assert!(err.is_err(), "waiting on an abandoned slot must panic");
    }

    /// The pollable paths: `try_wait` hands the ticket back while in
    /// flight and resolves once ready; `wait_timeout` times out cleanly
    /// and later resolves; `is_ready` flips exactly at fulfilment.
    #[test]
    fn pollable_ticket_paths_resolve_without_blocking() {
        let slot = Arc::new(ResponseSlot::new());
        let ticket = Ticket::new(slot.clone(), Slo::Bulk, None);
        assert!(!ticket.is_ready());
        let ticket = ticket.try_wait().expect_err("nothing fulfilled yet");
        let t0 = Instant::now();
        let ticket = ticket
            .wait_timeout(Duration::from_millis(10))
            .expect_err("timeout must hand the ticket back");
        assert!(t0.elapsed() >= Duration::from_millis(10));
        slot.fulfill(Tensor::zeros(&[2]));
        assert!(ticket.is_ready());
        let done = ticket.try_wait().expect("fulfilled: try_wait resolves");
        assert_eq!(done.output, Tensor::zeros(&[2]));
    }

    /// An abandoned ticket panics through `try_wait` too — pollable paths
    /// share the loud-failure contract.
    #[test]
    fn abandoned_slot_panics_through_try_wait() {
        let slot = Arc::new(ResponseSlot::new());
        let ticket = Ticket::new(slot.clone(), Slo::Bulk, None);
        slot.abandon();
        assert!(ticket.is_ready(), "abandoned reads ready");
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.try_wait()));
        assert!(err.is_err(), "try_wait on an abandoned slot must panic");
    }

    /// CompletionSet fundamentals at the queue level: already-resolved
    /// tickets are immediately ready, resolution arrives in completion
    /// order, and an abandoned member panics the drain.
    #[test]
    fn completion_set_delivers_in_completion_order() {
        let slots: Vec<Arc<ResponseSlot>> = (0..3).map(|_| Arc::new(ResponseSlot::new())).collect();
        let mut set = CompletionSet::new();
        // Insert the first ticket pre-resolved: it must surface first.
        slots[0].fulfill(Tensor::zeros(&[1]));
        let keys: Vec<_> = slots
            .iter()
            .map(|s| set.insert(Ticket::new(s.clone(), Slo::Bulk, None)))
            .collect();
        assert_eq!(set.len(), 3);
        slots[2].fulfill(Tensor::zeros(&[3]));
        slots[1].fulfill(Tensor::zeros(&[2]));
        let order: Vec<usize> = std::iter::from_fn(|| set.wait_any())
            .map(|(k, done)| {
                assert_eq!(done.output.dim(0), k.index() + 1, "key maps to its ticket");
                k.index()
            })
            .collect();
        assert_eq!(order, vec![0, 2, 1], "completion order, not insertion");
        assert!(set.is_empty());
        assert_eq!(keys.len(), 3);
        assert!(set.try_any().is_none(), "drained set yields nothing");
    }

    /// `wait_any_timeout` gives up when nothing resolves, then delivers
    /// once something does; an abandoned ticket panics the drain.
    #[test]
    fn completion_set_timeout_and_abandon() {
        let slot = Arc::new(ResponseSlot::new());
        let mut set = CompletionSet::new();
        set.insert(Ticket::new(slot.clone(), Slo::Bulk, None));
        assert!(
            set.wait_any_timeout(Duration::from_millis(5)).is_none(),
            "nothing resolved inside the timeout"
        );
        assert_eq!(set.len(), 1, "timeout does not drain");
        slot.abandon();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            set.wait_any_timeout(Duration::from_secs(1))
        }));
        assert!(err.is_err(), "abandoned member must panic the drain");
    }

    /// An expired deadline stamps the completion `missed` without losing
    /// the output; a generous deadline does not.
    #[test]
    fn deadlines_stamp_missed_on_late_fulfilment() {
        let slot = Arc::new(ResponseSlot::new());
        let ticket = Ticket::new(slot.clone(), Slo::Latency, Some(Duration::ZERO));
        assert_eq!(ticket.slo(), Slo::Latency);
        assert!(ticket.deadline().is_some(), "deadline introspectable");
        std::thread::sleep(Duration::from_millis(2));
        slot.fulfill(Tensor::zeros(&[1]));
        let done = ticket.wait();
        assert!(done.missed, "expired deadline must stamp missed");
        assert_eq!(done.slo, Slo::Latency);
        assert_eq!(done.output, Tensor::zeros(&[1]), "output still delivered");

        let slot = Arc::new(ResponseSlot::new());
        let ticket = Ticket::new(slot.clone(), Slo::Latency, Some(Duration::from_secs(600)));
        slot.fulfill(Tensor::zeros(&[1]));
        assert!(!ticket.wait().missed);
    }

    fn tenant_req(tenant: usize, rows: usize, slo: Slo) -> QueuedRequest {
        let mut r = class_req(0, rows, slo);
        r.tenant = tenant;
        r
    }

    /// A `max_queued` quota rejects immediately — even under Block — and
    /// hands the input back; draining reopens admission.
    #[test]
    fn max_queued_quota_rejects_immediately() {
        let q = RequestQueue::new(16);
        let a = q.resolve_tenant("a");
        // Unconfigured tenants get no quotas; pin one on directly.
        q.state.lock().unwrap().tenants[a].max_queued = Some(2);
        q.submit(tenant_req(a, 1, Slo::Bulk), Admission::Block)
            .unwrap();
        q.submit(tenant_req(a, 1, Slo::Bulk), Admission::Block)
            .unwrap();
        match q.submit(tenant_req(a, 3, Slo::Bulk), Admission::Block) {
            Err(SubmitError::QuotaExceeded { tenant, input }) => {
                assert_eq!(tenant, "a");
                assert_eq!(input.dim(0), 3, "input handed back");
            }
            other => panic!("expected QuotaExceeded, got {other:?}"),
        }
        // Other tenants are unaffected by a's quota.
        q.submit(req(0, 1), Admission::Block).unwrap();
        let sched = strict(&q, Some(1), Duration::ZERO);
        // Drain the default tenant's request (vtime tie breaks to index
        // 0), then one of a's.
        next_batch(&sched).unwrap();
        next_batch(&sched).unwrap();
        // One slot freed below the quota: admission reopens.
        q.submit(tenant_req(a, 1, Slo::Bulk), Admission::Block)
            .unwrap();
        let s = q.stats();
        assert_eq!(s.quota_rejected, 1);
        let ts = s.tenants.iter().find(|t| t.name == "a").unwrap();
        assert_eq!(ts.quota_rejected, 1);
        assert_eq!(ts.submitted, 3);
    }

    /// A `max_in_flight` quota meters admitted-but-unfulfilled requests:
    /// scheduling alone does not free it — only fulfilment
    /// (`note_served`) does — and `peak_in_flight` never exceeds it.
    #[test]
    fn max_in_flight_quota_waits_for_fulfilment() {
        let q = RequestQueue::new(16);
        let a = q.resolve_tenant("a");
        q.state.lock().unwrap().tenants[a].max_in_flight = Some(1);
        q.submit(tenant_req(a, 1, Slo::Bulk), Admission::Block)
            .unwrap();
        assert!(matches!(
            q.submit(tenant_req(a, 1, Slo::Bulk), Admission::Reject),
            Err(SubmitError::QuotaExceeded { .. })
        ));
        let sched = strict(&q, Some(1), Duration::ZERO);
        next_batch(&sched).unwrap();
        // Scheduled but not fulfilled: still in flight, still capped.
        assert!(matches!(
            q.submit(tenant_req(a, 1, Slo::Bulk), Admission::Reject),
            Err(SubmitError::QuotaExceeded { .. })
        ));
        q.note_served(Slo::Bulk, a, false, false, Duration::from_micros(50));
        q.submit(tenant_req(a, 1, Slo::Bulk), Admission::Block)
            .unwrap();
        let ts = q.stats().tenants[a].clone();
        assert_eq!(ts.peak_in_flight, 1, "never exceeded the quota");
        assert_eq!(ts.served, 1);
        assert!(!ts.histogram.is_empty(), "fulfilment recorded a latency");
    }

    /// Weighted-fair scheduling: under saturation, served-row shares
    /// follow tenant weights (a 3:1 weight split serves 3:1 rows), with
    /// ties breaking to the lower tenant index.
    #[test]
    fn wfq_serves_rows_proportional_to_weight() {
        let q = RequestQueue::with_tenants(
            16,
            &[TenantSpec::new("a"), TenantSpec::new("b").weight(3.0)],
        );
        let (a, b) = (q.resolve_tenant("a"), q.resolve_tenant("b"));
        for _ in 0..4 {
            q.submit(tenant_req(a, 1, Slo::Bulk), Admission::Block)
                .unwrap();
        }
        for _ in 0..12 {
            q.submit(tenant_req(b, 1, Slo::Bulk), Admission::Block)
                .unwrap();
        }
        q.close();
        let sched = strict(&q, Some(1), Duration::ZERO);
        let order: Vec<usize> = std::iter::from_fn(|| next_batch(&sched))
            .map(|batch| batch[0].tenant)
            .collect();
        assert_eq!(order.len(), 16);
        // Saturated prefix (both tenants backlogged through sweep 8 —
        // a's 4 requests at weight 1 drain one per 4 sweeps): exactly
        // weight-share interleave, a first on the vtime=0 tie.
        assert_eq!(&order[..8], &[a, b, b, b, a, b, b, b]);
        let s = q.stats();
        assert_eq!(s.tenants[a].rows, 4);
        assert_eq!(s.tenants[b].rows, 12);
    }

    /// An idle tenant must not bank scheduling credit: after sitting out
    /// a busy period it rejoins at the virtual floor and shares from
    /// there, rather than monopolizing until its stale clock catches up.
    #[test]
    fn reactivating_tenant_rejoins_at_the_virtual_floor() {
        let q = RequestQueue::with_tenants(16, &[TenantSpec::new("a"), TenantSpec::new("b")]);
        let (a, b) = (q.resolve_tenant("a"), q.resolve_tenant("b"));
        let sched = strict(&q, Some(1), Duration::ZERO);
        // b serves 6 rows alone; its clock runs ahead while a idles.
        for _ in 0..6 {
            q.submit(tenant_req(b, 1, Slo::Bulk), Admission::Block)
                .unwrap();
            next_batch(&sched).unwrap();
        }
        // a wakes up with a backlog; both now saturated.
        for _ in 0..6 {
            q.submit(tenant_req(a, 1, Slo::Bulk), Admission::Block)
                .unwrap();
            q.submit(tenant_req(b, 1, Slo::Bulk), Admission::Block)
                .unwrap();
        }
        q.close();
        let order: Vec<usize> = std::iter::from_fn(|| next_batch(&sched))
            .map(|batch| batch[0].tenant)
            .collect();
        let a_in_first_half = order[..6].iter().filter(|&&t| t == a).count();
        assert!(
            (2..=4).contains(&a_in_first_half),
            "a must share, not monopolize or starve: {order:?}"
        );
    }

    /// The queue snapshot carries the new observability surfaces: class
    /// histograms, the depth series, and per-model counters keyed by
    /// slot index.
    #[test]
    fn stats_snapshot_carries_histograms_series_and_models() {
        let q = RequestQueue::new(8);
        q.submit(class_req(1, 2, Slo::Latency), Admission::Block)
            .unwrap();
        q.submit(class_req(1, 1, Slo::Bulk), Admission::Block)
            .unwrap();
        let sched = strict(&q, Some(8), Duration::ZERO);
        next_batch(&sched).unwrap();
        next_batch(&sched).unwrap();
        q.note_served(Slo::Latency, 0, true, false, Duration::from_micros(700));
        q.note_served(Slo::Bulk, 0, false, false, Duration::from_millis(3));
        let s = q.stats();
        assert_eq!(s.latency_hist.count(), 1);
        assert_eq!(s.bulk_hist.count(), 1);
        assert!(
            s.latency_hist.quantile(1.0).unwrap() >= Duration::from_micros(700),
            "quantile upper-bounds the observation"
        );
        assert_eq!(s.queue_depth_series.len(), 2, "one sample per admission");
        assert_eq!(s.models.len(), 2, "model vec grown to slot index 1");
        assert_eq!(s.models[1].served, 2);
        assert_eq!(s.models[1].sweeps, 2);
        assert_eq!(s.models[1].images, 3);
        let prom = s.render_prometheus();
        assert!(prom.contains("cq_serve_served_total"));
        assert!(prom.contains("cq_serve_latency_seconds_bucket{class=\"latency\","));
        assert!(prom.contains("cq_serve_tenant_served_total{tenant=\"default\"}"));
    }

    /// Closing wakes blocked submitters with `Closed` and lets schedulers
    /// drain to `None`.
    #[test]
    fn close_drains_and_rejects_new_work() {
        let q = RequestQueue::new(4);
        q.submit(req(0, 1), Admission::Block).unwrap();
        q.close();
        assert!(matches!(
            q.submit(req(0, 1), Admission::Block),
            Err(SubmitError::Closed(_))
        ));
        let sched = strict(&q, None, Duration::ZERO);
        assert_eq!(next_batch(&sched).unwrap().len(), 1);
        assert!(sched.next_work().is_none());
    }
}
