//! The bounded request queue, admission control, and batch scheduler of
//! the serving front-end.
//!
//! Clients [`submit`](crate::ServerHandle::submit) requests into one
//! shared [`RequestQueue`]; worker threads each drive a [`BatchScheduler`]
//! that pops runs of same-model requests and coalesces them into sweeps
//! under the `max_batch` / `max_wait` policy. Admission is enforced at the
//! queue: when it is full, a submission either blocks until a worker frees
//! space or is rejected immediately with the input handed back.

use cq_tensor::Tensor;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// What a submission does when the bounded queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Block the submitting thread until a worker frees space.
    Block,
    /// Reject immediately, handing the input back to the caller.
    Reject,
}

/// Why a submission was not admitted.
#[derive(Debug)]
pub enum SubmitError {
    /// The queue was full under [`Admission::Reject`]; the input is handed
    /// back so the caller can retry or shed the request.
    QueueFull(Tensor),
    /// No model with this id is registered.
    UnknownModel(String),
    /// The server is shutting down; the input is handed back.
    Closed(Tensor),
}

/// A fulfilled request: the model output plus end-to-end latency
/// (submission call to worker fulfilment, including any admission
/// blocking and queueing time).
#[derive(Debug)]
pub struct Completed {
    /// The model output for this request (`[b, ...]`, matching the
    /// request's batch dimension).
    pub output: Tensor,
    /// Submission-to-fulfilment latency.
    pub latency: Duration,
}

/// Where a worker parks one request's output; the client side waits on it
/// through a [`Ticket`].
pub(crate) struct ResponseSlot {
    state: Mutex<Option<SlotResult>>,
    ready: Condvar,
}

enum SlotResult {
    Done(Tensor, Instant),
    /// The worker holding this request panicked before fulfilling it;
    /// `Ticket::wait` propagates the failure instead of hanging.
    Abandoned,
}

impl ResponseSlot {
    pub(crate) fn new() -> Self {
        Self {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Parks `output` (stamping the completion instant) and wakes the
    /// waiting client.
    pub(crate) fn fulfill(&self, output: Tensor) {
        let mut st = self.state.lock().unwrap();
        debug_assert!(st.is_none(), "slot fulfilled twice");
        *st = Some(SlotResult::Done(output, Instant::now()));
        drop(st);
        self.ready.notify_all();
    }

    /// Marks the slot abandoned *unless already fulfilled* — called while
    /// a worker unwinds so waiting clients fail loudly instead of hanging.
    pub(crate) fn abandon(&self) {
        let mut st = self.state.lock().unwrap();
        if st.is_none() {
            *st = Some(SlotResult::Abandoned);
            drop(st);
            self.ready.notify_all();
        }
    }

    fn wait(&self) -> (Tensor, Instant) {
        let mut st = self.state.lock().unwrap();
        loop {
            match st.take() {
                Some(SlotResult::Done(output, at)) => return (output, at),
                Some(SlotResult::Abandoned) => {
                    panic!("serving worker panicked before fulfilling this request")
                }
                None => st = self.ready.wait(st).unwrap(),
            }
        }
    }
}

/// Handle to one in-flight request, returned by a successful submission.
pub struct Ticket {
    slot: Arc<ResponseSlot>,
    submitted_at: Instant,
}

impl Ticket {
    /// Stamps the submission instant; created **before** admission so the
    /// measured latency includes any [`Admission::Block`] backpressure.
    pub(crate) fn new(slot: Arc<ResponseSlot>) -> Self {
        Self {
            slot,
            submitted_at: Instant::now(),
        }
    }

    /// Blocks until a worker fulfils the request.
    ///
    /// # Panics
    ///
    /// Panics if the worker serving this request panicked (e.g. the input
    /// shape did not match the model) — the failure propagates to the
    /// waiting client instead of hanging it.
    pub fn wait(self) -> Completed {
        let (output, at) = self.slot.wait();
        Completed {
            output,
            latency: at.saturating_duration_since(self.submitted_at),
        }
    }
}

/// One admitted request waiting in the queue.
pub(crate) struct QueuedRequest {
    /// Registry index of the target model.
    pub model: usize,
    /// The input `[b, C, H, W]`.
    pub input: Tensor,
    /// Where the output goes.
    pub slot: Arc<ResponseSlot>,
}

/// Aggregate serving counters, snapshotted when a serve scope ends.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Requests admitted into the queue.
    pub submitted: u64,
    /// Requests turned away by [`Admission::Reject`].
    pub rejected: u64,
    /// Requests handed to a model sweep (every admitted request is served
    /// before `serve` returns).
    pub served: u64,
    /// Coalesced sweeps formed by the schedulers.
    pub batches: u64,
    /// Total images across all sweeps.
    pub rows_swept: u64,
    /// Largest single sweep handed to a model (may exceed `max_batch`
    /// when one oversized request is swept alone — the model chunks it
    /// internally).
    pub max_sweep_rows: usize,
    /// Deepest the queue ever got (sampled after each admission).
    pub peak_queue_depth: usize,
    /// Mean queue depth over those samples.
    pub mean_queue_depth: f64,
}

#[derive(Default)]
struct QueueState {
    items: VecDeque<QueuedRequest>,
    closed: bool,
    submitted: u64,
    rejected: u64,
    served: u64,
    batches: u64,
    rows_swept: u64,
    max_sweep_rows: usize,
    peak_depth: usize,
    depth_sum: u64,
    depth_samples: u64,
}

/// The bounded multi-producer queue shared by clients and workers.
pub(crate) struct RequestQueue {
    capacity: usize,
    state: Mutex<QueueState>,
    not_empty: Condvar,
    not_full: Condvar,
}

impl RequestQueue {
    pub(crate) fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        Self {
            capacity,
            state: Mutex::new(QueueState::default()),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Admits `req` under `admission` (see [`Admission`]).
    pub(crate) fn submit(
        &self,
        req: QueuedRequest,
        admission: Admission,
    ) -> Result<(), SubmitError> {
        let mut st = self.state.lock().unwrap();
        while st.items.len() >= self.capacity {
            if st.closed {
                return Err(SubmitError::Closed(req.input));
            }
            match admission {
                Admission::Reject => {
                    st.rejected += 1;
                    return Err(SubmitError::QueueFull(req.input));
                }
                Admission::Block => st = self.not_full.wait(st).unwrap(),
            }
        }
        if st.closed {
            return Err(SubmitError::Closed(req.input));
        }
        st.items.push_back(req);
        st.submitted += 1;
        let depth = st.items.len();
        st.peak_depth = st.peak_depth.max(depth);
        st.depth_sum += depth as u64;
        st.depth_samples += 1;
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Marks the queue closed: workers drain what is left and exit, and
    /// further submissions fail with [`SubmitError::Closed`].
    pub(crate) fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Snapshot of the counters.
    pub(crate) fn stats(&self) -> ServeStats {
        let st = self.state.lock().unwrap();
        ServeStats {
            submitted: st.submitted,
            rejected: st.rejected,
            served: st.served,
            batches: st.batches,
            rows_swept: st.rows_swept,
            max_sweep_rows: st.max_sweep_rows,
            peak_queue_depth: st.peak_depth,
            mean_queue_depth: if st.depth_samples == 0 {
                0.0
            } else {
                st.depth_sum as f64 / st.depth_samples as f64
            },
        }
    }
}

/// Forms coalesced sweeps from the shared queue under the
/// `max_batch` / `max_wait` policy. Each worker thread owns one.
pub(crate) struct BatchScheduler<'q> {
    queue: &'q RequestQueue,
    max_batch: Option<usize>,
    max_wait: Duration,
}

impl<'q> BatchScheduler<'q> {
    pub(crate) fn new(
        queue: &'q RequestQueue,
        max_batch: Option<usize>,
        max_wait: Duration,
    ) -> Self {
        assert!(max_batch != Some(0), "max_batch must be positive");
        Self {
            queue,
            max_batch,
            max_wait,
        }
    }

    /// Blocks for the next sweep: a maximal FIFO run of same-model
    /// requests whose rows fit under `max_batch` and share the first
    /// request's `[C, H, W]` (mismatched shapes cannot ride one sweep),
    /// lingering up to `max_wait` (from the moment the sweep starts
    /// forming) for more arrivals while it is unfilled. A single request
    /// larger than the cap is swept alone — the model chunks it
    /// internally. Returns `None` once the queue is closed and drained.
    pub(crate) fn next_batch(&self) -> Option<Vec<QueuedRequest>> {
        let cap = self.max_batch.unwrap_or(usize::MAX);
        let mut st = self.queue.state.lock().unwrap();
        loop {
            if !st.items.is_empty() {
                break;
            }
            if st.closed {
                return None;
            }
            st = self.queue.not_empty.wait(st).unwrap();
        }
        let first = st.items.pop_front().unwrap();
        // Every pop frees capacity *now* — wake blocked submitters before
        // lingering, or they would stall a full `max_wait` behind us.
        self.queue.not_full.notify_all();
        let model = first.model;
        let inner: Vec<usize> = first.input.shape()[1..].to_vec();
        let mut rows = first.input.dim(0);
        let mut batch = vec![first];
        let deadline = Instant::now() + self.max_wait;
        while rows < cap {
            match st.items.front() {
                Some(next)
                    if next.model == model
                        && next.input.shape()[1..] == inner[..]
                        && rows + next.input.dim(0) <= cap =>
                {
                    let q = st.items.pop_front().unwrap();
                    rows += q.input.dim(0);
                    batch.push(q);
                    self.queue.not_full.notify_all();
                }
                // A different model/shape or an overflowing request ends
                // the sweep (strict FIFO: never serve around the head).
                Some(_) => break,
                None => {
                    if st.closed {
                        break;
                    }
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    st = self
                        .queue
                        .not_empty
                        .wait_timeout(st, deadline - now)
                        .unwrap()
                        .0;
                }
            }
        }
        st.batches += 1;
        st.rows_swept += rows as u64;
        st.max_sweep_rows = st.max_sweep_rows.max(rows);
        st.served += batch.len() as u64;
        Some(batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(model: usize, rows: usize) -> QueuedRequest {
        QueuedRequest {
            model,
            input: Tensor::zeros(&[rows, 1, 1, 1]),
            slot: Arc::new(ResponseSlot::new()),
        }
    }

    /// Reject admission must turn requests away exactly when the queue is
    /// full, handing the input back.
    #[test]
    fn reject_admission_bounds_the_queue() {
        let q = RequestQueue::new(2);
        q.submit(req(0, 1), Admission::Reject).unwrap();
        q.submit(req(0, 1), Admission::Reject).unwrap();
        match q.submit(req(0, 3), Admission::Reject) {
            Err(SubmitError::QueueFull(t)) => assert_eq!(t.dim(0), 3, "input handed back"),
            other => panic!("expected QueueFull, got {other:?}"),
        }
        let s = q.stats();
        assert_eq!((s.submitted, s.rejected), (2, 1));
        assert_eq!(s.peak_queue_depth, 2);
    }

    /// Block admission must wait for space instead of rejecting.
    #[test]
    fn block_admission_waits_for_space() {
        let q = Arc::new(RequestQueue::new(1));
        q.submit(req(0, 1), Admission::Block).unwrap();
        let q2 = q.clone();
        let drainer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            let sched = BatchScheduler::new(&q2, Some(4), Duration::ZERO);
            sched.next_batch().unwrap().len()
        });
        // Blocks until the drainer frees the single slot.
        q.submit(req(0, 1), Admission::Block).unwrap();
        assert_eq!(drainer.join().unwrap(), 1);
        let s = q.stats();
        assert_eq!((s.submitted, s.rejected), (2, 0));
    }

    /// The scheduler coalesces FIFO runs of one model under the cap,
    /// breaks on model switches, and sweeps oversized requests alone.
    #[test]
    fn scheduler_batches_under_cap_and_model() {
        let q = RequestQueue::new(16);
        for (m, b) in [(0, 2), (0, 2), (0, 1), (1, 1), (0, 7), (0, 1)] {
            q.submit(req(m, b), Admission::Block).unwrap();
        }
        q.close();
        let sched = BatchScheduler::new(&q, Some(4), Duration::ZERO);
        let sizes: Vec<(usize, usize)> = std::iter::from_fn(|| sched.next_batch())
            .map(|b| {
                let rows: usize = b.iter().map(|r| r.input.dim(0)).sum();
                (b[0].model, rows)
            })
            .collect();
        // [2+2] (cap), [1] (model switch), [1], [7] (oversized, alone), [1].
        assert_eq!(sizes, vec![(0, 4), (0, 1), (1, 1), (0, 7), (0, 1)]);
        let s = q.stats();
        assert_eq!(s.batches, 5);
        assert_eq!(s.rows_swept, 14);
        assert_eq!(s.max_sweep_rows, 7);
        assert_eq!(s.served, 6);
    }

    /// Requests with mismatched `[C, H, W]` must never ride one sweep —
    /// they cannot be concatenated — even when the model id matches.
    #[test]
    fn scheduler_never_mixes_shapes_in_a_sweep() {
        let q = RequestQueue::new(8);
        let wide = QueuedRequest {
            model: 0,
            input: Tensor::zeros(&[1, 2, 3, 3]),
            slot: Arc::new(ResponseSlot::new()),
        };
        q.submit(req(0, 1), Admission::Block).unwrap();
        q.submit(wide, Admission::Block).unwrap();
        q.submit(req(0, 1), Admission::Block).unwrap();
        q.close();
        let sched = BatchScheduler::new(&q, Some(8), Duration::ZERO);
        let shapes: Vec<Vec<Vec<usize>>> = std::iter::from_fn(|| sched.next_batch())
            .map(|b| b.iter().map(|r| r.input.shape().to_vec()).collect())
            .collect();
        assert_eq!(
            shapes,
            vec![
                vec![vec![1, 1, 1, 1]],
                vec![vec![1, 2, 3, 3]],
                vec![vec![1, 1, 1, 1]],
            ]
        );
    }

    /// Abandoning a slot makes its waiter panic instead of hanging;
    /// abandoning after fulfilment is a no-op.
    #[test]
    fn abandoned_slot_fails_loudly_fulfilled_slot_ignores_abandon() {
        let slot = Arc::new(ResponseSlot::new());
        slot.fulfill(Tensor::zeros(&[1]));
        slot.abandon(); // no-op: already fulfilled
        let ticket = Ticket::new(slot);
        assert_eq!(ticket.wait().output, Tensor::zeros(&[1]));

        let slot = Arc::new(ResponseSlot::new());
        let ticket = Ticket::new(slot.clone());
        slot.abandon();
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| ticket.wait()));
        assert!(err.is_err(), "waiting on an abandoned slot must panic");
    }

    /// Closing wakes blocked submitters with `Closed` and lets schedulers
    /// drain to `None`.
    #[test]
    fn close_drains_and_rejects_new_work() {
        let q = RequestQueue::new(4);
        q.submit(req(0, 1), Admission::Block).unwrap();
        q.close();
        assert!(matches!(
            q.submit(req(0, 1), Admission::Block),
            Err(SubmitError::Closed(_))
        ));
        let sched = BatchScheduler::new(&q, None, Duration::ZERO);
        assert_eq!(sched.next_batch().unwrap().len(), 1);
        assert!(sched.next_batch().is_none());
    }
}
