//! # cq-serve
//!
//! The **queued, multi-model serving front-end** over the frozen CIM
//! inference engine — the layer where CIM throughput is won or lost
//! (scheduling and batching, not array arithmetic):
//!
//! ```text
//!  client (one thread,         CimServer::start() -> ServeSession
//!  many in-flight)          ┌──────────────────────────────────────────────┐
//!  ───────────────────┐     │ RequestQueue (bounded; Block | Reject)       │
//!  session.submit(    ├────►│  ├ Latency deque   (priority)                │
//!   Request::to(..)   │     │  ├ Bulk deque      (FIFO + aging; linger     │
//!    .batch(x).slo(..)│     │  │                  ≤ max_wait)              │
//!    .deadline(..)    │     │  └ Shard pool      (work-stealing segments)  │
//!    .weight(..))     │     └───────────────┬──────────────────────────────┘
//!  ───────────────────┘                     │ BatchScheduler per worker:
//!        │ Ticket                           │ shards ≻ aged bulk ≻ latency
//!        ▼                                  │ ≻ bulk; latency arrivals
//!  CompletionSet::wait_any()                │ preempt bulk linger; sweeps
//!  try_wait / wait_timeout / wait           │ > shard_rows split
//!              ┌────────────────────────────┴─┐
//!              ▼                              ▼
//!        worker thread  …               worker thread    (owned threads)
//!              │ write-locked sweeps          │ read-locked shards
//!              ▼                              ▼
//!  ┌──────────────────────────────────────────────────┐
//!  │ ModelRegistry: id → RwLock<PreparedCimModel>     │
//!  │ (frozen weights; scratch pools; optional         │
//!  │  row-tile sharding inside every conv)            │
//!  └──────────────────────────────────────────────────┘
//!              │ shard outputs rejoined (exact concat),
//!              │ outputs split back per request
//!              ▼
//!   Completed { output, latency, slo, missed }
//!   ServeSession::shutdown() -> (ServeStats, models)
//! ```
//!
//! Every serving-path output — coalesced, chunked oversized requests,
//! batch-segment sharded, row-tile sharded, multi-model — is
//! **bit-identical** to calling the standalone
//! [`PreparedCimModel`] on the same input:
//! the front-end only reorders *which sweep (or shard)* a request rides
//! in, every layer processes batch elements independently with a fixed
//! f32 operation order, and shard rejoins are exact copies
//! (`tests/serving.rs`, `tests/slo_stress.rs`, and the `cq-core`
//! `sharded_equivalence` matrix pin this). The same holds across
//! **resolution paths**: [`Ticket::wait`], [`Ticket::try_wait`],
//! [`Ticket::wait_timeout`], and [`CompletionSet::wait_any`] all hand
//! over the same moved output tensor.
//!
//! **Sessions.** [`CimServer::start`] consumes the server and returns an
//! owned [`ServeSession`]: worker threads are plain `std::thread::spawn`
//! threads sharing the session state through `Arc` (no scope borrow, no
//! async runtime — hand-rolled on `std::sync` like the rest of the
//! offline dependency stack). Submission is **non-blocking by default**:
//! [`ServeSession::submit`] takes a fluent [`Request`] and returns a
//! pollable [`Ticket`]; a [`CompletionSet`] multiplexes hundreds of
//! in-flight tickets through one condvar. [`ServeSession::shutdown`]
//! drains every admitted request, joins the workers, and returns the
//! final [`ServeStats`] with the resident models. The PR 3/4 closure
//! flow survives as [`CimServer::serve`], a thin wrapper over the same
//! machinery.
//!
//! **Hot-swap.** A *running* session is reconfigurable:
//! [`ServeSession::register`] installs a new model (routable the moment
//! it returns) and [`ServeSession::evict`] removes one — in-flight
//! requests against the evicted model drain to completion bit-exactly,
//! new submissions fail with a recoverable [`SubmitError::UnknownModel`],
//! and the returned [`EvictTicket`] resolves with the reclaimed
//! [`PreparedCimModel`] once the last admitted request lands. Names are
//! reusable immediately: re-registering an evicted name atomically routes
//! new work to the replacement (`tests/churn_stress.rs` hammers this
//! under multi-producer load).
//!
//! **Tenancy.** Requests optionally carry a [`TenantId`]
//! ([`Request::tenant`]); tenants declared via
//! [`TenantSpec`] get weighted-fair scheduling — per-class virtual-time
//! fair queueing, so each tenant's served row share converges to its
//! weight share under saturation, with idle periods banking no credit —
//! and admission quotas (`max_queued`, `max_in_flight`) enforced at the
//! queue with the recoverable [`SubmitError::QuotaExceeded`]. Untagged
//! requests ride the built-in `"default"` tenant; with a single tenant
//! the scheduler is exactly the PR 4 class scheduler.
//!
//! **Autoscaling.** The worker pool floats between
//! [`ServeConfig::min_workers`] and [`ServeConfig::max_workers`]: the
//! pool grows when the queue stays deeper than the live worker count for
//! `scale_up_after`, and workers above the floor retire after
//! `scale_down_idle` without work. Resizes never drop or reorder
//! admitted work — they only change who pops the shared queue.
//!
//! **Observability.** [`ServeStats`] carries log-bucketed latency
//! histograms per class and per tenant ([`LatencyHistogram`]), a
//! decimating queue-depth time series, per-model and worker-pool
//! counters, and renders the whole snapshot in Prometheus text
//! exposition format via [`ServeStats::render_prometheus`].
//!
//! **SLO scheduling.** Requests carry an [`Slo`] class, an optional
//! deadline, and an aging weight: [`Slo::Latency`] work schedules before
//! [`Slo::Bulk`] work and preempts bulk batch formation (a lingering
//! bulk sweep closes the moment a latency request lands); bulk keeps its
//! FIFO coalescing behaviour. Under
//! [`SchedulerPolicy::Aging`], once any queued bulk request's weighted
//! age reaches `bulk_max_age` the bulk class outranks new latency
//! arrivals (served FIFO from its head), giving bulk a provable
//! per-request starvation bound under sustained latency floods. Deadline-
//! expired tickets are **still served** — bit-exactness and the
//! every-ticket-resolves guarantee are never traded away — but complete
//! with [`Completed::missed`] set, and [`ServeStats`] reports per-class
//! served/missed counters plus [`ServeStats::aged_promotions`].
//!
//! **Sharding.** With [`ServeConfig::shard_rows`] set, a sweep larger
//! than the bound is split into batch-segment [`cq_cim::ShardPlan`]
//! shards published to the queue's work-stealing pool: every worker —
//! including the coordinator while it waits — steals segments and runs
//! them through the registry's read lock, so the whole worker set
//! cooperates on one oversized request. [`ServeConfig::row_tile_shards`]
//! additionally splits each frozen convolution's grouped-conv front-end
//! across row tiles (rejoined by exact scatter before the canonical
//! fixed-order reduce).
//!
//! [`StreamSpec`] generates seeded Poisson-ish open-loop request streams
//! with a configurable latency-class fraction; the `cq-bench` `serving`
//! experiment replays them through a multiplexed [`CompletionSet`]
//! client and reports per-class p50/p99 latency, deadline-miss rate,
//! images/sec, and queue depth (`BENCH_serving.json`,
//! `BENCH_serving_sharded.json`).
//!
//! ## Example
//!
//! ```
//! use cq_cim::CimConfig;
//! use cq_core::{build_cim_resnet, PreparedCimModel, QuantScheme};
//! use cq_nn::{Layer, Mode, ResNetSpec};
//! use cq_serve::{CimServer, CompletionSet, ModelRegistry, Request, ServeConfig};
//! use cq_tensor::CqRng;
//!
//! // Freeze a (here: untrained but warmed) model for serving.
//! let mut net = build_cim_resnet(
//!     ResNetSpec::resnet8(4, 4),
//!     &CimConfig::tiny(),
//!     &QuantScheme::ours(),
//!     0,
//! );
//! let warm = CqRng::new(1).normal_tensor(&[1, 3, 12, 12], 1.0);
//! let _ = net.forward(&warm, Mode::Eval);
//!
//! let mut registry = ModelRegistry::new();
//! registry.register("resnet8", PreparedCimModel::new(Box::new(net)));
//! let cfg = ServeConfig::builder().workers(2).build().unwrap();
//!
//! // Owned session: no closure scope, nothing blocks the client.
//! let session = CimServer::new(registry, cfg).start();
//! let mut inflight = CompletionSet::new();
//! for i in 0..4 {
//!     let x = CqRng::new(10 + i).normal_tensor(&[1, 3, 12, 12], 1.0);
//!     inflight.insert(session.submit(Request::to("resnet8").batch(x)).unwrap());
//! }
//! let mut outputs = Vec::new();
//! while let Some((_key, done)) = inflight.wait_any() {
//!     outputs.push(done.output);
//! }
//! let (stats, models) = session.shutdown();
//! assert_eq!(outputs.len(), 4);
//! assert_eq!(stats.served, 4);
//! assert_eq!(models.len(), 1, "resident models handed back");
//! ```

#![warn(missing_docs)]

mod completion;
mod config;
mod metrics;
mod queue;
mod registry;
mod request;
mod server;
mod session;
mod stream;

pub use completion::{CompletionSet, TicketKey};
pub use config::{ConfigError, SchedulerPolicy, ServeConfig, ServeConfigBuilder, TenantSpec};
// Re-exported so `ServeSession::shutdown`'s return type is nameable from
// this crate alone.
pub use cq_core::{BackendError, BackendKind, BackendSet, PreparedCimModel, PsumKernel};
pub use metrics::{
    DepthSample, LatencyHistogram, ModelStats, TenantStats, WorkerStats, HISTOGRAM_BUCKETS,
};
pub use queue::{
    Admission, BackendStats, ClassStats, Completed, ServeStats, Slo, SubmitError, Ticket,
};
pub use registry::{EvictTicket, ModelId, ModelRegistry, SwapError};
pub use request::{Request, TenantId};
pub use server::CimServer;
pub use session::ServeSession;
pub use stream::{StreamRequest, StreamSpec};
