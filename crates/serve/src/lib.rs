//! # cq-serve
//!
//! The **queued, multi-model serving front-end** over the frozen CIM
//! inference engine — the layer where CIM throughput is won or lost
//! (scheduling and batching, not array arithmetic):
//!
//! ```text
//!  clients                 CimServer::serve
//!  ───────┐   ┌──────────────────────────────────────────────────┐
//!  submit ├──►│ RequestQueue (bounded; Admission::Block | Reject)│
//!  ───────┘   └───────────────┬──────────────────────────────────┘
//!                             │ BatchScheduler per worker:
//!                             │ FIFO same-model runs ≤ max_batch,
//!                             │ linger ≤ max_wait, oversized alone
//!              ┌──────────────┴───────────┐
//!              ▼                          ▼
//!        worker thread  …           worker thread      (thread::scope)
//!              │                          │
//!              ▼                          ▼
//!  ┌──────────────────────────────────────────────────┐
//!  │ ModelRegistry: id → Mutex<PreparedCimModel>      │
//!  │ (independently frozen weights + scratch each)    │
//!  └──────────────────────────────────────────────────┘
//!              │ outputs split back per request
//!              ▼
//!        Ticket::wait() → Completed { output, latency }
//! ```
//!
//! Every serving-path output — coalesced, chunked oversized requests,
//! multi-model — is **bit-identical** to calling the standalone
//! [`PreparedCimModel`](cq_core::PreparedCimModel) on the same input:
//! the front-end only reorders *which sweep* a request rides in, and every
//! layer processes batch elements independently with a fixed f32 operation
//! order (`tests/serving.rs` pins this).
//!
//! [`StreamSpec`] generates seeded Poisson-ish open-loop request streams;
//! the `cq-bench` `serving` experiment replays them against a server and
//! reports p50/p99 latency, images/sec, and queue depth
//! (`BENCH_serving.json`).
//!
//! ## Example
//!
//! ```
//! use cq_cim::CimConfig;
//! use cq_core::{build_cim_resnet, PreparedCimModel, QuantScheme};
//! use cq_nn::{Layer, Mode, ResNetSpec};
//! use cq_serve::{CimServer, ModelRegistry, ServeConfig};
//! use cq_tensor::CqRng;
//!
//! // Freeze a (here: untrained but warmed) model for serving.
//! let mut net = build_cim_resnet(
//!     ResNetSpec::resnet8(4, 4),
//!     &CimConfig::tiny(),
//!     &QuantScheme::ours(),
//!     0,
//! );
//! let warm = CqRng::new(1).normal_tensor(&[1, 3, 12, 12], 1.0);
//! let _ = net.forward(&warm, Mode::Eval);
//!
//! let mut registry = ModelRegistry::new();
//! registry.register("resnet8", PreparedCimModel::new(Box::new(net)));
//! let server = CimServer::new(registry, ServeConfig::default());
//!
//! let (outputs, stats) = server.serve(|h| {
//!     let tickets: Vec<_> = (0..4)
//!         .map(|i| {
//!             let x = CqRng::new(10 + i).normal_tensor(&[1, 3, 12, 12], 1.0);
//!             h.submit("resnet8", x).unwrap()
//!         })
//!         .collect();
//!     tickets.into_iter().map(|t| t.wait().output).collect::<Vec<_>>()
//! });
//! assert_eq!(outputs.len(), 4);
//! assert_eq!(stats.served, 4);
//! ```

#![warn(missing_docs)]

mod queue;
mod registry;
mod server;
mod stream;

pub use queue::{Admission, Completed, ServeStats, SubmitError, Ticket};
pub use registry::{ModelId, ModelRegistry};
pub use server::{CimServer, ServeConfig, ServerHandle};
pub use stream::{StreamRequest, StreamSpec};
