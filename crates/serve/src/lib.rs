//! # cq-serve
//!
//! The **queued, multi-model serving front-end** over the frozen CIM
//! inference engine — the layer where CIM throughput is won or lost
//! (scheduling and batching, not array arithmetic):
//!
//! ```text
//!  clients              CimServer::serve
//!  ──────────────┐   ┌──────────────────────────────────────────────┐
//!  submit_with   ├──►│ RequestQueue (bounded; Block | Reject)       │
//!  (Slo,deadline)│   │  ├ Latency deque   (strict priority)         │
//!  ──────────────┘   │  ├ Bulk deque      (FIFO, linger ≤ max_wait) │
//!                    │  └ Shard pool      (work-stealing segments)  │
//!                    └───────────────┬──────────────────────────────┘
//!                                    │ BatchScheduler per worker:
//!                                    │ shards ≻ latency ≻ bulk;
//!                                    │ latency arrivals preempt bulk
//!                                    │ linger; oversized sweeps split
//!                                    │ into ≤ shard_rows segments
//!              ┌─────────────────────┴────┐
//!              ▼                          ▼
//!        worker thread  …           worker thread      (thread::scope)
//!              │ write-locked sweeps      │ read-locked shards
//!              ▼                          ▼
//!  ┌──────────────────────────────────────────────────┐
//!  │ ModelRegistry: id → RwLock<PreparedCimModel>     │
//!  │ (frozen weights; scratch pools; optional         │
//!  │  row-tile sharding inside every conv)            │
//!  └──────────────────────────────────────────────────┘
//!              │ shard outputs rejoined (exact concat),
//!              │ outputs split back per request
//!              ▼
//!   Ticket::wait() → Completed { output, latency, slo, missed }
//! ```
//!
//! Every serving-path output — coalesced, chunked oversized requests,
//! batch-segment sharded, row-tile sharded, multi-model — is
//! **bit-identical** to calling the standalone
//! [`PreparedCimModel`](cq_core::PreparedCimModel) on the same input:
//! the front-end only reorders *which sweep (or shard)* a request rides
//! in, every layer processes batch elements independently with a fixed
//! f32 operation order, and shard rejoins are exact copies
//! (`tests/serving.rs`, `tests/slo_stress.rs`, and the `cq-core`
//! `sharded_equivalence` matrix pin this).
//!
//! **SLO scheduling.** Requests carry an [`Slo`] class and an optional
//! deadline: [`Slo::Latency`] work always schedules before
//! [`Slo::Bulk`] work and preempts bulk batch formation (a lingering
//! bulk sweep closes the moment a latency request lands); bulk keeps its
//! FIFO coalescing behaviour. Deadline-expired tickets are **still
//! served** — bit-exactness and the every-ticket-resolves guarantee are
//! never traded away — but complete with
//! [`Completed::missed`] set, and [`ServeStats`] reports per-class
//! served/missed counters.
//!
//! **Sharding.** With [`ServeConfig::shard_rows`] set, a sweep larger
//! than the bound is split into batch-segment [`cq_cim::ShardPlan`]
//! shards published to the queue's work-stealing pool: every worker —
//! including the coordinator while it waits — steals segments and runs
//! them through the registry's read lock, so the whole worker set
//! cooperates on one oversized request. [`ServeConfig::row_tile_shards`]
//! additionally splits each frozen convolution's grouped-conv front-end
//! across row tiles (rejoined by exact scatter before the canonical
//! fixed-order reduce).
//!
//! [`StreamSpec`] generates seeded Poisson-ish open-loop request streams
//! with a configurable latency-class fraction; the `cq-bench` `serving`
//! experiment replays them against a server and reports per-class p50/p99
//! latency, deadline-miss rate, images/sec, and queue depth
//! (`BENCH_serving.json`, `BENCH_serving_sharded.json`).
//!
//! ## Example
//!
//! ```
//! use cq_cim::CimConfig;
//! use cq_core::{build_cim_resnet, PreparedCimModel, QuantScheme};
//! use cq_nn::{Layer, Mode, ResNetSpec};
//! use cq_serve::{CimServer, ModelRegistry, ServeConfig};
//! use cq_tensor::CqRng;
//!
//! // Freeze a (here: untrained but warmed) model for serving.
//! let mut net = build_cim_resnet(
//!     ResNetSpec::resnet8(4, 4),
//!     &CimConfig::tiny(),
//!     &QuantScheme::ours(),
//!     0,
//! );
//! let warm = CqRng::new(1).normal_tensor(&[1, 3, 12, 12], 1.0);
//! let _ = net.forward(&warm, Mode::Eval);
//!
//! let mut registry = ModelRegistry::new();
//! registry.register("resnet8", PreparedCimModel::new(Box::new(net)));
//! let server = CimServer::new(registry, ServeConfig::default());
//!
//! let (outputs, stats) = server.serve(|h| {
//!     let tickets: Vec<_> = (0..4)
//!         .map(|i| {
//!             let x = CqRng::new(10 + i).normal_tensor(&[1, 3, 12, 12], 1.0);
//!             h.submit("resnet8", x).unwrap()
//!         })
//!         .collect();
//!     tickets.into_iter().map(|t| t.wait().output).collect::<Vec<_>>()
//! });
//! assert_eq!(outputs.len(), 4);
//! assert_eq!(stats.served, 4);
//! ```

#![warn(missing_docs)]

mod queue;
mod registry;
mod server;
mod stream;

pub use queue::{Admission, ClassStats, Completed, ServeStats, Slo, SubmitError, Ticket};
pub use registry::{ModelId, ModelRegistry};
pub use server::{CimServer, ServeConfig, ServerHandle};
pub use stream::{StreamRequest, StreamSpec};
