//! The worker-threaded serving front-end tying queue, scheduler, and
//! registry together.

use crate::queue::{
    Admission, BatchScheduler, QueuedRequest, RequestQueue, ResponseSlot, ServeStats, SubmitError,
    Ticket,
};
use crate::registry::{ModelId, ModelRegistry};
use cq_tensor::Tensor;
use std::sync::Arc;
use std::time::Duration;

/// Serving policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded queue capacity, in requests.
    pub queue_capacity: usize,
    /// What a submission does when the queue is full.
    pub admission: Admission,
    /// Images per coalesced sweep (`None` = unbounded). Also installed as
    /// every resident model's `max_batch`, so even a single oversized
    /// request is executed in ≤ cap chunks.
    pub max_batch: Option<usize>,
    /// How long a scheduler lingers for more same-model arrivals while a
    /// sweep is unfilled (measured from when the sweep starts forming).
    pub max_wait: Duration,
    /// Worker threads draining the queue.
    pub workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            admission: Admission::Block,
            max_batch: Some(8),
            max_wait: Duration::from_micros(200),
            workers: 2,
        }
    }
}

/// A serving front-end over a set of resident frozen models: a bounded
/// request queue with admission control, per-worker batch schedulers, and
/// `std::thread::scope` workers draining sweeps into the registry (see
/// crate docs for the full picture).
pub struct CimServer {
    registry: ModelRegistry,
    cfg: ServeConfig,
}

impl CimServer {
    /// Creates a server over `registry`; every resident model's sweep cap
    /// is set to `cfg.max_batch`.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty, `cfg.workers == 0`,
    /// `cfg.queue_capacity == 0`, or `cfg.max_batch == Some(0)`.
    pub fn new(registry: ModelRegistry, cfg: ServeConfig) -> Self {
        assert!(!registry.is_empty(), "registry has no models");
        let mut server = Self {
            registry,
            cfg: cfg.clone(),
        };
        server.set_config(cfg);
        server
    }

    /// The resident model set.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The active policy.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Swaps the serving policy between sessions (e.g. a benchmark
    /// sweeping admission modes over one resident model set); resident
    /// models get the new sweep cap.
    ///
    /// # Panics
    ///
    /// Same invariants as [`CimServer::new`].
    pub fn set_config(&mut self, cfg: ServeConfig) {
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        assert!(cfg.max_batch != Some(0), "max_batch must be positive");
        self.registry.set_max_batch(cfg.max_batch);
        self.cfg = cfg;
    }

    /// Runs one serving session: spawns the workers, calls `body` with a
    /// [`ServerHandle`] for submitting requests, and — once `body`
    /// returns — closes the queue, drains every admitted request, joins
    /// the workers, and returns `body`'s result with the session stats.
    ///
    /// Every ticket obtained inside `body` is guaranteed to be resolved;
    /// `Ticket::wait` may be called inside or after `body`. Panics — in
    /// `body` or in a worker (e.g. an input shape the model rejects) —
    /// propagate out of `serve` instead of deadlocking: the queue closes
    /// on unwind and panicked workers abandon their tickets, which makes
    /// the corresponding `Ticket::wait` panic too.
    pub fn serve<R>(&self, body: impl FnOnce(&ServerHandle<'_>) -> R) -> (R, ServeStats) {
        let queue = RequestQueue::new(self.cfg.queue_capacity);
        let handle = ServerHandle {
            queue: &queue,
            registry: &self.registry,
            admission: self.cfg.admission,
        };
        let out = std::thread::scope(|sc| {
            for _ in 0..self.cfg.workers {
                sc.spawn(|| self.worker(&queue));
            }
            // Close on unwind too: if `body` panics, `thread::scope` joins
            // the workers before propagating — without closing, they would
            // wait on the queue forever.
            struct CloseOnDrop<'q>(&'q RequestQueue);
            impl Drop for CloseOnDrop<'_> {
                fn drop(&mut self) {
                    self.0.close();
                }
            }
            let closer = CloseOnDrop(&queue);
            let r = body(&handle);
            drop(closer);
            r
        });
        (out, queue.stats())
    }

    /// Dissolves the server, returning the resident models.
    pub fn into_models(self) -> Vec<(String, cq_core::PreparedCimModel)> {
        self.registry.into_models()
    }

    /// One worker: form sweeps, lock the target model, fulfil tickets.
    fn worker(&self, queue: &RequestQueue) {
        // If the sweep panics (e.g. the model rejects an input shape),
        // abandon the unfulfilled tickets on unwind so their waiters fail
        // loudly instead of hanging.
        struct AbandonOnDrop(Vec<Arc<ResponseSlot>>);
        impl Drop for AbandonOnDrop {
            fn drop(&mut self) {
                for slot in &self.0 {
                    slot.abandon();
                }
            }
        }
        let sched = BatchScheduler::new(queue, self.cfg.max_batch, self.cfg.max_wait);
        while let Some(batch) = sched.next_batch() {
            let model = ModelId(batch[0].model);
            let (inputs, slots): (Vec<Tensor>, Vec<Arc<ResponseSlot>>) =
                batch.into_iter().map(|q| (q.input, q.slot)).unzip();
            let guard = AbandonOnDrop(slots);
            let outputs = self.registry.infer_batch(model, &inputs);
            debug_assert_eq!(outputs.len(), guard.0.len());
            for (slot, output) in guard.0.iter().zip(outputs) {
                slot.fulfill(output);
            }
            // All fulfilled; the guard's abandon() calls are now no-ops.
        }
    }
}

/// Client-side handle for submitting requests into a running serve scope.
pub struct ServerHandle<'s> {
    queue: &'s RequestQueue,
    registry: &'s ModelRegistry,
    admission: Admission,
}

impl ServerHandle<'_> {
    /// Submits one request (`[b, C, H, W]`) to the named model.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownModel`] for an unregistered id;
    /// [`SubmitError::QueueFull`] when full under [`Admission::Reject`]
    /// (the input is handed back); [`SubmitError::Closed`] after the
    /// serve scope started shutting down.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not rank 4.
    pub fn submit(&self, model: &str, input: Tensor) -> Result<Ticket, SubmitError> {
        match self.registry.id(model) {
            Some(id) => self.submit_to(id, input),
            None => Err(SubmitError::UnknownModel(model.to_string())),
        }
    }

    /// Like [`ServerHandle::submit`] with a pre-resolved [`ModelId`].
    pub fn submit_to(&self, model: ModelId, input: Tensor) -> Result<Ticket, SubmitError> {
        assert_eq!(input.rank(), 4, "request must be [B,C,H,W]");
        let slot = Arc::new(ResponseSlot::new());
        let ticket = Ticket::new(slot.clone());
        self.queue.submit(
            QueuedRequest {
                model: model.0,
                input,
                slot,
            },
            self.admission,
        )?;
        Ok(ticket)
    }

    /// Resolves a model name (convenience passthrough to the registry).
    pub fn model_id(&self, name: &str) -> Option<ModelId> {
        self.registry.id(name)
    }
}
