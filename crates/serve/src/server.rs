//! The worker-threaded serving front-end tying queue, scheduler, shard
//! pool, and registry together.

use crate::queue::{
    Admission, BatchScheduler, QueuedRequest, RequestQueue, ResponseSlot, ServeStats, ShardJoin,
    ShardTask, Slo, SubmitError, Ticket, Work,
};
use crate::registry::{ModelId, ModelRegistry};
use cq_cim::ShardPlan;
use cq_tensor::Tensor;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Serving policy knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bounded queue capacity, in requests (both [`Slo`] classes share
    /// it).
    pub queue_capacity: usize,
    /// What a submission does when the queue is full.
    pub admission: Admission,
    /// Images per coalesced sweep (`None` = unbounded). Also installed as
    /// every resident model's `max_batch`, so even a single oversized
    /// request is executed in ≤ cap chunks.
    pub max_batch: Option<usize>,
    /// How long a scheduler lingers for more same-model arrivals while a
    /// **bulk** sweep is unfilled (measured from when the sweep starts
    /// forming). Latency sweeps never linger, and a latency arrival
    /// aborts an in-progress bulk linger.
    pub max_wait: Duration,
    /// Worker threads draining the queue.
    pub workers: usize,
    /// **Batch-segment sharding**: a sweep with more rows than this is
    /// split into segments published to the shard pool, where every
    /// worker — the coordinator included — steals and executes them
    /// concurrently before the bit-exact rejoin. Segments carry at most
    /// `min(shard_rows, max_batch)` rows, so the sweep cap stays in
    /// force on the sharded path too. Shards inherit their request's
    /// [`Slo`] class for scheduling. `None` disables sharding (each
    /// sweep runs on one worker, as before).
    pub shard_rows: Option<usize>,
    /// **Row-tile sharding**: splits every frozen convolution's
    /// grouped-conv front-end into this many independent row-tile shards
    /// (clamped per layer; see
    /// [`cq_core::PreparedCimModel::set_row_tile_shards`]). `None`
    /// disables it. Bit-identical either way. Shard threads multiply
    /// with the conv kernel's own `threads_for`/`CQ_THREADS` pool —
    /// budget `workers × shards × CQ_THREADS` against the machine.
    pub row_tile_shards: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 64,
            admission: Admission::Block,
            max_batch: Some(8),
            max_wait: Duration::from_micros(200),
            workers: 2,
            shard_rows: None,
            row_tile_shards: None,
        }
    }
}

/// A serving front-end over a set of resident frozen models: a bounded
/// request queue with admission control and [`Slo`] priority classes,
/// per-worker batch schedulers, a work-stealing shard pool for oversized
/// sweeps, and `std::thread::scope` workers draining sweeps into the
/// registry (see crate docs for the full picture).
pub struct CimServer {
    registry: ModelRegistry,
    cfg: ServeConfig,
    /// Number of `serve` scopes currently running (see
    /// [`CimServer::set_config`]).
    active_serves: AtomicUsize,
}

impl CimServer {
    /// Creates a server over `registry`; every resident model's sweep cap
    /// is set to `cfg.max_batch` and its row-tile shard count to
    /// `cfg.row_tile_shards`.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty, `cfg.workers == 0`,
    /// `cfg.queue_capacity == 0`, or any of `cfg.max_batch`,
    /// `cfg.shard_rows`, `cfg.row_tile_shards` is `Some(0)`.
    pub fn new(registry: ModelRegistry, cfg: ServeConfig) -> Self {
        assert!(!registry.is_empty(), "registry has no models");
        let mut server = Self {
            registry,
            cfg: cfg.clone(),
            active_serves: AtomicUsize::new(0),
        };
        server.set_config(cfg);
        server
    }

    /// The resident model set.
    pub fn registry(&self) -> &ModelRegistry {
        &self.registry
    }

    /// The active policy.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Swaps the serving policy **between sessions** (e.g. a benchmark
    /// sweeping admission modes over one resident model set); resident
    /// models get the new sweep cap and row-tile shard count.
    ///
    /// The new policy takes effect only for **future** [`CimServer::serve`]
    /// calls: a running serve scope snapshots the policy when it starts
    /// (its queue, workers, and schedulers are built from that snapshot),
    /// so reconfiguring mid-session is not possible. The exclusive
    /// `&mut self` borrow makes calling this inside an active `serve`
    /// body unrepresentable in safe Rust; a debug assertion additionally
    /// guards the invariant against future interior-mutability refactors.
    ///
    /// # Panics
    ///
    /// Same invariants as [`CimServer::new`].
    pub fn set_config(&mut self, cfg: ServeConfig) {
        debug_assert_eq!(
            self.active_serves.load(Ordering::SeqCst),
            0,
            "set_config called during an active serve scope"
        );
        assert!(cfg.workers > 0, "need at least one worker");
        assert!(cfg.queue_capacity > 0, "queue capacity must be positive");
        assert!(cfg.max_batch != Some(0), "max_batch must be positive");
        assert!(cfg.shard_rows != Some(0), "shard_rows must be positive");
        assert!(
            cfg.row_tile_shards != Some(0),
            "row_tile_shards must be positive"
        );
        self.registry.set_max_batch(cfg.max_batch);
        self.registry.set_row_tile_shards(cfg.row_tile_shards);
        self.cfg = cfg;
    }

    /// Runs one serving session: spawns the workers, calls `body` with a
    /// [`ServerHandle`] for submitting requests, and — once `body`
    /// returns — closes the queue, drains every admitted request, joins
    /// the workers, and returns `body`'s result with the session stats.
    ///
    /// Every ticket obtained inside `body` is guaranteed to be resolved;
    /// `Ticket::wait` may be called inside or after `body`. Panics — in
    /// `body` or in a worker (e.g. an input shape the model rejects) —
    /// propagate out of `serve` instead of deadlocking: the queue closes
    /// on unwind, panicked workers abandon their tickets (which makes the
    /// corresponding `Ticket::wait` panic too), and a panicked shard
    /// executor fails its join so the coordinating worker panics as well.
    pub fn serve<R>(&self, body: impl FnOnce(&ServerHandle<'_>) -> R) -> (R, ServeStats) {
        struct ActiveGuard<'a>(&'a AtomicUsize);
        impl Drop for ActiveGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::SeqCst);
            }
        }
        self.active_serves.fetch_add(1, Ordering::SeqCst);
        let _active = ActiveGuard(&self.active_serves);

        let queue = RequestQueue::new(self.cfg.queue_capacity);
        let handle = ServerHandle {
            queue: &queue,
            registry: &self.registry,
            admission: self.cfg.admission,
        };
        let out = std::thread::scope(|sc| {
            for _ in 0..self.cfg.workers {
                sc.spawn(|| self.worker(&queue));
            }
            // Close on unwind too: if `body` panics, `thread::scope` joins
            // the workers before propagating — without closing, they would
            // wait on the queue forever.
            struct CloseOnDrop<'q>(&'q RequestQueue);
            impl Drop for CloseOnDrop<'_> {
                fn drop(&mut self) {
                    self.0.close();
                }
            }
            let closer = CloseOnDrop(&queue);
            let r = body(&handle);
            drop(closer);
            r
        });
        (out, queue.stats())
    }

    /// Dissolves the server, returning the resident models.
    pub fn into_models(self) -> Vec<(String, cq_core::PreparedCimModel)> {
        self.registry.into_models()
    }

    /// One worker: steal shards, form sweeps, fulfil tickets.
    fn worker(&self, queue: &RequestQueue) {
        let sched = BatchScheduler::new(queue, self.cfg.max_batch, self.cfg.max_wait);
        while let Some(work) = sched.next_work() {
            match work {
                Work::Shard(task) => self.run_shard(task),
                Work::Sweep(batch) => self.serve_sweep(queue, batch),
            }
        }
    }

    /// Executes one stolen batch segment through the shared-state model
    /// path (read lock — concurrent with other segments of the same
    /// model). If execution panics, the join is failed on unwind so the
    /// coordinator propagates the panic instead of hanging.
    fn run_shard(&self, task: ShardTask) {
        struct FailOnDrop {
            join: Arc<ShardJoin>,
            armed: bool,
        }
        impl Drop for FailOnDrop {
            fn drop(&mut self) {
                if self.armed {
                    self.join.fail();
                }
            }
        }
        let mut guard = FailOnDrop {
            join: task.join.clone(),
            armed: true,
        };
        let output = self
            .registry
            .infer_shared(ModelId(task.model), &task.segment);
        guard.armed = false;
        task.join.complete(task.index, output);
    }

    /// Serves one formed sweep: runs it (whole, or sharded across the
    /// worker pool), splits the output back per request, and fulfils the
    /// tickets with per-class deadline accounting.
    fn serve_sweep(&self, queue: &RequestQueue, batch: Vec<QueuedRequest>) {
        // If anything below panics, abandon the unfulfilled tickets on
        // unwind so their waiters fail loudly instead of hanging.
        struct AbandonOnDrop(Vec<Arc<ResponseSlot>>);
        impl Drop for AbandonOnDrop {
            fn drop(&mut self) {
                for slot in &self.0 {
                    slot.abandon();
                }
            }
        }
        let model = ModelId(batch[0].model);
        let mut inputs = Vec::with_capacity(batch.len());
        let mut metas = Vec::with_capacity(batch.len());
        let mut slots = Vec::with_capacity(batch.len());
        for q in batch {
            inputs.push(q.input);
            metas.push((q.slo, q.deadline));
            slots.push(q.slot);
        }
        let guard = AbandonOnDrop(slots);
        let rows: usize = inputs.iter().map(|t| t.dim(0)).sum();
        let slo = metas[0].0; // sweeps are single-class
        let shardable = self
            .cfg
            .shard_rows
            .is_some_and(|cap| rows > cap && inputs.iter().all(|t| t.dim(0) > 0));
        let outputs = if shardable {
            self.infer_sharded(queue, model, slo, &inputs, rows)
        } else {
            self.registry.infer_batch(model, &inputs)
        };
        debug_assert_eq!(outputs.len(), guard.0.len());
        for ((slot, output), (slo, deadline)) in guard.0.iter().zip(outputs).zip(&metas) {
            let at = slot.fulfill(output);
            queue.note_served(*slo, deadline.is_some(), deadline.is_some_and(|d| at > d));
        }
        // All fulfilled; the guard's abandon() calls are now no-ops.
    }

    /// Executes one oversized sweep cooperatively: the coalesced rows are
    /// split into segments of at most `min(shard_rows, max_batch)` rows —
    /// the sweep cap stays in force, since the shared segment path does
    /// no internal chunking — published to the shard pool, and executed
    /// by whichever workers steal them; this coordinator drains the pool
    /// too while it waits. Segment outputs are rejoined by exact
    /// concatenation and sliced back per request, bit-identical to the
    /// unsharded sweep (every layer processes batch rows independently;
    /// `sharded_equivalence` and the serving tests pin this).
    fn infer_sharded(
        &self,
        queue: &RequestQueue,
        model: ModelId,
        slo: Slo,
        inputs: &[Tensor],
        rows: usize,
    ) -> Vec<Tensor> {
        let owned;
        let coalesced: &Tensor = if inputs.len() == 1 {
            &inputs[0]
        } else {
            owned = Tensor::concat_outer(&inputs.iter().collect::<Vec<_>>());
            &owned
        };
        let seg_rows = self
            .cfg
            .shard_rows
            .unwrap()
            .min(self.cfg.max_batch.unwrap_or(usize::MAX));
        let plan = ShardPlan::split_max(rows, seg_rows);
        let join = Arc::new(ShardJoin::new(plan.num_shards()));
        queue.push_shards(plan.iter().enumerate().map(|(index, seg)| ShardTask {
            model: model.0,
            segment: coalesced.slice_outer(seg.start, seg.end),
            index,
            slo,
            join: join.clone(),
        }));
        // Cooperative wait: keep stealing shard tasks (ours or another
        // coordinator's) while our join is incomplete; block only when
        // the pool is empty — every queued task is then in flight on some
        // worker, so the join (or a failure) is guaranteed to resolve.
        let parts = loop {
            if join.is_done() {
                break join.wait();
            }
            match queue.try_pop_shard() {
                Some(task) => self.run_shard(task),
                None => break join.wait(),
            }
        };
        let merged = Tensor::concat_outer(&parts.iter().collect::<Vec<_>>());
        let mut outputs = Vec::with_capacity(inputs.len());
        let mut start = 0;
        for input in inputs {
            let b = input.dim(0);
            outputs.push(merged.slice_outer(start, start + b));
            start += b;
        }
        outputs
    }
}

/// Client-side handle for submitting requests into a running serve scope.
pub struct ServerHandle<'s> {
    queue: &'s RequestQueue,
    registry: &'s ModelRegistry,
    admission: Admission,
}

impl ServerHandle<'_> {
    /// Submits one request (`[b, C, H, W]`) to the named model under the
    /// default [`Slo::Bulk`] class with no deadline.
    ///
    /// # Errors
    ///
    /// [`SubmitError::UnknownModel`] for an unregistered id;
    /// [`SubmitError::QueueFull`] when full under [`Admission::Reject`]
    /// (the input is handed back); [`SubmitError::Closed`] after the
    /// serve scope started shutting down.
    ///
    /// # Panics
    ///
    /// Panics if `input` is not rank 4.
    pub fn submit(&self, model: &str, input: Tensor) -> Result<Ticket, SubmitError> {
        self.submit_with(model, input, Slo::Bulk, None)
    }

    /// Submits one request under an explicit [`Slo`] class and optional
    /// completion deadline (relative to now). A deadline-expired request
    /// is still served — its [`Completed::missed`](crate::Completed)
    /// flag and the per-class stats record the violation.
    ///
    /// # Errors
    ///
    /// See [`ServerHandle::submit`].
    pub fn submit_with(
        &self,
        model: &str,
        input: Tensor,
        slo: Slo,
        deadline: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        match self.registry.id(model) {
            Some(id) => self.submit_to_with(id, input, slo, deadline),
            None => Err(SubmitError::UnknownModel(model.to_string())),
        }
    }

    /// Like [`ServerHandle::submit`] with a pre-resolved [`ModelId`].
    pub fn submit_to(&self, model: ModelId, input: Tensor) -> Result<Ticket, SubmitError> {
        self.submit_to_with(model, input, Slo::Bulk, None)
    }

    /// Like [`ServerHandle::submit_with`] with a pre-resolved [`ModelId`].
    pub fn submit_to_with(
        &self,
        model: ModelId,
        input: Tensor,
        slo: Slo,
        deadline: Option<Duration>,
    ) -> Result<Ticket, SubmitError> {
        assert_eq!(input.rank(), 4, "request must be [B,C,H,W]");
        let slot = Arc::new(ResponseSlot::new());
        let ticket = Ticket::new(slot.clone(), slo, deadline);
        self.queue.submit(
            QueuedRequest {
                model: model.0,
                input,
                slot,
                slo,
                deadline: ticket.deadline(),
            },
            self.admission,
        )?;
        Ok(ticket)
    }

    /// Resolves a model name (convenience passthrough to the registry).
    pub fn model_id(&self, name: &str) -> Option<ModelId> {
        self.registry.id(name)
    }
}
