//! The serving front-end entry point: [`CimServer`] holds the resident
//! models and the active policy, and turns into running
//! [`ServeSession`]s.

use crate::config::{ConfigError, ServeConfig};
use crate::queue::ServeStats;
use crate::registry::ModelRegistry;
use crate::session::{ServeSession, ServerCore};
use std::sync::Arc;

/// A serving front-end over a set of resident frozen models: a bounded
/// request queue with admission control, [`Slo`](crate::Slo) priority
/// classes (optionally aging-weighted), per-worker batch schedulers, a
/// work-stealing shard pool for oversized sweeps, and owned worker
/// threads draining sweeps into the registry (see crate docs for the full
/// picture).
///
/// Two ways to run it:
///
/// * [`start`](CimServer::start) — the **owned session** flow: consumes
///   the server, returns a [`ServeSession`] whose worker threads run
///   until [`shutdown`](ServeSession::shutdown) hands back the final
///   [`ServeStats`] and the resident models. Nothing is scoped to a
///   closure; tickets are pollable and multiplexable.
/// * [`serve`](CimServer::serve) — the scoped compatibility flow from
///   PR 3/4: runs a closure against a session and drains it before
///   returning. A thin wrapper over the same session machinery.
pub struct CimServer {
    core: Arc<ServerCore>,
    cfg: ServeConfig,
}

impl CimServer {
    /// Creates a server over `registry`; every resident model's sweep cap
    /// is set to `cfg.max_batch`, its row-tile shard count to
    /// `cfg.row_tile_shards`, and its execution-backend chain to
    /// `cfg.backends`.
    ///
    /// # Panics
    ///
    /// Panics if the registry is empty, `cfg` is invalid (see
    /// [`ServeConfig::validate`] — [`ServeConfig::builder`] surfaces the
    /// same violations as recoverable [`ConfigError`]s instead), or the
    /// backend chain cannot execute some resident layer (e.g. a bare
    /// `int` chain over a model frozen under variation).
    pub fn new(mut registry: ModelRegistry, cfg: ServeConfig) -> Self {
        assert!(!registry.is_empty(), "registry has no models");
        cfg.validate().expect("invalid serve config");
        registry.set_max_batch(cfg.max_batch);
        registry.set_row_tile_shards(cfg.row_tile_shards);
        registry
            .set_backends(&cfg.backends)
            .expect("configured backend chain cannot execute a resident model");
        Self {
            core: Arc::new(ServerCore { registry }),
            cfg,
        }
    }

    /// The resident model set.
    pub fn registry(&self) -> &ModelRegistry {
        &self.core.registry
    }

    /// The active policy.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Swaps the serving policy **between sessions** (e.g. a benchmark
    /// sweeping admission modes over one resident model set); resident
    /// models get the new sweep cap and row-tile shard count.
    ///
    /// The new policy takes effect for future sessions only: a running
    /// session snapshots the policy when it starts (its queue, workers,
    /// and schedulers are built from that snapshot), so reconfiguring
    /// mid-session is not possible. The sessions-only contract is
    /// enforced mechanically — the registry can only be re-tuned while no
    /// session shares it — and violations are a hard
    /// [`ConfigError::SessionActive`] error, not a debug assertion.
    ///
    /// # Errors
    ///
    /// [`ConfigError::SessionActive`] when a session still shares the
    /// server state, the violated invariant for an invalid `cfg`, or
    /// [`ConfigError::Backend`] when the new backend chain cannot execute
    /// some resident layer (models already re-chained keep the new chain;
    /// re-install a satisfiable one to restore uniformity).
    pub fn set_config(&mut self, cfg: ServeConfig) -> Result<(), ConfigError> {
        cfg.validate()?;
        let core = Arc::get_mut(&mut self.core).ok_or(ConfigError::SessionActive)?;
        core.registry.set_max_batch(cfg.max_batch);
        core.registry.set_row_tile_shards(cfg.row_tile_shards);
        core.registry.set_backends(&cfg.backends)?;
        self.cfg = cfg;
        Ok(())
    }

    /// Starts an owned serving session: spawns the worker threads and
    /// hands the whole server over to the returned [`ServeSession`].
    /// Submit with [`ServeSession::submit`]; finish with
    /// [`ServeSession::shutdown`], which drains every admitted request
    /// and returns the final stats plus the resident models.
    pub fn start(self) -> ServeSession {
        ServeSession::spawn(self.core, self.cfg)
    }

    /// Runs one scoped serving session (the PR 3/4 compatibility flow):
    /// starts a session, calls `body` with it for submitting requests,
    /// and — once `body` returns — closes the queue, drains every
    /// admitted request, joins the workers, and returns `body`'s result
    /// with the session stats. A thin wrapper over the [`ServeSession`]
    /// machinery; the server (and its registry) stays usable afterwards.
    ///
    /// Every ticket obtained inside `body` is guaranteed to be resolved;
    /// it may be waited inside or after `body`. Panics — in `body` or in
    /// a worker (e.g. an input shape the model rejects) — propagate out
    /// of `serve` instead of deadlocking: the queue closes on unwind,
    /// panicked workers abandon their tickets (which makes the
    /// corresponding ticket resolution panic too), and a panicked shard
    /// executor fails its join so the coordinating worker panics as well.
    pub fn serve<R>(&self, body: impl FnOnce(&ServeSession) -> R) -> (R, ServeStats) {
        let session = ServeSession::spawn(self.core.clone(), self.cfg.clone());
        let out = body(&session);
        (out, session.finish())
    }

    /// Dissolves the server, returning the resident models.
    pub fn into_models(self) -> Vec<(String, cq_core::PreparedCimModel)> {
        Arc::try_unwrap(self.core)
            .ok()
            .expect("a session still shares the server state")
            .registry
            .into_models()
    }
}
